"""Exception hierarchy for the :mod:`repro` package.

All errors raised intentionally by this library derive from
:class:`ReproError`, so callers can catch a single base class.  The
subclasses separate the three broad failure domains: bad user input,
numerical breakdown inside a solver, and model/system inconsistencies.
"""


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong shape, dtype, or value)."""


class NumericalError(ReproError, ArithmeticError):
    """A numerical procedure broke down.

    Examples: a Sylvester equation with a singular spectrum pairing
    (lambda_i(A) + lambda_j(B) == 0), a shifted solve at an eigenvalue,
    or an Arnoldi iteration that cannot produce a new direction.
    """


class SystemStructureError(ReproError):
    """A system object is structurally inconsistent.

    Raised, e.g., when matrix dimensions in a QLDAE do not agree, when a
    descriptor system's pencil is singular, or when an operation requires
    a SISO system but a MIMO one was supplied.
    """


class ConvergenceError(NumericalError):
    """An iterative procedure (Newton, transient step) failed to converge."""

    def __init__(self, message, iterations=None, residual=None):
        super().__init__(message)
        #: Number of iterations performed before giving up (may be None).
        self.iterations = iterations
        #: Last residual norm observed (may be None).
        self.residual = residual
