"""Exception hierarchy for the :mod:`repro` package.

All errors raised intentionally by this library derive from
:class:`ReproError`, so callers can catch a single base class.  The
subclasses separate the three broad failure domains: bad user input,
numerical breakdown inside a solver, and model/system inconsistencies.
"""


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong shape, dtype, or value)."""


class NumericalError(ReproError, ArithmeticError):
    """A numerical procedure broke down.

    Examples: a Sylvester equation with a singular spectrum pairing
    (lambda_i(A) + lambda_j(B) == 0), a shifted solve at an eigenvalue,
    or an Arnoldi iteration that cannot produce a new direction.
    """


class SystemStructureError(ReproError):
    """A system object is structurally inconsistent.

    Raised, e.g., when matrix dimensions in a QLDAE do not agree, when a
    descriptor system's pencil is singular, or when an operation requires
    a SISO system but a MIMO one was supplied.
    """


class ConvergenceError(NumericalError):
    """An iterative procedure (Newton, transient step) failed to converge."""

    def __init__(self, message, iterations=None, residual=None):
        super().__init__(message)
        #: Number of iterations performed before giving up (may be None).
        self.iterations = iterations
        #: Last residual norm observed (may be None).
        self.residual = residual


class TaskError(ReproError):
    """A :class:`~repro.engine.plan.SolveTask` failed during execution.

    Carries the identity of the failing task (plan label, submission
    index, caller tag) and the number of attempts made, so a failure
    deep inside a thousand-task plan is diagnosable without a debugger.

    The engine raises a dynamically created subclass that *also*
    inherits the original exception type, so existing handlers catching
    e.g. :class:`NumericalError` across a plan boundary keep working.
    The original exception is always attached as ``__cause__``.
    """

    def __init__(self, message, plan_label=None, task_index=None,
                 task_tag=None, attempts=1):
        super().__init__(message)
        #: Label of the plan the task belonged to (may be None).
        self.plan_label = plan_label
        #: Submission-order index of the task within its plan.
        self.task_index = task_index
        #: Caller-supplied task tag (free-form; may be None).
        self.task_tag = task_tag
        #: Number of execution attempts made (> 1 when retries ran).
        self.attempts = attempts


class TaskCancelled(ReproError):
    """A solve plan was cancelled cooperatively before completion.

    Raised when a plan's ``cancel`` callback reports True between tasks
    (see :meth:`repro.engine.plan.SolvePlan.execute`) — the serving
    layer uses it to stop a timed-out request at the next task boundary.
    Work already completed stays valid (memoized kernels keep their
    deterministic results); only the remaining tasks are skipped, so
    cancellation can never corrupt a shared cache.
    """


class FaultInjected(ReproError):
    """A deterministic fault fired at a :func:`repro.testing.faults.
    fault_point` (``REPRO_FAULT=<site>:<n>:raise``).

    Only ever raised by the fault-injection harness; production code
    paths never construct it.  Classified as transient by the engine's
    retry policy, which lets tests exercise the retry machinery.
    """

    def __init__(self, message, site=None, hit=None):
        super().__init__(message)
        #: The fault site that fired (e.g. ``"checkpoint.before_commit"``).
        self.site = site
        #: The 1-based hit count at which the site fired.
        self.hit = hit
