"""Executor backends for :class:`~repro.engine.plan.SolvePlan`.

The backends share one tiny contract — ``run(callables) -> results`` in
submission order — plus a module-global configuration so that every
plan-emitting layer (resolvent batches, Krylov chains, distortion
sweeps) picks up the same backend without threading an executor handle
through a dozen call signatures.

The serial backend is the default: it is deterministic, allocation-free
and exactly reproduces the historical inline loops.  The thread-pool
backend exists because the numerical kernels underneath every task
(LAPACK ``trtrs``, BLAS GEMM, SuperLU) release the GIL, so independent
solves genuinely overlap on multicore hosts.  The process-pool backend
(:mod:`repro.engine.process`) additionally scales the pure-Python
stages: tasks carrying a process spec run in worker processes with
shared-memory payloads, the rest fall back inline.

Selection: ``REPRO_BACKEND=serial|thread|process`` plus
``REPRO_WORKERS=<n>|auto`` as environment defaults, or explicitly via
:func:`configure` / the :class:`using` scope.  A backend request without
a worker count implies ``workers="auto"``; any resolved count ``<= 1``
degrades to serial.
"""

import os
import threading
from concurrent.futures import ThreadPoolExecutor as _PoolImpl

from ..errors import TaskCancelled, ValidationError

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadPoolExecutor",
    "configure",
    "current_workers",
    "get_executor",
    "resolve_workers",
    "set_task_retries",
    "task_retries",
    "using",
    "worker_stats",
]

#: Set (per thread) while a task is running on a pool worker; nested
#: plans observe it and fall back to inline serial execution so that a
#: task can never deadlock waiting on pool slots its ancestors occupy.
_worker_state = threading.local()

#: Raised process-wide by the process backend's pool initializer: every
#: thread of a worker *process* counts as "in a worker", so nested plans
#: there run inline and never build pools of their own.
_process_worker = False


def in_worker():
    """True when the calling thread is a pool worker running a task."""
    return _process_worker or getattr(_worker_state, "active", False)


def _check_cancel(cancel, done, total):
    """Raise :class:`TaskCancelled` when *cancel* reports True."""
    if cancel is not None and cancel():
        raise TaskCancelled(
            f"plan cancelled after {done} of {total} tasks"
        )


class Executor:
    """Backend contract: run zero-argument callables, keep their order.

    *cancel*, when given, is a zero-argument callable polled between
    tasks; once it reports True the executor raises
    :class:`~repro.errors.TaskCancelled` instead of starting further
    tasks.  Cancellation is cooperative and best-effort — tasks already
    running are never interrupted mid-flight.
    """

    workers = 1
    backend_name = "custom"

    def run(self, callables, cancel=None):
        raise NotImplementedError


class SerialExecutor(Executor):
    """In-order, in-thread execution (the deterministic default)."""

    workers = 1
    backend_name = "serial"

    def run(self, callables, cancel=None):
        if cancel is None:
            return [fn() for fn in callables]
        callables = list(callables)
        results = []
        for fn in callables:
            _check_cancel(cancel, len(results), len(callables))
            results.append(fn())
        return results


class ThreadPoolExecutor(Executor):
    """Persistent thread-pool backend (``workers >= 2``).

    The underlying pool is created lazily on first use and reused across
    plans — pool spin-up is microseconds, but keeping it warm means a
    50-point sweep pays it once, not per batch.  Results come back in
    submission order; the first task exception (by submission order) is
    re-raised after all tasks have settled, so no work is silently
    dropped mid-flight.
    """

    backend_name = "threads"

    def __init__(self, workers):
        workers = int(workers)
        if workers < 2:
            raise ValidationError(
                f"ThreadPoolExecutor needs workers >= 2, got {workers}; "
                "use SerialExecutor for single-threaded execution"
            )
        self.workers = workers
        self._pool = None
        self._pool_lock = threading.Lock()

    def _ensure_pool(self):
        with self._pool_lock:
            if self._pool is None:
                self._pool = _PoolImpl(
                    max_workers=self.workers,
                    thread_name_prefix="repro-engine",
                )
            return self._pool

    @staticmethod
    def _wrap(fn):
        def task():
            _worker_state.active = True
            try:
                return fn()
            finally:
                _worker_state.active = False

        return task

    def run(self, callables, cancel=None):
        callables = list(callables)
        if not callables:
            return []
        if len(callables) == 1 or in_worker():
            # Nested plan on a worker thread (or a degenerate plan):
            # execute inline — waiting on pool slots owned by ancestors
            # would deadlock, and one task gains nothing from dispatch.
            return SerialExecutor().run(callables, cancel=cancel)
        _check_cancel(cancel, 0, len(callables))
        pool = self._ensure_pool()
        futures = [pool.submit(self._wrap(fn)) for fn in callables]
        results = []
        first_error = None
        try:
            for future in futures:
                # Shedding the not-yet-started tail is handled by the
                # BaseException path below; running tasks finish (their
                # memoized results stay valid).
                _check_cancel(cancel, len(results), len(futures))
                try:
                    results.append(future.result())
                except Exception as exc:  # re-raised below, in task order
                    if first_error is None:
                        first_error = exc
                    results.append(None)
        except BaseException:
            # KeyboardInterrupt (or another non-Exception) hit the
            # waiting thread: drop not-yet-started tasks and propagate
            # immediately instead of blocking on the rest of the plan.
            for future in futures:
                future.cancel()
            raise
        if first_error is not None:
            raise first_error
        return results

    def shutdown(self):
        """Tear down the pool (the executor rebuilds it if reused)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


# ---------------------------------------------------------------------------
# global configuration
# ---------------------------------------------------------------------------

_config_lock = threading.Lock()
_serial = SerialExecutor()
_executor = None  # resolved lazily from REPRO_WORKERS on first use
#: How the active backend's worker count was requested — "auto" when
#: resolved from os.cpu_count(), the literal number otherwise; exposed
#: through worker_stats() (sparse_lu_stats-style introspection).
_requested = None


def resolve_workers(workers):
    """Resolve a worker request to a concrete count.

    ``"auto"`` (case-insensitive) resolves to ``max(1, cpu_count − 1)``
    — all cores but one, so the process stays responsive and a
    single-core host degrades to the serial backend.  ``None`` and
    counts ``<= 1`` mean serial; anything else must be a positive
    integer.
    """
    if workers is None:
        return 1
    if isinstance(workers, str):
        text = workers.strip().lower()
        if text == "auto":
            return max(1, (os.cpu_count() or 1) - 1)
        try:
            workers = int(text)
        except ValueError as exc:
            raise ValidationError(
                f"workers must be an integer or 'auto', got {workers!r}"
            ) from exc
    return int(workers)


def _normalize_backend(backend):
    """Canonical backend name (``None`` passes through)."""
    if backend is None:
        return None
    text = str(backend).strip().lower()
    if text == "threads":
        text = "thread"
    if text not in ("serial", "thread", "process"):
        raise ValidationError(
            f"backend must be 'serial', 'thread' or 'process', "
            f"got {backend!r}"
        )
    return text


def _build(workers, backend=None):
    """(executor, requested-label) for one worker/backend request."""
    backend = _normalize_backend(backend)
    if backend in ("thread", "process") and workers is None:
        # An explicit parallel backend without a count means "use the
        # host": same resolution as workers="auto".
        workers = "auto"
    count = resolve_workers(workers)
    label = (
        "auto"
        if isinstance(workers, str) and workers.strip().lower() == "auto"
        else count
    )
    if backend == "serial" or count <= 1:
        return _serial, label
    if backend == "process":
        # Lazy import: process.py imports this module (and plan.py) in
        # turn, so the top level must stay acyclic.
        from .process import ProcessPoolBackend

        return ProcessPoolBackend(count), label
    return ThreadPoolExecutor(count), label


def _from_env():
    raw_backend = os.environ.get("REPRO_BACKEND", "").strip()
    backend = None
    if raw_backend:
        try:
            backend = _normalize_backend(raw_backend)
        except ValidationError as exc:
            raise ValidationError(
                f"REPRO_BACKEND must be 'serial', 'thread' or "
                f"'process', got {raw_backend!r}"
            ) from exc
    raw = os.environ.get("REPRO_WORKERS", "").strip()
    if backend is None and not raw:
        return _serial, None
    try:
        return _build(raw or None, backend)
    except ValidationError as exc:
        raise ValidationError(
            f"REPRO_WORKERS must be an integer or 'auto', got {raw!r}"
        ) from exc


def get_executor():
    """The globally configured backend (serial unless told otherwise)."""
    global _executor, _requested
    with _config_lock:
        if _executor is None:
            _executor, _requested = _from_env()
        return _executor


def _set_executor(executor, requested=None):
    global _executor, _requested
    with _config_lock:
        previous = (_executor, _requested)
        _executor, _requested = executor, requested
    return previous


def configure(workers=None, backend=None):
    """Select the global backend.  Returns the executor.

    ``workers <= 1`` (or None, with no backend named) is serial,
    ``"auto"`` is ``max(1, cpu_count − 1)``.  *backend* picks the pool
    flavour — ``"serial"``, ``"thread"`` or ``"process"`` (default
    thread, matching the pre-process-backend behaviour); naming a
    parallel backend without a count implies ``workers="auto"``.

    Overrides any ``REPRO_BACKEND`` / ``REPRO_WORKERS`` environment
    setting for the rest of the process (the env vars are only defaults
    for the first use).
    """
    executor, requested = _build(workers, backend)
    previous, _ = _set_executor(executor, requested)
    # Unlike `using` (which restores — and then tears down — its scoped
    # pool on exit), configure permanently replaces the backend: reap
    # the displaced pool's workers instead of leaking them.
    _shutdown_displaced(previous, executor)
    return executor


def _shutdown_displaced(previous, current):
    """Tear down a displaced pool-holding backend (duck-typed)."""
    if previous is None or previous is current or previous is _serial:
        return
    shutdown = getattr(previous, "shutdown", None)
    if shutdown is not None:
        shutdown()


def current_workers():
    """Worker count of the active backend (1 for serial)."""
    return get_executor().workers


def worker_stats():
    """Introspection of the resolved backend, ``sparse_lu_stats``-style.

    Always returns ``{"backend", "workers", "requested", "cpu_count",
    "shm_segments", "shm_bytes_mapped"}`` — *requested* is ``"auto"``
    when the count was resolved from the host CPU count (via
    ``configure(workers="auto")`` or ``REPRO_WORKERS=auto``), the
    literal request otherwise (``None`` for the untouched default); the
    ``shm_*`` keys report the parent-side shared-memory registry (zero
    until the process backend ships a payload).  Backends exposing a
    ``stats()`` hook (the process pool: start method, pool liveness,
    tasks executed/inline) contribute those keys too.
    """
    executor = get_executor()
    with _config_lock:
        requested = _requested
    stats = {
        "backend": getattr(
            executor, "backend_name", type(executor).__name__
        ),
        "workers": int(executor.workers),
        "requested": requested,
        "cpu_count": os.cpu_count(),
    }
    extra = getattr(executor, "stats", None)
    if extra is not None:
        stats.update(extra())
    from .shm import registry_stats

    shm = registry_stats()
    stats["shm_segments"] = int(shm["segments"])
    stats["shm_bytes_mapped"] = int(shm["bytes"])
    return stats


# ---------------------------------------------------------------------------
# transient-failure retry policy
# ---------------------------------------------------------------------------

#: Bounded-retry count for transient task failures; resolved lazily from
#: REPRO_TASK_RETRIES (default 0 — retries are strictly opt-in, so the
#: default behaviour is bit-identical to the historical engine).
_task_retries = None


def _resolve_retries(value):
    try:
        count = int(value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(
            f"task retries must be a non-negative integer, got {value!r}"
        ) from exc
    if count < 0:
        raise ValidationError(
            f"task retries must be >= 0, got {count}"
        )
    return count


def task_retries():
    """The configured transient-retry count (``REPRO_TASK_RETRIES``)."""
    global _task_retries
    with _config_lock:
        if _task_retries is None:
            raw = os.environ.get("REPRO_TASK_RETRIES", "").strip()
            if not raw:
                _task_retries = 0
            else:
                try:
                    _task_retries = _resolve_retries(raw)
                except ValidationError as exc:
                    _task_retries = 0
                    raise ValidationError(
                        f"REPRO_TASK_RETRIES must be a non-negative "
                        f"integer, got {raw!r}"
                    ) from exc
        return _task_retries


def set_task_retries(count):
    """Set the transient-retry count; returns the previous value.

    ``None`` reverts to the lazy ``REPRO_TASK_RETRIES`` default.  Only
    *transient* failures (OS errors, memory pressure, injected faults)
    are ever retried — deterministic numerical or validation failures
    fail fast regardless of this setting.
    """
    global _task_retries
    resolved = None if count is None else _resolve_retries(count)
    with _config_lock:
        previous = _task_retries
        _task_retries = resolved
    return previous


class using:
    """Context manager: temporarily switch the global backend.

    ``with engine.using(workers=4): ...`` or
    ``with engine.using(backend="process"): ...`` — used by the parity
    tests and the benchmark harness to compare backends on identical
    workloads.  The scoped pool (thread or process) is torn down on
    exit.
    """

    def __init__(self, workers=None, backend=None):
        self._workers = workers
        self._backend = backend
        self._previous = None

    def __enter__(self):
        target, requested = _build(self._workers, self._backend)
        self._previous = _set_executor(target, requested)
        return target

    def __exit__(self, exc_type, exc, tb):
        current, _ = _set_executor(*self._previous)
        _shutdown_displaced(current, self._previous[0])
        return False
