"""Parallel solve-plan engine — declarative task scheduling.

The paper's eq.-(18) decoupling exists precisely so that the H2 machinery
splits into independent LTI subsystems whose Krylov chains and per-shift
resolvent solves have no data dependencies.  This package turns that
observation into infrastructure: instead of running their embarrassingly
parallel work as inline serial loops, the hot fan-out layers *emit plans*
— flat lists of independent tasks — and hand them to a pluggable
executor.

Architecture
------------
* :class:`~repro.engine.plan.SolveTask` — one independent unit of work
  (a callable plus bound arguments and an optional ``tag`` for callers
  that need to regroup results).
* :class:`~repro.engine.plan.SolvePlan` — an ordered list of tasks.
  ``plan.execute()`` runs every task and returns their results **in
  submission order**, whatever the backend, so callers assemble outputs
  deterministically.
* :class:`~repro.engine.executor.SerialExecutor` — the default backend:
  a plain in-order loop, bit-identical to the historical inline code.
* :class:`~repro.engine.executor.ThreadPoolExecutor` — a persistent
  thread-pool backend.  Threads are the right vehicle here because the
  heavy kernels (LAPACK triangular solves, BLAS GEMMs, SuperLU
  factorizations) release the GIL; the Python-level task bookkeeping is
  a rounding error against the numerical work.
* :class:`~repro.engine.process.ProcessPoolBackend` — a persistent
  process-pool backend for the Python-heavy stages the GIL serializes
  (per-point distortion metrics, H3 assembly).  Tasks opt in by
  carrying a :class:`~repro.engine.process.ProcessSpec` (module-level
  function + codec-serializable payload); large operands ship through
  ref-counted shared-memory segments (:mod:`repro.engine.shm`), workers
  pin their BLAS pools to one thread, and tasks without a spec run
  inline in the parent — every plan stays correct under every backend.

Which layers emit plans
-----------------------
* ``linalg.ResolventFactory.solve_many`` — per-shift batches (frequency
  grids) are chunked across workers.
* ``volterra.AssociatedWorkspace`` consumers: the per-subsystem /
  per-expansion-point Krylov chains of
  ``AssociatedRealization.moment_vectors``, ``DecoupledH2Realization``
  (eq.-18 independent subsystems) and
  ``mor.AssociatedTransformMOR.build_basis``.
* ``volterra.VolterraEvaluator.prime_h2`` — the symmetric-pair H2 grid.
* ``analysis.distortion_sweep``, ``volterra.frequency_sweep`` and
  ``systems.StateSpace.frequency_response`` — whole frequency grids.

Picking a backend
-----------------
The backend is global and serial by default::

    import repro.engine as engine
    engine.configure(workers=4)                      # threads
    engine.configure(workers="auto")                 # max(1, cpu-1) threads
    engine.configure(workers=4, backend="process")   # process pool
    engine.configure(workers=1)                      # back to serial
    with engine.using(workers=4):                    # scoped (tests, benches)
        ...
    with engine.using(backend="process"):            # auto-sized process pool
        ...

or, without touching code, via the environment::

    REPRO_WORKERS=4 python my_analysis.py
    REPRO_WORKERS=auto python my_analysis.py
    REPRO_BACKEND=process REPRO_WORKERS=4 python my_analysis.py

``engine.worker_stats()`` reports the resolved backend (``{"backend",
"workers", "requested", "cpu_count", "shm_*", ...}``) so scripts can log
what ``"auto"`` actually resolved to on the host and attribute work per
backend.

Parallel and serial backends agree to rounding (each task performs the
same floating-point operations on the same data; only the wall-clock
interleaving changes), which the test suite asserts at ``<= 1e-10``.
Nested plans (a task that itself emits a plan) degrade to in-line serial
execution on the worker thread, so composition can never deadlock the
pool.
"""

from ..errors import (  # noqa: F401  (re-export: engine failures)
    TaskCancelled,
    TaskError,
)
from .executor import (  # noqa: F401
    Executor,
    SerialExecutor,
    ThreadPoolExecutor,
    configure,
    current_workers,
    get_executor,
    resolve_workers,
    set_task_retries,
    task_retries,
    using,
    worker_stats,
)
from .plan import SolvePlan, SolveTask, chunk_bounds, parallel_map  # noqa: F401
from .process import (  # noqa: F401
    ProcessPoolBackend,
    ProcessSpec,
    worker_cache,
)
from .shm import SegmentRegistry, registry_stats  # noqa: F401

__all__ = [
    "Executor",
    "ProcessPoolBackend",
    "ProcessSpec",
    "SegmentRegistry",
    "SerialExecutor",
    "TaskCancelled",
    "TaskError",
    "ThreadPoolExecutor",
    "configure",
    "current_workers",
    "get_executor",
    "resolve_workers",
    "set_task_retries",
    "task_retries",
    "registry_stats",
    "using",
    "worker_cache",
    "worker_stats",
    "SolvePlan",
    "SolveTask",
    "chunk_bounds",
    "parallel_map",
]
