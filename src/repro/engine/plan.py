"""Declarative solve plans: independent tasks with explicit inputs.

A :class:`SolvePlan` is the unit of hand-off between the numerical
layers and the executor backends: a layer that used to run an inline
``for`` loop over independent solves instead *adds one task per loop
iteration* (binding every input explicitly — tasks must not depend on
loop variables by closure mutation) and calls :meth:`SolvePlan.execute`.
Results always come back in submission order, so the assembly code after
the plan is identical for every backend.

Failure semantics: a task exception is re-raised as a dynamically
created subclass of both :class:`~repro.errors.TaskError` and the
original exception type, carrying the task's identity (plan label,
submission index, tag, attempt count).  Handlers that catch the
original type across a plan boundary keep working; handlers that only
care *which* task died get the identity without parsing tracebacks.
Transient failures (OS errors, memory pressure, injected faults) are
retried up to the opt-in :func:`~repro.engine.executor.task_retries`
bound before being raised.
"""

from functools import partial

from ..errors import FaultInjected, TaskError
from ..testing.faults import fault_point
from .executor import get_executor, task_retries

__all__ = ["SolveTask", "SolvePlan", "chunk_bounds", "parallel_map"]

#: Failure families eligible for bounded retry: environmental conditions
#: that can clear between attempts.  Deterministic failures (validation,
#: numerical breakdown, structural errors) always fail fast — retrying
#: them re-runs identical floating-point work to the identical end.
_TRANSIENT = (FaultInjected, OSError, MemoryError)

#: original exception type -> TaskError subclass preserving it.
_WRAP_CACHE = {}


def _wrapper_class(base):
    """TaskError subclass that is also a *base* (isinstance-preserving)."""
    cls = _WRAP_CACHE.get(base)
    if cls is None:
        if issubclass(base, TaskError):
            cls = base
        else:
            try:
                cls = type(
                    "Task" + base.__name__,
                    (TaskError, base),
                    {"__doc__": TaskError.__doc__, "__module__": __name__},
                )
            except TypeError:
                # Incompatible C-level layout (rare: e.g. OSError
                # subclasses with fixed slots): fall back to the plain
                # TaskError — the original stays reachable as __cause__.
                cls = TaskError
        _WRAP_CACHE[base] = cls
    return cls


def _task_failure(exc, plan_label, index, tag, attempts):
    """Build the TaskError (subclass) describing a failed task."""
    cls = _wrapper_class(type(exc))
    suffix = f" after {attempts} attempts" if attempts > 1 else ""
    message = (
        f"task {index} of plan {plan_label!r} (tag={tag!r}) "
        f"failed{suffix}: {exc}"
    )
    failure = cls(message)
    failure.plan_label = plan_label
    failure.task_index = index
    failure.task_tag = tag
    failure.attempts = attempts
    return failure


def _make_runner(task, index, plan_label, retries):
    """Zero-arg callable running *task* with fault point, retry and wrap."""

    def run():
        attempts = 0
        while True:
            attempts += 1
            try:
                fault_point("engine.task")
                return task()
            except Exception as exc:
                if attempts <= retries and isinstance(exc, _TRANSIENT):
                    continue
                raise _task_failure(
                    exc, plan_label, index, task.tag, attempts
                ) from exc

    return run


class SolveTask:
    """One independent unit of work: a callable with bound arguments.

    ``tag`` is free-form caller metadata (e.g. ``("H2-chain", s0, col)``)
    used to regroup results after execution; the engine never inspects
    it.

    ``spec`` is an optional :class:`~repro.engine.process.ProcessSpec`
    making the task shippable to the process backend: a module-level
    function reference plus a codec-serializable payload.  Backends that
    cannot use it (serial, threads) ignore it and call the closure; the
    process backend dispatches specced tasks to worker processes and
    runs the rest inline, so a plan is correct on every backend whether
    or not its tasks carry specs.
    """

    __slots__ = ("fn", "args", "kwargs", "tag", "spec")

    def __init__(self, fn, args=(), kwargs=None, tag=None, spec=None):
        self.fn = fn
        self.args = tuple(args)
        self.kwargs = dict(kwargs) if kwargs else None
        self.tag = tag
        self.spec = spec

    def __call__(self):
        if self.kwargs:
            return self.fn(*self.args, **self.kwargs)
        return self.fn(*self.args)

    def __repr__(self):
        name = getattr(self.fn, "__name__", repr(self.fn))
        return f"SolveTask({name}, tag={self.tag!r})"


class SolvePlan:
    """An ordered list of independent :class:`SolveTask` items.

    ``label`` names the emitting site in diagnostics; it carries no
    semantics.
    """

    def __init__(self, label=None):
        self.label = label
        self.tasks = []

    def add(self, fn, *args, tag=None, **kwargs):
        """Append a task calling ``fn(*args, **kwargs)``; returns it."""
        task = SolveTask(fn, args, kwargs, tag=tag)
        self.tasks.append(task)
        return task

    def __len__(self):
        return len(self.tasks)

    def __iter__(self):
        return iter(self.tasks)

    @property
    def tags(self):
        return [task.tag for task in self.tasks]

    def execute(self, executor=None, retries=None, cancel=None):
        """Run every task; results in submission order.

        With no *executor* the globally configured backend is used.
        Empty and single-task plans short-circuit to inline execution on
        any backend.  *retries* bounds re-execution of transiently
        failing tasks (default: the global
        :func:`~repro.engine.executor.task_retries`, itself 0 unless
        ``REPRO_TASK_RETRIES`` opts in); any failure surfaces as a
        :class:`~repro.errors.TaskError` subclass that preserves the
        original exception type and carries the task identity.

        *cancel* — a zero-argument callable polled between tasks — makes
        the plan cooperatively cancellable: once it reports True the
        backend raises :class:`~repro.errors.TaskCancelled` instead of
        starting further tasks (the serving layer's request-timeout
        hook).  Completed tasks keep their results; cancellation is
        best-effort and never interrupts a task mid-flight.  The keyword
        is only forwarded when set, so minimal executors implementing
        the bare ``run(callables)`` contract keep working.
        """
        if not self.tasks:
            return []
        if retries is None:
            retries = task_retries()
        if len(self.tasks) == 1 and cancel is None:
            return [_make_runner(self.tasks[0], 0, self.label, retries)()]
        executor = executor if executor is not None else get_executor()
        run_plan = getattr(executor, "run_plan", None)
        if run_plan is not None:
            # Plan-aware backend (the process pool): hand over the plan
            # itself so it can see per-task specs; ordering, failure and
            # cancellation semantics are the backend's contract.
            return run_plan(self, retries=retries, cancel=cancel)
        runners = [
            _make_runner(task, index, self.label, retries)
            for index, task in enumerate(self.tasks)
        ]
        if cancel is None:
            return executor.run(runners)
        return executor.run(runners, cancel=cancel)

    def __repr__(self):
        return f"SolvePlan({self.label!r}, {len(self.tasks)} tasks)"


def chunk_bounds(count, parts):
    """Split ``range(count)`` into at most *parts* contiguous chunks.

    Returns ``[(lo, hi), ...]`` covering ``0..count`` with sizes differing
    by at most one — the standard block partition for grid batches whose
    per-item cost is uniform.
    """
    count = int(count)
    parts = max(1, min(int(parts), count))
    base, extra = divmod(count, parts)
    bounds = []
    lo = 0
    for idx in range(parts):
        hi = lo + base + (1 if idx < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def parallel_map(fn, items, executor=None, label=None):
    """``[fn(item) for item in items]`` through the engine."""
    plan = SolvePlan(label=label or "parallel_map")
    for item in items:
        plan.tasks.append(SolveTask(partial(fn, item)))
    return plan.execute(executor)
