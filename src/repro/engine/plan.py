"""Declarative solve plans: independent tasks with explicit inputs.

A :class:`SolvePlan` is the unit of hand-off between the numerical
layers and the executor backends: a layer that used to run an inline
``for`` loop over independent solves instead *adds one task per loop
iteration* (binding every input explicitly — tasks must not depend on
loop variables by closure mutation) and calls :meth:`SolvePlan.execute`.
Results always come back in submission order, so the assembly code after
the plan is identical for every backend.
"""

from functools import partial

from .executor import get_executor

__all__ = ["SolveTask", "SolvePlan", "chunk_bounds", "parallel_map"]


class SolveTask:
    """One independent unit of work: a callable with bound arguments.

    ``tag`` is free-form caller metadata (e.g. ``("H2-chain", s0, col)``)
    used to regroup results after execution; the engine never inspects
    it.
    """

    __slots__ = ("fn", "args", "kwargs", "tag")

    def __init__(self, fn, args=(), kwargs=None, tag=None):
        self.fn = fn
        self.args = tuple(args)
        self.kwargs = dict(kwargs) if kwargs else None
        self.tag = tag

    def __call__(self):
        if self.kwargs:
            return self.fn(*self.args, **self.kwargs)
        return self.fn(*self.args)

    def __repr__(self):
        name = getattr(self.fn, "__name__", repr(self.fn))
        return f"SolveTask({name}, tag={self.tag!r})"


class SolvePlan:
    """An ordered list of independent :class:`SolveTask` items.

    ``label`` names the emitting site in diagnostics; it carries no
    semantics.
    """

    def __init__(self, label=None):
        self.label = label
        self.tasks = []

    def add(self, fn, *args, tag=None, **kwargs):
        """Append a task calling ``fn(*args, **kwargs)``; returns it."""
        task = SolveTask(fn, args, kwargs, tag=tag)
        self.tasks.append(task)
        return task

    def __len__(self):
        return len(self.tasks)

    def __iter__(self):
        return iter(self.tasks)

    @property
    def tags(self):
        return [task.tag for task in self.tasks]

    def execute(self, executor=None):
        """Run every task; results in submission order.

        With no *executor* the globally configured backend is used.
        Empty and single-task plans short-circuit to inline execution on
        any backend.
        """
        if not self.tasks:
            return []
        if len(self.tasks) == 1:
            return [self.tasks[0]()]
        executor = executor if executor is not None else get_executor()
        return executor.run(self.tasks)

    def __repr__(self):
        return f"SolvePlan({self.label!r}, {len(self.tasks)} tasks)"


def chunk_bounds(count, parts):
    """Split ``range(count)`` into at most *parts* contiguous chunks.

    Returns ``[(lo, hi), ...]`` covering ``0..count`` with sizes differing
    by at most one — the standard block partition for grid batches whose
    per-item cost is uniform.
    """
    count = int(count)
    parts = max(1, min(int(parts), count))
    base, extra = divmod(count, parts)
    bounds = []
    lo = 0
    for idx in range(parts):
        hi = lo + base + (1 if idx < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def parallel_map(fn, items, executor=None, label=None):
    """``[fn(item) for item in items]`` through the engine."""
    plan = SolvePlan(label=label or "parallel_map")
    for item in items:
        plan.tasks.append(SolveTask(partial(fn, item)))
    return plan.execute(executor)
