"""Process-pool engine backend: true multicore for plan fan-outs.

The thread backend (:class:`~repro.engine.executor.ThreadPoolExecutor`)
only overlaps GIL-releasing kernels; the Python-heavy stages — H3
assembly, Tucker-contraction bookkeeping, per-point metric evaluation —
stay serial under it.  This backend runs tasks in **worker processes**,
so pure-Python work scales with cores too.

Closures don't cross process boundaries (and this library bans pickled
code on principle: payloads must stay data).  A task therefore opts into
process dispatch by carrying a :class:`ProcessSpec`:

* ``fn`` — a ``"module:function"`` reference to a **module-level**
  worker function taking one payload tree and returning one result tree,
* ``payload`` — the tree (or a zero-arg builder) of that task's inputs:
  JSON scalars, ndarrays and CSR matrices, exactly the
  :mod:`repro.serialize` payload universe,
* ``merge`` — an optional parent-side callable applied to the worker's
  result (e.g. scattering a chunk into a caller-owned output array);
  its return value becomes the task's plan result.

Payloads travel pickle-free as in-memory ``.npz`` messages
(:func:`repro.serialize.encode_payload_bytes`); arrays above a size
threshold are swapped for shared-memory descriptors so workers map the
parent's copy instead of receiving bytes (see :mod:`repro.engine.shm`).
Tasks *without* a spec run inline in the parent — bit-identical to the
serial backend — so any plan is always correct under
``REPRO_BACKEND=process`` and layers opt into process dispatch one
emission site at a time.

Worker protocol
---------------
Workers pin their BLAS pools to one thread (``OMP_NUM_THREADS`` /
``MKL_NUM_THREADS`` / ``OPENBLAS_NUM_THREADS``, set at pool start and
re-asserted in each worker's initializer) so ``workers × BLAS-threads``
cannot oversubscribe the host.  Worker exceptions come back as
structured records (type, message, traceback text, transient flag) and
re-raise in the parent as the same
:class:`~repro.errors.TaskError`-subclass wrapping the serial engine
uses, so handlers cannot tell which side of the boundary a task died on.
Transient failures are retried by resubmission under the engine's
retry budget.  The ``engine.task`` fault point runs **inside** the
worker, so the fault harness can kill a pool process mid-plan; the
parent then surfaces the broken pool as a ``TaskError`` and releases
every shared segment the plan acquired.  Nested plans inside a worker
run inline serial (the process-global worker flag feeds
:func:`~repro.engine.executor.in_worker`), so composition can never
deadlock or fork-bomb the pool.
"""

import importlib
import multiprocessing
import os
import threading
import traceback
import uuid
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor as _ProcPoolImpl
from concurrent.futures.process import BrokenProcessPool

import numpy as np
import scipy.sparse as sp

from ..errors import TaskCancelled, ValidationError
from ..serialize import decode_payload_bytes, encode_payload_bytes
from . import shm
from .executor import Executor, SerialExecutor, _check_cancel, in_worker

__all__ = [
    "ProcessPoolBackend",
    "ProcessSpec",
    "process_token",
    "worker_cache",
]


def process_token(obj, attr="_repro_process_token"):
    """Stable per-instance token keying worker-side caches on *obj*.

    Spec emitters stamp the object whose rebuilt form workers memoize
    (a system, a resolvent factory) with a one-time random token; the
    token rides in every payload and keys :func:`worker_cache`, so
    successive plans over the same object hit the same worker-side
    rebuild.  Random rather than ``id()``-derived: recycled ids must
    never alias two different objects onto one cache entry.
    """
    token = getattr(obj, attr, None)
    if token is None:
        token = uuid.uuid4().hex
        try:
            setattr(obj, attr, token)
        except AttributeError:
            pass  # slotted/frozen object: a fresh token per call
    return token

#: BLAS pinning applied at pool start (parent env, inherited by workers)
#: and re-asserted by every worker's initializer.  Existing explicit
#: settings are respected — a user who pinned to 2 stays pinned to 2.
_BLAS_ENV = {
    "OMP_NUM_THREADS": "1",
    "MKL_NUM_THREADS": "1",
    "OPENBLAS_NUM_THREADS": "1",
}

#: Arrays at or above this many bytes ride in shared memory; smaller
#: ones are cheaper inline in the message.
_SHARE_MIN_BYTES_DEFAULT = 16384


def _share_min_bytes():
    raw = os.environ.get("REPRO_SHM_MIN_BYTES", "").strip()
    if not raw:
        return _SHARE_MIN_BYTES_DEFAULT
    try:
        return max(0, int(raw))
    except ValueError as exc:
        raise ValidationError(
            f"REPRO_SHM_MIN_BYTES must be an integer, got {raw!r}"
        ) from exc


def default_start_method():
    """``REPRO_START_METHOD`` or the platform default (fork on Linux)."""
    raw = os.environ.get("REPRO_START_METHOD", "").strip().lower()
    if not raw:
        return multiprocessing.get_start_method(allow_none=False)
    if raw not in multiprocessing.get_all_start_methods():
        raise ValidationError(
            f"REPRO_START_METHOD must be one of "
            f"{multiprocessing.get_all_start_methods()}, got {raw!r}"
        )
    return raw


class ProcessSpec:
    """Process-shippable description of one task (see module docstring)."""

    __slots__ = ("fn", "payload", "merge")

    def __init__(self, fn, payload, merge=None):
        self.fn = str(fn)
        if ":" not in self.fn:
            raise ValidationError(
                f"ProcessSpec fn must be 'module:function', got {fn!r}"
            )
        self.payload = payload
        self.merge = merge

    def build_payload(self):
        payload = self.payload
        return payload() if callable(payload) else payload


# ---------------------------------------------------------------------------
# payload tree <-> shared memory
# ---------------------------------------------------------------------------

_CSR_MARKER = "__shm_csr__"


def _share_tree(node, registry, names, min_bytes):
    """Copy of *node* with large arrays replaced by segment descriptors."""
    if isinstance(node, np.ndarray):
        if node.nbytes >= min_bytes and node.dtype.kind in "biufc":
            descriptor = registry.share(node)
            names.append(descriptor["name"])
            return {shm.SHM_MARKER: descriptor}
        return node
    if sp.issparse(node):
        csr = node.tocsr()
        if csr.data.nbytes >= min_bytes:
            parts = {}
            for key in ("data", "indices", "indptr"):
                descriptor = registry.share(getattr(csr, key))
                names.append(descriptor["name"])
                parts[key] = descriptor
            parts["shape"] = list(csr.shape)
            return {_CSR_MARKER: parts}
        return csr
    if isinstance(node, dict):
        return {
            key: _share_tree(value, registry, names, min_bytes)
            for key, value in node.items()
        }
    if isinstance(node, (list, tuple)):
        return [
            _share_tree(item, registry, names, min_bytes) for item in node
        ]
    return node


def _resolve_shared(node):
    """Worker-side inverse of :func:`_share_tree`: attach descriptors."""
    if isinstance(node, dict):
        if shm.SHM_MARKER in node and len(node) == 1:
            return shm.attach_array(node[shm.SHM_MARKER])
        if _CSR_MARKER in node and len(node) == 1:
            parts = node[_CSR_MARKER]
            return sp.csr_matrix(
                (
                    shm.attach_array(parts["data"]),
                    shm.attach_array(parts["indices"]),
                    shm.attach_array(parts["indptr"]),
                ),
                shape=tuple(parts["shape"]),
            )
        return {key: _resolve_shared(value) for key, value in node.items()}
    if isinstance(node, list):
        return [_resolve_shared(item) for item in node]
    return node


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------


def _worker_init(blas_env):
    """Pool initializer: pin BLAS, raise the process-worker flag."""
    for key, value in blas_env.items():
        os.environ.setdefault(key, value)
    from . import executor

    executor._process_worker = True


def _resolve_fn(ref):
    module_name, _, attr_path = ref.partition(":")
    obj = importlib.import_module(module_name)
    for part in attr_path.split("."):
        obj = getattr(obj, part)
    if not callable(obj):
        raise ValidationError(f"ProcessSpec fn {ref!r} is not callable")
    return obj


def _run_message(blob):
    """Worker entry point: decode, execute, encode — never raises.

    Exceptions become structured error records so the parent can rebuild
    the original type; only a SIGKILL (fault injection, OOM killer) ever
    surfaces as a broken pool instead.
    """
    try:
        from .plan import _TRANSIENT
        from ..testing.faults import fault_point

        message = decode_payload_bytes(blob)
        fn = _resolve_fn(message["fn"])
        payload = _resolve_shared(message["payload"])
        fault_point("engine.task")
        result = fn(payload)
        return encode_payload_bytes({"status": "ok", "result": result})
    except Exception as exc:  # structured transport, re-raised in parent
        record = {
            "module": type(exc).__module__,
            "name": type(exc).__qualname__,
            "message": str(exc),
            "traceback": traceback.format_exc(),
            "transient": isinstance(exc, _TRANSIENT),
        }
        return encode_payload_bytes({"status": "error", "error": record})


#: token -> built object (evaluators, factories) per worker process.
#: Bounded: evicted builders release their work arrays; the attached
#: segments they viewed stay mapped (see repro.engine.shm).
_WORKER_CACHE = OrderedDict()
_WORKER_CACHE_CAP = 4


def worker_cache(token, build):
    """Per-process memo for expensive worker-side state.

    Worker functions rebuild library objects (resolvent factories,
    Volterra evaluators) from payload arrays; keyed on a parent-supplied
    token — stable across the plans of one system — the rebuild happens
    once per worker, not once per task.
    """
    entry = _WORKER_CACHE.get(token)
    if entry is None:
        entry = build()
        _WORKER_CACHE[token] = entry
        if len(_WORKER_CACHE) > _WORKER_CACHE_CAP:
            _WORKER_CACHE.popitem(last=False)
    else:
        _WORKER_CACHE.move_to_end(token)
    return entry


def _probe_worker(payload):
    """Diagnostic worker: reports worker state and runs a nested plan.

    Used by the pool's self-test and the engine test suite to assert the
    worker protocol: the process-worker flag is up, and a nested plan
    degrades to inline serial execution instead of touching any pool.
    """
    from . import executor
    from .plan import SolvePlan

    plan = SolvePlan("process.probe[nested]")
    for k in range(int(payload.get("nested", 3))):
        plan.add(lambda v=k: v * v)
    nested = plan.execute()
    return {
        "pid": os.getpid(),
        "in_worker": bool(executor.in_worker()),
        "blas_threads": os.environ.get("OMP_NUM_THREADS"),
        "nested": nested,
    }


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------


def _rebuild_exception(record):
    """Best-effort reconstruction of a worker exception in the parent."""
    cls = None
    try:
        obj = importlib.import_module(record.get("module", "builtins"))
        for part in record.get("name", "Exception").split("."):
            obj = getattr(obj, part)
        if isinstance(obj, type) and issubclass(obj, BaseException):
            cls = obj
    except Exception:
        cls = None
    message = record.get("message", "")
    exc = None
    if cls is not None:
        try:
            exc = cls(message)
        except Exception:
            exc = None
    if exc is None:
        exc = RuntimeError(
            f"{record.get('name', 'Exception')}: {message}"
        )
    exc.remote_traceback = record.get("traceback")
    return exc


class _Dispatch:
    __slots__ = ("future", "blob", "spec", "task", "attempts")

    def __init__(self, future, blob, spec, task):
        self.future = future
        self.blob = blob
        self.spec = spec
        self.task = task
        self.attempts = 0


class ProcessPoolBackend(Executor):
    """Persistent process-pool backend (``workers >= 2``).

    Like the thread backend, the pool is created lazily and reused
    across plans; unlike it, dispatch requires a
    :class:`ProcessSpec` per task — plain-closure tasks run inline in
    the parent (closures and their captured locks cannot cross the
    process boundary), which keeps every plan correct under this backend
    and lets emission sites opt in one at a time.
    """

    backend_name = "process"

    def __init__(self, workers, start_method=None):
        workers = int(workers)
        if workers < 2:
            raise ValidationError(
                f"ProcessPoolBackend needs workers >= 2, got {workers}; "
                "use SerialExecutor for single-process execution"
            )
        self.workers = workers
        self.start_method = (
            start_method if start_method is not None
            else default_start_method()
        )
        if self.start_method not in multiprocessing.get_all_start_methods():
            raise ValidationError(
                f"start_method must be one of "
                f"{multiprocessing.get_all_start_methods()}, "
                f"got {self.start_method!r}"
            )
        self._pool = None
        self._pool_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self.tasks_executed = 0
        self.tasks_inline = 0

    # -- pool lifecycle -----------------------------------------------------

    def _ensure_pool(self):
        with self._pool_lock:
            if self._pool is None:
                # Pin BLAS in the parent environment *at pool start* so
                # every worker — spawned lazily on first submit —
                # inherits single-threaded kernels before its numpy
                # loads.  Explicit user settings win (setdefault); the
                # parent's own BLAS pools are unaffected (numpy read the
                # env long ago).
                for key, value in _BLAS_ENV.items():
                    os.environ.setdefault(key, value)
                context = multiprocessing.get_context(self.start_method)
                self._pool = _ProcPoolImpl(
                    max_workers=self.workers,
                    mp_context=context,
                    initializer=_worker_init,
                    initargs=(dict(_BLAS_ENV),),
                )
            return self._pool

    def _reset_pool(self):
        """Discard a broken pool; the next plan builds a fresh one."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def shutdown(self):
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def _count(self, attr, delta):
        with self._stats_lock:
            setattr(self, attr, getattr(self, attr) + delta)

    # -- Executor contract --------------------------------------------------

    def run(self, callables, cancel=None):
        """Bare-callable contract: inline serial.

        Plain callables carry no process spec, so there is nothing
        shippable here; plans reach the pool through :meth:`run_plan`.
        """
        callables = list(callables)
        self._count("tasks_inline", len(callables))
        return SerialExecutor().run(callables, cancel=cancel)

    def run_plan(self, plan, retries=0, cancel=None):
        """Execute *plan*: specced tasks on the pool, the rest inline.

        Results in submission order; the first failure (by submission
        order) re-raises after every task settles, mirroring the thread
        backend.  Shared-memory segments acquired for this plan are
        released on every exit path, including cancellation and a
        worker SIGKILL.
        """
        from .plan import _make_runner, _task_failure

        tasks = list(plan.tasks)
        if not tasks:
            return []
        if in_worker():
            runners = [
                _make_runner(task, index, plan.label, retries)
                for index, task in enumerate(tasks)
            ]
            return SerialExecutor().run(runners, cancel=cancel)
        _check_cancel(cancel, 0, len(tasks))
        registry = shm.registry()
        min_bytes = _share_min_bytes()
        results = [None] * len(tasks)
        pending = {}
        acquired = []
        first_error = None
        done = 0
        try:
            specced = [
                (index, task.spec)
                for index, task in enumerate(tasks)
                if getattr(task, "spec", None) is not None
            ]
            if specced:
                pool = self._ensure_pool()
                for index, spec in specced:
                    names = []
                    # Keep the built payload referenced until the plan
                    # holds its segment references: a temporary source
                    # array dying earlier would fire its pin and unlink
                    # the segment before any worker attaches it.
                    payload = spec.build_payload()
                    tree = _share_tree(payload, registry, names, min_bytes)
                    blob = encode_payload_bytes(
                        {"fn": spec.fn, "payload": tree}
                    )
                    registry.acquire(names)
                    del payload
                    acquired.append(names)
                    dispatch = _Dispatch(None, blob, spec, tasks[index])
                    dispatch.future = pool.submit(_run_message, blob)
                    pending[index] = dispatch
            # Unspecced tasks run inline while the pool works; their
            # wrapping (fault point, retries, TaskError identity) is the
            # serial engine's own.
            for index, task in enumerate(tasks):
                if index in pending:
                    continue
                _check_cancel(cancel, done, len(tasks))
                runner = _make_runner(task, index, plan.label, retries)
                try:
                    results[index] = runner()
                except Exception as exc:
                    if first_error is None:
                        first_error = exc
                self._count("tasks_inline", 1)
                done += 1
            for index in sorted(pending):
                dispatch = pending[index]
                while True:
                    _check_cancel(cancel, done, len(tasks))
                    try:
                        blob = dispatch.future.result()
                    except BrokenProcessPool as exc:
                        # A worker died hard (SIGKILL fault injection,
                        # OOM).  Every remaining future fails the same
                        # way; surface the first as a TaskError and
                        # rebuild the pool lazily on next use.
                        self._reset_pool()
                        if first_error is None:
                            first_error = _task_failure(
                                exc, plan.label, index,
                                dispatch.task.tag, dispatch.attempts + 1,
                            )
                            first_error.__cause__ = exc
                        break
                    except TaskCancelled:
                        raise
                    except Exception as exc:
                        if first_error is None:
                            first_error = _task_failure(
                                exc, plan.label, index,
                                dispatch.task.tag, dispatch.attempts + 1,
                            )
                            first_error.__cause__ = exc
                        break
                    dispatch.attempts += 1
                    message = decode_payload_bytes(blob)
                    if message["status"] == "ok":
                        merge = dispatch.spec.merge
                        result = message["result"]
                        results[index] = (
                            merge(result) if merge is not None else result
                        )
                        self._count("tasks_executed", 1)
                        break
                    record = message["error"]
                    if (
                        record.get("transient")
                        and dispatch.attempts <= retries
                    ):
                        dispatch.future = self._ensure_pool().submit(
                            _run_message, dispatch.blob
                        )
                        continue
                    if first_error is None:
                        remote = _rebuild_exception(record)
                        first_error = _task_failure(
                            remote, plan.label, index,
                            dispatch.task.tag, dispatch.attempts,
                        )
                        first_error.__cause__ = remote
                    break
                done += 1
        except BaseException:
            # Cancellation or KeyboardInterrupt: shed the not-yet-
            # started tail and propagate; running workers finish their
            # current message harmlessly.
            for dispatch in pending.values():
                dispatch.future.cancel()
            raise
        finally:
            for names in acquired:
                registry.release(names)
        if first_error is not None:
            raise first_error
        return results

    # -- introspection ------------------------------------------------------

    def stats(self):
        with self._stats_lock:
            executed = self.tasks_executed
            inline = self.tasks_inline
        with self._pool_lock:
            started = self._pool is not None
        return {
            "start_method": self.start_method,
            "pool_started": started,
            "tasks_executed": int(executed),
            "tasks_inline": int(inline),
        }
