"""Ref-counted shared-memory segments for process-backend payloads.

The process backend ships task payloads to workers pickle-free (the
:mod:`repro.serialize` codec), but copying a circuit-sized ``G1``/``G2``
or a Π left factor into every task message would erase the win of
parallel dispatch.  Instead, large operands travel by *name*: the parent
copies each distinct array **once** into a
:class:`multiprocessing.shared_memory.SharedMemory` segment and the
payload carries only a small descriptor (segment name, dtype, shape);
workers map the segment read-only instead of receiving bytes.

Lifecycle
---------
The parent-side :class:`SegmentRegistry` deduplicates by source-array
identity: sharing the same ndarray twice (two plans over one system)
reuses the existing segment.  Every in-flight plan holds one reference
per segment it shipped; a *pin* additionally keeps the segment alive
while the source array itself is alive (``weakref.finalize``), so
repeated plans over a long-lived system — the serving daemon's steady
state — map the segment once per worker and never re-copy.  A segment is
unlinked when its last plan reference is released *and* its pin is dead,
or when the idle-segment cache overflows its byte budget (LRU), or at
interpreter exit.  The registry is fork-safe: a forked child inherits
the parent's registry object but every destructive operation no-ops
unless ``os.getpid()`` matches the creating process, so pool workers can
never unlink the parent's segments on exit.

Worker side, :func:`attach_array` maps a descriptor back to a read-only
ndarray view.  Attached segments are cached per process for its
lifetime (mappings stay valid on POSIX even after the parent unlinks the
name) and are attached *without* resource-tracker registration: on
CPython < 3.13 attaching would register the segment with the worker's
tracker, whose cleanup on worker exit would unlink (spawn) or
unregister (fork) memory the parent still owns.
"""

import os
import threading
import weakref
from collections import OrderedDict
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from ..errors import ValidationError

__all__ = [
    "SegmentRegistry",
    "attach_array",
    "registry",
    "registry_stats",
]

#: Descriptor marker key inside task payload trees (see engine.process).
SHM_MARKER = "__shm__"

#: Idle segments (pin alive, zero plan references) kept mapped for reuse
#: before LRU eviction starts, in bytes.  Env-tunable because a serving
#: daemon with many resident systems may want a bigger warm set.
_IDLE_BYTES_DEFAULT = 256 * 1024 * 1024


def _idle_budget():
    raw = os.environ.get("REPRO_SHM_IDLE_BYTES", "").strip()
    if not raw:
        return _IDLE_BYTES_DEFAULT
    try:
        return max(0, int(raw))
    except ValueError as exc:
        raise ValidationError(
            f"REPRO_SHM_IDLE_BYTES must be an integer, got {raw!r}"
        ) from exc


def _attach_untracked(name):
    """Attach *name* without registering it with the resource tracker.

    On CPython < 3.13 attaching registers the segment with the calling
    process's tracker.  For a *spawn* worker (own tracker) that would
    unlink parent-owned memory when the worker exits; for a *fork*
    worker (tracker shared with the parent) a compensating unregister
    would instead erase the parent's registration.  Not registering at
    all is correct on both: ownership stays with the parent, which
    unlinks explicitly (release / atexit).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # track= arrived in 3.13
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class _Segment:
    __slots__ = ("name", "shm", "nbytes", "refs", "pinned", "finalizer")

    def __init__(self, name, shm, nbytes):
        self.name = name
        self.shm = shm
        self.nbytes = int(nbytes)
        self.refs = 0
        self.pinned = True
        self.finalizer = None


class SegmentRegistry:
    """Parent-side segment table: share, reference-count, unlink."""

    def __init__(self):
        self._lock = threading.Lock()
        self._owner_pid = os.getpid()
        # id(array) -> segment name (valid while the pin is alive).
        self._by_source = {}
        self._segments = OrderedDict()  # name -> _Segment (LRU order)
        self._counter = 0
        self.total_bytes_shared = 0
        self.segments_created = 0

    # -- internal -----------------------------------------------------------

    def _owned(self):
        return os.getpid() == self._owner_pid

    def _next_name(self):
        self._counter += 1
        return f"repro-shm-{self._owner_pid}-{self._counter}"

    def _unlink(self, segment):
        try:
            segment.shm.close()
        except OSError:
            pass
        try:
            segment.shm.unlink()
        except (OSError, FileNotFoundError):
            pass

    def _drop_pin(self, source_id, name):
        """weakref.finalize callback: the source array died."""
        if not self._owned():
            return
        evict = None
        with self._lock:
            if self._by_source.get(source_id) == name:
                del self._by_source[source_id]
            segment = self._segments.get(name)
            if segment is not None:
                segment.pinned = False
                if segment.refs == 0:
                    evict = self._segments.pop(name)
        if evict is not None:
            self._unlink(evict)

    def _evict_idle_locked(self):
        """LRU-evict idle (pinned, unreferenced) segments over budget."""
        budget = _idle_budget()
        idle = [
            s for s in self._segments.values() if s.refs == 0
        ]
        idle_bytes = sum(s.nbytes for s in idle)
        evicted = []
        for segment in idle:
            if idle_bytes <= budget:
                break
            self._segments.pop(segment.name, None)
            if segment.finalizer is not None:
                segment.finalizer.detach()
            for sid, name in list(self._by_source.items()):
                if name == segment.name:
                    del self._by_source[sid]
            idle_bytes -= segment.nbytes
            evicted.append(segment)
        return evicted

    # -- public -------------------------------------------------------------

    def share(self, array):
        """Copy *array* into a segment (or reuse) and return a descriptor.

        The descriptor — ``{"name", "dtype", "shape"}`` — is pure JSON
        and round-trips through the payload codec untouched.  The
        returned segment holds **no** plan reference yet; callers bundle
        the names they used and :meth:`acquire` them for the plan's
        lifetime.
        """
        if not self._owned():
            raise ValidationError(
                "SegmentRegistry.share called from a worker process"
            )
        source = np.asarray(array)
        # Dedupe and pin on the *caller's* array: a contiguous copy made
        # here would die the moment this call returns, firing the pin
        # and unlinking the segment before any worker attaches it.
        contiguous = (
            source
            if source.flags.c_contiguous
            else np.ascontiguousarray(source)
        )
        source_id = id(source)
        with self._lock:
            name = self._by_source.get(source_id)
            if name is not None and name in self._segments:
                self._segments.move_to_end(name)
                return self._descriptor(name, source)
            name = self._next_name()
        nbytes = max(1, contiguous.nbytes)
        # Distinctive names (pid + counter) make leaked segments
        # attributable from /dev/shm and give worker-side caches a
        # collision-free key.
        shm = shared_memory.SharedMemory(
            create=True, size=nbytes, name=name
        )
        view = np.ndarray(
            contiguous.shape, dtype=contiguous.dtype, buffer=shm.buf
        )
        view[...] = contiguous
        segment = _Segment(shm.name, shm, nbytes)
        finalizer = weakref.finalize(
            source, self._drop_pin, source_id, shm.name
        )
        finalizer.atexit = False  # shutdown() handles interpreter exit
        segment.finalizer = finalizer
        evicted = []
        with self._lock:
            self._by_source[source_id] = shm.name
            self._segments[shm.name] = segment
            self.total_bytes_shared += nbytes
            self.segments_created += 1
            evicted = self._evict_idle_locked()
        for old in evicted:
            self._unlink(old)
        return self._descriptor(shm.name, source)

    @staticmethod
    def _descriptor(name, array):
        return {
            "name": name,
            "dtype": str(array.dtype),
            "shape": list(array.shape),
        }

    def acquire(self, names):
        """Add one plan reference to every segment in *names*."""
        with self._lock:
            for name in names:
                segment = self._segments.get(name)
                if segment is not None:
                    segment.refs += 1

    def release(self, names):
        """Drop one plan reference; unlink segments that lost their pin."""
        if not self._owned():
            return
        evicted = []
        with self._lock:
            for name in names:
                segment = self._segments.get(name)
                if segment is None:
                    continue
                segment.refs = max(0, segment.refs - 1)
                if segment.refs == 0 and not segment.pinned:
                    evicted.append(self._segments.pop(name))
            evicted.extend(self._evict_idle_locked())
        for segment in evicted:
            self._unlink(segment)

    def shutdown(self):
        """Unlink every live segment (interpreter exit / tests)."""
        if not self._owned():
            return
        with self._lock:
            segments = list(self._segments.values())
            self._segments.clear()
            self._by_source.clear()
        for segment in segments:
            if segment.finalizer is not None:
                segment.finalizer.detach()
            self._unlink(segment)

    def stats(self):
        with self._lock:
            live = list(self._segments.values())
            return {
                "segments": len(live),
                "bytes": int(sum(s.nbytes for s in live)),
                "total_bytes_shared": int(self.total_bytes_shared),
                "segments_created": int(self.segments_created),
            }


# ---------------------------------------------------------------------------
# process-global registry (parent side)
# ---------------------------------------------------------------------------

_registry = None
_registry_lock = threading.Lock()


def registry():
    """The process-wide :class:`SegmentRegistry` (created on first use)."""
    global _registry
    with _registry_lock:
        if _registry is None or not _registry._owned():
            # A forked child must never mutate the parent's table; give
            # it (lazily) a registry of its own.
            _registry = SegmentRegistry()
            import atexit

            atexit.register(_registry.shutdown)
        return _registry


def registry_stats():
    """Stats of the global registry without forcing its creation."""
    with _registry_lock:
        if _registry is None or not _registry._owned():
            return {
                "segments": 0,
                "bytes": 0,
                "total_bytes_shared": 0,
                "segments_created": 0,
            }
        reg = _registry
    return reg.stats()


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------

#: name -> (SharedMemory, ndarray).  Never evicted: mappings must stay
#: valid for as long as worker-cached builders (evaluators, resolvent
#: factories) hold views into them, and the set of distinct segments a
#: worker sees is bounded by what the parent shares.
_attached = {}
_attached_lock = threading.Lock()


def attach_array(descriptor):
    """Map a :meth:`SegmentRegistry.share` descriptor to a read-only view."""
    name = descriptor["name"]
    dtype = np.dtype(descriptor["dtype"])
    shape = tuple(descriptor["shape"])
    with _attached_lock:
        cached = _attached.get(name)
        if cached is None:
            shm = _attach_untracked(name)
            base = np.ndarray(
                (shm.size,), dtype=np.uint8, buffer=shm.buf
            )
            cached = (shm, base)
            _attached[name] = cached
    shm, base = cached
    count = int(np.prod(shape, dtype=np.int64)) if shape else 1
    view = (
        base[: count * dtype.itemsize]
        .view(dtype)
        .reshape(shape)
    )
    view.flags.writeable = False
    return view
