"""Circuit substrate: devices, netlists, MNA assembly and the paper's
benchmark circuit generators."""

from .devices import (
    Capacitor,
    CurrentSource,
    ExponentialDiode,
    Inductor,
    PolynomialConductance,
    Resistor,
)
from .examples import (
    nonlinear_transmission_line,
    quadratic_rc_ladder,
    quadratic_rc_ladder_netlist,
    rf_receiver_chain,
    varistor_surge_protector,
)
from .mna import assemble
from .netlist import Netlist

__all__ = [
    "Capacitor",
    "CurrentSource",
    "ExponentialDiode",
    "Inductor",
    "PolynomialConductance",
    "Resistor",
    "nonlinear_transmission_line",
    "quadratic_rc_ladder",
    "quadratic_rc_ladder_netlist",
    "rf_receiver_chain",
    "varistor_surge_protector",
    "assemble",
    "Netlist",
]
