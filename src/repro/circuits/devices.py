"""Two-terminal circuit device descriptions.

Devices connect ``node_pos`` to ``node_neg`` (0 is ground).  Sign
convention: positive device current flows from ``node_pos`` to
``node_neg`` through the device, so it leaves the positive node's KCL.
"""

from dataclasses import dataclass, field

from ..errors import ValidationError

__all__ = [
    "Resistor",
    "Capacitor",
    "Inductor",
    "CurrentSource",
    "PolynomialConductance",
    "ExponentialDiode",
]


def _check_nodes(node_pos, node_neg):
    for node in (node_pos, node_neg):
        if not isinstance(node, int) or node < 0:
            raise ValidationError(
                f"nodes must be non-negative integers, got {node!r}"
            )
    if node_pos == node_neg:
        raise ValidationError("device terminals must differ")


@dataclass(frozen=True)
class Resistor:
    """Linear resistor ``i = (v_pos − v_neg) / resistance``."""

    node_pos: int
    node_neg: int
    resistance: float

    def __post_init__(self):
        _check_nodes(self.node_pos, self.node_neg)
        if self.resistance <= 0:
            raise ValidationError("resistance must be positive")


@dataclass(frozen=True)
class Capacitor:
    """Linear capacitor ``i = capacitance · d(v_pos − v_neg)/dt``."""

    node_pos: int
    node_neg: int
    capacitance: float

    def __post_init__(self):
        _check_nodes(self.node_pos, self.node_neg)
        if self.capacitance <= 0:
            raise ValidationError("capacitance must be positive")


@dataclass(frozen=True)
class Inductor:
    """Linear inductor; adds a branch-current state.

    Branch equation ``L di/dt = v_pos − v_neg``; the current ``i`` flows
    from ``node_pos`` to ``node_neg``.
    """

    node_pos: int
    node_neg: int
    inductance: float

    def __post_init__(self):
        _check_nodes(self.node_pos, self.node_neg)
        if self.inductance <= 0:
            raise ValidationError("inductance must be positive")


@dataclass(frozen=True)
class CurrentSource:
    """Independent current source driven by input channel ``input_index``.

    Injects ``gain · u_k(t)`` *into* ``node_pos`` (and out of
    ``node_neg``).  Voltage sources are modeled by their Thevenin
    equivalent (source resistor + current source), which keeps the mass
    matrix regular — see :func:`repro.circuits.examples`.
    """

    node_pos: int
    node_neg: int
    input_index: int = 0
    gain: float = 1.0

    def __post_init__(self):
        _check_nodes(self.node_pos, self.node_neg)
        if self.input_index < 0:
            raise ValidationError("input_index must be >= 0")


@dataclass(frozen=True)
class PolynomialConductance:
    """Polynomial voltage-controlled current
    ``i(v) = g1 v + g2 v² + g3 v³`` with ``v = v_pos − v_neg``.

    The quadratic/cubic coefficients stamp directly into the system's
    ``G2``/``G3`` Kronecker coefficient matrices — no lifting needed.
    """

    node_pos: int
    node_neg: int
    g1: float = 0.0
    g2: float = 0.0
    g3: float = 0.0

    def __post_init__(self):
        _check_nodes(self.node_pos, self.node_neg)
        if self.g1 == 0.0 and self.g2 == 0.0 and self.g3 == 0.0:
            raise ValidationError(
                "polynomial conductance needs at least one nonzero "
                "coefficient"
            )


@dataclass(frozen=True)
class ExponentialDiode:
    """Diode ``i = i_s (exp(kappa (v_pos − v_neg)) − 1)``.

    The paper's transmission line uses ``i_s = 1``, ``kappa = 40``.
    Exponential devices force the compiled system through the exact
    quadratic-linearization of :mod:`repro.systems.exponential`.
    """

    node_pos: int
    node_neg: int
    i_s: float = 1.0
    kappa: float = 40.0

    def __post_init__(self):
        _check_nodes(self.node_pos, self.node_neg)
        if self.i_s <= 0:
            raise ValidationError("saturation current must be positive")
        if self.kappa == 0:
            raise ValidationError("kappa must be nonzero")
