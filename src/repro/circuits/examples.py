"""Parameterized generators for the paper's benchmark circuits.

These rebuild the four experimental testbenches of §3 (see DESIGN.md §4
for the documented substitutions):

* :func:`nonlinear_transmission_line` — the diode RC line of §3.1/§3.2.
  With a (Thevenin) voltage source and a diode at the input node, the
  lifted QLDAE carries a ``D1`` term (§3.1, Fig. 2); with a current
  source into a diode-free input node, ``D1 = 0`` exactly (§3.2, Fig. 3).
* :func:`quadratic_rc_ladder` — a directly-quadratic QLDAE (no lifting).
* :func:`rf_receiver_chain` — the §3.3 MISO receiver: signal input plus
  an interferer coupled mid-chain, quadratic stage nonlinearities.
* :func:`varistor_surge_protector` — the §3.4 ZnO varistor circuit: an
  RLC surge path with cubic varistor clamps (a CubicODE).
"""

import numpy as np

from .._validation import check_positive_int
from ..errors import ValidationError
from .netlist import Netlist

__all__ = [
    "nonlinear_transmission_line",
    "quadratic_rc_ladder",
    "quadratic_rc_ladder_netlist",
    "rf_receiver_chain",
    "varistor_surge_protector",
]


def nonlinear_transmission_line(
    n_nodes=100,
    source="voltage",
    diode_at_input=True,
    diode_start=1,
    r=1.0,
    c=1.0,
    i_s=1.0,
    kappa=40.0,
    output_node=1,
):
    """The paper's nonlinear transmission line (Figs. 2-3).

    ``n_nodes`` RC sections; unit resistors between neighbours and from
    node 1 to ground, unit capacitors at every node, and diodes
    ``i = i_s (e^{kappa v} − 1)`` in parallel with the chain resistors
    starting at ``diode_start``; optionally one more diode from node 1 to
    ground.

    Parameters
    ----------
    source : {"voltage", "current"}
        ``"voltage"`` models the paper's §3.1 drive as a Thevenin pair
        (source resistor ``r`` + scaled current source): the lifted QLDAE
        then has ``D1 ≠ 0``.  ``"current"`` injects directly into node 1.
    diode_at_input : bool
        Extra diode from node 1 to ground.  Set False (with
        ``diode_start=2``) so no exponential touches the input node —
        the lifted QLDAE then has ``D1 = 0`` exactly (§3.2).
    output_node : int
        Observed node voltage (default: the input node, the quantity the
        paper plots).

    Returns
    -------
    ExponentialODE — call ``.quadratic_linearize()`` for the QLDAE whose
    dimension is ``n_nodes + #diodes``.
    """
    n_nodes = check_positive_int(n_nodes, "n_nodes")
    if n_nodes < 3:
        raise ValidationError("need at least 3 nodes")
    if source not in ("voltage", "current"):
        raise ValidationError("source must be 'voltage' or 'current'")
    if diode_start < 1:
        raise ValidationError("diode_start must be >= 1")
    net = Netlist(name=f"ntl-{n_nodes}-{source}")
    net.add_resistor(1, 0, r)
    for k in range(1, n_nodes):
        net.add_resistor(k, k + 1, r)
    for k in range(1, n_nodes + 1):
        net.add_capacitor(k, 0, c)
    if diode_at_input:
        net.add_diode(1, 0, i_s=i_s, kappa=kappa)
    for k in range(diode_start, n_nodes):
        net.add_diode(k, k + 1, i_s=i_s, kappa=kappa)
    if source == "voltage":
        net.add_voltage_source_thevenin(1, r)
    else:
        net.add_current_source(1, 0)
    net.set_output_nodes([output_node])
    return net.compile()


def quadratic_rc_ladder_netlist(
    n_nodes=70,
    r=1.0,
    c=1.0,
    g_leak=0.1,
    g_quad=0.5,
    output_node=None,
    quad_nodes=None,
):
    """The :func:`quadratic_rc_ladder` circuit as an uncompiled netlist.

    Exposed separately so the sparse-path benchmark and tests can compile
    the *same* stamps with both ``sparse=True`` and ``sparse=False``.

    ``quad_nodes`` restricts the quadratic conductances to the first that
    many nodes (default: every node).  A ladder with a handful of
    nonlinear cells has a ``G2`` of bounded tensor rank independent of
    ``n`` — the regime where the circuit-scale low-rank Π / lifted-chain
    machinery of :mod:`repro.linalg.sylvester` applies.  Combined with a
    strong leak (``g_leak`` of order 1) and weak coupling (``r`` of
    order 10) the state matrix's spectral spread stays below 2×, which
    keeps the eq.-(18) Π equation well-separated
    (``λ_i − λ_j − λ_k`` bounded away from zero) — the same conditioning
    the dense decoupled path implicitly relies on.
    """
    n_nodes = check_positive_int(n_nodes, "n_nodes")
    if n_nodes < 2:
        raise ValidationError("need at least 2 nodes")
    if quad_nodes is None:
        quad_nodes = n_nodes
    quad_nodes = check_positive_int(quad_nodes, "quad_nodes")
    quad_nodes = min(quad_nodes, n_nodes)
    net = Netlist(name=f"quad-ladder-{n_nodes}")
    for k in range(1, n_nodes):
        net.add_resistor(k, k + 1, r)
    net.add_resistor(1, 0, r)
    for k in range(1, n_nodes + 1):
        net.add_capacitor(k, 0, c)
        if k <= quad_nodes:
            net.add_conductance(k, 0, g1=g_leak, g2=g_quad)
        elif g_leak:
            net.add_resistor(k, 0, 1.0 / g_leak)
    net.add_current_source(1, 0)
    net.set_output_nodes([output_node or 1])
    return net


def quadratic_rc_ladder(
    n_nodes=70,
    r=1.0,
    c=1.0,
    g_leak=0.1,
    g_quad=0.5,
    output_node=None,
):
    """RC ladder with quadratic shunt conductances — a native QLDAE.

    Every node has a capacitor and a weakly nonlinear conductance
    ``i = g_leak v + g_quad v²`` to ground; a current source drives node
    1.  No lifting, no ``D1`` — the simplest nontrivial QLDAE and the
    default system for tests and the quickstart example.

    The default observable is the *input* node: far-end nodes of a long
    leaky RC ladder sit at sub-nanovolt levels (pure diffusion) and make
    meaningless references for relative error.
    """
    return quadratic_rc_ladder_netlist(
        n_nodes,
        r=r,
        c=c,
        g_leak=g_leak,
        g_quad=g_quad,
        output_node=output_node,
    ).compile()


def rf_receiver_chain(
    n_nodes=173,
    path_nodes=12,
    interferer_gain=0.5,
    r_path=0.5,
    r_branch=2.0,
    c=1.0,
    c_branch=0.2,
    g_leak=0.05,
    lna_gain2=0.4,
    mixer_gain2=0.6,
    pa_gain2=0.2,
):
    """The §3.3 MISO receiver: signal ``u1`` plus coupled interferer ``u2``.

    Topology: a short signal path of ``path_nodes`` RC sections carrying
    the three stage nonlinearities (LNA / mixer / PA shunt conductances
    with different quadratic coefficients), with RC side-branches
    ("bias/matching networks") hanging off every path node to bring the
    total state count to exactly ``n_nodes``.  The short path keeps the
    output observable at signal frequencies — a 173-node *series* chain
    would be a pure diffusion line with ~1e-6 through-gain, which no
    moment-matched ROM (and no physical receiver) resembles.

    The interferer couples into the input of the PA stage (paper Fig. 4a:
    noise ``u2`` coupled from the environment).  The compiled system is a
    two-input QLDAE with ``D1 = 0`` and 173 states by default.
    """
    n_nodes = check_positive_int(n_nodes, "n_nodes")
    path_nodes = check_positive_int(path_nodes, "path_nodes")
    if path_nodes < 3:
        raise ValidationError("need at least 3 path nodes")
    if n_nodes < path_nodes:
        raise ValidationError("n_nodes must be >= path_nodes")
    third = max(path_nodes // 3, 1)
    net = Netlist(name=f"rf-receiver-{n_nodes}")
    net.add_resistor(1, 0, r_path)
    for k in range(1, path_nodes):
        net.add_resistor(k, k + 1, r_path)
    for k in range(1, path_nodes + 1):
        net.add_capacitor(k, 0, c)
        if k <= third:
            g2 = lna_gain2
        elif k <= 2 * third:
            g2 = mixer_gain2
        else:
            g2 = pa_gain2
        net.add_conductance(k, 0, g1=g_leak, g2=g2)
    # Side branches: distribute the remaining states as RC chains hanging
    # off the path nodes (round-robin), like bias tees / matching stubs.
    n_branch = n_nodes - path_nodes
    branch_tip = {k: k for k in range(1, path_nodes + 1)}
    next_node = path_nodes + 1
    for idx in range(n_branch):
        anchor = 1 + (idx % path_nodes)
        tip = branch_tip[anchor]
        net.add_resistor(tip, next_node, r_branch)
        net.add_capacitor(next_node, 0, c_branch)
        branch_tip[anchor] = next_node
        next_node += 1
    pa_input = 2 * third + 1
    net.add_current_source(1, 0, input_index=0)
    net.add_current_source(
        pa_input, 0, input_index=1, gain=interferer_gain
    )
    net.set_output_nodes([path_nodes])
    return net.compile()


def varistor_surge_protector(
    n_states=102,
    path_nodes=4,
    inductance=0.1,
    capacitance=1.0,
    damping_resistance=0.5,
    g_leak=0.1,
    varistor_g1=1e-3,
    varistor_g3=1e-4,
    branch_resistance=5.0,
    branch_capacitance=0.3,
    source_resistance=50.0,
    n_sections=None,
    output_node=None,
):
    """The §3.4 ZnO varistor surge-protection circuit (a CubicODE).

    Mirrors the paper's Fig. 5(a): a *short* L-R surge path
    (L1/R1 ... node V1 ... L2/R2 ... node V2) with cubic varistor clamps
    ``i = g1 v + g3 v³`` at the protected nodes and an inductive consumer
    load, plus RC branch networks (distributed consumer/parasitic loads)
    hanging off every path node to bring the state count up to
    ``n_states`` — 102 by default, matching the paper.  A long LC
    *ladder* would be a delay line whose transfer function no low-order
    moment-matched ROM can represent; the paper's order-8 ROM implies
    intrinsically low-order dominant dynamics like these.

    The surge (paper: US = 9.8 kV) enters through a Thevenin source
    resistor Ri.  Damping resistors sit across the path inductors (the
    R1/R2 of the IEEE varistor model).

    ``n_sections`` is accepted as a legacy alias: the historical
    ladder-style constructor used section counts; ``n_sections=51``
    maps to the default 102 states.
    """
    if n_sections is not None:
        n_states = 2 * n_sections
    n_states = check_positive_int(n_states, "n_states")
    path_nodes = check_positive_int(path_nodes, "path_nodes")
    if path_nodes < 2:
        raise ValidationError("need at least 2 path nodes")
    # States: path nodes + branch nodes + (path_nodes-1) chain inductors
    # + 1 load inductor.
    n_branch = n_states - 2 * path_nodes
    if n_branch < 0:
        raise ValidationError(
            f"n_states={n_states} too small for {path_nodes} path nodes"
        )
    net = Netlist(name=f"varistor-{n_states}")
    for k in range(1, path_nodes):
        net.add_inductor(k, k + 1, inductance)
        # R ∥ L damping (the paper's R1/R2 series losses).
        net.add_resistor(k, k + 1, damping_resistance)
    for k in range(1, path_nodes + 1):
        net.add_capacitor(k, 0, capacitance)
        net.add_resistor(k, 0, 1.0 / g_leak)
    # Varistor clamps at the protected (downstream) half of the path.
    for k in range(max(path_nodes // 2 + 1, 2), path_nodes + 1):
        net.add_conductance(k, 0, g1=varistor_g1, g3=varistor_g3)
    # Distributed consumer/parasitic RC branches (round-robin).
    branch_tip = {k: k for k in range(1, path_nodes + 1)}
    next_node = path_nodes + 1
    for idx in range(n_branch):
        anchor = 1 + (idx % path_nodes)
        tip = branch_tip[anchor]
        net.add_resistor(tip, next_node, branch_resistance)
        net.add_capacitor(next_node, 0, branch_capacitance)
        branch_tip[anchor] = next_node
        next_node += 1
    # Inductive consumer load hanging off the protected node.
    net.add_inductor(path_nodes, 0, 10.0 * inductance)
    net.add_voltage_source_thevenin(1, source_resistance)
    net.set_output_nodes([output_node or path_nodes])
    return net.compile()
