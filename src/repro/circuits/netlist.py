"""Netlist container: a typed list of devices plus output selection."""

import dataclasses

import numpy as np

from ..errors import ValidationError
from .devices import (
    Capacitor,
    CurrentSource,
    ExponentialDiode,
    Inductor,
    PolynomialConductance,
    Resistor,
)

__all__ = ["Netlist"]

#: JSON device-type tags ↔ device classes (the spec format of
#: ``Netlist.to_dict``/``from_dict`` and the ``python -m repro`` CLI).
_DEVICE_TYPES = {
    "resistor": Resistor,
    "capacitor": Capacitor,
    "inductor": Inductor,
    "current_source": CurrentSource,
    "conductance": PolynomialConductance,
    "diode": ExponentialDiode,
}
_DEVICE_TAGS = {cls: tag for tag, cls in _DEVICE_TYPES.items()}


class Netlist:
    """A circuit under construction.

    Nodes are positive integers (0 is ground) and may be used before
    being "declared"; the node count is the largest index seen.  Use the
    ``add_*`` helpers, pick output nodes with :meth:`set_output_nodes`,
    then :meth:`compile` (from :mod:`repro.circuits.mna`) to obtain a
    system object.
    """

    def __init__(self, name=""):
        self.name = str(name)
        self.devices = []
        self.parameters = ()
        self._n_nodes = 0
        self._n_inputs = 0
        self._output_nodes = None

    # -- construction helpers ---------------------------------------------------

    def _register(self, device):
        self._n_nodes = max(self._n_nodes, device.node_pos, device.node_neg)
        self.devices.append(device)
        return device

    def add_resistor(self, node_pos, node_neg, resistance):
        return self._register(Resistor(node_pos, node_neg, resistance))

    def add_capacitor(self, node_pos, node_neg, capacitance):
        return self._register(Capacitor(node_pos, node_neg, capacitance))

    def add_inductor(self, node_pos, node_neg, inductance):
        return self._register(Inductor(node_pos, node_neg, inductance))

    def add_current_source(self, node_pos, node_neg, input_index=0, gain=1.0):
        device = CurrentSource(node_pos, node_neg, input_index, gain)
        self._n_inputs = max(self._n_inputs, input_index + 1)
        return self._register(device)

    def add_conductance(self, node_pos, node_neg, g1=0.0, g2=0.0, g3=0.0):
        return self._register(
            PolynomialConductance(node_pos, node_neg, g1=g1, g2=g2, g3=g3)
        )

    def add_diode(self, node_pos, node_neg, i_s=1.0, kappa=40.0):
        return self._register(
            ExponentialDiode(node_pos, node_neg, i_s=i_s, kappa=kappa)
        )

    def add_voltage_source_thevenin(
        self, node, source_resistance, input_index=0
    ):
        """Voltage source + series resistor, as its Norton equivalent.

        Stamps a resistor ``R_s`` from *node* to ground and a current
        source ``u / R_s`` into *node*.  This is how the paper-style
        "voltage source injected into the circuit" is modeled while
        keeping the mass matrix regular.
        """
        if source_resistance <= 0:
            raise ValidationError("source resistance must be positive")
        self.add_resistor(node, 0, source_resistance)
        return self.add_current_source(
            node, 0, input_index=input_index, gain=1.0 / source_resistance
        )

    # -- parameters ------------------------------------------------------------

    def with_params(self, parameters):
        """Annotate the netlist with named device parameters.

        Each entry is a :class:`repro.params.Parameter` (or its dict
        form): a name bound to a numeric field of one or more existing
        devices, with a nominal value and optional corner range /
        Monte-Carlo sigma.  Bindings are validated immediately —
        out-of-range device indices, unknown fields, duplicate names,
        or topology fields all raise :class:`~repro.errors.
        ValidationError`.  Returns ``self`` so annotation chains onto
        construction; concrete instances come from
        :func:`repro.params.materialize`, :class:`repro.params.
        ParameterGrid`, or :class:`repro.params.MonteCarloSampler`.
        """
        from ..params import check_bindings

        self.parameters = check_bindings(self, parameters)
        return self

    # -- outputs ---------------------------------------------------------------

    def set_output_nodes(self, nodes):
        """Observe the voltages of the given nodes (1-based, no ground)."""
        nodes = [int(n) for n in np.atleast_1d(nodes)]
        for node in nodes:
            if node <= 0:
                raise ValidationError(
                    "output nodes must be positive (ground is not a state)"
                )
        self._output_nodes = nodes

    # -- introspection -----------------------------------------------------------

    @property
    def n_nodes(self):
        return self._n_nodes

    @property
    def n_inputs(self):
        return max(self._n_inputs, 1)

    @property
    def output_nodes(self):
        return self._output_nodes

    def count(self, device_type):
        return sum(
            1 for dev in self.devices if isinstance(dev, device_type)
        )

    def __repr__(self):
        return (
            f"Netlist(name={self.name!r}, nodes={self.n_nodes}, "
            f"devices={len(self.devices)})"
        )

    # -- serialization -----------------------------------------------------------

    def to_dict(self):
        """JSON-able spec: name, typed device list, output nodes.

        The exact format the ``python -m repro`` CLI consumes — every
        device becomes ``{"type": <tag>, **parameters}`` with the tags
        of ``_DEVICE_TYPES`` (``resistor``, ``capacitor``, ``inductor``,
        ``current_source``, ``conductance``, ``diode``).
        """
        devices = []
        for device in self.devices:
            tag = _DEVICE_TAGS.get(type(device))
            if tag is None:
                raise ValidationError(
                    f"device type {type(device).__name__} has no JSON tag"
                )
            devices.append({"type": tag, **dataclasses.asdict(device)})
        data = {
            "name": self.name,
            "devices": devices,
            "output_nodes": (
                None
                if self._output_nodes is None
                else list(self._output_nodes)
            ),
        }
        if self.parameters:
            # Emitted only when present so unannotated specs (and their
            # digests) are byte-identical to the pre-parameter format.
            data["parameters"] = [p.to_dict() for p in self.parameters]
        return data

    @classmethod
    def from_dict(cls, data):
        """Rebuild a netlist from a :meth:`to_dict`-shaped spec.

        Every device is validated through its dataclass constructor, so
        a malformed spec fails with a :class:`~repro.errors.
        ValidationError` naming the offending device rather than
        compiling a wrong circuit.
        """
        if not isinstance(data, dict):
            raise ValidationError(
                f"netlist spec must be a dict, got {type(data).__name__}"
            )
        net = cls(name=data.get("name", ""))
        for idx, spec in enumerate(data.get("devices", [])):
            if not isinstance(spec, dict):
                raise ValidationError(
                    f"devices[{idx}] must be a dict, got "
                    f"{type(spec).__name__}"
                )
            spec = dict(spec)
            kind = spec.pop("type", None)
            device_cls = _DEVICE_TYPES.get(kind)
            if device_cls is None:
                raise ValidationError(
                    f"devices[{idx}] has unknown type {kind!r}; expected "
                    f"one of {sorted(_DEVICE_TYPES)}"
                )
            try:
                device = device_cls(**spec)
            except TypeError as exc:
                raise ValidationError(
                    f"devices[{idx}] ({kind}): bad parameters ({exc})"
                ) from exc
            if isinstance(device, CurrentSource):
                net._n_inputs = max(net._n_inputs, device.input_index + 1)
            net._register(device)
        if data.get("output_nodes") is not None:
            net.set_output_nodes(data["output_nodes"])
        if data.get("parameters"):
            net.with_params(data["parameters"])
        return net

    def compile(self, sparse=None):
        """Assemble the MNA system (delegates to
        :func:`repro.circuits.mna.assemble`).

        ``sparse`` forwards to :func:`~repro.circuits.mna.assemble`:
        ``True``/``False`` force CSR/dense stamps, ``None`` (default)
        picks CSR at circuit scale (``n >= 256``) and dense below.
        """
        from .mna import assemble

        return assemble(self, sparse=sparse)
