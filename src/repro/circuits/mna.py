"""Modified nodal analysis: netlist → polynomial/exponential system.

State vector layout: node voltages ``v_1 .. v_N`` followed by one branch
current per inductor.  The assembled equations are

    mass · x' = G1 x + G2 (x⊗x) + G3 (x⊗x⊗x) + Σ exp-terms + B u

with ``mass = diag(C-stamps, L-values)``.  Every node must carry
capacitance (add a parasitic if needed) so the mass matrix stays regular
— circuits violating this raise with a pointer to
:mod:`repro.systems.descriptor`.

The compiled class depends on the devices present:

* any :class:`ExponentialDiode` → :class:`repro.systems.ExponentialODE`
  (call ``.quadratic_linearize()`` for the QLDAE),
* cubic terms only → :class:`repro.systems.CubicODE`,
* otherwise → :class:`repro.systems.QLDAE`.

Stamps are accumulated as COO entry lists and materialized once at the
end — either into CSR ``g1``/``mass`` (the sparse fast path, default for
``n ≥ 256`` states) or into dense ndarrays (default below that, where
the dense Schur machinery has less overhead).  Sparse-compiled circuits
run the *entire* associated-transform stack matrix-free — transient,
distortion sweeps, H1 chains, and (via the factored-Π decoupled
strategy and compressed lifted H3 vectors) full ``(q1, q2, q3)`` NMOR —
so there is no upper state count beyond memory for the CSR data.  Pass
``assemble(netlist, sparse=True/False)`` to force either form; the two
compile to numerically identical systems.  Exponential-diode netlists
always compile dense (the diode Jacobian is a dense rank-one update per
term; lift with ``quadratic_linearize()`` and rebuild sparse if needed).
"""

import numpy as np
import scipy.sparse as sp

from ..errors import SystemStructureError
from ..systems.exponential import ExponentialODE, ExpTerm
from ..systems.polynomial import CubicODE, QLDAE
from .devices import (
    Capacitor,
    CurrentSource,
    ExponentialDiode,
    Inductor,
    PolynomialConductance,
    Resistor,
)

__all__ = ["assemble", "structural_digest"]

#: Auto mode (``sparse=None``) stamps CSR matrices at and above this
#: state count; below it the dense Schur machinery's lower constant
#: factors win.  (Sparse compilation is no longer feature-limited: the
#: lifted H2/H3 NMOR machinery runs matrix-free on CSR systems.)
_SPARSE_THRESHOLD = 256


class _Stamper:
    """Accumulates MNA stamps for one netlist as COO entry lists."""

    def __init__(self, netlist):
        self.netlist = netlist
        self.n_nodes = netlist.n_nodes
        inductors = [d for d in netlist.devices if isinstance(d, Inductor)]
        self.inductors = inductors
        self.n = self.n_nodes + len(inductors)
        self.mass_entries = []  # (row, col, value) over n columns
        self.g1_entries = []
        self.b = np.zeros((self.n, netlist.n_inputs))
        self.g2_entries = []  # (row, col, value) over n² columns
        self.g3_entries = []
        self.exp_terms = []

    # node index -> state index (ground collapses to None)
    def _state(self, node):
        return None if node == 0 else node - 1

    def _voltage_form(self, device):
        """Sparse coefficient vector of v = v_pos − v_neg."""
        coeffs = {}
        pos = self._state(device.node_pos)
        neg = self._state(device.node_neg)
        if pos is not None:
            coeffs[pos] = coeffs.get(pos, 0.0) + 1.0
        if neg is not None:
            coeffs[neg] = coeffs.get(neg, 0.0) - 1.0
        return coeffs

    def _kcl_rows(self, device):
        """(row, sign) pairs: current leaves node_pos, enters node_neg."""
        rows = []
        pos = self._state(device.node_pos)
        neg = self._state(device.node_neg)
        if pos is not None:
            rows.append((pos, -1.0))  # mass v' = −(current out)
        if neg is not None:
            rows.append((neg, +1.0))
        return rows

    # -- stamps ------------------------------------------------------------------

    def stamp(self, device):
        if isinstance(device, Resistor):
            self._stamp_conductance_linear(device, 1.0 / device.resistance)
        elif isinstance(device, Capacitor):
            self._stamp_capacitor(device)
        elif isinstance(device, Inductor):
            pass  # handled jointly in _stamp_inductors
        elif isinstance(device, CurrentSource):
            self._stamp_current_source(device)
        elif isinstance(device, PolynomialConductance):
            if device.g1:
                self._stamp_conductance_linear(device, device.g1)
            if device.g2:
                self._stamp_poly(device, device.g2, order=2)
            if device.g3:
                self._stamp_poly(device, device.g3, order=3)
        elif isinstance(device, ExponentialDiode):
            self._stamp_diode(device)
        else:
            raise SystemStructureError(
                f"unknown device type {type(device).__name__}"
            )

    def _stamp_conductance_linear(self, device, conductance):
        volt = self._voltage_form(device)
        for row, sign in self._kcl_rows(device):
            for col, coeff in volt.items():
                self.g1_entries.append(
                    (row, col, sign * conductance * coeff)
                )

    def _stamp_capacitor(self, device):
        volt = self._voltage_form(device)
        pos = self._state(device.node_pos)
        neg = self._state(device.node_neg)
        for row_state, row_sign in ((pos, 1.0), (neg, -1.0)):
            if row_state is None:
                continue
            for col, coeff in volt.items():
                self.mass_entries.append(
                    (row_state, col, row_sign * device.capacitance * coeff)
                )

    def _stamp_current_source(self, device):
        pos = self._state(device.node_pos)
        neg = self._state(device.node_neg)
        if pos is not None:
            self.b[pos, device.input_index] += device.gain
        if neg is not None:
            self.b[neg, device.input_index] -= device.gain

    def _stamp_poly(self, device, coeff, order):
        volt = self._voltage_form(device)
        items = list(volt.items())
        entries = self.g2_entries if order == 2 else self.g3_entries
        n = self.n
        for row, sign in self._kcl_rows(device):
            if order == 2:
                for i, ci in items:
                    for j, cj in items:
                        entries.append((row, i * n + j, sign * coeff * ci * cj))
            else:
                for i, ci in items:
                    for j, cj in items:
                        for k, ck in items:
                            entries.append(
                                (
                                    row,
                                    (i * n + j) * n + k,
                                    sign * coeff * ci * cj * ck,
                                )
                            )

    def _stamp_diode(self, device):
        volt = self._voltage_form(device)
        exponent = np.zeros(self.n)
        for col, coeff in volt.items():
            exponent[col] = device.kappa * coeff
        coefficient = np.zeros(self.n)
        for row, sign in self._kcl_rows(device):
            coefficient[row] += sign * device.i_s
        self.exp_terms.append(ExpTerm(coefficient, exponent))

    def _stamp_inductors(self):
        for idx, device in enumerate(self.inductors):
            state = self.n_nodes + idx
            self.mass_entries.append((state, state, device.inductance))
            volt = self._voltage_form(device)
            # Branch: L di/dt = v_pos − v_neg.
            for col, coeff in volt.items():
                self.g1_entries.append((state, col, coeff))
            # KCL: current i flows pos -> neg.
            pos = self._state(device.node_pos)
            neg = self._state(device.node_neg)
            if pos is not None:
                self.g1_entries.append((pos, state, -1.0))
            if neg is not None:
                self.g1_entries.append((neg, state, +1.0))


def assemble(netlist, sparse=None):
    """Compile *netlist* into a system object (see module docstring).

    Parameters
    ----------
    netlist : Netlist
    sparse : bool, optional
        ``True`` emits CSR ``g1``/``mass`` (the circuit-scale fast path),
        ``False`` dense ndarrays.  The default ``None`` picks CSR at
        ``n >= 256`` states and dense below; exponential-diode netlists
        always compile dense (see module docstring).
    """
    if netlist.n_nodes == 0:
        raise SystemStructureError("netlist has no nodes")
    stamper = _Stamper(netlist)
    for device in netlist.devices:
        stamper.stamp(device)
    stamper._stamp_inductors()

    n = stamper.n
    if sparse is None:
        sparse = n >= _SPARSE_THRESHOLD and not stamper.exp_terms
    if sparse and stamper.exp_terms:
        raise SystemStructureError(
            "sparse assembly is not supported for exponential-diode "
            "netlists (the diode Jacobian is dense); compile dense and "
            "lift with quadratic_linearize()"
        )

    def build_square(entries):
        rows, cols, vals = (
            zip(*entries) if entries else ((), (), ())
        )
        coo = sp.coo_matrix(
            (np.asarray(vals, dtype=float), (rows, cols)), shape=(n, n)
        )
        return coo.tocsr() if sparse else coo.toarray()

    g1 = build_square(stamper.g1_entries)
    mass = build_square(stamper.mass_entries)

    # Every state needs mass (a capacitor on each node, L on each branch).
    diag = np.abs(mass.diagonal())
    if np.any(diag == 0.0):
        missing = np.nonzero(diag == 0.0)[0]
        raise SystemStructureError(
            f"states {missing.tolist()} carry no mass (node without "
            "capacitance); add a parasitic capacitor or use "
            "repro.systems.descriptor for the singular pencil"
        )

    output = None
    if netlist.output_nodes is not None:
        output = np.zeros((len(netlist.output_nodes), n))
        for row, node in enumerate(netlist.output_nodes):
            output[row, node - 1] = 1.0

    # Unit-capacitor circuits have an identity mass; drop it so the
    # simulators skip the mass solve entirely.  Both branches apply the
    # np.allclose(mass, eye) tolerance (atol=1e-8 plus rtol=1e-5 on the
    # diagonal) so sparse and dense assembly of one netlist agree.
    if sparse:
        gap = (mass - sp.identity(n, format="csr")).tocoo()
        tol = 1e-8 + 1e-5 * (gap.row == gap.col)
        if gap.nnz == 0 or np.all(np.abs(gap.data) <= tol):
            mass = None
    elif np.allclose(mass, np.eye(n)):
        mass = None

    def build_wide(entries, width):
        if not entries:
            return None
        rows, cols, vals = zip(*entries)
        return sp.csr_matrix(
            (vals, (rows, cols)), shape=(n, width)
        )

    g2 = build_wide(stamper.g2_entries, n * n)
    g3 = build_wide(stamper.g3_entries, n * n * n)

    name = netlist.name
    if stamper.exp_terms:
        if g2 is not None or g3 is not None:
            raise SystemStructureError(
                "mixing exponential diodes with polynomial conductances "
                "in one netlist is not supported; lift the polynomial "
                "terms manually"
            )
        return ExponentialODE(
            g1,
            stamper.b,
            stamper.exp_terms,
            mass=mass,
            output=output,
            name=name,
        )
    if g3 is not None and g2 is None:
        return CubicODE(
            g1, stamper.b, g3=g3, mass=mass, output=output, name=name
        )
    if g3 is None:
        return QLDAE(
            g1, stamper.b, g2=g2, mass=mass, output=output, name=name
        )
    from ..systems.polynomial import PolynomialODE

    return PolynomialODE(
        g1,
        stamper.b,
        g2=g2,
        g3=g3,
        mass=mass,
        output=output,
        name=name,
    )


def structural_digest(system):
    """SHA-256 of a compiled system's *structure* (never its values).

    Hashes, per matrix field (``g1``, ``b``, ``g2``, ``g3``, ``mass``,
    ``output``): presence, shape, and the stamp positions — CSR
    ``indptr``/``indices`` for sparse storage, the boolean nonzero mask
    for dense.  Two corners of a parameter sweep that differ only in
    device *values* therefore share one digest, which is what makes
    cross-corner reuse (shared symbolic sparse-LU analysis, warm-started
    Krylov bases, ROM interpolation) structurally sound.  A parameter
    that adds/removes a stamp — or drives the mass matrix exactly onto
    the identity, which assembly drops — changes the digest, and the
    parametric machinery falls back to cold reductions for that corner.
    """
    import hashlib

    digest = hashlib.sha256()
    for field in ("g1", "b", "g2", "g3", "mass", "output"):
        mat = getattr(system, field, None)
        digest.update(field.encode())
        if mat is None:
            digest.update(b"none")
            continue
        if sp.issparse(mat):
            csr = mat.tocsr()
            digest.update(b"sparse")
            digest.update(repr(csr.shape).encode())
            digest.update(np.ascontiguousarray(csr.indptr).tobytes())
            digest.update(np.ascontiguousarray(csr.indices).tobytes())
        else:
            arr = np.asarray(mat)
            digest.update(b"dense")
            digest.update(repr(arr.shape).encode())
            digest.update(np.packbits(arr != 0).tobytes())
    return digest.hexdigest()
