"""Modified nodal analysis: netlist → polynomial/exponential system.

State vector layout: node voltages ``v_1 .. v_N`` followed by one branch
current per inductor.  The assembled equations are

    mass · x' = G1 x + G2 (x⊗x) + G3 (x⊗x⊗x) + Σ exp-terms + B u

with ``mass = diag(C-stamps, L-values)``.  Every node must carry
capacitance (add a parasitic if needed) so the mass matrix stays regular
— circuits violating this raise with a pointer to
:mod:`repro.systems.descriptor`.

The compiled class depends on the devices present:

* any :class:`ExponentialDiode` → :class:`repro.systems.ExponentialODE`
  (call ``.quadratic_linearize()`` for the QLDAE),
* cubic terms only → :class:`repro.systems.CubicODE`,
* otherwise → :class:`repro.systems.QLDAE`.
"""

import numpy as np
import scipy.sparse as sp

from ..errors import SystemStructureError
from ..systems.exponential import ExponentialODE, ExpTerm
from ..systems.polynomial import CubicODE, QLDAE
from .devices import (
    Capacitor,
    CurrentSource,
    ExponentialDiode,
    Inductor,
    PolynomialConductance,
    Resistor,
)

__all__ = ["assemble"]


class _Stamper:
    """Accumulates MNA stamps for one netlist."""

    def __init__(self, netlist):
        self.netlist = netlist
        self.n_nodes = netlist.n_nodes
        inductors = [d for d in netlist.devices if isinstance(d, Inductor)]
        self.inductors = inductors
        self.n = self.n_nodes + len(inductors)
        self.mass = np.zeros((self.n, self.n))
        self.g1 = np.zeros((self.n, self.n))
        self.b = np.zeros((self.n, netlist.n_inputs))
        self.g2_entries = []  # (row, col, value) over n² columns
        self.g3_entries = []
        self.exp_terms = []

    # node index -> state index (ground collapses to None)
    def _state(self, node):
        return None if node == 0 else node - 1

    def _voltage_form(self, device):
        """Sparse coefficient vector of v = v_pos − v_neg."""
        coeffs = {}
        pos = self._state(device.node_pos)
        neg = self._state(device.node_neg)
        if pos is not None:
            coeffs[pos] = coeffs.get(pos, 0.0) + 1.0
        if neg is not None:
            coeffs[neg] = coeffs.get(neg, 0.0) - 1.0
        return coeffs

    def _kcl_rows(self, device):
        """(row, sign) pairs: current leaves node_pos, enters node_neg."""
        rows = []
        pos = self._state(device.node_pos)
        neg = self._state(device.node_neg)
        if pos is not None:
            rows.append((pos, -1.0))  # mass v' = −(current out)
        if neg is not None:
            rows.append((neg, +1.0))
        return rows

    # -- stamps ------------------------------------------------------------------

    def stamp(self, device):
        if isinstance(device, Resistor):
            self._stamp_conductance_linear(device, 1.0 / device.resistance)
        elif isinstance(device, Capacitor):
            self._stamp_capacitor(device)
        elif isinstance(device, Inductor):
            pass  # handled jointly in _stamp_inductors
        elif isinstance(device, CurrentSource):
            self._stamp_current_source(device)
        elif isinstance(device, PolynomialConductance):
            if device.g1:
                self._stamp_conductance_linear(device, device.g1)
            if device.g2:
                self._stamp_poly(device, device.g2, order=2)
            if device.g3:
                self._stamp_poly(device, device.g3, order=3)
        elif isinstance(device, ExponentialDiode):
            self._stamp_diode(device)
        else:
            raise SystemStructureError(
                f"unknown device type {type(device).__name__}"
            )

    def _stamp_conductance_linear(self, device, conductance):
        volt = self._voltage_form(device)
        for row, sign in self._kcl_rows(device):
            for col, coeff in volt.items():
                self.g1[row, col] += sign * conductance * coeff

    def _stamp_capacitor(self, device):
        volt = self._voltage_form(device)
        pos = self._state(device.node_pos)
        neg = self._state(device.node_neg)
        for row_state, row_sign in ((pos, 1.0), (neg, -1.0)):
            if row_state is None:
                continue
            for col, coeff in volt.items():
                self.mass[row_state, col] += (
                    row_sign * device.capacitance * coeff
                )

    def _stamp_current_source(self, device):
        pos = self._state(device.node_pos)
        neg = self._state(device.node_neg)
        if pos is not None:
            self.b[pos, device.input_index] += device.gain
        if neg is not None:
            self.b[neg, device.input_index] -= device.gain

    def _stamp_poly(self, device, coeff, order):
        volt = self._voltage_form(device)
        items = list(volt.items())
        entries = self.g2_entries if order == 2 else self.g3_entries
        n = self.n
        for row, sign in self._kcl_rows(device):
            if order == 2:
                for i, ci in items:
                    for j, cj in items:
                        entries.append((row, i * n + j, sign * coeff * ci * cj))
            else:
                for i, ci in items:
                    for j, cj in items:
                        for k, ck in items:
                            entries.append(
                                (
                                    row,
                                    (i * n + j) * n + k,
                                    sign * coeff * ci * cj * ck,
                                )
                            )

    def _stamp_diode(self, device):
        volt = self._voltage_form(device)
        exponent = np.zeros(self.n)
        for col, coeff in volt.items():
            exponent[col] = device.kappa * coeff
        coefficient = np.zeros(self.n)
        for row, sign in self._kcl_rows(device):
            coefficient[row] += sign * device.i_s
        self.exp_terms.append(ExpTerm(coefficient, exponent))

    def _stamp_inductors(self):
        for idx, device in enumerate(self.inductors):
            state = self.n_nodes + idx
            self.mass[state, state] = device.inductance
            volt = self._voltage_form(device)
            # Branch: L di/dt = v_pos − v_neg.
            for col, coeff in volt.items():
                self.g1[state, col] += coeff
            # KCL: current i flows pos -> neg.
            pos = self._state(device.node_pos)
            neg = self._state(device.node_neg)
            if pos is not None:
                self.g1[pos, state] += -1.0
            if neg is not None:
                self.g1[neg, state] += +1.0


def assemble(netlist):
    """Compile *netlist* into a system object (see module docstring)."""
    if netlist.n_nodes == 0:
        raise SystemStructureError("netlist has no nodes")
    stamper = _Stamper(netlist)
    for device in netlist.devices:
        stamper.stamp(device)
    stamper._stamp_inductors()

    # Every state needs mass (a capacitor on each node, L on each branch).
    diag = np.abs(np.diag(stamper.mass))
    if np.any(diag == 0.0):
        missing = np.nonzero(diag == 0.0)[0]
        raise SystemStructureError(
            f"states {missing.tolist()} carry no mass (node without "
            "capacitance); add a parasitic capacitor or use "
            "repro.systems.descriptor for the singular pencil"
        )

    n = stamper.n
    output = None
    if netlist.output_nodes is not None:
        output = np.zeros((len(netlist.output_nodes), n))
        for row, node in enumerate(netlist.output_nodes):
            output[row, node - 1] = 1.0

    mass = stamper.mass
    if np.allclose(mass, np.eye(n)):
        mass = None

    def build_sparse(entries, width):
        if not entries:
            return None
        rows, cols, vals = zip(*entries)
        return sp.csr_matrix(
            (vals, (rows, cols)), shape=(n, width)
        )

    g2 = build_sparse(stamper.g2_entries, n * n)
    g3 = build_sparse(stamper.g3_entries, n * n * n)

    name = netlist.name
    if stamper.exp_terms:
        if g2 is not None or g3 is not None:
            raise SystemStructureError(
                "mixing exponential diodes with polynomial conductances "
                "in one netlist is not supported; lift the polynomial "
                "terms manually"
            )
        return ExponentialODE(
            stamper.g1,
            stamper.b,
            stamper.exp_terms,
            mass=mass,
            output=output,
            name=name,
        )
    if g3 is not None and g2 is None:
        return CubicODE(
            stamper.g1, stamper.b, g3=g3, mass=mass, output=output, name=name
        )
    if g3 is None:
        return QLDAE(
            stamper.g1, stamper.b, g2=g2, mass=mass, output=output, name=name
        )
    from ..systems.polynomial import PolynomialODE

    return PolynomialODE(
        stamper.g1,
        stamper.b,
        g2=g2,
        g3=g3,
        mass=mass,
        output=output,
        name=name,
    )
