"""One-call pipeline: netlist/system → MNA → MOR → Volterra queries.

Before this module, every consumer of the library (examples, benches,
ad-hoc scripts) hand-wired the same five layers: compile the netlist,
lift exponential systems, build the reducer, run the reduction, then
drive ``distortion_sweep`` / ``simulate`` on full model and ROM.  The
pipeline makes that orchestration declarative —

>>> from repro.pipeline import run_pipeline
>>> result = run_pipeline(netlist, reduce=(6, 3, 0),
...                       sweep={"start": 0.02, "stop": 0.5, "points": 25})
>>> result.report()["sweep"]["hd2"]

— and routes it through the persistence layer: pass ``store=`` (a
:class:`~repro.store.ModelStore` or a directory path) and repeated runs
on an already-seen (system, reducer) pair serve the reduction from disk
instead of recomputing it.  This is the layer the CLI
(``python -m repro``) and any future multi-process serving front-end
call into.

Job objects (:class:`ReductionJob`, :class:`SweepJob`,
:class:`TransientJob`) are plain declarative configs: each coerces from
a dict (the JSON spec format), validates eagerly, and — for sources —
maps spec tags onto :mod:`repro.simulation.sources` factories.
"""

import contextlib
import time

import numpy as np

from . import memory
from ._validation import check_positive_int
from .analysis.distortion import distortion_sweep
from .analysis.metrics import max_relative_error
from .checkpoint import JobState, checkpoint_for
from .circuits.netlist import Netlist
from .errors import ValidationError
from .mor.assoc import AssociatedTransformMOR
from .serialize import json_safe
from .simulation import sources as _sources
from .simulation.transient import simulate
from .store import ModelStore, ReductionArtifact, fingerprint_system
from .systems.exponential import ExponentialODE
from .systems.polynomial import PolynomialODE

__all__ = [
    "ReductionJob",
    "SweepJob",
    "TransientJob",
    "PipelineResult",
    "run_pipeline",
    "system_from_spec",
]

#: Spec tags accepted in ``TransientJob.source`` dicts.
_SOURCE_FACTORIES = {
    "zero": _sources.zero_source,
    "step": _sources.step_source,
    "pulse": _sources.pulse_source,
    "sine": _sources.sine_source,
    "cosine": _sources.cosine_source,
    "multitone": _sources.multitone_source,
    "exponential_pulse": _sources.exponential_pulse_source,
    "surge": _sources.surge_source,
}

#: Named circuit generators a spec may reference instead of a device
#: list (each returns a Netlist or a compiled system).
_GENERATORS = {}


def _load_generators():
    if not _GENERATORS:
        from .circuits import examples as _examples

        for name in _examples.__all__:
            _GENERATORS[name] = getattr(_examples, name)
    return _GENERATORS


class ReductionJob:
    """Declarative reducer configuration (associated-transform NMOR).

    Parameters mirror :class:`~repro.mor.AssociatedTransformMOR`; the
    job exists so pipelines and JSON specs can describe a reduction
    without constructing the reducer eagerly.
    """

    def __init__(self, orders=(6, 3, 0), expansion_points=(0.0,),
                 strategy="coupled", deduplicate=True, tol=1e-10):
        self.orders = tuple(int(q) for q in orders)
        self.expansion_points = tuple(
            complex(p) if isinstance(p, complex) else float(p)
            for p in expansion_points
        )
        self.strategy = str(strategy)
        self.deduplicate = bool(deduplicate)
        self.tol = float(tol)
        self.reducer()  # validate eagerly: a bad job fails at build time

    @classmethod
    def coerce(cls, value):
        """Accept a job, a dict of its fields, or a bare orders tuple."""
        if value is None or isinstance(value, cls):
            return value
        if isinstance(value, dict):
            unknown = set(value) - {
                "orders", "expansion_points", "strategy", "deduplicate",
                "tol",
            }
            if unknown:
                raise ValidationError(
                    f"unknown ReductionJob fields: {sorted(unknown)}"
                )
            return cls(**value)
        if isinstance(value, (list, tuple)):
            return cls(orders=value)
        raise ValidationError(
            "reduce must be a ReductionJob, a dict, or an orders tuple; "
            f"got {type(value).__name__}"
        )

    def reducer(self):
        """The configured :class:`~repro.mor.AssociatedTransformMOR`."""
        return AssociatedTransformMOR(
            orders=self.orders,
            expansion_points=self.expansion_points,
            strategy=self.strategy,
            deduplicate=self.deduplicate,
            tol=self.tol,
        )

    def to_dict(self):
        return {
            "orders": list(self.orders),
            "expansion_points": json_safe(self.expansion_points),
            "strategy": self.strategy,
            "deduplicate": self.deduplicate,
            "tol": self.tol,
        }


class SweepJob:
    """Declarative distortion sweep: an ω-grid plus a tone amplitude.

    ``compare_full`` additionally runs the sweep on the full model and
    records the worst relative HD2/HD3 deviation of the ROM — the
    frequency-domain accuracy check the paper's experiments use.
    """

    def __init__(self, start=None, stop=None, points=25, omegas=None,
                 amplitude=1.0, compare_full=False):
        if omegas is not None:
            self._omegas = np.asarray(omegas, dtype=float).reshape(-1)
            if self._omegas.size == 0:
                raise ValidationError("sweep omegas must be non-empty")
        else:
            if start is None or stop is None:
                raise ValidationError(
                    "sweep needs either explicit omegas or start+stop"
                )
            points = check_positive_int(points, "points")
            self._omegas = np.linspace(float(start), float(stop), points)
        if np.any(self._omegas <= 0.0):
            raise ValidationError("sweep frequencies must be positive")
        self.amplitude = float(amplitude)
        self.compare_full = bool(compare_full)

    @classmethod
    def coerce(cls, value):
        if value is None or isinstance(value, cls):
            return value
        if isinstance(value, dict):
            unknown = set(value) - {
                "start", "stop", "points", "omegas", "amplitude",
                "compare_full",
            }
            if unknown:
                raise ValidationError(
                    f"unknown SweepJob fields: {sorted(unknown)}"
                )
            return cls(**value)
        if isinstance(value, (list, tuple, np.ndarray)):
            return cls(omegas=value)
        raise ValidationError(
            "sweep must be a SweepJob, a dict, or an omega array; got "
            f"{type(value).__name__}"
        )

    @property
    def omegas(self):
        return self._omegas

    def to_dict(self):
        return {
            "omegas": self._omegas.tolist(),
            "amplitude": self.amplitude,
            "compare_full": self.compare_full,
        }


class TransientJob:
    """Declarative transient: a source, a horizon and a step size.

    ``source`` is either a callable ``u(t)`` or a JSON-able spec
    ``{"kind": "sine", "amplitude": 0.08, "frequency": 0.08}`` with the
    kinds of :mod:`repro.simulation.sources`.  ``compare_full`` also
    integrates the full model and records the peak-normalized relative
    error of the ROM trace.
    """

    def __init__(self, source, t_end, dt, compare_full=False):
        self._source_spec = None
        if callable(source):
            self._source = source
        elif isinstance(source, dict):
            spec = dict(source)
            kind = spec.pop("kind", None)
            factory = _SOURCE_FACTORIES.get(kind)
            if factory is None:
                raise ValidationError(
                    f"unknown source kind {kind!r}; expected one of "
                    f"{sorted(_SOURCE_FACTORIES)}"
                )
            try:
                self._source = factory(**spec)
            except TypeError as exc:
                raise ValidationError(
                    f"bad parameters for source kind {kind!r} ({exc})"
                ) from exc
            self._source_spec = {"kind": kind, **spec}
        else:
            raise ValidationError(
                "source must be callable or a source-spec dict, got "
                f"{type(source).__name__}"
            )
        self.t_end = float(t_end)
        self.dt = float(dt)
        if self.t_end <= 0 or self.dt <= 0:
            raise ValidationError("t_end and dt must be positive")
        self.compare_full = bool(compare_full)

    @classmethod
    def coerce(cls, value):
        if value is None or isinstance(value, cls):
            return value
        if isinstance(value, dict):
            unknown = set(value) - {"source", "t_end", "dt", "compare_full"}
            if unknown:
                raise ValidationError(
                    f"unknown TransientJob fields: {sorted(unknown)}"
                )
            return cls(**value)
        raise ValidationError(
            "transient must be a TransientJob or a dict, got "
            f"{type(value).__name__}"
        )

    @property
    def source(self):
        return self._source

    def to_dict(self):
        return {
            "source": self._source_spec or "<callable>",
            "t_end": self.t_end,
            "dt": self.dt,
            "compare_full": self.compare_full,
        }


def system_from_spec(spec, sparse=None):
    """Build a system from a JSON spec (netlist, generator, or both).

    Accepted shapes:

    * ``{"devices": [...], ...}`` — a :meth:`Netlist.to_dict` spec,
    * ``{"netlist": {...}}`` — the same, nested,
    * ``{"generator": "quadratic_rc_ladder_netlist", "args": {...}}`` —
      a named :mod:`repro.circuits.examples` generator.

    Optional top-level keys: ``"compile": {"sparse": true/false}``
    (forwarded to MNA assembly; the *sparse* parameter overrides it) and
    ``"lift": false`` to suppress the default quadratic-linearization
    of exponential-diode systems.

    Returns ``(system, info)`` — *info* records name/class/size and
    whether the system was lifted, for reports.
    """
    if not isinstance(spec, dict):
        raise ValidationError(
            f"spec must be a dict, got {type(spec).__name__}"
        )
    compile_opts = spec.get("compile", {})
    if not isinstance(compile_opts, dict):
        raise ValidationError("spec 'compile' must be a dict")
    if sparse is None:
        sparse = compile_opts.get("sparse")

    if "generator" in spec:
        name = spec["generator"]
        generator = _load_generators().get(name)
        if generator is None:
            raise ValidationError(
                f"unknown generator {name!r}; expected one of "
                f"{sorted(_load_generators())}"
            )
        built = generator(**spec.get("args", {}))
    else:
        netlist_spec = spec.get("netlist", spec)
        built = Netlist.from_dict(netlist_spec)

    if isinstance(built, Netlist):
        system = built.compile(sparse=sparse)
    else:
        system = built

    lifted = False
    if isinstance(system, ExponentialODE) and spec.get("lift", True):
        system = system.quadratic_linearize()
        lifted = True
    return system, _system_info(system, lifted)


def _system_info(system, lifted):
    """The structure summary every pipeline report leads with."""
    return {
        "name": getattr(system, "name", ""),
        "system_class": type(system).__name__,
        "n_states": int(system.n_states),
        "n_inputs": int(system.n_inputs),
        "n_outputs": int(system.n_outputs),
        "sparse": bool(getattr(system, "is_sparse", False)),
        "lifted": bool(lifted),
    }


class PipelineResult:
    """Everything one :func:`run_pipeline` call produced.

    Attributes
    ----------
    system : the compiled (and possibly lifted) full system
    system_info : dict
    artifact : ReductionArtifact or None
    rom : ReducedOrderModel or None
    store_hit : bool or None
        True/False when a store served/recorded the reduction, None
        when no store was involved.
    reduce_time : float or None
        Wall-clock seconds of the reduce step (disk hit or compute).
    sweep : dict or None
        ``omegas``/``hd2``/``hd3`` arrays (ROM when reduced, else full
        model) plus full-model comparison columns when requested.
    transient : dict or None
        Output trace summary and wall times.
    """

    def __init__(self, system, system_info, artifact=None, rom=None,
                 store_hit=None, reduce_time=None, sweep=None,
                 transient=None, jobs=None, checkpoint_info=None,
                 memory_info=None):
        self.system = system
        self.system_info = dict(system_info)
        self.artifact = artifact
        self.rom = rom
        self.store_hit = store_hit
        self.reduce_time = reduce_time
        self.sweep = sweep
        self.transient = transient
        self.jobs = dict(jobs or {})
        self.checkpoint_info = checkpoint_info
        self.memory_info = memory_info

    def report(self):
        """JSON-able report of the whole pipeline run."""
        report = {"system": dict(self.system_info)}
        if self.jobs:
            report["jobs"] = {
                key: job.to_dict() for key, job in self.jobs.items()
            }
        if self.rom is not None:
            report["reduction"] = {
                "method": self.rom.method,
                "orders": json_safe(self.rom.orders),
                "expansion_points": json_safe(self.rom.expansion_points),
                "rom_order": int(self.rom.order),
                "full_order": int(self.rom.full_order),
                "build_time_s": json_safe(self.rom.build_time),
                "store_hit": self.store_hit,
                "reduce_time_s": self.reduce_time,
            }
            if self.artifact is not None:
                report["reduction"]["provenance"] = self.artifact.describe()
            if self.checkpoint_info is not None:
                report["reduction"]["checkpoint"] = dict(self.checkpoint_info)
        if self.memory_info is not None:
            report["memory"] = dict(self.memory_info)
        if self.sweep is not None:
            report["sweep"] = json_safe(self.sweep)
        if self.transient is not None:
            report["transient"] = json_safe(self.transient)
        return report

    def __repr__(self):
        parts = [f"n={self.system_info.get('n_states')}"]
        if self.rom is not None:
            parts.append(f"rom_order={self.rom.order}")
        if self.store_hit is not None:
            parts.append(f"store_hit={self.store_hit}")
        if self.sweep is not None:
            parts.append(f"sweep_points={len(self.sweep['omegas'])}")
        if self.transient is not None:
            parts.append("transient")
        return f"PipelineResult({', '.join(parts)})"


def _worst_rel_dev(candidate, reference):
    """Worst relative deviation over the nonzero reference entries.

    A structurally-zero distortion figure (linear circuit, q2 = 0 ROM)
    must not turn the accuracy summary into NaN/inf; grid points where
    the reference is exactly zero are judged absolutely instead: any
    nonzero candidate there reports ``inf``, agreement reports as 0.
    Returns ``None`` when the reference is zero everywhere and the
    candidate matches it.
    """
    candidate = np.asarray(candidate, dtype=float)
    reference = np.asarray(reference, dtype=float)
    nonzero = reference != 0.0
    worst = (
        float(np.max(np.abs(candidate[nonzero] / reference[nonzero] - 1.0)))
        if np.any(nonzero)
        else None
    )
    if np.any(candidate[~nonzero] != 0.0):
        return float("inf")
    return worst


def _trace_summary(result):
    trace = result.output(0)
    return {
        "steps": int(result.steps),
        "wall_time_s": float(result.wall_time),
        "newton_iterations": int(result.newton_iterations),
        "output_min": float(trace.min()),
        "output_max": float(trace.max()),
        "output_rms": float(np.sqrt(np.mean(trace**2))),
    }


def _reduce_step(system, reduce_job, store=None, checkpoint=None,
                 resume=False, system_fingerprint=None):
    """Run one :class:`ReductionJob` on an already-built *system*.

    The shared reduce path of :func:`run_pipeline` and the serving
    layer (:mod:`repro.serve`): resolves the checkpoint, routes through
    the :class:`~repro.store.ModelStore` when one is given (computing
    on a miss), and returns
    ``(artifact, store_hit, reduce_time, checkpoint_info)`` with the
    same semantics the pipeline report exposes.  *system_fingerprint*
    is the precomputed :func:`~repro.store.fingerprint_system` value —
    long-lived processes that fingerprint each loaded spec once pass it
    so the store does not re-hash every system matrix per request.
    """
    reducer = reduce_job.reducer()
    if store is not None and not isinstance(store, ModelStore):
        store = ModelStore(store)
    job_state = _resolve_checkpoint(
        checkpoint, resume, store, system, reducer
    )
    store_hit = None
    start = time.perf_counter()
    if store is not None:
        artifact, store_hit = store.reduce(
            system, reducer, checkpoint=job_state,
            system_fingerprint=system_fingerprint,
        )
    else:
        if job_state is not None:
            built = reducer.reduce(system, checkpoint=job_state)
        else:
            built = reducer.reduce(system)
        if system_fingerprint is None:
            system_fingerprint = fingerprint_system(system)
        artifact = ReductionArtifact.from_reduction(
            built,
            system=system,
            reducer=reducer,
            system_fingerprint=system_fingerprint,
        )
    reduce_time = time.perf_counter() - start
    checkpoint_info = None
    if job_state is not None:
        # The build (or store hit) succeeded: the checkpoint has
        # served its purpose.  Record its stats, then drop it so a
        # later run of a *different* job can't trip over stale state.
        checkpoint_info = job_state.describe()
        job_state.discard()
    return artifact, store_hit, reduce_time, checkpoint_info


def _sweep_result(system, rom, sweep_job, explicit_query=None,
                  evaluate=None, cancel=None):
    """Run one :class:`SweepJob`; returns the report's ``sweep`` dict.

    Shared by :func:`run_pipeline` and the serving layer.  *rom* is
    ``None`` when the sweep runs on the full model.  Hooks for a
    long-lived process:

    * *explicit_query* — a pre-built ``to_explicit()`` of the query
      system.  ``to_explicit`` returns a fresh object per call, which
      would discard the memoized Volterra evaluator; the hot-ROM cache
      passes its retained explicit system so repeat sweeps skip
      re-priming.
    * *evaluate* — ``evaluate(omegas, amplitude) -> (hd2, hd3)``
      replaces the ROM-side :func:`distortion_sweep` call (the request
      coalescer's hook).  The full-model comparison always runs here,
      per-request.
    * *cancel* — cooperative-cancellation poll forwarded to the
      per-request sweeps (never to shared coalesced work).
    """
    omegas = sweep_job.omegas
    if evaluate is not None:
        hd2, hd3 = evaluate(omegas, sweep_job.amplitude)
    else:
        if explicit_query is None:
            query_system = rom.system if rom is not None else system
            explicit_query = query_system.to_explicit()
        _, hd2, hd3 = distortion_sweep(
            explicit_query, omegas,
            amplitude=sweep_job.amplitude, cancel=cancel,
        )
    sweep_result = {
        "omegas": omegas,
        "hd2": hd2,
        "hd3": hd3,
        "amplitude": sweep_job.amplitude,
        "on": "rom" if rom is not None else "full",
    }
    if sweep_job.compare_full and rom is not None:
        _, hd2_full, hd3_full = distortion_sweep(
            system.to_explicit(), omegas,
            amplitude=sweep_job.amplitude, cancel=cancel,
        )
        sweep_result["hd2_full"] = hd2_full
        sweep_result["hd3_full"] = hd3_full
        sweep_result["hd2_worst_rel_dev"] = _worst_rel_dev(
            hd2, hd2_full
        )
        sweep_result["hd3_worst_rel_dev"] = _worst_rel_dev(
            hd3, hd3_full
        )
    return sweep_result


def _transient_result(system, rom, transient_job):
    """Run one :class:`TransientJob`; returns the ``transient`` dict.

    Shared by :func:`run_pipeline` and the serving layer; *rom* is
    ``None`` when the simulation runs on the full model.
    """
    query_system = rom.system if rom is not None else system
    result = simulate(
        query_system, transient_job.source,
        t_end=transient_job.t_end, dt=transient_job.dt,
    )
    transient_result = {
        "on": "rom" if rom is not None else "full",
        **_trace_summary(result),
    }
    transient_result["times"] = result.times
    transient_result["output"] = result.output(0)
    if transient_job.compare_full and rom is not None:
        full = simulate(
            system, transient_job.source,
            t_end=transient_job.t_end, dt=transient_job.dt,
        )
        transient_result["full"] = _trace_summary(full)
        transient_result["full_output"] = full.output(0)
        transient_result["max_rel_error"] = float(
            max_relative_error(full.output(0), result.output(0))
        )
    return transient_result


def run_pipeline(target, reduce=None, sweep=None, transient=None,
                 store=None, sparse=None, checkpoint=None, resume=False,
                 memory_budget=None, max_block=None,
                 system_fingerprint=None):
    """Run the declarative MNA → MOR → query pipeline on *target*.

    Parameters
    ----------
    target : Netlist, spec dict, or system object
        A :class:`~repro.circuits.Netlist` (compiled here), a JSON spec
        (see :func:`system_from_spec`), or an already-built system.
        Exponential-diode systems are quadratic-linearized
        automatically.
    reduce : ReductionJob, dict, or (q1, q2, q3) tuple, optional
        The reduction to run.  Omit to query the full model directly.
    sweep : SweepJob, dict, or omega array, optional
        Distortion sweep over the ROM (or the full model when *reduce*
        is omitted); ``compare_full=True`` adds the full-model
        reference and deviation columns.
    transient : TransientJob or dict, optional
        Transient simulation of the ROM (or full model), optionally
        against the full model.
    store : ModelStore or path, optional
        Serve/record the reduction through a content-addressed store:
        an already-seen (system, reducer) pair loads from disk instead
        of recomputing.
    sparse : bool, optional
        Force CSR/dense MNA assembly for netlist/spec targets.
    checkpoint : bool, path, or JobState, optional
        Checkpoint the reduction at stage boundaries so a killed build
        resumes bit-identically.  ``True`` keys the checkpoint under
        the store (requires *store*) exactly like the artifact the
        build will produce; a path uses that directory; a
        :class:`~repro.checkpoint.JobState` is used as-is.  The
        checkpoint is discarded after a successful reduce.
    resume : bool, optional
        Assert that committed checkpoint state exists to resume from;
        raises :class:`ValidationError` when the checkpoint is empty
        (a guard against typo'd checkpoint paths silently recomputing).
    memory_budget : int, str, or None, optional
        Cap resident basis/Π memory for the duration of the run (e.g.
        ``"512M"``; see :func:`repro.memory.parse_budget`); blocks past
        the budget spill to disk-backed memory maps, and the solver
        core derives its streaming block size from the budget.
        Overrides ``REPRO_MEMORY_BUDGET`` for this call.
    max_block : int, str, or None, optional
        Force the row-block size the solver core streams n-row
        intermediates in (see :func:`repro.memory.parse_max_block`),
        overriding ``REPRO_MAX_BLOCK`` and the budget-derived default
        for this call.  ``max_block >= n`` reproduces the unblocked
        arithmetic exactly; smaller blocks trade ≤ 1e-10 summation
        reordering for O(n · max_block) peak memory.
    system_fingerprint : str, optional
        Precomputed :func:`~repro.store.fingerprint_system` value for
        the (already-built, already-lifted) *target* system, so a
        long-lived caller that fingerprints each loaded spec once skips
        the per-request re-hash.  Only meaningful when *target* is a
        system object.

    Returns a :class:`PipelineResult`; call ``.report()`` for the
    JSON-able summary the CLI prints.
    """
    reduce_job = ReductionJob.coerce(reduce)
    sweep_job = SweepJob.coerce(sweep)
    transient_job = TransientJob.coerce(transient)

    with contextlib.ExitStack() as stack:
        if memory_budget is not None:
            stack.enter_context(memory.limit(memory_budget))
        if max_block is not None:
            stack.enter_context(memory.tiling(max_block))
        return _run_pipeline(
            target, reduce_job, sweep_job, transient_job, store, sparse,
            checkpoint, resume, memory_budget, max_block,
            system_fingerprint,
        )


def _resolve_checkpoint(checkpoint, resume, store, system, reducer):
    """Coerce the *checkpoint* argument to a JobState (or ``None``)."""
    if checkpoint is None or checkpoint is False:
        if resume:
            raise ValidationError(
                "resume=True needs a checkpoint: pass checkpoint=True "
                "(with a store) or a checkpoint directory"
            )
        return None
    if isinstance(checkpoint, JobState):
        state = checkpoint
    elif checkpoint is True:
        if store is None:
            raise ValidationError(
                "checkpoint=True keys the checkpoint under the model "
                "store; pass store=... or an explicit checkpoint "
                "directory instead"
            )
        state = checkpoint_for(store, system, reducer)
    else:
        state = checkpoint_for(checkpoint, system, reducer)
    if resume and not state.resumed:
        raise ValidationError(
            f"resume requested but {state.directory} holds no committed "
            "checkpoint stages"
        )
    return state


def _run_pipeline(target, reduce_job, sweep_job, transient_job, store,
                  sparse, checkpoint, resume, memory_budget,
                  max_block=None, system_fingerprint=None):

    if isinstance(target, dict):
        system, info = system_from_spec(target, sparse=sparse)
        system_fingerprint = None  # fingerprints name built systems only
    else:
        if isinstance(target, Netlist):
            system_fingerprint = None
        system = (
            target.compile(sparse=sparse)
            if isinstance(target, Netlist)
            else target
        )
        # MOR and the Volterra kernels speak polynomial systems:
        # exponential-diode systems are lifted unconditionally (exact
        # quadratic-linearization), whatever jobs were requested.
        lifted = isinstance(system, ExponentialODE)
        if lifted:
            system = system.quadratic_linearize()
            system_fingerprint = None  # names the pre-lift system
        info = _system_info(system, lifted)

    jobs_requested = any(
        job is not None for job in (reduce_job, sweep_job, transient_job)
    )
    if jobs_requested and not isinstance(system, PolynomialODE):
        # Fail with a clear error instead of an AttributeError deep in
        # the query layers: the pipeline's reducer and Volterra kernels
        # speak polynomial systems only.
        raise ValidationError(
            f"run_pipeline jobs need a polynomial system "
            f"(QLDAE/CubicODE/PolynomialODE, or an ExponentialODE to "
            f"lift); got {type(system).__name__}.  For LTI StateSpace "
            "models use repro.mor.reduce_lti or balanced_truncation "
            "directly."
        )

    artifact = None
    rom = None
    store_hit = None
    reduce_time = None
    checkpoint_info = None
    if reduce_job is not None:
        artifact, store_hit, reduce_time, checkpoint_info = _reduce_step(
            system, reduce_job, store=store, checkpoint=checkpoint,
            resume=resume, system_fingerprint=system_fingerprint,
        )
        rom = artifact.rom
    elif checkpoint or resume:
        raise ValidationError(
            "checkpoint/resume only apply to the reduce step; pass "
            "reduce=... as well"
        )

    sweep_result = None
    if sweep_job is not None:
        sweep_result = _sweep_result(system, rom, sweep_job)

    transient_result = None
    if transient_job is not None:
        transient_result = _transient_result(system, rom, transient_job)

    jobs = {}
    if reduce_job is not None:
        jobs["reduce"] = reduce_job
    if sweep_job is not None:
        jobs["sweep"] = sweep_job
    if transient_job is not None:
        jobs["transient"] = transient_job

    return PipelineResult(
        system,
        info,
        artifact=artifact,
        rom=rom,
        store_hit=store_hit,
        reduce_time=reduce_time,
        sweep=sweep_result,
        transient=transient_result,
        jobs=jobs,
        checkpoint_info=checkpoint_info,
        memory_info=(
            memory.stats()
            if memory_budget is not None or max_block is not None
            else None
        ),
    )
