"""One-call pipeline: netlist/system → MNA → MOR → Volterra queries.

Before this module, every consumer of the library (examples, benches,
ad-hoc scripts) hand-wired the same five layers: compile the netlist,
lift exponential systems, build the reducer, run the reduction, then
drive ``distortion_sweep`` / ``simulate`` on full model and ROM.  The
pipeline makes that orchestration declarative —

>>> from repro.pipeline import run_pipeline
>>> result = run_pipeline(netlist, reduce=(6, 3, 0),
...                       sweep={"start": 0.02, "stop": 0.5, "points": 25})
>>> result.report()["sweep"]["hd2"]

— and routes it through the persistence layer: pass ``store=`` (a
:class:`~repro.store.ModelStore` or a directory path) and repeated runs
on an already-seen (system, reducer) pair serve the reduction from disk
instead of recomputing it.  This is the layer the CLI
(``python -m repro``) and any future multi-process serving front-end
call into.

Job objects (:class:`ReductionJob`, :class:`SweepJob`,
:class:`TransientJob`) are plain declarative configs: each coerces from
a dict (the JSON spec format), validates eagerly, and — for sources —
maps spec tags onto :mod:`repro.simulation.sources` factories.
"""

import contextlib
import time

import numpy as np

from . import memory
from ._validation import check_positive_int
from .analysis.distortion import (
    _sum_type_metrics,
    _system_tree,
    distortion_sweep,
)
from .analysis.metrics import max_relative_error
from .checkpoint import JobState, checkpoint_for
from .circuits.netlist import Netlist
from .engine import ProcessSpec, SolvePlan, get_executor
from .errors import ValidationError
from .linalg.arnoldi import merge_bases
from .mor.assoc import AssociatedTransformMOR
from .mor.base import ReducedOrderModel
from .serialize import json_safe
from .simulation import sources as _sources
from .simulation.transient import simulate
from .store import ModelStore, ReductionArtifact, fingerprint_system
from .systems.exponential import ExponentialODE
from .systems.polynomial import PolynomialODE
from .volterra.associated import AssociatedWorkspace
from .volterra.evaluator import volterra_evaluator

__all__ = [
    "ReductionJob",
    "SweepJob",
    "TransientJob",
    "ParametricReductionJob",
    "ParametricResult",
    "PipelineResult",
    "run_pipeline",
    "run_parametric",
    "system_from_spec",
]

#: Spec tags accepted in ``TransientJob.source`` dicts.
_SOURCE_FACTORIES = {
    "zero": _sources.zero_source,
    "step": _sources.step_source,
    "pulse": _sources.pulse_source,
    "sine": _sources.sine_source,
    "cosine": _sources.cosine_source,
    "multitone": _sources.multitone_source,
    "exponential_pulse": _sources.exponential_pulse_source,
    "surge": _sources.surge_source,
}

#: Named circuit generators a spec may reference instead of a device
#: list (each returns a Netlist or a compiled system).
_GENERATORS = {}


def _load_generators():
    if not _GENERATORS:
        from .circuits import examples as _examples

        for name in _examples.__all__:
            _GENERATORS[name] = getattr(_examples, name)
    return _GENERATORS


class ReductionJob:
    """Declarative reducer configuration (associated-transform NMOR).

    Parameters mirror :class:`~repro.mor.AssociatedTransformMOR`; the
    job exists so pipelines and JSON specs can describe a reduction
    without constructing the reducer eagerly.
    """

    def __init__(self, orders=(6, 3, 0), expansion_points=(0.0,),
                 strategy="coupled", deduplicate=True, tol=1e-10):
        self.orders = tuple(int(q) for q in orders)
        self.expansion_points = tuple(
            complex(p) if isinstance(p, complex) else float(p)
            for p in expansion_points
        )
        self.strategy = str(strategy)
        self.deduplicate = bool(deduplicate)
        self.tol = float(tol)
        self.reducer()  # validate eagerly: a bad job fails at build time

    @classmethod
    def coerce(cls, value):
        """Accept a job, a dict of its fields, or a bare orders tuple."""
        if value is None or isinstance(value, cls):
            return value
        if isinstance(value, dict):
            unknown = set(value) - {
                "orders", "expansion_points", "strategy", "deduplicate",
                "tol",
            }
            if unknown:
                raise ValidationError(
                    f"unknown ReductionJob fields: {sorted(unknown)}"
                )
            return cls(**value)
        if isinstance(value, (list, tuple)):
            return cls(orders=value)
        raise ValidationError(
            "reduce must be a ReductionJob, a dict, or an orders tuple; "
            f"got {type(value).__name__}"
        )

    def reducer(self):
        """The configured :class:`~repro.mor.AssociatedTransformMOR`."""
        return AssociatedTransformMOR(
            orders=self.orders,
            expansion_points=self.expansion_points,
            strategy=self.strategy,
            deduplicate=self.deduplicate,
            tol=self.tol,
        )

    def to_dict(self):
        return {
            "orders": list(self.orders),
            "expansion_points": json_safe(self.expansion_points),
            "strategy": self.strategy,
            "deduplicate": self.deduplicate,
            "tol": self.tol,
        }


class SweepJob:
    """Declarative distortion sweep: an ω-grid plus a tone amplitude.

    ``compare_full`` additionally runs the sweep on the full model and
    records the worst relative HD2/HD3 deviation of the ROM — the
    frequency-domain accuracy check the paper's experiments use.
    """

    def __init__(self, start=None, stop=None, points=25, omegas=None,
                 amplitude=1.0, compare_full=False):
        if omegas is not None:
            self._omegas = np.asarray(omegas, dtype=float).reshape(-1)
            if self._omegas.size == 0:
                raise ValidationError("sweep omegas must be non-empty")
        else:
            if start is None or stop is None:
                raise ValidationError(
                    "sweep needs either explicit omegas or start+stop"
                )
            points = check_positive_int(points, "points")
            self._omegas = np.linspace(float(start), float(stop), points)
        if np.any(self._omegas <= 0.0):
            raise ValidationError("sweep frequencies must be positive")
        self.amplitude = float(amplitude)
        self.compare_full = bool(compare_full)

    @classmethod
    def coerce(cls, value):
        if value is None or isinstance(value, cls):
            return value
        if isinstance(value, dict):
            unknown = set(value) - {
                "start", "stop", "points", "omegas", "amplitude",
                "compare_full",
            }
            if unknown:
                raise ValidationError(
                    f"unknown SweepJob fields: {sorted(unknown)}"
                )
            return cls(**value)
        if isinstance(value, (list, tuple, np.ndarray)):
            return cls(omegas=value)
        raise ValidationError(
            "sweep must be a SweepJob, a dict, or an omega array; got "
            f"{type(value).__name__}"
        )

    @property
    def omegas(self):
        return self._omegas

    def to_dict(self):
        return {
            "omegas": self._omegas.tolist(),
            "amplitude": self.amplitude,
            "compare_full": self.compare_full,
        }


class TransientJob:
    """Declarative transient: a source, a horizon and a step size.

    ``source`` is either a callable ``u(t)`` or a JSON-able spec
    ``{"kind": "sine", "amplitude": 0.08, "frequency": 0.08}`` with the
    kinds of :mod:`repro.simulation.sources`.  ``compare_full`` also
    integrates the full model and records the peak-normalized relative
    error of the ROM trace.
    """

    def __init__(self, source, t_end, dt, compare_full=False):
        self._source_spec = None
        if callable(source):
            self._source = source
        elif isinstance(source, dict):
            spec = dict(source)
            kind = spec.pop("kind", None)
            factory = _SOURCE_FACTORIES.get(kind)
            if factory is None:
                raise ValidationError(
                    f"unknown source kind {kind!r}; expected one of "
                    f"{sorted(_SOURCE_FACTORIES)}"
                )
            try:
                self._source = factory(**spec)
            except TypeError as exc:
                raise ValidationError(
                    f"bad parameters for source kind {kind!r} ({exc})"
                ) from exc
            self._source_spec = {"kind": kind, **spec}
        else:
            raise ValidationError(
                "source must be callable or a source-spec dict, got "
                f"{type(source).__name__}"
            )
        self.t_end = float(t_end)
        self.dt = float(dt)
        if self.t_end <= 0 or self.dt <= 0:
            raise ValidationError("t_end and dt must be positive")
        self.compare_full = bool(compare_full)

    @classmethod
    def coerce(cls, value):
        if value is None or isinstance(value, cls):
            return value
        if isinstance(value, dict):
            unknown = set(value) - {"source", "t_end", "dt", "compare_full"}
            if unknown:
                raise ValidationError(
                    f"unknown TransientJob fields: {sorted(unknown)}"
                )
            return cls(**value)
        raise ValidationError(
            "transient must be a TransientJob or a dict, got "
            f"{type(value).__name__}"
        )

    @property
    def source(self):
        return self._source

    def to_dict(self):
        return {
            "source": self._source_spec or "<callable>",
            "t_end": self.t_end,
            "dt": self.dt,
            "compare_full": self.compare_full,
        }


def system_from_spec(spec, sparse=None):
    """Build a system from a JSON spec (netlist, generator, or both).

    Accepted shapes:

    * ``{"devices": [...], ...}`` — a :meth:`Netlist.to_dict` spec,
    * ``{"netlist": {...}}`` — the same, nested,
    * ``{"generator": "quadratic_rc_ladder_netlist", "args": {...}}`` —
      a named :mod:`repro.circuits.examples` generator.

    Optional top-level keys: ``"compile": {"sparse": true/false}``
    (forwarded to MNA assembly; the *sparse* parameter overrides it) and
    ``"lift": false`` to suppress the default quadratic-linearization
    of exponential-diode systems.

    Returns ``(system, info)`` — *info* records name/class/size and
    whether the system was lifted, for reports.
    """
    if not isinstance(spec, dict):
        raise ValidationError(
            f"spec must be a dict, got {type(spec).__name__}"
        )
    compile_opts = spec.get("compile", {})
    if not isinstance(compile_opts, dict):
        raise ValidationError("spec 'compile' must be a dict")
    if sparse is None:
        sparse = compile_opts.get("sparse")

    if "generator" in spec:
        name = spec["generator"]
        generator = _load_generators().get(name)
        if generator is None:
            raise ValidationError(
                f"unknown generator {name!r}; expected one of "
                f"{sorted(_load_generators())}"
            )
        built = generator(**spec.get("args", {}))
    else:
        netlist_spec = spec.get("netlist", spec)
        built = Netlist.from_dict(netlist_spec)

    if isinstance(built, Netlist):
        system = built.compile(sparse=sparse)
    else:
        system = built

    lifted = False
    if isinstance(system, ExponentialODE) and spec.get("lift", True):
        system = system.quadratic_linearize()
        lifted = True
    return system, _system_info(system, lifted)


def _system_info(system, lifted):
    """The structure summary every pipeline report leads with."""
    return {
        "name": getattr(system, "name", ""),
        "system_class": type(system).__name__,
        "n_states": int(system.n_states),
        "n_inputs": int(system.n_inputs),
        "n_outputs": int(system.n_outputs),
        "sparse": bool(getattr(system, "is_sparse", False)),
        "lifted": bool(lifted),
    }


class PipelineResult:
    """Everything one :func:`run_pipeline` call produced.

    Attributes
    ----------
    system : the compiled (and possibly lifted) full system
    system_info : dict
    artifact : ReductionArtifact or None
    rom : ReducedOrderModel or None
    store_hit : bool or None
        True/False when a store served/recorded the reduction, None
        when no store was involved.
    reduce_time : float or None
        Wall-clock seconds of the reduce step (disk hit or compute).
    sweep : dict or None
        ``omegas``/``hd2``/``hd3`` arrays (ROM when reduced, else full
        model) plus full-model comparison columns when requested.
    transient : dict or None
        Output trace summary and wall times.
    """

    def __init__(self, system, system_info, artifact=None, rom=None,
                 store_hit=None, reduce_time=None, sweep=None,
                 transient=None, jobs=None, checkpoint_info=None,
                 memory_info=None):
        self.system = system
        self.system_info = dict(system_info)
        self.artifact = artifact
        self.rom = rom
        self.store_hit = store_hit
        self.reduce_time = reduce_time
        self.sweep = sweep
        self.transient = transient
        self.jobs = dict(jobs or {})
        self.checkpoint_info = checkpoint_info
        self.memory_info = memory_info

    def report(self):
        """JSON-able report of the whole pipeline run."""
        report = {"system": dict(self.system_info)}
        if self.jobs:
            report["jobs"] = {
                key: job.to_dict() for key, job in self.jobs.items()
            }
        if self.rom is not None:
            report["reduction"] = {
                "method": self.rom.method,
                "orders": json_safe(self.rom.orders),
                "expansion_points": json_safe(self.rom.expansion_points),
                "rom_order": int(self.rom.order),
                "full_order": int(self.rom.full_order),
                "build_time_s": json_safe(self.rom.build_time),
                "store_hit": self.store_hit,
                "reduce_time_s": self.reduce_time,
            }
            if self.artifact is not None:
                report["reduction"]["provenance"] = self.artifact.describe()
            if self.checkpoint_info is not None:
                report["reduction"]["checkpoint"] = dict(self.checkpoint_info)
        if self.memory_info is not None:
            report["memory"] = dict(self.memory_info)
        if self.sweep is not None:
            report["sweep"] = json_safe(self.sweep)
        if self.transient is not None:
            report["transient"] = json_safe(self.transient)
        return report

    def __repr__(self):
        parts = [f"n={self.system_info.get('n_states')}"]
        if self.rom is not None:
            parts.append(f"rom_order={self.rom.order}")
        if self.store_hit is not None:
            parts.append(f"store_hit={self.store_hit}")
        if self.sweep is not None:
            parts.append(f"sweep_points={len(self.sweep['omegas'])}")
        if self.transient is not None:
            parts.append("transient")
        return f"PipelineResult({', '.join(parts)})"


def _worst_rel_dev(candidate, reference):
    """Worst relative deviation over the nonzero reference entries.

    A structurally-zero distortion figure (linear circuit, q2 = 0 ROM)
    must not turn the accuracy summary into NaN/inf; grid points where
    the reference is exactly zero are judged absolutely instead: any
    nonzero candidate there reports ``inf``, agreement reports as 0.
    Returns ``None`` when the reference is zero everywhere and the
    candidate matches it.
    """
    candidate = np.asarray(candidate, dtype=float)
    reference = np.asarray(reference, dtype=float)
    nonzero = reference != 0.0
    worst = (
        float(np.max(np.abs(candidate[nonzero] / reference[nonzero] - 1.0)))
        if np.any(nonzero)
        else None
    )
    if np.any(candidate[~nonzero] != 0.0):
        return float("inf")
    return worst


def _trace_summary(result):
    trace = result.output(0)
    return {
        "steps": int(result.steps),
        "wall_time_s": float(result.wall_time),
        "newton_iterations": int(result.newton_iterations),
        "output_min": float(trace.min()),
        "output_max": float(trace.max()),
        "output_rms": float(np.sqrt(np.mean(trace**2))),
    }


def _reduce_step(system, reduce_job, store=None, checkpoint=None,
                 resume=False, system_fingerprint=None):
    """Run one :class:`ReductionJob` on an already-built *system*.

    The shared reduce path of :func:`run_pipeline` and the serving
    layer (:mod:`repro.serve`): resolves the checkpoint, routes through
    the :class:`~repro.store.ModelStore` when one is given (computing
    on a miss), and returns
    ``(artifact, store_hit, reduce_time, checkpoint_info)`` with the
    same semantics the pipeline report exposes.  *system_fingerprint*
    is the precomputed :func:`~repro.store.fingerprint_system` value —
    long-lived processes that fingerprint each loaded spec once pass it
    so the store does not re-hash every system matrix per request.
    """
    reducer = reduce_job.reducer()
    if store is not None and not isinstance(store, ModelStore):
        store = ModelStore(store)
    job_state = _resolve_checkpoint(
        checkpoint, resume, store, system, reducer
    )
    store_hit = None
    start = time.perf_counter()
    if store is not None:
        artifact, store_hit = store.reduce(
            system, reducer, checkpoint=job_state,
            system_fingerprint=system_fingerprint,
        )
    else:
        if job_state is not None:
            built = reducer.reduce(system, checkpoint=job_state)
        else:
            built = reducer.reduce(system)
        if system_fingerprint is None:
            system_fingerprint = fingerprint_system(system)
        artifact = ReductionArtifact.from_reduction(
            built,
            system=system,
            reducer=reducer,
            system_fingerprint=system_fingerprint,
        )
    reduce_time = time.perf_counter() - start
    checkpoint_info = None
    if job_state is not None:
        # The build (or store hit) succeeded: the checkpoint has
        # served its purpose.  Record its stats, then drop it so a
        # later run of a *different* job can't trip over stale state.
        checkpoint_info = job_state.describe()
        job_state.discard()
    return artifact, store_hit, reduce_time, checkpoint_info


def _sweep_result(system, rom, sweep_job, explicit_query=None,
                  evaluate=None, cancel=None):
    """Run one :class:`SweepJob`; returns the report's ``sweep`` dict.

    Shared by :func:`run_pipeline` and the serving layer.  *rom* is
    ``None`` when the sweep runs on the full model.  Hooks for a
    long-lived process:

    * *explicit_query* — a pre-built ``to_explicit()`` of the query
      system.  ``to_explicit`` returns a fresh object per call, which
      would discard the memoized Volterra evaluator; the hot-ROM cache
      passes its retained explicit system so repeat sweeps skip
      re-priming.
    * *evaluate* — ``evaluate(omegas, amplitude) -> (hd2, hd3)``
      replaces the ROM-side :func:`distortion_sweep` call (the request
      coalescer's hook).  The full-model comparison always runs here,
      per-request.
    * *cancel* — cooperative-cancellation poll forwarded to the
      per-request sweeps (never to shared coalesced work).
    """
    omegas = sweep_job.omegas
    if evaluate is not None:
        hd2, hd3 = evaluate(omegas, sweep_job.amplitude)
    else:
        if explicit_query is None:
            query_system = rom.system if rom is not None else system
            explicit_query = query_system.to_explicit()
        _, hd2, hd3 = distortion_sweep(
            explicit_query, omegas,
            amplitude=sweep_job.amplitude, cancel=cancel,
        )
    sweep_result = {
        "omegas": omegas,
        "hd2": hd2,
        "hd3": hd3,
        "amplitude": sweep_job.amplitude,
        "on": "rom" if rom is not None else "full",
    }
    if sweep_job.compare_full and rom is not None:
        _, hd2_full, hd3_full = distortion_sweep(
            system.to_explicit(), omegas,
            amplitude=sweep_job.amplitude, cancel=cancel,
        )
        sweep_result["hd2_full"] = hd2_full
        sweep_result["hd3_full"] = hd3_full
        sweep_result["hd2_worst_rel_dev"] = _worst_rel_dev(
            hd2, hd2_full
        )
        sweep_result["hd3_worst_rel_dev"] = _worst_rel_dev(
            hd3, hd3_full
        )
    return sweep_result


def _transient_result(system, rom, transient_job):
    """Run one :class:`TransientJob`; returns the ``transient`` dict.

    Shared by :func:`run_pipeline` and the serving layer; *rom* is
    ``None`` when the simulation runs on the full model.
    """
    query_system = rom.system if rom is not None else system
    result = simulate(
        query_system, transient_job.source,
        t_end=transient_job.t_end, dt=transient_job.dt,
    )
    transient_result = {
        "on": "rom" if rom is not None else "full",
        **_trace_summary(result),
    }
    transient_result["times"] = result.times
    transient_result["output"] = result.output(0)
    if transient_job.compare_full and rom is not None:
        full = simulate(
            system, transient_job.source,
            t_end=transient_job.t_end, dt=transient_job.dt,
        )
        transient_result["full"] = _trace_summary(full)
        transient_result["full_output"] = full.output(0)
        transient_result["max_rel_error"] = float(
            max_relative_error(full.output(0), result.output(0))
        )
    return transient_result


def run_pipeline(target, reduce=None, sweep=None, transient=None,
                 store=None, sparse=None, checkpoint=None, resume=False,
                 memory_budget=None, max_block=None,
                 system_fingerprint=None):
    """Run the declarative MNA → MOR → query pipeline on *target*.

    Parameters
    ----------
    target : Netlist, spec dict, or system object
        A :class:`~repro.circuits.Netlist` (compiled here), a JSON spec
        (see :func:`system_from_spec`), or an already-built system.
        Exponential-diode systems are quadratic-linearized
        automatically.
    reduce : ReductionJob, dict, or (q1, q2, q3) tuple, optional
        The reduction to run.  Omit to query the full model directly.
    sweep : SweepJob, dict, or omega array, optional
        Distortion sweep over the ROM (or the full model when *reduce*
        is omitted); ``compare_full=True`` adds the full-model
        reference and deviation columns.
    transient : TransientJob or dict, optional
        Transient simulation of the ROM (or full model), optionally
        against the full model.
    store : ModelStore or path, optional
        Serve/record the reduction through a content-addressed store:
        an already-seen (system, reducer) pair loads from disk instead
        of recomputing.
    sparse : bool, optional
        Force CSR/dense MNA assembly for netlist/spec targets.
    checkpoint : bool, path, or JobState, optional
        Checkpoint the reduction at stage boundaries so a killed build
        resumes bit-identically.  ``True`` keys the checkpoint under
        the store (requires *store*) exactly like the artifact the
        build will produce; a path uses that directory; a
        :class:`~repro.checkpoint.JobState` is used as-is.  The
        checkpoint is discarded after a successful reduce.
    resume : bool, optional
        Assert that committed checkpoint state exists to resume from;
        raises :class:`ValidationError` when the checkpoint is empty
        (a guard against typo'd checkpoint paths silently recomputing).
    memory_budget : int, str, or None, optional
        Cap resident basis/Π memory for the duration of the run (e.g.
        ``"512M"``; see :func:`repro.memory.parse_budget`); blocks past
        the budget spill to disk-backed memory maps, and the solver
        core derives its streaming block size from the budget.
        Overrides ``REPRO_MEMORY_BUDGET`` for this call.
    max_block : int, str, or None, optional
        Force the row-block size the solver core streams n-row
        intermediates in (see :func:`repro.memory.parse_max_block`),
        overriding ``REPRO_MAX_BLOCK`` and the budget-derived default
        for this call.  ``max_block >= n`` reproduces the unblocked
        arithmetic exactly; smaller blocks trade ≤ 1e-10 summation
        reordering for O(n · max_block) peak memory.
    system_fingerprint : str, optional
        Precomputed :func:`~repro.store.fingerprint_system` value for
        the (already-built, already-lifted) *target* system, so a
        long-lived caller that fingerprints each loaded spec once skips
        the per-request re-hash.  Only meaningful when *target* is a
        system object.

    Returns a :class:`PipelineResult`; call ``.report()`` for the
    JSON-able summary the CLI prints.
    """
    reduce_job = ReductionJob.coerce(reduce)
    sweep_job = SweepJob.coerce(sweep)
    transient_job = TransientJob.coerce(transient)

    with contextlib.ExitStack() as stack:
        if memory_budget is not None:
            stack.enter_context(memory.limit(memory_budget))
        if max_block is not None:
            stack.enter_context(memory.tiling(max_block))
        return _run_pipeline(
            target, reduce_job, sweep_job, transient_job, store, sparse,
            checkpoint, resume, memory_budget, max_block,
            system_fingerprint,
        )


def _resolve_checkpoint(checkpoint, resume, store, system, reducer):
    """Coerce the *checkpoint* argument to a JobState (or ``None``)."""
    if checkpoint is None or checkpoint is False:
        if resume:
            raise ValidationError(
                "resume=True needs a checkpoint: pass checkpoint=True "
                "(with a store) or a checkpoint directory"
            )
        return None
    if isinstance(checkpoint, JobState):
        state = checkpoint
    elif checkpoint is True:
        if store is None:
            raise ValidationError(
                "checkpoint=True keys the checkpoint under the model "
                "store; pass store=... or an explicit checkpoint "
                "directory instead"
            )
        state = checkpoint_for(store, system, reducer)
    else:
        state = checkpoint_for(checkpoint, system, reducer)
    if resume and not state.resumed:
        raise ValidationError(
            f"resume requested but {state.directory} holds no committed "
            "checkpoint stages"
        )
    return state


def _run_pipeline(target, reduce_job, sweep_job, transient_job, store,
                  sparse, checkpoint, resume, memory_budget,
                  max_block=None, system_fingerprint=None):

    if isinstance(target, dict):
        system, info = system_from_spec(target, sparse=sparse)
        system_fingerprint = None  # fingerprints name built systems only
    else:
        if isinstance(target, Netlist):
            system_fingerprint = None
        system = (
            target.compile(sparse=sparse)
            if isinstance(target, Netlist)
            else target
        )
        # MOR and the Volterra kernels speak polynomial systems:
        # exponential-diode systems are lifted unconditionally (exact
        # quadratic-linearization), whatever jobs were requested.
        lifted = isinstance(system, ExponentialODE)
        if lifted:
            system = system.quadratic_linearize()
            system_fingerprint = None  # names the pre-lift system
        info = _system_info(system, lifted)

    jobs_requested = any(
        job is not None for job in (reduce_job, sweep_job, transient_job)
    )
    if jobs_requested and not isinstance(system, PolynomialODE):
        # Fail with a clear error instead of an AttributeError deep in
        # the query layers: the pipeline's reducer and Volterra kernels
        # speak polynomial systems only.
        raise ValidationError(
            f"run_pipeline jobs need a polynomial system "
            f"(QLDAE/CubicODE/PolynomialODE, or an ExponentialODE to "
            f"lift); got {type(system).__name__}.  For LTI StateSpace "
            "models use repro.mor.reduce_lti or balanced_truncation "
            "directly."
        )

    artifact = None
    rom = None
    store_hit = None
    reduce_time = None
    checkpoint_info = None
    if reduce_job is not None:
        artifact, store_hit, reduce_time, checkpoint_info = _reduce_step(
            system, reduce_job, store=store, checkpoint=checkpoint,
            resume=resume, system_fingerprint=system_fingerprint,
        )
        rom = artifact.rom
    elif checkpoint or resume:
        raise ValidationError(
            "checkpoint/resume only apply to the reduce step; pass "
            "reduce=... as well"
        )

    sweep_result = None
    if sweep_job is not None:
        sweep_result = _sweep_result(system, rom, sweep_job)

    transient_result = None
    if transient_job is not None:
        transient_result = _transient_result(system, rom, transient_job)

    jobs = {}
    if reduce_job is not None:
        jobs["reduce"] = reduce_job
    if sweep_job is not None:
        jobs["sweep"] = sweep_job
    if transient_job is not None:
        jobs["transient"] = transient_job

    return PipelineResult(
        system,
        info,
        artifact=artifact,
        rom=rom,
        store_hit=store_hit,
        reduce_time=reduce_time,
        sweep=sweep_result,
        transient=transient_result,
        jobs=jobs,
        checkpoint_info=checkpoint_info,
        memory_info=(
            memory.stats()
            if memory_budget is not None or max_block is not None
            else None
        ),
    )


# ---------------------------------------------------------------------------
# parametric multi-corner reduction
# ---------------------------------------------------------------------------

#: Probe-check acceptance margin: an interpolated ROM is accepted when
#: its probe-frequency distortion deviation from the full corner model
#: stays below ``margin * interp_tol``, leaving headroom for deviation
#: between probes and for the anchors' own truncation error.
_INTERP_MARGIN = 0.5


class ParametricReductionJob:
    """Declarative multi-corner configuration for :func:`run_parametric`.

    Parameters
    ----------
    grid_points : int or {name: int}
        Points per ranged-parameter axis of the corner grid.
    draws : int
        Monte-Carlo draw count on top of the grid.
    seed : int
        Seed of the Monte-Carlo generator; recorded in every report so
        a distribution reproduces bit-for-bit.
    warm : bool
        Enable the warm-start tier: seed each reduction's extended-
        Krylov bases (and the Π build) with the nearest completed
        corner's basis and let the exact-residual test converge.
    interp : bool
        Enable the interpolation tier: project a corner's own system
        onto the merged bases of its two bracketing neighbors, accept
        only when the probe-frequency distortion deviation from the
        full corner model stays within ``interp_tol`` (times the
        acceptance margin), and fall back to a real reduction
        otherwise.
    interp_tol : float
        Distortion-deviation tolerance of the interpolation tier.
    probe_points : int
        Probe frequencies (a subset of the sweep grid) the
        interpolation check evaluates.
    warm_pool : int
        Completed warm states kept for nearest-corner seeding (bounds
        the O(n · basis) memory the tier retains).
    """

    def __init__(self, grid_points=3, draws=0, seed=2012, warm=True,
                 interp=True, interp_tol=1e-4, probe_points=3,
                 warm_pool=4):
        if isinstance(grid_points, dict):
            self.grid_points = {
                str(k): check_positive_int(v, f"grid_points[{k!r}]")
                for k, v in grid_points.items()
            }
        else:
            self.grid_points = check_positive_int(grid_points, "grid_points")
        self.draws = int(draws)
        if self.draws < 0:
            raise ValidationError("draws must be >= 0")
        self.seed = int(seed)
        self.warm = bool(warm)
        self.interp = bool(interp)
        self.interp_tol = float(interp_tol)
        if self.interp_tol <= 0:
            raise ValidationError("interp_tol must be positive")
        self.probe_points = check_positive_int(probe_points, "probe_points")
        self.warm_pool = check_positive_int(warm_pool, "warm_pool")

    @classmethod
    def coerce(cls, value):
        if value is None or isinstance(value, cls):
            return value
        if isinstance(value, dict):
            unknown = set(value) - {
                "grid_points", "draws", "seed", "warm", "interp",
                "interp_tol", "probe_points", "warm_pool",
            }
            if unknown:
                raise ValidationError(
                    f"unknown ParametricReductionJob fields: "
                    f"{sorted(unknown)}"
                )
            return cls(**value)
        raise ValidationError(
            "mc must be a ParametricReductionJob or a dict, got "
            f"{type(value).__name__}"
        )

    def to_dict(self):
        return {
            "grid_points": json_safe(self.grid_points),
            "draws": self.draws,
            "seed": self.seed,
            "warm": self.warm,
            "interp": self.interp,
            "interp_tol": self.interp_tol,
            "probe_points": self.probe_points,
            "warm_pool": self.warm_pool,
        }


def _distortion_arrays(explicit, omegas, amplitude, evaluator=None):
    """HD2/HD3 arrays of one already-explicit system, inline.

    The shared scalar loop behind the parametric sweep fan-out: the
    in-process path and :func:`_corner_sweep_worker` both run exactly
    this code on the same matrices, so serial and process backends
    produce bit-identical distributions.
    """
    if evaluator is None:
        evaluator = volterra_evaluator(explicit)
    omegas = np.asarray(omegas, dtype=float).reshape(-1)
    hd2 = np.empty(omegas.size)
    hd3 = np.empty(omegas.size)
    for idx in range(omegas.size):
        metrics, _ = _sum_type_metrics(
            explicit, evaluator, omegas[idx], amplitude
        )
        hd2[idx] = metrics["hd2"]
        hd3[idx] = metrics["hd3"]
    return hd2, hd3


def _corner_sweep_worker(payload):
    """Process-backend worker: the full distortion sweep of one corner.

    One task per corner (not per frequency): corner ROMs are small, so
    the whole ω-loop amortizes one payload decode.  The ω-grid array is
    the *same object* in every corner's payload, which the shared-
    memory registry dedups to a single segment — corners ship only
    their own reduced matrices.
    """
    from .systems.polynomial import PolynomialODE as _PolyODE

    mats = payload["system"]
    system = _PolyODE(
        mats["g1"],
        mats["b"],
        g2=mats.get("g2"),
        g3=mats.get("g3"),
        d1=mats.get("d1"),
        mass=mats.get("mass"),
        output=mats.get("output"),
    )
    hd2, hd3 = _distortion_arrays(
        system, payload["omegas"], payload["amplitude"]
    )
    return {"hd2": hd2, "hd3": hd3}


def _probe_omegas(omegas, probe_points):
    """An evenly spread ``probe_points``-subset of the sweep grid."""
    omegas = np.asarray(omegas, dtype=float).reshape(-1)
    if probe_points >= omegas.size:
        return omegas
    picks = np.unique(
        np.linspace(0, omegas.size - 1, probe_points).round().astype(int)
    )
    return omegas[picks]


class _WarmPool:
    """The most recent completed warm states, for nearest-corner seeding.

    Bounded (``cap`` entries, FIFO) because a warm state holds O(n ·
    basis) floats; distances are normalized per axis by the grid span
    so heterogeneous parameter scales compare fairly.
    """

    def __init__(self, spans, cap):
        self._spans = dict(spans)  # name -> axis span (0 span -> 1.0)
        self._cap = int(cap)
        self._entries = []  # (values, warm_state) newest last

    def add(self, values, state):
        if not state:
            return
        self._entries.append((dict(values), state))
        if len(self._entries) > self._cap:
            del self._entries[0]

    def nearest(self, values):
        best, best_dist = None, np.inf
        for stored, state in self._entries:
            dist = 0.0
            for name, span in self._spans.items():
                delta = values.get(name, 0.0) - stored.get(name, 0.0)
                dist += (delta / span) ** 2
            if dist < best_dist:
                best, best_dist = state, dist
        return best


class ParametricResult:
    """Everything one :func:`run_parametric` call produced.

    Attributes
    ----------
    system_info : dict
        Structure summary of the base (nominal) corner's system.
    grid_info, mc_info : dict
        :meth:`~repro.params.ParameterGrid.describe` /
        :meth:`~repro.params.MonteCarloSampler.describe` summaries.
    tiers : dict
        Per-tier reuse counters: ``dedup`` / ``warm`` / ``interp`` /
        ``cold`` plus ``interp_rejected`` (candidates whose probe check
        failed and fell back to a real reduction).
    corners, draws : list of dict
        Per-point records: parameter values, the tier that served the
        reduction, timings, ROM order, and the HD2/HD3 sweep arrays.
    distributions : dict
        Per-frequency p50/p99 of HD2/HD3 across grid corners (and
        across Monte-Carlo draws when the job has any), plus scalar
        percentiles of each corner's worst-case figures.
    roms : {flat_index: ReducedOrderModel}
        Grid-corner ROMs, kept so callers (and the serving layer) can
        query individual corners without re-reducing.
    """

    def __init__(self, system_info, grid_info, mc_info, tiers, corners,
                 draws, distributions, jobs, timings, roms=None,
                 store_stats=None):
        self.system_info = dict(system_info)
        self.grid_info = dict(grid_info)
        self.mc_info = dict(mc_info)
        self.tiers = dict(tiers)
        self.corners = list(corners)
        self.draws = list(draws)
        self.distributions = dict(distributions)
        self.jobs = dict(jobs)
        self.timings = dict(timings)
        self.roms = dict(roms or {})
        self.store_stats = store_stats

    def report(self):
        """JSON-able report (the CLI's and the ``/mc`` endpoint's body)."""
        report = {
            "system": dict(self.system_info),
            "grid": json_safe(self.grid_info),
            "mc": json_safe(self.mc_info),
            "tiers": dict(self.tiers),
            "corners": json_safe(self.corners),
            "distributions": json_safe(self.distributions),
            "jobs": {k: job.to_dict() for k, job in self.jobs.items()},
            "timings": json_safe(self.timings),
        }
        if self.draws:
            report["draws"] = json_safe(self.draws)
        if self.store_stats is not None:
            report["store"] = dict(self.store_stats)
        return report

    def __repr__(self):
        tiers = ", ".join(f"{k}={v}" for k, v in sorted(self.tiers.items()))
        return (
            f"ParametricResult(corners={len(self.corners)}, "
            f"draws={len(self.draws)}, {tiers})"
        )


def _parametric_netlist(target, sparse):
    """Coerce :func:`run_parametric`'s *target* to an annotated netlist.

    Accepts an annotated :class:`Netlist` or a JSON spec — a netlist
    spec whose (possibly nested) dict carries ``"parameters"``, or a
    generator spec with a top-level ``"parameters"`` list annotating
    the generated netlist.
    """
    if isinstance(target, dict):
        compile_opts = target.get("compile", {})
        if not isinstance(compile_opts, dict):
            raise ValidationError("spec 'compile' must be a dict")
        if sparse is None:
            sparse = compile_opts.get("sparse")
        if "generator" in target:
            name = target["generator"]
            generator = _load_generators().get(name)
            if generator is None:
                raise ValidationError(
                    f"unknown generator {name!r}; expected one of "
                    f"{sorted(_load_generators())}"
                )
            built = generator(**target.get("args", {}))
            if not isinstance(built, Netlist):
                raise ValidationError(
                    f"generator {name!r} builds a compiled system; "
                    "parametric runs need a Netlist-producing generator"
                )
        else:
            built = Netlist.from_dict(target.get("netlist", target))
        if target.get("parameters") and not built.parameters:
            built.with_params(target["parameters"])
        target = built
    if not isinstance(target, Netlist):
        raise ValidationError(
            "run_parametric needs a Netlist or a netlist spec, got "
            f"{type(target).__name__}"
        )
    if not getattr(target, "parameters", ()):
        raise ValidationError(
            "netlist has no parameters; annotate it with "
            "Netlist.with_params (or a spec-level 'parameters' list)"
        )
    return target, sparse


def run_parametric(target, reduce=None, sweep=None, mc=None, store=None,
                   sparse=None):
    """Reduce a ROM *family* over corners and Monte-Carlo draws.

    The parametric counterpart of :func:`run_pipeline`: *target* is a
    parameter-annotated netlist (or spec), and the job materializes the
    corner grid plus ``draws`` Monte-Carlo samples, reduces every
    member, sweeps each ROM's distortion figures, and reports their
    distributions (p50/p99 across the family).

    Every corner of a well-formed parametric netlist shares one
    structural fingerprint (parameters drive device *values* only), so
    the reductions share work through four tiers, cheapest first:

    1. **dedup** — the corner's exact store key (value fingerprint ×
       reducer config) was already reduced, in this run or in the
       given :class:`~repro.store.ModelStore`; serve it outright.
    2. **interp** — project the corner's own system onto the merged
       bases of its two bracketing neighbors and accept the candidate
       only when its probe-frequency distortion deviation from the
       corner's *full* model stays within the configured tolerance
       (times the acceptance margin); interpolated ROMs are never
       written to the store — they are not the canonical reduction for
       their key.
    3. **warm** — run a real reduction, but seed the extended-Krylov
       solver and the Π build with the nearest completed corner's
       basis (:meth:`~repro.volterra.associated.AssociatedWorkspace.
       warm_start`); the exact-residual stopping tests make the result
       meet the same tolerance as a cold build.  The shared symbolic
       sparse-LU analysis (same CSR pattern across corners) accelerates
       this tier implicitly — see ``sparse_lu_stats``.
    4. **cold** — a from-scratch reduction (the first corner, corners
       whose assembled structure diverges from the family's, and
       probe-check rejections, which are counted under
       ``interp_rejected`` plus the tier that actually ran).

    Per-corner distortion sweeps then fan out through the engine (one
    :class:`~repro.engine.ProcessSpec` task per corner; the shared
    ω-grid ships once via the shared-memory registry), and serial /
    process backends produce bit-identical distributions.

    Parameters mirror :func:`run_pipeline` where shared; *mc* is a
    :class:`ParametricReductionJob` (or its dict form).  Returns a
    :class:`ParametricResult`.
    """
    from .circuits.mna import structural_digest
    from .params import MonteCarloSampler, ParameterGrid, materialize

    netlist, sparse = _parametric_netlist(target, sparse)
    reduce_job = ReductionJob.coerce(reduce) or ReductionJob()
    sweep_job = SweepJob.coerce(sweep)
    if sweep_job is None:
        raise ValidationError(
            "run_parametric needs a sweep: the distortion distributions "
            "across the family are its output"
        )
    mc_job = ParametricReductionJob.coerce(mc) or ParametricReductionJob()
    if store is not None and not isinstance(store, ModelStore):
        store = ModelStore(store)

    reducer = reduce_job.reducer()
    grid = ParameterGrid(netlist, mc_job.grid_points)
    sampler = MonteCarloSampler(netlist, mc_job.draws, mc_job.seed)
    spans = {
        param.name: float(axis[-1] - axis[0]) or 1.0
        for param, axis in grid.axes
    }
    warm_pool = _WarmPool(spans, mc_job.warm_pool)
    probe = _probe_omegas(sweep_job.omegas, mc_job.probe_points)

    tiers = {
        "dedup": 0, "warm": 0, "interp": 0, "cold": 0,
        "interp_rejected": 0,
    }
    seen = {}          # value fingerprint -> completed record
    records = {}       # flat grid index -> record
    system_info = None
    base_digest = None
    t_start = time.perf_counter()

    def _build(values):
        system = materialize(netlist, values, check=False).compile(
            sparse=sparse
        )
        lifted = isinstance(system, ExponentialODE)
        if lifted:
            system = system.quadratic_linearize()
        return system, lifted

    def _try_interp(system, digest, pair):
        """Tier-2 candidate: merged-neighbor projection + probe check.

        Returns ``(rom, dev)`` on acceptance, ``(None, dev)`` on
        rejection (structure mismatch, missing anchors, or probe
        deviation past the margin).
        """
        left = records.get(pair[0])
        right = records.get(pair[1])
        if left is None or right is None:
            return None, None
        if left["rom"] is None or right["rom"] is None:
            return None, None
        if left["digest"] != digest or right["digest"] != digest:
            return None, None
        basis = merge_bases([left["rom"].basis, right["rom"].basis])
        candidate = system.project(basis)
        hd2c, hd3c = _distortion_arrays(
            candidate.to_explicit(), probe, sweep_job.amplitude
        )
        hd2f, hd3f = _distortion_arrays(
            system.to_explicit(), probe, sweep_job.amplitude
        )
        devs = [
            _worst_rel_dev(hd2c, hd2f),
            _worst_rel_dev(hd3c, hd3f),
        ]
        dev = max((d for d in devs if d is not None), default=0.0)
        if dev > _INTERP_MARGIN * mc_job.interp_tol:
            return None, dev
        source = left["rom"]
        rom = ReducedOrderModel(
            candidate,
            basis,
            method=source.method,
            orders=source.orders,
            expansion_points=source.expansion_points,
            details={
                "interpolated": True,
                "anchors": [int(pair[0]), int(pair[1])],
                "probe_dev": float(dev),
            },
        )
        return rom, dev

    def _reduce_member(values, pair=None):
        """Run one family member through the tier ladder."""
        nonlocal system_info, base_digest
        start = time.perf_counter()
        system, lifted = _build(values)
        if system_info is None:
            system_info = _system_info(system, lifted)
        digest = structural_digest(system)
        if base_digest is None:
            base_digest = digest
        fingerprint = fingerprint_system(system)
        record = {
            "values": dict(values),
            "digest": digest,
            "fingerprint": fingerprint,
            "rom": None,
            "tier": None,
            "reduce_time": None,
            "store_key": None,
        }

        # tier 1: exact dedup -- in-run first, then the store.
        prior = seen.get(fingerprint)
        if prior is not None:
            tiers["dedup"] += 1
            record.update(
                rom=prior["rom"], tier="dedup",
                store_key=prior["store_key"],
                reduce_time=time.perf_counter() - start,
            )
            return record
        key = None
        if store is not None:
            key = store.key_for(
                system, reducer, system_fingerprint=fingerprint
            )
            record["store_key"] = key
            artifact = store.load(key)
            if artifact is not None:
                store.hits += 1
                tiers["dedup"] += 1
                record.update(
                    rom=artifact.rom, tier="dedup",
                    reduce_time=time.perf_counter() - start,
                )
                seen[fingerprint] = record
                return record
            store.misses += 1

        # tier 2: residual-checked interpolation between neighbors.
        if mc_job.interp and pair is not None:
            rom, dev = _try_interp(system, digest, pair)
            if dev is not None:
                record["probe_dev"] = float(dev)
            if rom is not None:
                tiers["interp"] += 1
                record.update(
                    rom=rom, tier="interp",
                    reduce_time=time.perf_counter() - start,
                )
                # Interpolated ROMs never enter the store (see the
                # docstring) and never dedup later exact requests.
                return record
            if dev is not None:
                tiers["interp_rejected"] += 1

        # tier 3/4: a real reduction, warm-seeded when possible.  The
        # warm seed only applies within the family's shared structure;
        # a corner whose assembled structure diverged runs cold.
        explicit = system.to_explicit()
        workspace = AssociatedWorkspace.for_system(explicit)
        tier = "cold"
        if mc_job.warm and digest == base_digest:
            state = warm_pool.nearest(values)
            if state is not None:
                workspace.warm_start(**state)
                tier = "warm"
        rom = reducer.reduce(system, workspace=workspace)
        if digest == base_digest:
            warm_pool.add(values, workspace.warm_state())
        tiers[tier] += 1
        record.update(
            rom=rom, tier=tier,
            reduce_time=time.perf_counter() - start,
        )
        if store is not None:
            artifact = ReductionArtifact.from_reduction(
                rom, system=system, reducer=reducer,
                system_fingerprint=fingerprint,
            )
            store.store(key, artifact)
        seen[fingerprint] = record
        return record

    # -- phase 1: the corner grid, wave by wave -----------------------------
    for wave in grid.interp_schedule():
        for flat, pair in wave:
            record = _reduce_member(grid.corner_values(flat), pair=pair)
            record["index"] = int(flat)
            records[flat] = record
    t_grid = time.perf_counter() - t_start

    # -- phase 2: Monte-Carlo draws, served from the grid -------------------
    draw_records = []
    for draw_idx, values in enumerate(sampler):
        pair = None
        if mc_job.interp and len(grid) >= 2:
            pair = grid.bracket(values)
            if pair[0] == pair[1]:
                pair = None
        record = _reduce_member(values, pair=pair)
        record["index"] = int(draw_idx)
        draw_records.append(record)
    t_draws = time.perf_counter() - t_start - t_grid

    # -- phase 3: per-member distortion sweeps through the engine -----------
    omegas = sweep_job.omegas
    amplitude = sweep_job.amplitude
    all_records = [records[flat] for flat in sorted(records)] + draw_records
    ship = getattr(get_executor(), "backend_name", "serial") == "process"
    plan = SolvePlan("parametric_sweeps")

    def _inline(record):
        explicit = record["rom"].system.to_explicit()
        hd2, hd3 = _distortion_arrays(explicit, omegas, amplitude)
        record["hd2"], record["hd3"] = hd2, hd3

    def _merge(record):
        def apply(result):
            record["hd2"] = result["hd2"]
            record["hd3"] = result["hd3"]

        return apply

    for record in all_records:
        task = plan.add(_inline, record)
        if ship:
            tree = _system_tree(record["rom"].system.to_explicit())
            task.spec = ProcessSpec(
                "repro.pipeline:_corner_sweep_worker",
                lambda tree=tree: {
                    "system": tree,
                    "omegas": omegas,
                    "amplitude": amplitude,
                },
                merge=_merge(record),
            )
    plan.execute()
    t_sweeps = time.perf_counter() - t_start - t_grid - t_draws

    def _distribution(members):
        hd2 = np.stack([m["hd2"] for m in members])
        hd3 = np.stack([m["hd3"] for m in members])
        worst2 = hd2.max(axis=1)
        worst3 = hd3.max(axis=1)
        return {
            "hd2_p50": np.percentile(hd2, 50, axis=0),
            "hd2_p99": np.percentile(hd2, 99, axis=0),
            "hd3_p50": np.percentile(hd3, 50, axis=0),
            "hd3_p99": np.percentile(hd3, 99, axis=0),
            "worst_hd2_p50": float(np.percentile(worst2, 50)),
            "worst_hd2_p99": float(np.percentile(worst2, 99)),
            "worst_hd3_p50": float(np.percentile(worst3, 50)),
            "worst_hd3_p99": float(np.percentile(worst3, 99)),
        }

    distributions = {"omegas": omegas, "corners": _distribution(all_records[:len(records)])}
    if draw_records:
        distributions["draws"] = _distribution(draw_records)

    def _public(record, keep_rom=False):
        public = {
            "index": record["index"],
            "values": record["values"],
            "tier": record["tier"],
            "reduce_time_s": record["reduce_time"],
            "rom_order": int(record["rom"].order),
            "hd2": record["hd2"],
            "hd3": record["hd3"],
        }
        if record.get("store_key"):
            public["store_key"] = record["store_key"]
        if record.get("probe_dev") is not None:
            public["probe_dev"] = record.get("probe_dev")
        return public

    roms = {flat: records[flat]["rom"] for flat in records}
    return ParametricResult(
        system_info,
        grid.describe(),
        sampler.describe(),
        tiers,
        [_public(records[flat]) for flat in sorted(records)],
        [_public(record) for record in draw_records],
        distributions,
        {"reduce": reduce_job, "sweep": sweep_job, "mc": mc_job},
        {
            "grid_s": t_grid,
            "draws_s": t_draws,
            "sweeps_s": t_sweeps,
            "total_s": time.perf_counter() - t_start,
        },
        roms=roms,
        store_stats=store.stats() if store is not None else None,
    )
