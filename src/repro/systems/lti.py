"""Linear time-invariant state-space systems.

The associated transform maps every high-order Volterra transfer function
to an LTI system, so a solid LTI substrate is required: transfer-function
evaluation, impulse responses, moments, Gramians and Hankel singular
values (used by the paper's §4 remark on automatic order selection).
"""

import numpy as np
import scipy.linalg as sla
import scipy.sparse as sp

from .._validation import as_matrix, as_square_matrix
from ..errors import SystemStructureError, ValidationError
from ..linalg.resolvent import ResolventFactory
from ..serialize import load_payload, save_payload

__all__ = ["StateSpace"]


class StateSpace:
    """LTI system ``x' = A x + B u``, ``y = C x + D u``.

    Parameters
    ----------
    a : (n, n) array_like or sparse
        State matrix.  Scipy sparse input is kept as CSR: resolvent-type
        evaluations (``transfer``, ``frequency_response``, ``moments``)
        then run through sparse LU factorizations.  Spectral operations
        (``poles``, Gramians, ``impulse_response``) densify internally —
        they are inherently dense algorithms.
    b : (n, m) array_like
        Vectors are treated as single-input columns.
    c : (p, n) array_like, optional
        Defaults to observing the full state (``C = I``).
    d : (p, m) array_like, optional
        Defaults to zero feedthrough.
    """

    def __init__(self, a, b, c=None, d=None):
        self.a = as_square_matrix(a, "a", allow_sparse=True)
        n = self.a.shape[0]
        b = np.asarray(b)
        if b.ndim == 1:
            b = b[:, None]
        self.b = as_matrix(b, "b")
        if self.b.shape[0] != n:
            raise SystemStructureError(
                f"B has {self.b.shape[0]} rows, expected {n}"
            )
        if c is None:
            c = np.eye(n)
        c = np.asarray(c)
        if c.ndim == 1:
            c = c[None, :]
        self.c = as_matrix(c, "c")
        if self.c.shape[1] != n:
            raise SystemStructureError(
                f"C has {self.c.shape[1]} columns, expected {n}"
            )
        if d is None:
            d = np.zeros((self.c.shape[0], self.b.shape[1]))
        d = np.asarray(d, dtype=float)
        if d.ndim == 0:
            d = d.reshape(1, 1) * np.ones((self.n_outputs, self.n_inputs))
        self.d = as_matrix(d, "d")
        if self.d.shape != (self.c.shape[0], self.b.shape[1]):
            raise SystemStructureError(
                f"D has shape {self.d.shape}, expected "
                f"({self.c.shape[0]}, {self.b.shape[1]})"
            )

    # -- basic properties ----------------------------------------------------

    @property
    def n_states(self):
        return self.a.shape[0]

    @property
    def n_inputs(self):
        return self.b.shape[1]

    @property
    def n_outputs(self):
        return self.c.shape[0]

    def __repr__(self):
        return (
            f"StateSpace(n_states={self.n_states}, "
            f"n_inputs={self.n_inputs}, n_outputs={self.n_outputs})"
        )

    def _a_dense(self):
        """Dense view of ``A`` for the inherently dense algorithms."""
        return self.a.toarray() if sp.issparse(self.a) else self.a

    # -- serialization -------------------------------------------------------

    def to_dict(self):
        """Payload-tree form (see :mod:`repro.serialize`).

        ``A`` keeps its storage class: a CSR state matrix serializes as
        CSR and reloads as CSR, so a round-tripped sparse system stays
        on the sparse fast path.
        """
        return {
            "__class__": type(self).__name__,
            "a": self.a,
            "b": self.b,
            "c": self.c,
            "d": self.d,
        }

    @classmethod
    def from_dict(cls, data):
        """Rebuild a :class:`StateSpace` from :meth:`to_dict` output."""
        kind = data.get("__class__", "StateSpace")
        if kind != "StateSpace":
            raise ValidationError(
                f"payload describes a {kind!r}, not a StateSpace"
            )
        return cls(data["a"], data["b"], c=data["c"], d=data["d"])

    def save(self, path):
        """Write the system to *path* as one ``.npz`` archive (atomic)."""
        return save_payload(path, self.to_dict())

    @classmethod
    def load(cls, path):
        """Load a system written by :meth:`save`."""
        return cls.from_dict(load_payload(path))

    def poles(self):
        """Eigenvalues of ``A``."""
        return np.linalg.eigvals(self._a_dense())

    def is_stable(self, margin=0.0):
        """True when all poles have real part < -margin."""
        return bool(np.all(self.poles().real < -margin))

    # -- responses ------------------------------------------------------------

    def transfer(self, s):
        """Evaluate ``H(s) = C (sI − A)^{-1} B + D`` at one complex point.

        Sparse systems route through the cached
        :class:`ResolventFactory` (one sparse LU per distinct shift,
        LRU-reused across calls); dense systems use a direct solve.
        """
        n = self.n_states
        if sp.issparse(self.a):
            resolvent = ResolventFactory.for_system(self).solve(s, self.b)
        else:
            resolvent = np.linalg.solve(
                s * np.eye(n) - self.a.astype(complex),
                self.b.astype(complex),
            )
        return self.c @ resolvent + self.d

    def frequency_response(self, omegas):
        """Evaluate ``H(jw)`` on an array of angular frequencies.

        Returns an array of shape ``(len(omegas), p, m)``.  The whole
        grid is evaluated in one batch through the system's cached
        :class:`ResolventFactory` (one factorization of ``A``, one
        triangular substitution per frequency for dense systems, one
        cached sparse LU per frequency for sparse ones) rather than a
        fresh dense solve per point; repeated calls reuse the
        factorization.  The batch is emitted as an engine
        :class:`~repro.engine.SolvePlan`, so it parallelizes across
        workers when ``repro.engine.configure`` / ``REPRO_WORKERS``
        selects the thread backend.

        ``omegas`` must be **real** angular frequencies — the response is
        evaluated at ``s = jω``.  Complex input (scalar or array) raises
        :class:`~repro.errors.ValidationError`; evaluate :meth:`transfer`
        for general complex ``s``.
        """
        omegas = np.atleast_1d(np.asarray(omegas))
        if omegas.dtype.kind == "c":
            if np.any(omegas.imag != 0.0):
                raise ValidationError(
                    "frequency_response expects real angular frequencies "
                    "(evaluated at s = j*omega) and would silently drop "
                    "the imaginary part; use transfer(s) for general "
                    "complex s"
                )
            omegas = omegas.real
        elif omegas.dtype.kind not in "fiub":
            raise ValidationError(
                f"omegas must be real numbers, got dtype={omegas.dtype}"
            )
        omegas = omegas.astype(float, copy=False)
        factory = ResolventFactory.for_system(self)
        kernels = factory.solve_many(1j * omegas, self.b)
        out = np.einsum("pn,knm->kpm", self.c.astype(complex), kernels)
        return out + self.d[None, :, :]

    def impulse_response(self, times):
        """Impulse response ``h(t) = C e^{At} B`` (+ D δ omitted).

        Uses one matrix exponential per step via scaling of a single
        eigendecomposition-free ``expm`` on ``A·dt`` when *times* is
        uniformly spaced, otherwise a per-sample ``expm``.
        """
        times = np.atleast_1d(np.asarray(times, dtype=float))
        out = np.empty((times.size, self.n_outputs, self.n_inputs))
        a = self._a_dense()
        diffs = np.diff(times)
        uniform = times.size > 2 and np.allclose(diffs, diffs[0])
        if uniform and times[0] >= 0.0:
            step = sla.expm(a * diffs[0])
            state = sla.expm(a * times[0]) @ self.b
            for idx in range(times.size):
                out[idx] = self.c @ state
                state = step @ state
        else:
            for idx, t in enumerate(times):
                out[idx] = self.c @ sla.expm(a * t) @ self.b
        return out

    # -- moments ---------------------------------------------------------------

    def moments(self, count, s0=0.0):
        """Taylor moments of the transfer function about ``s0``.

        ``H(s) = Σ_k m_k (s − s0)^k`` with
        ``m_k = (-1)^k C (s0 I − A)^{-(k+1)} B``; requires ``s0`` off the
        spectrum of ``A``.
        """
        n = self.n_states
        if sp.issparse(self.a):
            factory = ResolventFactory.for_system(self)
            # Match the dense path's dtype rule exactly: only the
            # all-real DC expansion yields float64 moments (the factory
            # computes in complex; the imaginary parts are exactly zero
            # there).
            real_case = (
                s0 == 0.0
                and self.a.dtype.kind != "c"
                and not np.iscomplexobj(self.b)
            )

            def solve(mat):
                # The factory's per-shift LU cache makes the repeated
                # solves at s0 one factorization total.
                out = factory.solve(s0, mat)
                return out.real if real_case else out

            current = self.b.astype(float if real_case else complex)
        else:
            base = s0 * np.eye(n) - self.a
            if s0 == 0.0 and not np.iscomplexobj(base):
                lu = sla.lu_factor(base)
            else:
                lu = sla.lu_factor(base.astype(complex))

            def solve(mat):
                return sla.lu_solve(lu, mat)

            current = self.b.astype(lu[0].dtype)
        moments = []
        for k in range(count):
            current = solve(current)
            moments.append(((-1.0) ** k) * (self.c @ current))
        return moments

    # -- Gramians / Hankel values ------------------------------------------------

    def controllability_gramian(self):
        """Solve ``A P + P Aᵀ + B Bᵀ = 0`` (requires stable ``A``)."""
        if not self.is_stable():
            raise SystemStructureError(
                "controllability Gramian requires a Hurwitz A"
            )
        return sla.solve_continuous_lyapunov(
            self._a_dense(), -self.b @ self.b.T
        )

    def observability_gramian(self):
        """Solve ``Aᵀ Q + Q A + Cᵀ C = 0`` (requires stable ``A``)."""
        if not self.is_stable():
            raise SystemStructureError(
                "observability Gramian requires a Hurwitz A"
            )
        return sla.solve_continuous_lyapunov(
            self._a_dense().T, -self.c.T @ self.c
        )

    def hankel_singular_values(self):
        """Hankel singular values ``sqrt(lambda_i(P Q))``, descending.

        The paper (§4, first bullet) proposes these as the principled
        criterion for choosing how many moments of each associated
        transfer function to match.
        """
        p = self.controllability_gramian()
        q = self.observability_gramian()
        eigs = np.linalg.eigvals(p @ q)
        eigs = np.where(eigs.real > 0.0, eigs.real, 0.0)
        return np.sort(np.sqrt(eigs))[::-1]

    # -- transformations -----------------------------------------------------------

    def project(self, v, w=None):
        """Galerkin (or Petrov-Galerkin) projection onto ``span(V)``.

        Returns the reduced :class:`StateSpace`
        ``(Wᵀ A V, Wᵀ B, C V, D)`` with ``W = V`` by default; ``V`` is
        assumed orthonormal when ``W`` is omitted.
        """
        v = as_matrix(np.asarray(v), "v")
        if v.shape[0] != self.n_states:
            raise ValidationError(
                f"V has {v.shape[0]} rows, expected {self.n_states}"
            )
        w = v if w is None else as_matrix(np.asarray(w), "w")
        return StateSpace(
            w.T @ self.a @ v, w.T @ self.b, self.c @ v, self.d
        )

    def series(self, other):
        """Cascade: the output of *self* feeds the input of *other*."""
        if other.n_inputs != self.n_outputs:
            raise SystemStructureError(
                "cascade dimension mismatch: "
                f"{self.n_outputs} outputs into {other.n_inputs} inputs"
            )
        n1, n2 = self.n_states, other.n_states
        a = np.block(
            [
                [self._a_dense(), np.zeros((n1, n2))],
                [other.b @ self.c, other._a_dense()],
            ]
        )
        b = np.vstack([self.b, other.b @ self.d])
        c = np.hstack([other.d @ self.c, other.c])
        d = other.d @ self.d
        return StateSpace(a, b, c, d)
