"""Polynomial state-space systems (QLDAE and cubic ODE base class).

The paper's object of study is the quadratic-linear DAE (eq. 1/2)

    C x' = G1 x + G2 (x ⊗ x) + D1 x u + B u,

and §3.4 extends the method to ODEs with a cubic Kronecker term
``G3 (x ⊗ x ⊗ x)``.  :class:`PolynomialODE` covers both: a polynomial
right-hand side with optional quadratic/cubic terms, optional bilinear
input coupling (one ``D1`` matrix per input), an optional mass matrix
``C`` and a linear output map.

Nonlinear terms are stored as sparse coefficient matrices
(``G2: n × n²``, ``G3: n × n³``) *and* as unpacked COO index arrays, so
right-hand-side and Jacobian evaluation cost ``O(nnz)`` instead of
materializing ``x ⊗ x`` / ``x ⊗ x ⊗ x``.

Sparsity contract (the circuit-scale fast path):

* ``g1`` and ``mass`` passed as scipy sparse matrices are **kept** as CSR
  (dense input stays dense — nothing is ever silently sparsified).
* For such sparse systems :meth:`PolynomialODE.jacobian` returns a CSR
  matrix assembled from the COO index arrays, ``d1`` matrices are coerced
  to CSR, and :meth:`PolynomialODE.to_explicit` folds a sparse mass
  matrix via a sparse LU without densifying ``g1``/``g2``/``g3``.
* Densification happens only at documented seams: Galerkin projection
  (:meth:`PolynomialODE.project` — the ROM is small and dense by
  construction), the *coupled*-strategy lifted operators
  (:mod:`repro.volterra.associated`; the decoupled H2 / factored-Π / H3
  machinery runs matrix-free on the sparse LU), and
  :class:`~repro.systems.descriptor.DescriptorPencil` (dense QZ).
"""

import numpy as np
import scipy.linalg as sla
import scipy.sparse as sp

from .._validation import as_matrix, as_sparse, as_square_matrix
from ..errors import NumericalError, SystemStructureError, ValidationError
from ..linalg.lu import sparse_lu
from ..serialize import load_payload, save_payload
from .lti import StateSpace

__all__ = ["PolynomialODE", "QLDAE", "CubicODE"]


class _QuadraticTerm:
    """Evaluator for ``G2 (x ⊗ x)``.

    Two storage schemes: COO index arrays (O(nnz) per evaluation — right
    for large sparse circuit matrices) and, for small systems such as
    ROMs whose projected ``Ĝ2`` is dense, a packed ``(n, n, n)`` tensor
    evaluated with BLAS contractions.  The dense path is what makes a
    30-state ROM's transient markedly faster than the sparse full model
    (per-step Python overhead would otherwise dominate).
    """

    _DENSE_LIMIT = 48

    def __init__(self, g2, n):
        coo = g2.tocoo()
        self.rows = coo.row.astype(np.intp)
        self.i = (coo.col // n).astype(np.intp)
        self.j = (coo.col % n).astype(np.intp)
        self.vals = coo.data.astype(float)
        self.n = n
        self._tensor = None
        if n <= self._DENSE_LIMIT and self.vals.size:
            tensor = np.zeros((n, n, n))
            np.add.at(tensor, (self.rows, self.i, self.j), self.vals)
            self._tensor = tensor

    def eval(self, x):
        if self._tensor is not None:
            return (self._tensor @ x) @ x
        contrib = self.vals * x[self.i] * x[self.j]
        return np.bincount(self.rows, weights=contrib, minlength=self.n)

    def eval_bilinear(self, a, b):
        """Evaluate ``G2 (a ⊗ b)`` for two different vectors."""
        if self._tensor is not None:
            return (self._tensor @ b) @ a
        contrib = self.vals * a[self.i] * b[self.j]
        return np.bincount(self.rows, weights=contrib, minlength=self.n)

    def add_jacobian(self, jac, x):
        if self._tensor is not None:
            jac += self._tensor @ x
            jac += np.tensordot(self._tensor, x, axes=([1], [0]))
            return
        np.add.at(jac, (self.rows, self.i), self.vals * x[self.j])
        np.add.at(jac, (self.rows, self.j), self.vals * x[self.i])

    def jacobian_sparse(self, x):
        """Jacobian contribution ``∂[G2 (x⊗x)]/∂x`` as a CSR matrix.

        Duplicate (row, col) entries are summed by the COO→CSR
        conversion, so the result matches :meth:`add_jacobian` exactly.
        """
        rows = np.concatenate([self.rows, self.rows])
        cols = np.concatenate([self.i, self.j])
        data = np.concatenate(
            [self.vals * x[self.j], self.vals * x[self.i]]
        )
        return sp.csr_matrix((data, (rows, cols)), shape=(self.n, self.n))


class _CubicTerm:
    """Evaluator for ``G3 (x ⊗ x ⊗ x)``.

    Like :class:`_QuadraticTerm`: COO arrays for large sparse systems, a
    packed ``(n, n, n, n)`` tensor with BLAS contractions for small
    (ROM-sized) dense ones.
    """

    _DENSE_LIMIT = 32

    def __init__(self, g3, n):
        coo = g3.tocoo()
        self.rows = coo.row.astype(np.intp)
        col = coo.col
        self.i = (col // (n * n)).astype(np.intp)
        self.j = ((col // n) % n).astype(np.intp)
        self.k = (col % n).astype(np.intp)
        self.vals = coo.data.astype(float)
        self.n = n
        self._tensor = None
        if n <= self._DENSE_LIMIT and self.vals.size:
            tensor = np.zeros((n, n, n, n))
            np.add.at(
                tensor, (self.rows, self.i, self.j, self.k), self.vals
            )
            self._tensor = tensor

    def eval(self, x):
        if self._tensor is not None:
            return ((self._tensor @ x) @ x) @ x
        contrib = self.vals * x[self.i] * x[self.j] * x[self.k]
        return np.bincount(self.rows, weights=contrib, minlength=self.n)

    def eval_trilinear(self, a, b, c):
        """Evaluate ``G3 (a ⊗ b ⊗ c)`` for three different vectors."""
        if self._tensor is not None:
            return ((self._tensor @ c) @ b) @ a
        contrib = self.vals * a[self.i] * b[self.j] * c[self.k]
        return np.bincount(self.rows, weights=contrib, minlength=self.n)

    def add_jacobian(self, jac, x):
        if self._tensor is not None:
            txx = (self._tensor @ x) @ x  # contract k then j -> (r, i)
            jac += txx
            t_k = self._tensor @ x  # (r, i, j)
            jac += np.tensordot(t_k, x, axes=([1], [0]))  # i-slot
            t_j = np.tensordot(self._tensor, x, axes=([2], [0]))  # (r,i,k)
            jac += np.tensordot(t_j, x, axes=([1], [0]))  # i-slot, k free
            return
        np.add.at(jac, (self.rows, self.i), self.vals * x[self.j] * x[self.k])
        np.add.at(jac, (self.rows, self.j), self.vals * x[self.i] * x[self.k])
        np.add.at(jac, (self.rows, self.k), self.vals * x[self.i] * x[self.j])

    def jacobian_sparse(self, x):
        """Jacobian contribution ``∂[G3 (x⊗x⊗x)]/∂x`` as a CSR matrix."""
        rows = np.concatenate([self.rows, self.rows, self.rows])
        cols = np.concatenate([self.i, self.j, self.k])
        data = np.concatenate(
            [
                self.vals * x[self.j] * x[self.k],
                self.vals * x[self.i] * x[self.k],
                self.vals * x[self.i] * x[self.j],
            ]
        )
        return sp.csr_matrix((data, (rows, cols)), shape=(self.n, self.n))


def _normalize_d1(d1, n, m, sparse=False):
    """Normalize ``d1`` to a tuple of m (n, n) matrices or None.

    Accepts a single matrix (ndarray, scipy sparse, or plain nested
    lists) or a sequence of m matrices.  With ``sparse`` (set when the
    owning system stores ``g1`` sparse) the matrices are kept/coerced to
    CSR so the assembled Jacobian stays sparse; otherwise they are dense.
    """
    if d1 is None:
        return None
    if sp.issparse(d1):
        d1 = [d1]
    else:
        if not isinstance(d1, (list, tuple, np.ndarray)):
            d1 = list(d1)
        if not (
            isinstance(d1, (list, tuple))
            and any(sp.issparse(el) for el in d1)
        ):
            # Coerce *before* the ndim check: a plain nested-list 2-D d1
            # is a single matrix, not a sequence of 1-D per-input rows.
            try:
                arr = np.asarray(d1)
            except ValueError:
                arr = None  # ragged sequence; validated per entry below
            if arr is not None and arr.dtype != object:
                if arr.ndim == 2:
                    d1 = [arr]
                elif arr.ndim == 3:
                    d1 = list(arr)
    mats = []
    for idx, mat in enumerate(d1):
        mat = as_square_matrix(mat, f"d1[{idx}]", allow_sparse=sparse)
        if sparse and not sp.issparse(mat):
            # A dense D1 on a sparse system would densify every Jacobian
            # assembly; coerce so the CSR contract holds end-to-end.
            mat = sp.csr_matrix(mat)
        mats.append(mat)
        if mats[-1].shape != (n, n):
            raise SystemStructureError(
                f"d1[{idx}] has shape {mats[-1].shape}, expected ({n}, {n})"
            )
    if len(mats) == 1 and m > 1:
        raise SystemStructureError(
            f"got one D1 matrix but {m} inputs; pass one per input"
        )
    if len(mats) != m:
        raise SystemStructureError(
            f"got {len(mats)} D1 matrices for {m} inputs"
        )

    def _nonzeros(mat):
        return (
            mat.count_nonzero() if sp.issparse(mat) else np.count_nonzero(mat)
        )

    if all(_nonzeros(mat) == 0 for mat in mats):
        return None
    return tuple(mats)


class PolynomialODE:
    """Polynomial system ``C x' = G1 x + G2 x⊗x + G3 x⊗x⊗x + Σ D1ᵢ x uᵢ + B u``.

    Parameters
    ----------
    g1 : (n, n) array_like or sparse
        Linear state matrix.  Scipy sparse input is kept as CSR and
        switches the system onto the sparse fast path (see module
        docstring); dense input stays dense.
    b : (n,) or (n, m) array_like
        Input matrix; a vector means a single input.
    g2 : (n, n²) array_like or sparse, optional
        Quadratic coefficient matrix.
    g3 : (n, n³) array_like or sparse, optional
        Cubic coefficient matrix.
    d1 : (n, n) matrix or sequence of m matrices, optional
        Bilinear input coupling; the MIMO generalization uses one matrix
        per input column (``Σ_i D1ᵢ x uᵢ``).
    mass : (n, n) array_like or sparse, optional
        Mass matrix ``C`` (paper eq. 1); ``None`` means identity.  Must be
        invertible here — singular pencils go through
        :mod:`repro.systems.descriptor` first.  Sparse input is kept as
        CSR and factored with a sparse LU wherever it is inverted.
    output : (p, n) array_like, optional
        Output map ``y = output @ x``; default observes the full state.
    name : str
        Human-readable label used in reports.
    """

    def __init__(
        self,
        g1,
        b,
        g2=None,
        g3=None,
        d1=None,
        mass=None,
        output=None,
        name="",
    ):
        self.g1 = as_square_matrix(g1, "g1", allow_sparse=True)
        n = self.g1.shape[0]
        b = np.asarray(b)
        if b.ndim == 1:
            b = b[:, None]
        self.b = as_matrix(b, "b")
        if self.b.shape[0] != n:
            raise SystemStructureError(
                f"b has {self.b.shape[0]} rows, expected {n}"
            )
        m = self.b.shape[1]

        self.g2 = None if g2 is None else as_sparse(g2, "g2")
        if self.g2 is not None and self.g2.shape != (n, n * n):
            raise SystemStructureError(
                f"g2 must be (n, n^2) = ({n}, {n * n}), got {self.g2.shape}"
            )
        self.g3 = None if g3 is None else as_sparse(g3, "g3")
        if self.g3 is not None and self.g3.shape != (n, n**3):
            raise SystemStructureError(
                f"g3 must be (n, n^3) = ({n}, {n ** 3}), got {self.g3.shape}"
            )
        self.d1 = _normalize_d1(d1, n, m, sparse=self.is_sparse)
        self.mass = (
            None
            if mass is None
            else as_square_matrix(mass, "mass", allow_sparse=True)
        )
        if self.mass is not None and self.mass.shape != (n, n):
            raise SystemStructureError(
                f"mass must be ({n}, {n}), got {self.mass.shape}"
            )
        if output is None:
            output = np.eye(n)
        output = np.asarray(output)
        if output.ndim == 1:
            output = output[None, :]
        self.output = as_matrix(output, "output")
        if self.output.shape[1] != n:
            raise SystemStructureError(
                f"output has {self.output.shape[1]} columns, expected {n}"
            )
        self.name = str(name)
        self._quad = None if self.g2 is None else _QuadraticTerm(self.g2, n)
        self._cubic = None if self.g3 is None else _CubicTerm(self.g3, n)
        self._mass_lu = None

    # -- dimensions ------------------------------------------------------------

    @property
    def n_states(self):
        return self.g1.shape[0]

    @property
    def n_inputs(self):
        return self.b.shape[1]

    @property
    def n_outputs(self):
        return self.output.shape[0]

    @property
    def has_mass(self):
        return self.mass is not None

    @property
    def is_sparse(self):
        """True when ``g1`` is stored as a scipy sparse matrix.

        Sparse systems keep CSR matrices alive end-to-end: ``jacobian``
        returns CSR, the Newton layer factors iteration matrices with a
        sparse LU, and resolvent/Krylov solves go through the factory's
        sparse branch.
        """
        return sp.issparse(self.g1)

    def __repr__(self):
        parts = [f"n={self.n_states}", f"inputs={self.n_inputs}"]
        if self.g2 is not None:
            parts.append("quadratic")
        if self.g3 is not None:
            parts.append("cubic")
        if self.d1 is not None:
            parts.append("bilinear-input")
        if self.mass is not None:
            parts.append("mass")
        label = f" {self.name!r}" if self.name else ""
        return f"{type(self).__name__}({', '.join(parts)}){label}"

    # -- evaluation --------------------------------------------------------------

    def _coerce_input(self, u):
        u = np.atleast_1d(np.asarray(u, dtype=float))
        if u.shape != (self.n_inputs,):
            raise ValidationError(
                f"input must have shape ({self.n_inputs},), got {u.shape}"
            )
        return u

    def rhs(self, x, u):
        """Evaluate ``f(x, u) = G1 x + G2 x⊗x + G3 x⊗x⊗x + Σ D1ᵢ x uᵢ + B u``.

        Note this is the right-hand side *before* applying ``mass^{-1}``;
        implicit integrators consume it together with :attr:`mass`.
        """
        x = np.asarray(x, dtype=float).reshape(self.n_states)
        u = self._coerce_input(u)
        f = self.g1 @ x + self.b @ u
        if self._quad is not None:
            f = f + self._quad.eval(x)
        if self._cubic is not None:
            f = f + self._cubic.eval(x)
        if self.d1 is not None:
            for d1_i, u_i in zip(self.d1, u):
                if u_i != 0.0:
                    f = f + (d1_i @ x) * u_i
        return f

    def jacobian(self, x, u):
        """State Jacobian ``∂f/∂x`` at ``(x, u)``.

        Dense systems get a dense ndarray; sparse systems (CSR ``g1``)
        get a CSR matrix assembled from the COO index arrays — the Newton
        layer factors either form without densifying.
        """
        x = np.asarray(x, dtype=float).reshape(self.n_states)
        u = self._coerce_input(u)
        if self.is_sparse:
            jac = self.g1
            if self._quad is not None:
                jac = jac + self._quad.jacobian_sparse(x)
            if self._cubic is not None:
                jac = jac + self._cubic.jacobian_sparse(x)
            if self.d1 is not None:
                for d1_i, u_i in zip(self.d1, u):
                    if u_i != 0.0:
                        jac = jac + d1_i * u_i
            if jac is self.g1:
                jac = jac.copy()
            return sp.csr_matrix(jac)
        jac = self.g1.copy()
        if self._quad is not None:
            self._quad.add_jacobian(jac, x)
        if self._cubic is not None:
            self._cubic.add_jacobian(jac, x)
        if self.d1 is not None:
            for d1_i, u_i in zip(self.d1, u):
                if u_i != 0.0:
                    jac += d1_i * u_i
        return jac

    def observe(self, states):
        """Map a state trajectory ``(n,)`` or ``(steps, n)`` to outputs."""
        states = np.asarray(states)
        if states.ndim == 1:
            return self.output @ states
        return states @ self.output.T

    # -- transformations ------------------------------------------------------------

    def to_explicit(self):
        """Fold an invertible mass matrix into the coefficients.

        Returns an equivalent system with ``mass=None`` (the paper's
        "regular system" trimming, eq. 1 → eq. 2).  Raises
        :class:`SystemStructureError` when the mass matrix is singular.

        A sparse mass matrix is factored once with a sparse LU and the
        fold keeps every sparse coefficient (``g1``, ``g2``, ``g3``,
        ``d1``) sparse: ``C^{-1}`` is applied only to the nonzero columns
        of each coefficient matrix, so a circuit-sized system never
        materializes an ``(n, n²)`` dense block.  A dense mass matrix
        takes the dense LAPACK path (densifying a sparse ``g1``/``d1`` in
        the mixed sparse-state/dense-mass corner case).
        """
        if self.mass is None:
            return self
        if sp.issparse(self.mass):
            return self._to_explicit_sparse()
        sign, logdet = np.linalg.slogdet(self.mass)
        if sign == 0 or not np.isfinite(logdet):
            raise SystemStructureError(
                "mass matrix is singular; use repro.systems.descriptor to "
                "extract the regular part first"
            )
        lu = sla.lu_factor(self.mass)

        def solve(mat):
            if sp.issparse(mat):
                mat = mat.toarray()
            return sla.lu_solve(lu, mat)

        g2 = None
        if self.g2 is not None:
            g2 = sp.csr_matrix(solve(self.g2.toarray()))
        g3 = None
        if self.g3 is not None:
            g3 = sp.csr_matrix(solve(self.g3.toarray()))
        d1 = None
        if self.d1 is not None:
            d1 = [solve(mat) for mat in self.d1]
        return type(self)._from_parts(
            g1=solve(self.g1),
            b=solve(self.b),
            g2=g2,
            g3=g3,
            d1=d1,
            mass=None,
            output=self.output,
            name=self.name,
        )

    def _to_explicit_sparse(self):
        """Sparse-mass fold: ``C^{-1}`` through one sparse LU, no dense
        ``(n, n^k)`` intermediates."""
        try:
            lu = sparse_lu(self.mass)
        except NumericalError as exc:
            raise SystemStructureError(
                "mass matrix is singular; use repro.systems.descriptor to "
                "extract the regular part first"
            ) from exc

        def solve_dense(mat):
            out = lu.solve(np.asarray(mat, dtype=float))
            if not np.isfinite(out).all():
                raise SystemStructureError(
                    "mass matrix is numerically singular; use "
                    "repro.systems.descriptor to extract the regular part"
                )
            return out

        def solve_columns(coeff, chunk=512):
            """Apply ``C^{-1}`` to a sparse (n, width) matrix column-wise,
            touching only columns that carry nonzeros.

            Works entirely in nnz-sized structures: a CSC view of the
            full ``(n, n^k)`` width would allocate an O(n^k) indptr, so
            the nonzero columns are compacted through the COO indices
            first.
            """
            coo = coeff.tocoo()
            if coo.nnz == 0:
                return sp.csr_matrix(coeff.shape)
            cols, local_col = np.unique(coo.col, return_inverse=True)
            compact = sp.csc_matrix(
                (coo.data, (coo.row, local_col)),
                shape=(coeff.shape[0], cols.size),
            )
            rows_acc, cols_acc, vals_acc = [], [], []
            for start in range(0, cols.size, chunk):
                block = solve_dense(compact[:, start : start + chunk].toarray())
                r, c = np.nonzero(block)
                rows_acc.append(r)
                cols_acc.append(cols[start + c])
                vals_acc.append(block[r, c])
            return sp.csr_matrix(
                (
                    np.concatenate(vals_acc),
                    (np.concatenate(rows_acc), np.concatenate(cols_acc)),
                ),
                shape=coeff.shape,
            )

        g1 = (
            solve_columns(self.g1)
            if sp.issparse(self.g1)
            else solve_dense(self.g1)
        )
        g2 = None if self.g2 is None else solve_columns(self.g2)
        g3 = None if self.g3 is None else solve_columns(self.g3)
        d1 = None
        if self.d1 is not None:
            d1 = [
                solve_columns(mat) if sp.issparse(mat) else solve_dense(mat)
                for mat in self.d1
            ]
        return type(self)._from_parts(
            g1=g1,
            b=solve_dense(self.b),
            g2=g2,
            g3=g3,
            d1=d1,
            mass=None,
            output=self.output,
            name=self.name,
        )

    @classmethod
    def _from_parts(cls, g1, b, g2, g3, d1, mass, output, name):
        """Rebuild an instance, dropping terms the subclass forbids."""
        return PolynomialODE(
            g1, b, g2=g2, g3=g3, d1=d1, mass=mass, output=output, name=name
        )

    # -- serialization -------------------------------------------------------

    def to_dict(self):
        """Payload-tree form (see :mod:`repro.serialize`).

        Storage classes are preserved exactly: a CSR ``g1``/``mass``/
        ``d1`` serializes as CSR and reloads as CSR (round-tripped
        circuit-scale systems stay on the sparse fast path), dense
        stays dense, and ``g2``/``g3`` stay sparse coefficient matrices.
        """
        return {
            "__class__": type(self).__name__,
            "g1": self.g1,
            "b": self.b,
            "g2": self.g2,
            "g3": self.g3,
            "d1": None if self.d1 is None else list(self.d1),
            "mass": self.mass,
            "output": self.output,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data):
        """Rebuild a polynomial system from :meth:`to_dict` output.

        Dispatches on the recorded class (``PolynomialODE``, ``QLDAE``,
        ``CubicODE``) so a payload round-trips to the class that wrote
        it.  Calling this on a subclass whose invariants the payload
        violates (e.g. ``CubicODE.from_dict`` on a quadratic payload)
        raises :class:`~repro.errors.SystemStructureError` through the
        subclass's own ``_from_parts`` checks.
        """
        kind = data.get("__class__", "PolynomialODE")
        target = _POLYNOMIAL_CLASSES.get(kind)
        if target is None:
            raise ValidationError(
                f"payload describes a {kind!r}, which is not a "
                "polynomial system class"
            )
        if not issubclass(target, cls):
            raise ValidationError(
                f"payload describes a {kind!r}, not a {cls.__name__}"
            )
        return target._from_parts(
            g1=data["g1"],
            b=data["b"],
            g2=data["g2"],
            g3=data["g3"],
            d1=data["d1"],
            mass=data["mass"],
            output=data["output"],
            name=data["name"],
        )

    def save(self, path):
        """Write the system to *path* as one ``.npz`` archive (atomic)."""
        return save_payload(path, self.to_dict())

    @classmethod
    def load(cls, path):
        """Load a system written by :meth:`save`."""
        return cls.from_dict(load_payload(path))

    def linear_part(self):
        """The linearization at the origin as a :class:`StateSpace`.

        Requires an explicit system (``mass is None``); call
        :meth:`to_explicit` first otherwise.
        """
        if self.mass is not None:
            raise SystemStructureError(
                "linear_part requires an explicit system; call to_explicit()"
            )
        return StateSpace(self.g1, self.b, self.output)

    def project(self, v):
        """Galerkin-project onto the orthonormal basis ``V``.

        Builds the reduced polynomial system with
        ``Ĝ1 = Vᵀ G1 V``, ``Ĝ2 = Vᵀ G2 (V ⊗ V)``,
        ``Ĝ3 = Vᵀ G3 (V ⊗ V ⊗ V)``, ``D̂1ᵢ = Vᵀ D1ᵢ V``, ``B̂ = Vᵀ B``
        and ``Ĉ = C V``; the reduction is exact on the subspace.

        When the system carries a mass matrix it is projected by the same
        congruence (``M̂ = Vᵀ M V``).  For passive MNA circuits
        (``M ≻ 0``, ``G1 + G1ᵀ ⪯ 0``) this preserves those definiteness
        properties and hence the stability of the ROM — folding the mass
        matrix first and projecting the explicit form does not.

        The nonlinear projections are accumulated term-by-term from the
        COO data (cost ``O(nnz · q³)``), never forming ``V ⊗ V``.
        """
        v = as_matrix(np.asarray(v), "v")
        n, q = v.shape
        if n != self.n_states:
            raise ValidationError(
                f"V has {n} rows, expected {self.n_states}"
            )
        g1_r = v.T @ self.g1 @ v
        b_r = v.T @ self.b
        out_r = self.output @ v

        g2_r = None
        if self._quad is not None:
            acc = np.zeros((q, q * q))
            term = self._quad
            for row, i, j, val in zip(term.rows, term.i, term.j, term.vals):
                acc += val * np.outer(v[row], np.kron(v[i], v[j]))
            g2_r = sp.csr_matrix(acc)

        g3_r = None
        if self._cubic is not None:
            acc = np.zeros((q, q * q * q))
            term = self._cubic
            for row, i, j, k, val in zip(
                term.rows, term.i, term.j, term.k, term.vals
            ):
                acc += val * np.outer(
                    v[row], np.kron(v[i], np.kron(v[j], v[k]))
                )
            g3_r = sp.csr_matrix(acc)

        d1_r = None
        if self.d1 is not None:
            d1_r = [v.T @ mat @ v for mat in self.d1]
        mass_r = None
        if self.mass is not None:
            mass_r = v.T @ self.mass @ v

        return type(self)._from_parts(
            g1=g1_r,
            b=b_r,
            g2=g2_r,
            g3=g3_r,
            d1=d1_r,
            mass=mass_r,
            output=out_r,
            name=f"{self.name}-rom" if self.name else "rom",
        )


class QLDAE(PolynomialODE):
    """Quadratic-linear (D)AE — the paper's eq. (1)/(2).

    ``C x' = G1 x + G2 (x ⊗ x) + Σᵢ D1ᵢ x uᵢ + B u``; no cubic term.
    """

    def __init__(self, g1, b, g2=None, d1=None, mass=None, output=None, name=""):
        super().__init__(
            g1, b, g2=g2, g3=None, d1=d1, mass=mass, output=output, name=name
        )

    @classmethod
    def _from_parts(cls, g1, b, g2, g3, d1, mass, output, name):
        if g3 is not None:
            raise SystemStructureError("QLDAE cannot carry a cubic term")
        return cls(g1, b, g2=g2, d1=d1, mass=mass, output=output, name=name)


class CubicODE(PolynomialODE):
    """ODE with a cubic Kronecker term — the paper's §3.4 system.

    ``C x' = G1 x + G3 (x ⊗ x ⊗ x) + B u``; note the paper writes it as
    ``C x' + G1 x + G3 x 3© = u`` (signs folded into our ``G1``, ``G3``).
    """

    def __init__(self, g1, b, g3=None, mass=None, output=None, name=""):
        super().__init__(
            g1, b, g2=None, g3=g3, d1=None, mass=mass, output=output, name=name
        )

    @classmethod
    def _from_parts(cls, g1, b, g2, g3, d1, mass, output, name):
        if g2 is not None or d1 is not None:
            raise SystemStructureError(
                "CubicODE cannot carry quadratic or bilinear terms"
            )
        return cls(g1, b, g3=g3, mass=mass, output=output, name=name)


#: Payload ``__class__`` → constructor dispatch for
#: :meth:`PolynomialODE.from_dict`.
_POLYNOMIAL_CLASSES = {
    "PolynomialODE": PolynomialODE,
    "QLDAE": QLDAE,
    "CubicODE": CubicODE,
}
