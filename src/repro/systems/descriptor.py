"""Descriptor-system regularization (singular mass matrices).

The paper trims eq. (1) to eq. (2) by assuming an invertible ``C`` and
notes (§4, second bullet) that a singular ``C`` "can proceed with the
regular part extraction ... by Weierstrass canonical transform or the
descriptor-system projector technique".  This module implements that
extraction for the linear pencil ``(C, G1)`` via a reordered QZ
decomposition plus a coupled generalized Sylvester solve, and exposes a
helper that regularizes a polynomial system whose nonlinearities live in
the differential (regular) variables.
"""

import numpy as np
import scipy.linalg as sla
import scipy.sparse as sp

from .._validation import as_matrix, as_square_matrix
from ..errors import NumericalError, SystemStructureError
from .lti import StateSpace
from .polynomial import PolynomialODE

__all__ = ["DescriptorPencil", "regularize_polynomial"]

#: |beta| below this multiple of the pencil scale marks an infinite
#: generalized eigenvalue.
_INFINITE_TOL = 1e-10


def _solve_coupled_sylvester(a11, a22, e11, e22, a12, e12):
    """Solve the coupled generalized Sylvester system.

    Finds ``R`` (n1 × n2) and ``L`` (n1 × n2) with::

        A11 R - L A22 = -A12
        E11 R - L E22 = -E12

    by flattening to one dense linear system (the test-scale path of
    LAPACK's *tgsyl*).  Sizes here are the regular/impulsive block sizes
    of a descriptor pencil, small in practice.
    """
    n1, n2 = a12.shape
    eye1 = np.eye(n1)
    eye2 = np.eye(n2)
    # Unknown vector [vec(R); vec(L)] with row-major vec:
    # vec(A11 R) = (A11 ⊗ I2) vec(R);  vec(L A22) = (I1 ⊗ A22ᵀ) vec(L).
    top = np.hstack([np.kron(a11, eye2), -np.kron(eye1, a22.T)])
    bottom = np.hstack([np.kron(e11, eye2), -np.kron(eye1, e22.T)])
    lhs = np.vstack([top, bottom])
    rhs = -np.concatenate([a12.reshape(-1), e12.reshape(-1)])
    try:
        sol = np.linalg.solve(lhs, rhs)
    except np.linalg.LinAlgError as exc:
        raise NumericalError(
            "coupled Sylvester system for the Weierstrass decoupling is "
            "singular; the pencil spectra are not disjoint"
        ) from exc
    r = sol[: n1 * n2].reshape(n1, n2)
    l = sol[n1 * n2 :].reshape(n1, n2)
    return r, l


class DescriptorPencil:
    """Regular/impulsive splitting of the matrix pencil ``λE − A``.

    Parameters
    ----------
    e : (n, n) array_like
        Mass matrix (possibly singular).
    a : (n, n) array_like
        State matrix.

    Attributes
    ----------
    n_finite : int
        Number of finite generalized eigenvalues (the ODE subsystem size).
    v, w : (n, n) ndarrays
        Right/left transformations such that ``Wᵀ E V`` and ``Wᵀ A V`` are
        block diagonal with the finite part leading.
    """

    def __init__(self, e, a):
        self.e = as_square_matrix(e, "e")
        self.a = as_square_matrix(a, "a")
        n = self.e.shape[0]
        if self.a.shape != (n, n):
            raise SystemStructureError(
                f"pencil blocks disagree: E is {self.e.shape}, "
                f"A is {self.a.shape}"
            )
        self.n = n
        scale = max(np.abs(self.e).max(), np.abs(self.a).max(), 1.0)

        def finite_first(alpha, beta):
            return np.abs(beta) > _INFINITE_TOL * scale

        s, t, alpha, beta, q, z = sla.ordqz(
            self.a, self.e, sort=finite_first, output="real"
        )
        self._check_regularity(s, t, scale)
        nf = int(np.sum(np.abs(beta) > _INFINITE_TOL * scale))
        self.n_finite = nf
        # Pencil is now  Qᵀ (λE − A) Z = λT − S, block upper triangular
        # with the finite part in the leading nf × nf blocks.
        s11, s12, s22 = s[:nf, :nf], s[:nf, nf:], s[nf:, nf:]
        t11, t12, t22 = t[:nf, :nf], t[:nf, nf:], t[nf:, nf:]
        if nf in (0, n):
            r = np.zeros((nf, n - nf))
            l = np.zeros((nf, n - nf))
        else:
            r, l = _solve_coupled_sylvester(s11, s22, t11, t22, s12, t12)
        # Right transform V = Z [[I, R],[0, I]]; left transform (applied
        # as Wᵀ from the left) W = Q [[I, -L],[0, I]]ᵀ-conjugate, i.e.
        # Wᵀ = [[I, L],[0, I]]ᵀ?  Written out:
        #   [[I, -L],[0, I]] (λT − S) [[I, R],[0, I]] is block diagonal.
        upper_l = np.block(
            [
                [np.eye(nf), -l],
                [np.zeros((n - nf, nf)), np.eye(n - nf)],
            ]
        )
        upper_r = np.block(
            [
                [np.eye(nf), r],
                [np.zeros((n - nf, nf)), np.eye(n - nf)],
            ]
        )
        self.v = z @ upper_r
        self.w = (upper_l @ q.T).T  # so that wᵀ = upper_l @ qᵀ
        self.e_finite = t11
        self.a_finite = s11
        self.e_infinite = t22
        self.a_infinite = s22

    @staticmethod
    def _check_regularity(s, t, scale):
        diag_pairs = np.abs(np.diag(s)) + np.abs(np.diag(t))
        if np.any(diag_pairs <= _INFINITE_TOL * scale):
            raise SystemStructureError(
                "the pencil (E, A) is singular: det(λE − A) vanishes "
                "identically"
            )

    @property
    def n_infinite(self):
        return self.n - self.n_finite

    def index_one(self, tol=1e-10):
        """True when the impulsive block is index ≤ 1 (``T22 ≈ 0``)."""
        if self.n_infinite == 0:
            return True
        return bool(
            np.abs(self.e_infinite).max()
            <= tol * max(np.abs(self.e).max(), 1.0)
        )

    def transform_residuals(self):
        """Frobenius norms of the off-diagonal blocks after transforming.

        Diagnostic: both should be at rounding level.
        """
        et = self.w.T @ self.e @ self.v
        at = self.w.T @ self.a @ self.v
        nf = self.n_finite
        return (
            float(np.linalg.norm(et[:nf, nf:])),
            float(np.linalg.norm(at[:nf, nf:])),
        )

    def regular_state_space(self, b, c):
        """Extract the finite (ODE) subsystem as an explicit StateSpace.

        For an index-1 pencil the impulsive variables are algebraic,
        ``z2 = −A22^{-1} B̃2 u``, and contribute a feedthrough term
        ``D = −C V2 A22^{-1} B̃2``.
        """
        b = np.asarray(b)
        if b.ndim == 1:
            b = b[:, None]
        b = as_matrix(b, "b")
        c = np.asarray(c)
        if c.ndim == 1:
            c = c[None, :]
        c = as_matrix(c, "c")
        nf = self.n_finite
        bt = self.w.T @ b
        ct = c @ self.v
        a_ode = np.linalg.solve(self.e_finite, self.a_finite)
        b_ode = np.linalg.solve(self.e_finite, bt[:nf])
        d = None
        if self.n_infinite > 0:
            if not self.index_one():
                raise SystemStructureError(
                    "pencil has index > 1; impulsive modes carry input "
                    "derivatives and cannot be folded into a feedthrough"
                )
            z2 = -np.linalg.solve(self.a_infinite, bt[nf:])
            d = ct[:, nf:] @ z2
        return StateSpace(a_ode, b_ode, ct[:, :nf], d)


def regularize_polynomial(system, nonlinear_tol=1e-10):
    """Extract the regular (ODE) part of a polynomial descriptor system.

    Applies the Weierstrass-like splitting of :class:`DescriptorPencil`
    to ``(mass, G1)`` and rebuilds the quadratic/cubic/bilinear terms in
    the differential coordinates.  Physical-circuit practice (paper §4):
    the algebraic part is "often immaterial"; accordingly this routine
    **requires** the nonlinear terms not to couple into the impulsive
    variables and raises :class:`SystemStructureError` otherwise.

    Returns an explicit :class:`PolynomialODE` of dimension ``n_finite``.
    """
    if system.mass is None:
        return system.to_explicit()
    pencil = DescriptorPencil(system.mass, system.g1)
    nf = pencil.n_finite
    n = system.n_states
    if nf == n:
        return system.to_explicit()
    if not pencil.index_one():
        raise SystemStructureError(
            "descriptor system has index > 1; not supported"
        )
    v1 = pencil.v[:, :nf]
    wt = pencil.w.T
    bt = wt @ system.b
    b_scale = max(np.abs(bt).max(), 1.0)
    if np.abs(bt[nf:]).max() > nonlinear_tol * b_scale:
        raise SystemStructureError(
            "the input drives the algebraic (impulsive) equations; the "
            "resulting feedthrough cannot be represented by a polynomial "
            "ODE — handle the linear part with DescriptorPencil."
            "regular_state_space instead"
        )
    e11_inv = np.linalg.inv(pencil.e_finite)

    def finite_rows(mat):
        return e11_inv @ (wt @ mat)[:nf]

    g1_r = np.linalg.solve(pencil.e_finite, pencil.a_finite)
    b_r = finite_rows(system.b)

    def transform_poly(coeff, order):
        if coeff is None:
            return None
        dense = coeff.toarray() if sp.issparse(coeff) else np.asarray(coeff)
        # Columns act on x = V z; restricting to the differential block
        # means substituting x ≈ V1 z1.  Verify the impulsive columns are
        # inert first.
        v_full = pencil.v
        factors = [v_full] * order
        kron_v = factors[0]
        for fac in factors[1:]:
            kron_v = np.kron(kron_v, fac)
        in_z = dense @ kron_v
        # Any column index touching an impulsive coordinate must vanish.
        idx = np.arange(n**order)
        touches_infinite = np.zeros(n**order, dtype=bool)
        for pos in range(order):
            coord = (idx // (n ** (order - 1 - pos))) % n
            touches_infinite |= coord >= nf
        bad = np.abs(in_z[:, touches_infinite]).max() if n**order else 0.0
        scale = max(np.abs(in_z).max(), 1.0)
        if bad > nonlinear_tol * scale:
            raise SystemStructureError(
                "nonlinear terms couple into the impulsive (algebraic) "
                "variables; regular-part extraction is not valid here"
            )
        keep = ~touches_infinite
        reduced_cols = in_z[:, keep]
        reduced = e11_inv @ (wt @ reduced_cols)[:nf]
        return sp.csr_matrix(reduced)

    g2_r = transform_poly(system.g2, 2)
    g3_r = transform_poly(system.g3, 3)
    d1_r = None
    if system.d1 is not None:
        d1_r = [finite_rows(mat @ v1) for mat in system.d1]
    out_r = system.output @ v1
    return PolynomialODE(
        g1_r,
        b_r,
        g2=g2_r,
        g3=g3_r,
        d1=d1_r,
        mass=None,
        output=out_r,
        name=f"{system.name}-regular" if system.name else "regular",
    )
