"""Bilinear systems and Carleman bilinearization.

Before QLDAE-based approaches, the standard route to projection-based
NMOR (Phillips [10 in the paper]) was to approximate a polynomial system
by a *bilinear* one via Carleman linearization: augment the state with
its Kronecker powers and truncate,

    z = [x; x ⊗ x],      z' = A z + Σᵢ Nᵢ z uᵢ + B u.

For the QLDAE ``x' = G1 x + G2 (x⊗x) + D1 x u + b u`` the degree-2
Carleman matrices are

    A = [[G1, G2], [0, G1 ⊕ G1]]          <- note: exactly the paper's Ã2!
    N = [[D1, 0], [b ⊗ I + I ⊗ b, 0]]
    B = [b; 0]

The shared state matrix is no coincidence: the associated transform's
eq.-(17) realization and the Carleman system have the same linear
skeleton — but Carleman *simulates* in the ``n + n²`` space (the memory
explosion the paper's method avoids), while the associated transform
only runs Krylov chains through it.  This module provides the bilinear
class (with the simulation protocol) and the Carleman construction, both
as a baseline and as executable documentation of that connection.
"""

import numpy as np
import scipy.sparse as sp

from .._validation import as_matrix, as_square_matrix
from ..errors import SystemStructureError, ValidationError
from ..linalg.kronecker import kron_sum_power

__all__ = ["BilinearSystem", "carleman_bilinearize"]


class BilinearSystem:
    """Bilinear control system ``x' = A x + Σᵢ Nᵢ x uᵢ + B u``.

    Implements the same evaluation protocol as
    :class:`repro.systems.PolynomialODE` (``rhs``/``jacobian``/``mass``/
    ``observe``) so :func:`repro.simulation.simulate` integrates it
    directly.
    """

    def __init__(self, a, n_mats, b, output=None, name=""):
        self.a = as_square_matrix(a, "a")
        n = self.a.shape[0]
        b = np.asarray(b)
        if b.ndim == 1:
            b = b[:, None]
        self.b = as_matrix(b, "b")
        if self.b.shape[0] != n:
            raise SystemStructureError(
                f"b has {self.b.shape[0]} rows, expected {n}"
            )
        m = self.b.shape[1]
        if sp.issparse(n_mats) or (
            isinstance(n_mats, np.ndarray) and n_mats.ndim == 2
        ):
            n_mats = [n_mats]
        mats = []
        for idx, mat in enumerate(n_mats):
            dense = mat.toarray() if sp.issparse(mat) else np.asarray(mat)
            mats.append(as_square_matrix(dense, f"n_mats[{idx}]"))
            if mats[-1].shape != (n, n):
                raise SystemStructureError(
                    f"n_mats[{idx}] has shape {mats[-1].shape}, "
                    f"expected ({n}, {n})"
                )
        if len(mats) != m:
            raise SystemStructureError(
                f"got {len(mats)} bilinear matrices for {m} inputs"
            )
        self.n_mats = tuple(mats)
        if output is None:
            output = np.eye(n)
        output = np.asarray(output)
        if output.ndim == 1:
            output = output[None, :]
        self.output = as_matrix(output, "output")
        if self.output.shape[1] != n:
            raise SystemStructureError(
                f"output has {self.output.shape[1]} columns, expected {n}"
            )
        self.name = str(name)
        self.mass = None  # simulation protocol

    @property
    def n_states(self):
        return self.a.shape[0]

    @property
    def n_inputs(self):
        return self.b.shape[1]

    @property
    def n_outputs(self):
        return self.output.shape[0]

    def __repr__(self):
        return (
            f"BilinearSystem(n={self.n_states}, inputs={self.n_inputs})"
        )

    # -- evaluation protocol ------------------------------------------------------

    def rhs(self, x, u):
        x = np.asarray(x, dtype=float).reshape(self.n_states)
        u = np.atleast_1d(np.asarray(u, dtype=float))
        if u.shape != (self.n_inputs,):
            raise ValidationError(
                f"input must have shape ({self.n_inputs},), got {u.shape}"
            )
        f = self.a @ x + self.b @ u
        for n_i, u_i in zip(self.n_mats, u):
            if u_i != 0.0:
                f = f + (n_i @ x) * u_i
        return f

    def jacobian(self, x, u):
        u = np.atleast_1d(np.asarray(u, dtype=float))
        jac = self.a.copy()
        for n_i, u_i in zip(self.n_mats, u):
            if u_i != 0.0:
                jac += n_i * u_i
        return jac

    def observe(self, states):
        states = np.asarray(states)
        if states.ndim == 1:
            return self.output @ states
        return states @ self.output.T

    # -- frequency domain ------------------------------------------------------------

    def transfer_h1(self, s):
        """Linear transfer function ``C (sI − A)^{-1} B``."""
        n = self.n_states
        return self.output @ np.linalg.solve(
            s * np.eye(n) - self.a.astype(complex), self.b.astype(complex)
        )

    def transfer_h2(self, s1, s2):
        """Second-order bilinear transfer function (regular kernel).

        For a SISO bilinear system the growing-exponential method gives
        ``H2(s1, s2) = ½ C ((s1+s2)I − A)^{-1} N (s1 I − A)^{-1} B``
        symmetrized over ``s1 ↔ s2``.
        """
        if self.n_inputs != 1:
            raise SystemStructureError(
                "transfer_h2 currently supports single-input systems"
            )
        n = self.n_states
        eye = np.eye(n)
        n_mat = self.n_mats[0]

        def phi(sa, sb):
            inner = np.linalg.solve(
                sa * eye - self.a.astype(complex),
                self.b.astype(complex),
            )
            return np.linalg.solve(
                (sa + sb) * eye - self.a.astype(complex), n_mat @ inner
            )

        return 0.5 * self.output @ (phi(s1, s2) + phi(s2, s1))


def carleman_bilinearize(system, degree=2):
    """Degree-2 Carleman bilinearization of a quadratic system.

    Parameters
    ----------
    system : QLDAE / PolynomialODE (explicit; no cubic term)
        The quadratic system to bilinearize.
    degree : int
        Only ``degree=2`` is implemented (state ``z = [x; x⊗x]``).

    Returns
    -------
    BilinearSystem of dimension ``n + n²`` whose response agrees with the
    original up to third-order terms in the input amplitude.

    Notes
    -----
    The truncation drops the ``G2 ⊗ I``-type couplings into ``x⊗x⊗x``
    and the second-order input couplings of the ``x⊗x`` block, which is
    the standard degree-2 Carleman approximation.
    """
    if degree != 2:
        raise ValidationError("only degree-2 Carleman is implemented")
    if system.mass is not None:
        raise SystemStructureError(
            "carleman_bilinearize requires an explicit system"
        )
    if getattr(system, "g3", None) is not None:
        raise SystemStructureError(
            "cubic terms are not supported by degree-2 Carleman"
        )
    n = system.n_states
    m = system.n_inputs
    # Carleman lifting is dense by construction; densify sparse stamps.
    g1 = system.g1.toarray() if sp.issparse(system.g1) else system.g1
    g2 = (
        system.g2.toarray()
        if system.g2 is not None
        else np.zeros((n, n * n))
    )
    ks = kron_sum_power(g1, 2)
    ks = ks.toarray() if sp.issparse(ks) else np.asarray(ks)

    dim = n + n * n
    a = np.zeros((dim, dim))
    a[:n, :n] = g1
    a[:n, n:] = g2
    a[n:, n:] = ks

    b_big = np.zeros((dim, m))
    b_big[:n] = system.b

    eye = np.eye(n)
    n_mats = []
    for i in range(m):
        n_i = np.zeros((dim, dim))
        if system.d1 is not None:
            d1_i = system.d1[i]
            n_i[:n, :n] = d1_i.toarray() if sp.issparse(d1_i) else d1_i
        b_col = system.b[:, i]
        # d(x⊗x)/dt picks up (b⊗I + I⊗b) x u from the input terms.
        n_i[n:, :n] = np.kron(b_col[:, None], eye) + np.kron(
            eye, b_col[:, None]
        )
        n_mats.append(n_i)

    output = np.hstack(
        [system.output, np.zeros((system.n_outputs, n * n))]
    )
    return BilinearSystem(
        a,
        n_mats,
        b_big,
        output=output,
        name=f"{system.name}-carleman" if system.name else "carleman",
    )
