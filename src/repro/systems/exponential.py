"""Systems with exponential (diode-type) nonlinearities and their exact
quadratic-linearization.

The paper's transmission-line examples use diodes with
``i_D = e^{40 v_D} − 1``.  Such systems,

    C x' = A x + Σ_e f_e (exp(a_eᵀ x) − 1) + B u,

are *exactly* equivalent to a QLDAE after adding one state per
exponential, ``y_e = exp(a_eᵀ x) − 1`` (QLMOR's polynomialization [4, 5
in the paper]):

    x'   = A x + F y + B u
    y_e' = (1 + y_e) a_eᵀ x' = c_eᵀ z + y_e (c_eᵀ z) + (a_eᵀ B)(1 + y_e) u

with ``z = [x; y]`` and ``c_eᵀ = a_eᵀ [A, F]``.  Note how the input
coupling produces exactly the paper's ``D1 z u`` term **iff** some
exponential "sees" the input (``a_eᵀ B ≠ 0``) — this is why the paper's
voltage-source circuit (§3.1) has a ``D1`` term while the current-source
variant (§3.2) does not.
"""

import numpy as np

from .._validation import as_matrix, as_square_matrix, as_vector
from ..errors import SystemStructureError
from .polynomial import QLDAE

__all__ = ["ExpTerm", "ExponentialODE"]


class ExpTerm:
    """One exponential nonlinearity ``f (exp(aᵀ x) − 1)``.

    Parameters
    ----------
    coefficient : (n,) array_like
        Direction ``f`` the current is injected into.
    exponent : (n,) array_like
        Linear form ``a`` inside the exponential.
    """

    def __init__(self, coefficient, exponent):
        self.coefficient = as_vector(coefficient, "coefficient")
        self.exponent = as_vector(exponent, "exponent")
        if self.coefficient.shape != self.exponent.shape:
            raise SystemStructureError(
                "coefficient and exponent vectors must have equal length"
            )

    @property
    def n(self):
        return self.coefficient.size


class ExponentialODE:
    """ODE with exponential nonlinearities (pre-lifting form).

    Implements the same evaluation protocol as
    :class:`repro.systems.PolynomialODE` (``rhs``/``jacobian``/``mass``/
    ``observe``) so the transient simulator can integrate it directly —
    this provides the ground truth that the lifted QLDAE must match
    exactly.
    """

    def __init__(self, g1, b, exp_terms, mass=None, output=None, name=""):
        self.g1 = as_square_matrix(g1, "g1")
        n = self.g1.shape[0]
        b = np.asarray(b)
        if b.ndim == 1:
            b = b[:, None]
        self.b = as_matrix(b, "b")
        if self.b.shape[0] != n:
            raise SystemStructureError(
                f"b has {self.b.shape[0]} rows, expected {n}"
            )
        self.exp_terms = tuple(exp_terms)
        for term in self.exp_terms:
            if not isinstance(term, ExpTerm):
                raise SystemStructureError(
                    "exp_terms must contain ExpTerm instances"
                )
            if term.n != n:
                raise SystemStructureError(
                    f"ExpTerm dimension {term.n} != system dimension {n}"
                )
        self.mass = None if mass is None else as_square_matrix(mass, "mass")
        if output is None:
            output = np.eye(n)
        output = np.asarray(output)
        if output.ndim == 1:
            output = output[None, :]
        self.output = as_matrix(output, "output")
        self.name = str(name)

    @property
    def n_states(self):
        return self.g1.shape[0]

    @property
    def n_inputs(self):
        return self.b.shape[1]

    @property
    def n_outputs(self):
        return self.output.shape[0]

    def __repr__(self):
        return (
            f"ExponentialODE(n={self.n_states}, inputs={self.n_inputs}, "
            f"exp_terms={len(self.exp_terms)})"
        )

    # -- evaluation protocol (duck-typed with PolynomialODE) -----------------

    def rhs(self, x, u):
        x = np.asarray(x, dtype=float).reshape(self.n_states)
        u = np.atleast_1d(np.asarray(u, dtype=float))
        f = self.g1 @ x + self.b @ u
        for term in self.exp_terms:
            f = f + term.coefficient * np.expm1(term.exponent @ x)
        return f

    def jacobian(self, x, u):
        x = np.asarray(x, dtype=float).reshape(self.n_states)
        jac = self.g1.copy()
        for term in self.exp_terms:
            gain = np.exp(term.exponent @ x)
            jac += np.outer(term.coefficient, term.exponent) * gain
        return jac

    def observe(self, states):
        states = np.asarray(states)
        if states.ndim == 1:
            return self.output @ states
        return states @ self.output.T

    def to_explicit(self):
        """Fold an invertible mass matrix into the coefficients."""
        if self.mass is None:
            return self
        inv = np.linalg.inv(self.mass)
        terms = [
            ExpTerm(inv @ t.coefficient, t.exponent) for t in self.exp_terms
        ]
        return ExponentialODE(
            inv @ self.g1,
            inv @ self.b,
            terms,
            mass=None,
            output=self.output,
            name=self.name,
        )

    # -- polynomial approximations ------------------------------------------------

    def taylor_polynomial(self, order=2):
        """Taylor-truncate the exponentials to a polynomial system.

        ``f (e^{aᵀx} − 1) ≈ f [aᵀx + (aᵀx)²/2 + (aᵀx)³/6]`` keeps the
        state dimension at ``n`` (no lifting) and yields an invertible
        ``G1`` (DC expansion works), at the cost of being approximate for
        large signals.  ``order=2`` returns a :class:`QLDAE`, ``order=3``
        a :class:`PolynomialODE` with both G2 and G3.

        Unlike :meth:`quadratic_linearize` (exact, adds states, and has
        structurally singular ``G1`` at DC), this is the classical
        weakly-nonlinear modeling route.
        """
        if order not in (2, 3):
            raise SystemStructureError("taylor order must be 2 or 3")
        base = self.to_explicit()
        n = base.n_states
        g1 = base.g1.copy()
        rows2, cols2, vals2 = [], [], []
        rows3, cols3, vals3 = [], [], []
        for term in base.exp_terms:
            a = term.exponent
            f = term.coefficient
            nz_a = np.nonzero(a)[0]
            nz_f = np.nonzero(f)[0]
            g1 += np.outer(f, a)
            for r in nz_f:
                for i in nz_a:
                    for j in nz_a:
                        rows2.append(r)
                        cols2.append(i * n + j)
                        vals2.append(0.5 * f[r] * a[i] * a[j])
                        if order >= 3:
                            for k in nz_a:
                                rows3.append(r)
                                cols3.append((i * n + j) * n + k)
                                vals3.append(
                                    f[r] * a[i] * a[j] * a[k] / 6.0
                                )
        import scipy.sparse as sp

        g2 = sp.csr_matrix(
            (vals2, (rows2, cols2)), shape=(n, n * n)
        ) if rows2 else None
        if order == 2:
            return QLDAE(
                g1,
                base.b,
                g2=g2,
                output=base.output,
                name=f"{self.name}-taylor2" if self.name else "taylor2",
            )
        from .polynomial import PolynomialODE

        g3 = sp.csr_matrix(
            (vals3, (rows3, cols3)), shape=(n, n**3)
        ) if rows3 else None
        return PolynomialODE(
            g1,
            base.b,
            g2=g2,
            g3=g3,
            output=base.output,
            name=f"{self.name}-taylor3" if self.name else "taylor3",
        )

    # -- quadratic-linearization ------------------------------------------------

    def quadratic_linearize(self):
        """Exact lifting to a :class:`repro.systems.QLDAE`.

        Adds one state ``y_e = exp(a_eᵀ x) − 1`` per exponential term; the
        lifted system's trajectory restricted to the ``x`` block equals
        the original system's trajectory exactly (for the consistent
        initial condition ``y_e(0) = exp(a_eᵀ x(0)) − 1``).
        """
        base = self.to_explicit()
        n = base.n_states
        m = base.n_inputs
        n_exp = len(base.exp_terms)
        nz = n + n_exp
        f_mat = (
            np.column_stack([t.coefficient for t in base.exp_terms])
            if n_exp
            else np.zeros((n, 0))
        )
        a_mat = (
            np.column_stack([t.exponent for t in base.exp_terms])
            if n_exp
            else np.zeros((n, 0))
        )

        g1 = np.zeros((nz, nz))
        g1[:n, :n] = base.g1
        g1[:n, n:] = f_mat
        # y_e' linear part: a_eᵀ (A x + F y)
        g1[n:, :n] = a_mat.T @ base.g1
        g1[n:, n:] = a_mat.T @ f_mat

        b = np.zeros((nz, m))
        b[:n] = base.b
        b[n:] = a_mat.T @ base.b

        # Quadratic part: row (n + e) carries y_e * (c_eᵀ z).
        rows = []
        cols = []
        vals = []
        for e in range(n_exp):
            c_e = g1[n + e, :]  # = a_eᵀ [A, F]
            nonzero = np.nonzero(c_e)[0]
            for j in nonzero:
                rows.append(n + e)
                cols.append((n + e) * nz + j)
                vals.append(c_e[j])
        import scipy.sparse as sp

        g2 = sp.csr_matrix(
            (vals, (rows, cols)), shape=(nz, nz * nz)
        )

        # Bilinear input part: y_e * (a_eᵀ B u).
        ab = a_mat.T @ base.b  # (n_exp, m)
        d1 = None
        if n_exp and np.any(ab != 0.0):
            d1 = []
            for i in range(m):
                mat = np.zeros((nz, nz))
                for e in range(n_exp):
                    mat[n + e, n + e] = ab[e, i]
                d1.append(mat)

        output = np.hstack([base.output, np.zeros((base.n_outputs, n_exp))])
        return QLDAE(
            g1,
            b,
            g2=g2,
            d1=d1,
            output=output,
            name=f"{self.name}-qldae" if self.name else "qldae",
        )
