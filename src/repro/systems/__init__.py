"""System classes: LTI state spaces, QLDAE / cubic polynomial systems,
and descriptor-pencil regularization."""

from .bilinear import BilinearSystem, carleman_bilinearize
from .descriptor import DescriptorPencil, regularize_polynomial
from .exponential import ExponentialODE, ExpTerm
from .lti import StateSpace
from .polynomial import CubicODE, PolynomialODE, QLDAE

__all__ = [
    "BilinearSystem",
    "carleman_bilinearize",
    "DescriptorPencil",
    "regularize_polynomial",
    "ExponentialODE",
    "ExpTerm",
    "StateSpace",
    "CubicODE",
    "PolynomialODE",
    "QLDAE",
]
