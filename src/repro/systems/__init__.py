"""System classes: LTI state spaces, QLDAE / cubic polynomial systems,
and descriptor-pencil regularization."""

from ..errors import ValidationError
from .bilinear import BilinearSystem, carleman_bilinearize
from .descriptor import DescriptorPencil, regularize_polynomial
from .exponential import ExponentialODE, ExpTerm
from .lti import StateSpace
from .polynomial import CubicODE, PolynomialODE, QLDAE


def system_from_dict(data):
    """Rebuild any serializable system from its payload dict.

    Dispatches on the recorded ``__class__`` across the serializable
    system families (:class:`StateSpace` and the :class:`PolynomialODE`
    hierarchy) — the generic entry point used by
    :meth:`repro.mor.ReducedOrderModel.from_dict`, which cannot know in
    advance which family a saved ROM projected.
    """
    kind = data.get("__class__")
    if kind == "StateSpace":
        return StateSpace.from_dict(data)
    if kind in ("PolynomialODE", "QLDAE", "CubicODE"):
        return PolynomialODE.from_dict(data)
    raise ValidationError(
        f"payload describes {kind!r}, which is not a serializable "
        "system class"
    )


__all__ = [
    "system_from_dict",
    "BilinearSystem",
    "carleman_bilinearize",
    "DescriptorPencil",
    "regularize_polynomial",
    "ExponentialODE",
    "ExpTerm",
    "StateSpace",
    "CubicODE",
    "PolynomialODE",
    "QLDAE",
]
