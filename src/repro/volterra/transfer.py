"""Multivariate Volterra transfer functions (paper eqs. 14a–14c).

For the explicit polynomial system

    x' = G1 x + G2 (x ⊗ x) + G3 (x ⊗ x ⊗ x) + Σᵢ D1ᵢ x uᵢ + B u

the growing-exponential (harmonic probing) method yields the symmetric
transfer functions::

    H1(s)          = (sI − G1)^{-1} B
    H2(s1, s2)     = ½ ((s1+s2)I − G1)^{-1} [ G2 (H1⊗H1 + swap)
                                              + D1-coupling ]
    H3(s1, s2, s3) = ⅓ ((s1+s2+s3)I − G1)^{-1} [ G2 (6 H1⊗H2 terms)
                                              + D1 (3 H2 terms)
                                              + ½ G3 Σ_perms H1⊗H1⊗H1 ]

MIMO convention: ``Hn(s1, ..., sn)`` is an ``(n_states, m**n)`` matrix
acting on ``a1 ⊗ a2 ⊗ ... ⊗ an`` where ``aᵢ`` is the complex input
amplitude vector at frequency ``sᵢ``.  The symmetry of the kernels is the
joint statement ``Hn(s_π)[:, π(cols)] = Hn(s)[:, cols]`` for every
permutation π, which the test suite verifies.

Evaluation is delegated to a per-system :class:`~repro.volterra.evaluator.
VolterraEvaluator`, which factors ``G1`` once (shared with the associated
realizations and the distortion sweeps) and memoizes the ``H1``/``H2``
sub-kernels, so repeated and nested evaluations — ``volterra_h3`` alone
needs every ``H1(sᵢ)`` and ``H2(sᵢ, sⱼ)`` — never re-solve.
"""

import numpy as np
import scipy.sparse as sp

from .._validation import check_positive_int
from ..errors import SystemStructureError

__all__ = [
    "input_permutation",
    "permutation_indices",
    "apply_input_permutation",
    "volterra_h1",
    "volterra_h2",
    "volterra_h3",
    "output_transfer",
]


def _require_explicit(system):
    if system.mass is not None:
        raise SystemStructureError(
            "transfer functions require an explicit system; call "
            "to_explicit() first"
        )


def permutation_indices(m, perm):
    """Column indices realizing an input-slot permutation by fancy indexing.

    Returns the index array ``idx`` with
    ``M @ input_permutation(m, perm) == M[:, idx]`` — the ``O(n·m^k)``
    way to apply the permutation, versus the dense ``O(n·m^{2k})``
    matmul against a materialized permutation matrix.
    """
    m = check_positive_int(m, "m")
    k = len(perm)
    size = m**k
    cols = np.arange(size)
    digits = [(cols // (m ** (k - 1 - t))) % m for t in range(k)]
    rows = np.zeros(size, dtype=np.intp)
    for t in range(k):
        rows = rows * m + digits[perm[t]]
    return rows


def apply_input_permutation(matrix, m, perm):
    """Apply ``matrix @ input_permutation(m, perm)`` without the matmul."""
    return matrix[:, permutation_indices(m, perm)]


def input_permutation(m, perm):
    """Permutation matrix ``P`` with ``P (a_1 ⊗ ... ⊗ a_k) = a_{perm[0]} ⊗ ...``.

    *perm* is a tuple of 0-based indices of length ``k``.  The matrix has
    size ``m**k`` and reorders the Kronecker factors of the input
    amplitudes, which is how kernel symmetry is expressed for MIMO
    systems.  Hot paths should use :func:`permutation_indices` /
    :func:`apply_input_permutation` instead of multiplying by this matrix.
    """
    rows = permutation_indices(m, perm)
    size = rows.size
    cols = np.arange(size)
    data = np.ones(size)
    return sp.csr_matrix((data, (rows, cols)), shape=(size, size))


def _evaluator(system):
    from .evaluator import volterra_evaluator

    return volterra_evaluator(system)


def volterra_h1(system, s):
    """First-order transfer function ``H1(s) = (sI − G1)^{-1} B``."""
    _require_explicit(system)
    return _evaluator(system).h1(s)


def volterra_h2(system, s1, s2):
    """Symmetric second-order transfer function (paper eq. 14b), MIMO.

    Returns an ``(n, m²)`` complex matrix.
    """
    _require_explicit(system)
    return _evaluator(system).h2(s1, s2)


def volterra_h3(system, s1, s2, s3):
    """Symmetric third-order transfer function (paper eq. 14c + cubic).

    Returns an ``(n, m³)`` complex matrix.  Includes the quadratic
    (``G2``), bilinear-input (``D1``) and cubic (``G3``) contributions;
    each may be absent.
    """
    _require_explicit(system)
    return _evaluator(system).h3(s1, s2, s3)


def output_transfer(system, h_matrix):
    """Apply the system's output map to a transfer-function matrix."""
    return system.output @ h_matrix
