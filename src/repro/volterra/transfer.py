"""Multivariate Volterra transfer functions (paper eqs. 14a–14c).

For the explicit polynomial system

    x' = G1 x + G2 (x ⊗ x) + G3 (x ⊗ x ⊗ x) + Σᵢ D1ᵢ x uᵢ + B u

the growing-exponential (harmonic probing) method yields the symmetric
transfer functions::

    H1(s)          = (sI − G1)^{-1} B
    H2(s1, s2)     = ½ ((s1+s2)I − G1)^{-1} [ G2 (H1⊗H1 + swap)
                                              + D1-coupling ]
    H3(s1, s2, s3) = ⅓ ((s1+s2+s3)I − G1)^{-1} [ G2 (6 H1⊗H2 terms)
                                              + D1 (3 H2 terms)
                                              + ½ G3 Σ_perms H1⊗H1⊗H1 ]

MIMO convention: ``Hn(s1, ..., sn)`` is an ``(n_states, m**n)`` matrix
acting on ``a1 ⊗ a2 ⊗ ... ⊗ an`` where ``aᵢ`` is the complex input
amplitude vector at frequency ``sᵢ``.  The symmetry of the kernels is the
joint statement ``Hn(s_π)[:, π(cols)] = Hn(s)[:, cols]`` for every
permutation π, which the test suite verifies.
"""

import itertools

import numpy as np
import scipy.sparse as sp

from .._validation import check_positive_int
from ..errors import SystemStructureError

__all__ = [
    "input_permutation",
    "volterra_h1",
    "volterra_h2",
    "volterra_h3",
    "output_transfer",
]


def _require_explicit(system):
    if system.mass is not None:
        raise SystemStructureError(
            "transfer functions require an explicit system; call "
            "to_explicit() first"
        )


def input_permutation(m, perm):
    """Permutation matrix ``P`` with ``P (a_1 ⊗ ... ⊗ a_k) = a_{perm[0]} ⊗ ...``.

    *perm* is a tuple of 0-based indices of length ``k``.  The matrix has
    size ``m**k`` and reorders the Kronecker factors of the input
    amplitudes, which is how kernel symmetry is expressed for MIMO
    systems.
    """
    m = check_positive_int(m, "m")
    k = len(perm)
    size = m**k
    cols = np.arange(size)
    digits = [(cols // (m ** (k - 1 - t))) % m for t in range(k)]
    rows = np.zeros(size, dtype=np.intp)
    for t in range(k):
        rows = rows * m + digits[perm[t]]
    data = np.ones(size)
    return sp.csr_matrix((data, (rows, cols)), shape=(size, size))


def _resolvent_solve(g1, s, rhs):
    n = g1.shape[0]
    return np.linalg.solve(s * np.eye(n) - g1.astype(complex), rhs)


def volterra_h1(system, s):
    """First-order transfer function ``H1(s) = (sI − G1)^{-1} B``."""
    _require_explicit(system)
    return _resolvent_solve(system.g1, s, system.b.astype(complex))


def _d1_coupling_h2(system, h1_a, h1_b):
    """The MIMO D1 coupling of H2 at ``(s1, s2)``.

    Column ``(p, q)`` receives ``D1_q H1(s1)[:, p] + D1_p H1(s2)[:, q]``
    (input p rides on the state response, input q multiplies it, and the
    symmetric partner term).
    """
    n = system.n_states
    m = system.n_inputs
    coupling = np.zeros((n, m * m), dtype=complex)
    if system.d1 is None:
        return coupling
    for p in range(m):
        for q in range(m):
            col = p * m + q
            coupling[:, col] += system.d1[q] @ h1_a[:, p]
            coupling[:, col] += system.d1[p] @ h1_b[:, q]
    return coupling


def volterra_h2(system, s1, s2):
    """Symmetric second-order transfer function (paper eq. 14b), MIMO.

    Returns an ``(n, m²)`` complex matrix.
    """
    _require_explicit(system)
    if system.g2 is None and system.d1 is None:
        n, m = system.n_states, system.n_inputs
        return np.zeros((n, m * m), dtype=complex)
    m = system.n_inputs
    h1_a = volterra_h1(system, s1)
    h1_b = volterra_h1(system, s2)
    terms = _d1_coupling_h2(system, h1_a, h1_b)
    if system.g2 is not None:
        swap = input_permutation(m, (1, 0))
        pair = np.kron(h1_a, h1_b) + np.kron(h1_b, h1_a) @ swap.toarray()
        terms = terms + system.g2 @ pair
    return 0.5 * _resolvent_solve(system.g1, s1 + s2, terms)


def _d1_coupling_h3(system, s_list):
    """The MIMO D1 coupling of H3: ``Σ_k D1_{p_k} H2(s_i, s_j)`` terms."""
    n = system.n_states
    m = system.n_inputs
    coupling = np.zeros((n, m**3), dtype=complex)
    if system.d1 is None:
        return coupling
    s1, s2, s3 = s_list
    # Input slot k carries u (through D1); the remaining two ride in H2.
    for k, (si, sj) in ((2, (s1, s2)), (1, (s1, s3)), (0, (s2, s3))):
        h2_pair = volterra_h2(system, si, sj)
        pair_slots = [t for t in range(3) if t != k]
        for p in range(m):
            for q in range(m):
                for r in range(m):
                    triple = (p, q, r)
                    col = (p * m + q) * m + r
                    u_idx = triple[k]
                    a_idx = triple[pair_slots[0]]
                    b_idx = triple[pair_slots[1]]
                    coupling[:, col] += (
                        system.d1[u_idx] @ h2_pair[:, a_idx * m + b_idx]
                    )
    return coupling


def volterra_h3(system, s1, s2, s3):
    """Symmetric third-order transfer function (paper eq. 14c + cubic).

    Returns an ``(n, m³)`` complex matrix.  Includes the quadratic
    (``G2``), bilinear-input (``D1``) and cubic (``G3``) contributions;
    each may be absent.
    """
    _require_explicit(system)
    n = system.n_states
    m = system.n_inputs
    s_list = (s1, s2, s3)
    terms = np.zeros((n, m**3), dtype=complex)

    if system.g2 is not None:
        # Six H1 ⊗ H2 pairings: variable i carries H1, the pair (j, k)
        # carries H2, on both Kronecker sides.
        h1_cache = {s: volterra_h1(system, s) for s in set(s_list)}
        for i in range(3):
            j, k = [t for t in range(3) if t != i]
            h1_i = h1_cache[s_list[i]]
            h2_jk = volterra_h2(system, s_list[j], s_list[k])
            perm_left = input_permutation(m, (i, j, k))
            perm_right = input_permutation(m, (j, k, i))
            terms += system.g2 @ (np.kron(h1_i, h2_jk) @ perm_left.toarray())
            terms += system.g2 @ (np.kron(h2_jk, h1_i) @ perm_right.toarray())

    terms += _d1_coupling_h3(system, s_list)

    if system.g3 is not None:
        h1_cache = {s: volterra_h1(system, s) for s in set(s_list)}
        triple = np.zeros((n**3, m**3), dtype=complex)
        for perm in itertools.permutations(range(3)):
            block = np.kron(
                h1_cache[s_list[perm[0]]],
                np.kron(h1_cache[s_list[perm[1]]], h1_cache[s_list[perm[2]]]),
            )
            triple += block @ input_permutation(m, perm).toarray()
        terms = terms + 0.5 * (system.g3 @ triple)

    return _resolvent_solve(system.g1, s1 + s2 + s3, terms) / 3.0


def output_transfer(system, h_matrix):
    """Apply the system's output map to a transfer-function matrix."""
    return system.output @ h_matrix
