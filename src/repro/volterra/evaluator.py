"""Memoizing Volterra-kernel evaluator over a shared resolvent factory.

``volterra_h3`` needs every ``H1(sᵢ)`` and every ``H2(sᵢ, sⱼ)``; a
distortion sweep needs ``H1``/``H2``/``H3`` at each grid point, with the
same ``H1(jω)`` appearing inside all of them.  Evaluating each kernel
from scratch therefore recomputes the same resolvent solves many times
over — and re-factors ``sI − G1`` for every single one.

:class:`VolterraEvaluator` fixes both levels:

* all solves go through one :class:`~repro.linalg.resolvent.
  ResolventFactory` (a single Schur factorization of ``G1``, shared with
  the associated-transform machinery via
  :meth:`ResolventFactory.for_system`), so any shift costs ``O(n²)``;
* computed ``H1(s)`` / ``H2(s1, s2)`` blocks are memoized (bounded LRU),
  so nested kernel assembly and whole frequency sweeps reuse them.  The
  ``H2`` cache is keyed on the *unordered* frequency pair: the kernel
  symmetry ``H2(s1, s2) = H2(s2, s1) P_swap`` turns one stored block
  into both orderings via column indexing.

Caches hold factored forms and solved blocks — never approximations —
so results match the direct formulas to rounding (asserted in
``tests/test_resolvent.py``).
"""

import itertools
import threading
from collections import OrderedDict

import numpy as np

from ..engine import SolvePlan
from ..linalg.kronecker import sparse_kron_apply
from ..linalg.resolvent import ResolventFactory
from .transfer import _require_explicit, permutation_indices

__all__ = ["VolterraEvaluator", "volterra_evaluator"]

#: Default bound on memoized H1/H2 entries (oldest-used evicted first).
_DEFAULT_MAX_ENTRIES = 4096

#: Serializes :func:`volterra_evaluator` so concurrent callers observe
#: exactly one evaluator per system object.
_EVALUATOR_LOCK = threading.Lock()


def _system_key(system):
    """The attributes the kernels depend on, for cache invalidation.

    Compared by identity: rebinding any of these on the system (or
    handing in a different system object) invalidates the evaluator.
    """
    return (system.g1, system.g2, system.g3, system.d1, system.b)


class VolterraEvaluator:
    """Cached evaluation of ``H1``/``H2``/``H3`` for one explicit system.

    Parameters
    ----------
    system : PolynomialODE (explicit)
    factory : ResolventFactory, optional
        Resolvent solver to share; defaults to the system's cached one.
    max_entries : int
        Bound on the number of memoized ``H1`` and ``H2`` blocks each.

    Attributes
    ----------
    stats : dict
        Counters (``h1_solves``, ``h1_hits``, ``h2_solves``, ``h2_hits``,
        ``h3_evals``) — used by the tests to assert reuse actually
        happens.
    """

    def __init__(self, system, factory=None, max_entries=_DEFAULT_MAX_ENTRIES):
        _require_explicit(system)
        self.system = system
        self.max_entries = int(max_entries)
        self._factory = factory
        self._h1_cache = OrderedDict()
        self._h2_cache = OrderedDict()
        # One lock guards both memo tables and the stats counters, so
        # engine-dispatched sweep tasks can share one evaluator.  Kernel
        # *computation* happens outside the lock: two threads racing on
        # the same cold key duplicate the (deterministic) solve and the
        # first insert wins — never a torn or partial cache entry.
        self._cache_lock = threading.Lock()
        self._key = _system_key(system)
        # One-time COO views of the (immutable-by-contract) nonlinear
        # coefficient matrices: the streamed kernel contractions hit
        # them at every frequency point of a sweep.
        self._g2_coo = (
            None if system.g2 is None else system.g2.tocoo()
        )
        self._g3_coo = (
            None if system.g3 is None else system.g3.tocoo()
        )
        self.stats = {
            "h1_solves": 0,
            "h1_hits": 0,
            "h2_solves": 0,
            "h2_hits": 0,
            "h3_evals": 0,
        }

    @property
    def factory(self):
        """The shared resolvent factory (built lazily: kernel requests
        that short-circuit to zero never trigger a factorization)."""
        if self._factory is None:
            self._factory = ResolventFactory.for_system(self.system)
        return self._factory

    def matches(self, system):
        """True when this evaluator is still valid for *system*."""
        current = _system_key(system)
        return all(a is b for a, b in zip(self._key, current))

    def clear_cache(self):
        """Drop all memoized kernel blocks (the factorization stays)."""
        with self._cache_lock:
            self._h1_cache.clear()
            self._h2_cache.clear()

    def _cache_get(self, cache, key, hit_counter):
        """Locked lookup; a hit bumps *hit_counter* and LRU recency."""
        with self._cache_lock:
            value = cache.get(key)
            if value is not None:
                cache.move_to_end(key)
                self.stats[hit_counter] += 1
        return value

    def _cache_put(self, cache, key, value, solve_counter):
        """Locked insert; returns the winning entry on a concurrent race."""
        with self._cache_lock:
            existing = cache.get(key)
            if existing is not None:
                cache.move_to_end(key)
                return existing
            cache[key] = value
            self.stats[solve_counter] += 1
            if len(cache) > self.max_entries:
                cache.popitem(last=False)
        return value

    # -- H1 ------------------------------------------------------------------

    def h1(self, s):
        """``H1(s) = (sI − G1)^{-1} B`` (memoized)."""
        key = complex(s)
        cached = self._cache_get(self._h1_cache, key, "h1_hits")
        if cached is not None:
            return cached.copy()
        value = self.factory.solve(key, self.system.b)
        value = self._cache_put(self._h1_cache, key, value, "h1_solves")
        return value.copy()

    def prime_h1(self, shifts):
        """Batch-solve ``H1`` at all uncached *shifts* in one pass.

        Uses :meth:`ResolventFactory.solve_many`, which hoists the basis
        rotations out of the shift loop and dispatches the per-shift
        substitutions through the engine backend — the fast way to seed
        a whole frequency grid before a sweep.
        """
        with self._cache_lock:
            wanted = []
            seen = set()
            for s in np.atleast_1d(np.asarray(shifts, dtype=complex)):
                key = complex(s)
                # Set-based dedup: the former ``key not in wanted`` list
                # scan was O(k²) work *inside* the cache lock that every
                # parallel sweep task contends on.
                if key not in seen and key not in self._h1_cache:
                    seen.add(key)
                    wanted.append(key)
        if not wanted:
            return
        blocks = self.factory.solve_many(wanted, self.system.b)
        for key, block in zip(wanted, blocks):
            self._cache_put(self._h1_cache, key, block, "h1_solves")

    # -- H2 ------------------------------------------------------------------

    def _d1_coupling_h2(self, h1_a, h1_b):
        """MIMO D1 coupling of H2: column ``(p, q)`` receives
        ``D1_q H1(s1)[:, p] + D1_p H1(s2)[:, q]``."""
        system = self.system
        n, m = system.n_states, system.n_inputs
        coupling = np.zeros((n, m * m), dtype=complex)
        if system.d1 is None:
            return coupling
        for p in range(m):
            for q in range(m):
                col = p * m + q
                coupling[:, col] += system.d1[q] @ h1_a[:, p]
                coupling[:, col] += system.d1[p] @ h1_b[:, q]
        return coupling

    def _h2_compute(self, s1, s2):
        system = self.system
        m = system.n_inputs
        h1_a = self.h1(s1)
        h1_b = self.h1(s2)
        terms = self._d1_coupling_h2(h1_a, h1_b)
        if system.g2 is not None:
            # Stream the G2 contraction against the H1 factors directly
            # (O(nnz·m²)); the former ``np.kron`` pair materialized two
            # (n², m²) complex intermediates.
            swap = permutation_indices(m, (1, 0))
            terms = terms + sparse_kron_apply(self._g2_coo, (h1_a, h1_b))
            terms = terms + sparse_kron_apply(
                self._g2_coo, (h1_b, h1_a)
            )[:, swap]
        return 0.5 * self.factory.solve(s1 + s2, terms)

    @staticmethod
    def _h2_key(s1, s2):
        """Canonical (unordered) cache key; ``swapped`` marks reordering."""
        a, b = complex(s1), complex(s2)
        swapped = (a.real, a.imag) > (b.real, b.imag)
        return ((b, a), True) if swapped else ((a, b), False)

    def h2(self, s1, s2):
        """Symmetric ``H2(s1, s2)`` — an ``(n, m²)`` matrix (memoized).

        Cached per unordered frequency pair; the swapped ordering is
        recovered through the kernel symmetry
        ``H2(s1, s2) = H2(s2, s1)[:, P_swap]``.
        """
        system = self.system
        if system.g2 is None and system.d1 is None:
            n, m = system.n_states, system.n_inputs
            return np.zeros((n, m * m), dtype=complex)
        key, swapped = self._h2_key(s1, s2)
        cached = self._cache_get(self._h2_cache, key, "h2_hits")
        if cached is None:
            cached = self._h2_compute(*key)
            cached = self._cache_put(
                self._h2_cache, key, cached, "h2_solves"
            )
        if swapped and system.n_inputs > 1:
            return cached[:, permutation_indices(system.n_inputs, (1, 0))]
        return cached.copy()

    def prime_h2(self, pairs):
        """Batch-solve ``H2`` at all uncached frequency *pairs*.

        *pairs* is an iterable of ``(s1, s2)`` tuples.  Keys are
        canonicalized to the unordered pair (the symmetric-pair cache),
        deduplicated against the memo table, and the missing kernels are
        emitted as one :class:`~repro.engine.SolvePlan` — the
        embarrassingly parallel H2 grid behind a distortion sweep.  The
        required ``H1`` seeds should be primed first
        (:meth:`prime_h1`); they are resolved through the shared memo
        either way.
        """
        with self._cache_lock:
            wanted = []
            seen = set()
            for s1, s2 in pairs:
                key, _ = self._h2_key(s1, s2)
                if key not in seen and key not in self._h2_cache:
                    seen.add(key)
                    wanted.append(key)
        if not wanted:
            return
        plan = SolvePlan("evaluator.prime_h2")
        for key in wanted:
            plan.add(self._h2_compute, key[0], key[1], tag=key)
        blocks = plan.execute()
        for key, block in zip(wanted, blocks):
            self._cache_put(self._h2_cache, key, block, "h2_solves")

    # -- H3 ------------------------------------------------------------------

    def _d1_coupling_h3(self, s_list):
        """MIMO D1 coupling of H3: ``Σ_k D1_{p_k} H2(s_i, s_j)`` terms."""
        system = self.system
        n, m = system.n_states, system.n_inputs
        coupling = np.zeros((n, m**3), dtype=complex)
        if system.d1 is None:
            return coupling
        s1, s2, s3 = s_list
        # Input slot k carries u (through D1); the remaining two ride in H2.
        for k, (si, sj) in ((2, (s1, s2)), (1, (s1, s3)), (0, (s2, s3))):
            h2_pair = self.h2(si, sj)
            pair_slots = [t for t in range(3) if t != k]
            for p in range(m):
                for q in range(m):
                    for r in range(m):
                        triple = (p, q, r)
                        col = (p * m + q) * m + r
                        u_idx = triple[k]
                        a_idx = triple[pair_slots[0]]
                        b_idx = triple[pair_slots[1]]
                        coupling[:, col] += (
                            system.d1[u_idx] @ h2_pair[:, a_idx * m + b_idx]
                        )
        return coupling

    def h3(self, s1, s2, s3):
        """Symmetric ``H3(s1, s2, s3)`` — an ``(n, m³)`` matrix.

        Assembled from the memoized ``H1``/``H2`` sub-kernels; each
        distinct ``H1(sᵢ)`` and ``H2(sᵢ, sⱼ)`` is solved at most once
        per evaluator lifetime, not once per appearance.
        """
        system = self.system
        n, m = system.n_states, system.n_inputs
        s_list = (s1, s2, s3)
        terms = np.zeros((n, m**3), dtype=complex)
        with self._cache_lock:
            self.stats["h3_evals"] += 1

        if system.g2 is not None:
            # Six H1 ⊗ H2 pairings: variable i carries H1, the pair
            # (j, k) carries H2, on both Kronecker sides.  Contractions
            # stream through the sparse G2 (O(nnz·m³)) instead of
            # materializing the (n², m³) Kronecker blocks.
            for i in range(3):
                j, k = [t for t in range(3) if t != i]
                h1_i = self.h1(s_list[i])
                h2_jk = self.h2(s_list[j], s_list[k])
                idx_left = permutation_indices(m, (i, j, k))
                idx_right = permutation_indices(m, (j, k, i))
                terms += sparse_kron_apply(
                    self._g2_coo, (h1_i, h2_jk)
                )[:, idx_left]
                terms += sparse_kron_apply(
                    self._g2_coo, (h2_jk, h1_i)
                )[:, idx_right]

        terms += self._d1_coupling_h3(s_list)

        if system.g3 is not None:
            # Stream the sparse G3 against the three memoized H1 factors
            # (O(nnz·m³) memory).  The former implementation accumulated
            # a dense (n³, m³) complex tensor plus six same-sized
            # ``np.kron`` blocks — 84 MB peak at n = 120, ~n³ growth,
            # out-of-memory on cubic circuits by n ≈ 500.
            for perm in itertools.permutations(range(3)):
                block = sparse_kron_apply(
                    self._g3_coo,
                    (
                        self.h1(s_list[perm[0]]),
                        self.h1(s_list[perm[1]]),
                        self.h1(s_list[perm[2]]),
                    ),
                )
                terms += 0.5 * block[:, permutation_indices(m, perm)]

        return self.factory.solve(s1 + s2 + s3, terms) / 3.0


def volterra_evaluator(system):
    """The memoized evaluator for *system* (one per system object).

    Cached on the system itself and rebuilt whenever any of the kernel-
    defining matrices (``g1``, ``g2``, ``g3``, ``d1``, ``b``) is rebound
    to a different object.
    """
    def _lookup():
        cached = getattr(system, "_volterra_evaluator", None)
        if cached is not None and cached.matches(system):
            return cached
        return None

    # Compute-outside-lock, first-insert-wins (construction is cheap —
    # the factorization itself is lazy — but the pattern keeps the
    # global lock contention-free by principle).
    with _EVALUATOR_LOCK:
        cached = _lookup()
        if cached is not None:
            return cached
    evaluator = VolterraEvaluator(system)
    with _EVALUATOR_LOCK:
        cached = _lookup()
        if cached is not None:
            return cached
        try:
            system._volterra_evaluator = evaluator
        except AttributeError:
            pass
        return evaluator
