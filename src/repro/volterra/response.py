"""Variational (Volterra-series) time-domain responses.

Integrating the variational systems gives the order-by-order responses

    x1' = G1 x1 + B u
    x2' = G1 x2 + G2 (x1 ⊗ x1) + Σᵢ D1ᵢ x1 uᵢ
    x3' = G1 x3 + G2 (x1 ⊗ x2 + x2 ⊗ x1) + G3 (x1 ⊗ x1 ⊗ x1)
                 + Σᵢ D1ᵢ x2 uᵢ

so that ``x ≈ x1 + x2 + x3`` for small inputs, with ``xk`` scaling as the
k-th power of the input amplitude.  These trajectories are the
time-domain ground truth for the Volterra kernels: the response of the
associated realizations must agree with them (the test suite and the
examples rely on this).

Each variational stage is *linear* in its own state, so a fixed-step
trapezoidal scheme with one LU factorization integrates all orders
robustly (A-stable; no Newton needed).
"""

import numpy as np
import scipy.sparse as sp

from .._validation import check_positive_int
from ..errors import SystemStructureError, ValidationError
from ..linalg.lu import factorized_solver
from ..linalg.resolvent import ResolventFactory

__all__ = ["VolterraResponse", "volterra_series_response", "frequency_sweep"]


class VolterraResponse:
    """Order-separated responses returned by
    :func:`volterra_series_response`.

    Attributes
    ----------
    times : (steps,) ndarray
    orders : dict mapping order k -> (steps, n) state trajectories
    """

    def __init__(self, times, orders, system):
        self.times = times
        self.orders = orders
        self._system = system

    def state(self, order=None):
        """Total state (sum over orders) or a single order's trajectory."""
        if order is not None:
            return self.orders[order]
        total = np.zeros_like(next(iter(self.orders.values())))
        for traj in self.orders.values():
            total = total + traj
        return total

    def output(self, order=None):
        """Observed output ``y = C x`` of the summed (or single-order)
        response."""
        return self._system.observe(self.state(order))


def _input_samples(u_fn, times, m):
    samples = np.empty((times.size, m))
    for idx, t in enumerate(times):
        u = np.atleast_1d(np.asarray(u_fn(t), dtype=float))
        if u.shape != (m,):
            raise ValidationError(
                f"input function returned shape {u.shape}, expected ({m},)"
            )
        samples[idx] = u
    return samples


def frequency_sweep(system, omegas, output=True):
    """Batched linear frequency response ``H1(jω)`` over a whole ω-grid.

    Evaluates the first-order transfer function at every point of
    *omegas* through one shared factorization of ``G1``
    (:meth:`ResolventFactory.solve_many` hoists the basis rotations out
    of the grid loop), instead of one fresh ``O(n³)`` solve per point.
    The per-shift substitutions are emitted as a
    :class:`~repro.engine.SolvePlan`, so the grid spreads across workers
    when the engine's thread backend is configured
    (``repro.engine.configure`` / ``REPRO_WORKERS``).

    Parameters
    ----------
    system : PolynomialODE (explicit)
    omegas : array_like of float
        Angular frequencies.
    output : bool
        When True (default) the system's output map is applied and the
        result has shape ``(len(omegas), p, m)``; otherwise the raw
        state-space kernels ``(len(omegas), n, m)`` are returned.

    Returns
    -------
    complex ndarray.
    """
    if system.mass is not None:
        raise SystemStructureError(
            "frequency_sweep requires an explicit system; call "
            "to_explicit() first"
        )
    omegas = np.atleast_1d(np.asarray(omegas, dtype=float))
    factory = ResolventFactory.for_system(system)
    kernels = factory.solve_many(1j * omegas, system.b)
    if not output:
        return kernels
    return np.einsum("pn,knm->kpm", system.output.astype(complex), kernels)


def volterra_series_response(system, u_fn, t_end, dt, order=3):
    """Integrate the variational systems up to *order* (1, 2 or 3).

    Parameters
    ----------
    system : PolynomialODE
        Must be explicit (``mass is None``).
    u_fn : callable
        ``u_fn(t) -> scalar or (m,)`` input signal.
    t_end, dt : float
        Time horizon and fixed step of the trapezoidal scheme.
    order : int
        Highest Volterra order to integrate.

    Returns
    -------
    VolterraResponse
    """
    if system.mass is not None:
        raise SystemStructureError(
            "variational integration requires an explicit system"
        )
    order = check_positive_int(order, "order")
    if order > 3:
        raise ValidationError("orders above 3 are not implemented")
    if dt <= 0 or t_end <= 0:
        raise ValidationError("t_end and dt must be positive")
    n = system.n_states
    m = system.n_inputs
    steps = int(round(t_end / dt)) + 1
    times = np.arange(steps) * dt
    u = _input_samples(u_fn, times, m)

    g1 = system.g1
    if sp.issparse(g1):
        # Sparse fast path: one sparse LU of the trapezoidal operator,
        # CSR matvecs for the explicit half-step.
        eye = sp.identity(n, format="csr")
        solve = factorized_solver(eye - 0.5 * dt * g1)
        rhs_mat = sp.csr_matrix(eye + 0.5 * dt * g1)
    else:
        eye = np.eye(n)
        solve = factorized_solver(eye - 0.5 * dt * g1)
        rhs_mat = eye + 0.5 * dt * g1

    def integrate(forcing):
        """Trapezoidal solve of x' = G1 x + forcing(t) over the grid."""
        traj = np.zeros((steps, n))
        for k in range(steps - 1):
            rhs = rhs_mat @ traj[k] + 0.5 * dt * (forcing[k] + forcing[k + 1])
            traj[k + 1] = solve(rhs)
        return traj

    orders = {}

    forcing1 = u @ system.b.T
    orders[1] = integrate(forcing1)

    if order >= 2:
        x1 = orders[1]
        forcing2 = np.zeros((steps, n))
        if system._quad is not None:
            for k in range(steps):
                forcing2[k] += system._quad.eval(x1[k])
        if system.d1 is not None:
            for i, d1_i in enumerate(system.d1):
                forcing2 += (x1 @ d1_i.T) * u[:, i : i + 1]
        orders[2] = integrate(forcing2)

    if order >= 3:
        x1 = orders[1]
        x2 = orders[2]
        forcing3 = np.zeros((steps, n))
        if system._quad is not None:
            for k in range(steps):
                forcing3[k] += system._quad.eval_bilinear(x1[k], x2[k])
                forcing3[k] += system._quad.eval_bilinear(x2[k], x1[k])
        if system._cubic is not None:
            for k in range(steps):
                forcing3[k] += system._cubic.eval(x1[k])
        if system.d1 is not None:
            for i, d1_i in enumerate(system.d1):
                forcing3 += (x2 @ d1_i.T) * u[:, i : i + 1]
        orders[3] = integrate(forcing3)

    return VolterraResponse(times, orders, system)
