"""Associated transforms of Volterra transfer functions — the paper's core.

The association of variables ``An`` collapses the multivariate transfer
function ``Hn(s1, ..., sn)`` to a single-variable ``Hn(s)`` whose inverse
Laplace transform is the diagonal kernel ``hn(t, ..., t)``.  The paper's
contribution (§2.2) is that for QLDAE/polynomial systems the associated
functions admit **exact linear state-space realizations** built from
Kronecker sums:

* ``A2(H2)``: state matrix ``Ã2 = [[G1, G2], [0, G1 ⊕ G1]]`` of size
  ``n + n²`` (paper eq. 17), input ``b̃2 = [D1-coupling; sym(B ⊗ B)]``,
  output ``c̃2 = [I_n, 0]``.
* ``A3(H3)``: block-triangular realization whose middle blocks carry the
  Kronecker sums ``G1 ⊕ Ã2`` and ``Ã2 ⊕ G1`` (sizes ``n(n+n²)``) plus —
  for cubic systems — ``G1 ⊕ G1 ⊕ G1`` (size ``n³``).
* Eq. (18): solving the Sylvester equation ``G1 Π + G2 = Π (G1 ⊕ G1)``
  decouples ``A2(H2)`` into two independent LTI subsystems whose Krylov
  spaces can be generated separately (and in parallel).

Everything here is matrix-free: the lifted state matrices are represented
by structured operators from :mod:`repro.linalg.operators`, so the cost
of a Krylov step is ``O(n³)``–``O(n⁴)`` time and ``O(n²)``–``O(n³)``
memory instead of the ``O(n⁴)``/``O(n⁶)`` of naive realizations.

Sparse (circuit-compiled) systems go one level further: the Π equation
is solved in factored form (:class:`~repro.linalg.sylvester.FactoredPi`)
on the resolvent factory's sparse LU, the decoupled-H2 chains become
pure sparse-``G1`` solves, and the lifted H3 realization runs on
compressed Tucker vectors (:class:`FactoredH3Realization`), so full
``orders=(q1, q2, q3)`` NMOR reaches ``n ≫ 2000`` without ever
densifying ``G1`` — a Krylov step then costs ``O(nnz·r + n·r²)``.  Only
the *coupled* H2 strategy still needs the dense Schur form.

A note on the ``D1`` convention: the bilinear-input kernel has support on
the diagonal ``t1 = t2`` of the time hyperplane.  The paper's Theorem 2
uses the delta-sieving convention, which assigns the boundary full weight
(``A2[(s1 I − A)^{-1} b] = b``); a finite-width pulse experiment or a
principal-value evaluation of the association integral assigns it half
weight.  Responses to *continuous* inputs are identical under both
conventions (the diagonal has measure zero), so moment matching and ROM
accuracy are unaffected; only literal impulse responses of systems with
``D1 ≠ 0`` differ.  We follow the paper.
"""

import itertools
import threading
from functools import partial

import numpy as np
import scipy.linalg as sla
import scipy.sparse as sp

from .. import memory
from .._validation import check_positive_int
from ..engine import SolvePlan
from ..errors import NumericalError, SystemStructureError, ValidationError
from ..linalg.kronecker import kron_sum_power_matvec
from ..linalg.operators import (
    FactoredH3Operator,
    LiftedH3Vector,
    QuadraticLiftedOperator,
    solve_left_kron_sum,
    solve_right_kron_sum,
)
from ..linalg.resolvent import ResolventFactory
from ..linalg.schur import SchurForm
from ..linalg.sylvester import (
    FactoredPi,
    FactoredTensor,
    KronSumSolver,
    LowRankKronSolver,
    solve_pi_sylvester,
)
from ..systems.lti import StateSpace
from .transfer import permutation_indices

__all__ = [
    "AssociatedWorkspace",
    "AssociatedRealization",
    "DecoupledH2Realization",
    "AssociatedH3Operator",
    "FactoredH3Realization",
    "associated_h1",
    "associated_h2",
    "associated_h2_decoupled",
    "associated_h3",
    "stack_columns",
]


def _require_explicit(system):
    if system.mass is not None:
        raise SystemStructureError(
            "associated realizations require an explicit system; call "
            "to_explicit() first"
        )


def _copy_column_tile(out, vectors, lo, hi):
    """Copy rows ``[lo, hi)`` of every chain vector into *out*."""
    for col, vec in enumerate(vectors):
        out[lo:hi, col] = vec[lo:hi]
    return hi - lo


def stack_columns(vectors, label):
    """Stack 1-D chain *vectors* columnwise into an arena-backed block.

    The blockwise equivalent of ``np.column_stack(vectors)``: the output
    lives in the tile arena (RAM, or a writable memmap once the result
    would crowd the memory budget) and rows are copied in
    :func:`repro.memory.block_rows`-sized tiles.  Each tile is an
    independent engine task, so under a threaded backend tile copies
    overlap instead of serializing behind one big allocation.  The
    result is bit-identical to the dense stack.
    """
    if not vectors:
        return np.empty((0, 0))
    vectors = [np.asarray(vec).reshape(-1) for vec in vectors]
    n = vectors[0].shape[0]
    dtype = np.result_type(*vectors)
    planner = memory.current_planner()
    out = planner.tile((n, len(vectors)), dtype=dtype, label=label)
    step = planner.block_rows(
        n, row_bytes=max(len(vectors), 1) * dtype.itemsize
    )
    if step >= n:
        _copy_column_tile(out, vectors, 0, n)
        return out
    plan = SolvePlan(f"{label}.assemble")
    for lo in range(0, n, step):
        plan.add(_copy_column_tile, out, vectors, lo, min(n, lo + step))
    plan.execute()
    return out


# ---------------------------------------------------------------------------
# shared workspace
# ---------------------------------------------------------------------------


#: Largest sparse system the *dense-Schur* lifted machinery (the coupled
#: H2 strategy, and the dense fallback when the low-rank Π iteration
#: refuses) will transparently densify for its one-time factorization.
#: The decoupled H2 chains, the Π solve and the lifted H3 realization no
#: longer hit this guard on sparse systems: they run matrix-free on the
#: factory's sparse LU (:class:`~repro.linalg.sylvester.LowRankKronSolver`,
#: :class:`~repro.linalg.operators.FactoredH3Operator`) at any ``n``.
_SPARSE_SCHUR_LIMIT = 2048

#: Relative residual target for the low-rank Π solve.  Far tighter than
#: the 1e-8·‖G2‖ acceptance threshold on purpose: Π feeds the decoupled
#: H2 / lifted H3 chain vectors, and the reducer's basis deflation
#: (cutoff ~1e-10 relative) must not have its keep/drop decisions flip
#: on Π solve noise — a warm-started and a cold parametric corner have
#: to land on the *same* deflation outcome for ROM families to be
#: reproducible across reuse tiers.
_PI_LOWRANK_TOL = 1e-12

#: Soft stall floor for the Π solve: a basis-cap stall at or below this
#: residual is accepted (the pre-tightening target — one order inside
#: the 1e-8 acceptance threshold) rather than raised, so the tighter
#: target above never turns a previously-convergent Π into a failure.
_PI_LOWRANK_FLOOR = 1e-9

#: Same pair for the shared Kronecker-sum chain solver: residual target
#: well under the deflation cutoff, stall floor at the old default.
_CHAIN_LOWRANK_TOL = 1e-13
_CHAIN_LOWRANK_FLOOR = 1e-9

#: Serializes :meth:`AssociatedWorkspace.for_system` so concurrent
#: callers observe exactly one workspace per system object.
_WORKSPACE_LOCK = threading.Lock()


class AssociatedWorkspace:
    """Shared factorizations for one system's associated realizations.

    Computes the (complex) Schur form of ``G1`` once and hands it to every
    Kronecker-sum solver, lifted operator and Sylvester solve — the
    "one-time similarity transform" of the paper's §2.3.  The Schur form
    is obtained through the system's :class:`ResolventFactory`, so the
    same factorization also serves transfer-function evaluation and
    distortion sweeps on that system.

    Sparse systems (CSR ``g1``) carry no Schur form; shifted ``G1``
    solves route through the factory's per-shift sparse LU cache via
    :meth:`solve_shifted` / :meth:`solve_shifted_transpose` and never
    densify.  The lifted machinery then runs matrix-free: :attr:`pi`
    returns a factored Π, :attr:`lowrank_kron` serves the
    Kronecker-sum solves behind the decoupled-H2 and H3 chains.  Only
    the *coupled* H2 strategy still needs the dense Schur form —
    :attr:`schur` builds one lazily for moderate sizes and refuses at
    circuit scale.
    """

    def __init__(self, system):
        _require_explicit(system)
        self.system = system
        self.resolvent = ResolventFactory.for_system(system)
        self._schur = self.resolvent.schur  # None on the sparse branch
        self._kron_solver = None
        self._lowrank = None
        self._a2_op = None
        self._pi = None
        # Warm-start seeds from a neighboring parametric corner (see
        # warm_start()): consumed when the lazy solvers are built.
        self._warm_lowrank = None
        self._warm_pi = None
        # Guards the lazy factorizations above: engine-dispatched chain
        # tasks sharing one workspace must not build Π / the lifted
        # operator twice (reentrant — the Π build walks kron_solver,
        # which walks schur).
        self._lazy_lock = threading.RLock()
        # Everything the lazily cached Π / lifted operator / input
        # matrices depend on; compared by identity for invalidation.
        self._key = (system.g1, system.g2, system.g3, system.d1, system.b)

    def matches(self, system):
        """True when the cached factorizations are still valid."""
        current = (system.g1, system.g2, system.g3, system.d1, system.b)
        return self.system is system and all(
            a is b for a, b in zip(self._key, current)
        )

    @classmethod
    def for_system(cls, system):
        """One memoized workspace per system object.

        Repeated reductions / realizations of the same system (e.g.
        multi-point basis builds followed by distortion checks) share one
        Schur factorization, one Π solve and one lifted operator.  The
        cache invalidates when any system matrix the workspace depends
        on (``g1``, ``g2``, ``g3``, ``d1``, ``b``) is rebound.
        """
        def _lookup():
            cached = getattr(system, "_associated_workspace", None)
            if cached is not None and cached.matches(system):
                return cached
            return None

        # Compute-outside-lock, first-insert-wins: workspace
        # construction may build the system's resolvent factory (an
        # O(n³) Schur factorization on dense systems), which must not
        # run under the global memoizer lock.
        with _WORKSPACE_LOCK:
            cached = _lookup()
            if cached is not None:
                return cached
        workspace = cls(system)
        with _WORKSPACE_LOCK:
            cached = _lookup()
            if cached is not None:
                return cached
            try:
                system._associated_workspace = workspace
            except AttributeError:
                pass
            return workspace

    @property
    def n(self):
        return self.system.n_states

    @property
    def m(self):
        return self.system.n_inputs

    def _g1_dense(self):
        g1 = self.system.g1
        return g1.toarray() if sp.issparse(g1) else g1

    def _g2_dense(self):
        g2 = self.system.g2
        return g2.toarray() if sp.issparse(g2) else g2

    @property
    def is_sparse(self):
        """True when the system rides the factory's sparse-LU branch.

        Deliberately *not* sensitive to whether a dense Schur form was
        lazily built later (e.g. by a coupled-strategy build): sparse
        systems take the factored Π / compressed-H3 path consistently,
        never by construction-order accident.
        """
        return self.resolvent.schur is None

    @property
    def schur(self):
        """The dense Schur form of ``G1`` (lazy for sparse systems).

        Only the *coupled* lifted strategy still needs this on sparse
        systems (the decoupled H2 / Π / lifted H3 machinery runs
        matrix-free on the sparse LU); building it is a documented
        densification seam, refused beyond ``_SPARSE_SCHUR_LIMIT``
        states where ``strategy="decoupled"`` is the supported path.
        """
        with self._lazy_lock:
            if self._schur is None:
                n = self.system.n_states
                if n > _SPARSE_SCHUR_LIMIT:
                    raise SystemStructureError(
                        f"the coupled lifted H2/H3 realization needs a "
                        f"dense Schur form of G1, which would densify a "
                        f"sparse {n}-state system; use the decoupled "
                        f"strategy (low-rank Pi + matrix-free chains), "
                        f"restrict to H1 moments (orders=(q1, 0, 0)), "
                        f"or compile the circuit dense"
                    )
                self._schur = SchurForm(self._g1_dense())
            return self._schur

    def solve_shifted(self, shift, rhs):
        """Solve ``(G1 + shift·I) x = rhs`` without densifying.

        Dense systems use the shared Schur form; sparse systems route
        through the resolvent factory's per-shift sparse LU cache
        (``(G1 + αI) x = r`` ⇔ ``x = −(−αI − G1)^{-1} r``).
        """
        if self._schur is not None:
            return self._schur.solve_shifted(shift, rhs)
        return -self.resolvent.solve(
            -shift, np.asarray(rhs, dtype=complex)
        )

    def solve_shifted_transpose(self, shift, rhs):
        """Solve ``(G1ᵀ + shift·I) x = rhs`` without densifying.

        The sparse branch reuses the factory's per-shift LU through a
        transposed backsolve (no second factorization) — the primitive
        behind the Π iteration's ``G1ᵀ``-sided Krylov directions.
        """
        if self._schur is not None:
            return self._schur.solve_shifted_transpose(shift, rhs)
        return -self.resolvent.solve_transpose(
            -shift, np.asarray(rhs, dtype=complex)
        )

    @property
    def lowrank_kron(self):
        """Shared low-rank Kronecker-sum solver (lazy; sparse path).

        One growing extended-Krylov basis serves every decoupled-H2 and
        lifted-H3 chain of this workspace, so consecutive moment steps
        (whose right-hand sides live in the previous step's basis)
        converge in a single projection.
        """
        with self._lazy_lock:
            if self._lowrank is None:
                self._lowrank = LowRankKronSolver(
                    self.system.g1,
                    self.solve_shifted,
                    self.solve_shifted_transpose,
                    tol=_CHAIN_LOWRANK_TOL,
                    tol_floor=_CHAIN_LOWRANK_FLOOR,
                )
                if self._warm_lowrank is not None:
                    self._lowrank.seed_basis(self._warm_lowrank)
                    self._warm_lowrank = None
            return self._lowrank

    @property
    def kron_solver(self):
        """Kronecker-sum solver on the shared Schur form (lazy)."""
        with self._lazy_lock:
            if self._kron_solver is None:
                self._kron_solver = KronSumSolver(
                    self._g1_dense(), schur=self.schur
                )
            return self._kron_solver

    @property
    def a2_operator(self):
        """The eq.-(17) lifted state matrix as a structured operator."""
        with self._lazy_lock:
            if self._a2_op is None:
                system = self.system
                if system.g2 is None:
                    raise SystemStructureError(
                        "system has no quadratic term; Ã2 is undefined"
                    )
                self._a2_op = QuadraticLiftedOperator(
                    self._g1_dense(),
                    system.g2,
                    kron_solver=self.kron_solver,
                    schur=self.schur,
                )
            return self._a2_op

    @property
    def pi(self):
        """Solution of ``G1 Π + G2 = Π (G1 ⊕ G1)`` (lazy, cached).

        Dense systems get the dense ``(n, n²)`` matrix from the shared
        Schur sweep.  Sparse systems get a
        :class:`~repro.linalg.sylvester.FactoredPi` from the low-rank
        right-Galerkin iteration on the factory's sparse LU — ``G1`` is
        never densified.  When that iteration refuses (a ``G2`` whose
        lifted-side fibers are not low-rank, or a Π equation without
        spectral separation) the dense path is used as a fallback up to
        ``_SPARSE_SCHUR_LIMIT`` states, beyond which the failure is
        reported as-is.
        """
        with self._lazy_lock:
            if self._pi is None:
                system = self.system
                if system.g2 is None:
                    raise SystemStructureError(
                        "system has no quadratic term; Π is undefined"
                    )
                if self.is_sparse:
                    try:
                        self._pi = self.lowrank_kron.solve_pi(
                            system.g2,
                            tol=_PI_LOWRANK_TOL,
                            floor=_PI_LOWRANK_FLOOR,
                            seed_basis=self._warm_pi,
                        )
                        self._warm_pi = None
                        return self._pi
                    except NumericalError as exc:
                        n = system.n_states
                        if n > _SPARSE_SCHUR_LIMIT:
                            raise SystemStructureError(
                                f"the low-rank Pi solve failed for this "
                                f"sparse {n}-state system ({exc}) and "
                                f"the dense Schur fallback would "
                                f"densify it; the eq.-(18) decoupling "
                                f"needs either a low-rank G2 with a "
                                f"spectrally separated G1, or a dense "
                                f"compile"
                            ) from exc
                self._pi = solve_pi_sylvester(
                    self._g1_dense(),
                    self._g2_dense(),
                    solver=self.kron_solver,
                )
            return self._pi

    # -- checkpoint state ----------------------------------------------------

    def solver_version(self):
        """Cheap fingerprint of the mutable lazy solver state.

        Changes whenever :meth:`solver_state` would snapshot something
        different; the checkpoint layer compares versions between stages
        to skip redundant solver-state writes.
        """
        with self._lazy_lock:
            lowrank = (
                self._lowrank.state_version
                if self._lowrank is not None else None
            )
            return (lowrank, self._pi is not None)

    def solver_state(self):
        """Payload-tree snapshot of the lazily built *mutable* solver
        state: the shared extended-Krylov basis (+ fallback-shift cache)
        of :attr:`lowrank_kron` and the cached Π.  Deterministic
        factorizations (Schur form, LU caches, lifted operators) are
        rebuilt on demand and not snapshotted.  Empty dict when nothing
        mutable has been built yet.
        """
        state = self.lowrank_state() or {}
        state.update(self.pi_state() or {})
        return state

    def lowrank_state(self):
        """The extended-Krylov half of :meth:`solver_state` — the part
        that keeps growing as chains are solved — or ``None`` when the
        low-rank solver has not been built."""
        with self._lazy_lock:
            if self._lowrank is None:
                return None
            return {"lowrank": self._lowrank.state_dict()}

    def pi_state(self):
        """The Π half of :meth:`solver_state`, or ``None`` when Π has
        not been built.  Π is computed once and never mutated, so the
        checkpoint layer writes this (large ``n × r²``) snapshot once
        instead of once per stage."""
        with self._lazy_lock:
            if self._pi is None:
                return None
            if isinstance(self._pi, FactoredPi):
                return {"pi": {"kind": "factored", **self._pi.state_dict()}}
            return {"pi": {"kind": "dense", "matrix": np.asarray(self._pi)}}

    def restore_solver_state(self, state):
        """Restore a :meth:`solver_state` snapshot onto this workspace.

        Overwrites any locally grown solver state: a resumed build must
        continue from exactly the snapshot the committed stages were
        computed with, or the remaining chains diverge bit-wise from
        the cold run.
        """
        if not state:
            return
        with self._lazy_lock:
            lowrank = state.get("lowrank")
            if lowrank is not None:
                solver = LowRankKronSolver(
                    self.system.g1,
                    self.solve_shifted,
                    self.solve_shifted_transpose,
                    tol=_CHAIN_LOWRANK_TOL,
                    tol_floor=_CHAIN_LOWRANK_FLOOR,
                )
                solver.load_state(lowrank)
                self._lowrank = solver
            pi = state.get("pi")
            if pi is not None:
                if pi.get("kind") == "factored":
                    self._pi = FactoredPi.from_state(pi)
                else:
                    self._pi = np.asarray(pi["matrix"])

    # -- cross-corner warm start ---------------------------------------------

    def warm_start(self, lowrank_u=None, pi_u=None):
        """Seed the lazy solvers with a *neighboring* system's basis.

        Unlike :meth:`restore_solver_state` — a same-``g1`` snapshot
        restore — warm starting takes converged extended-Krylov
        directions from a nearby parametric corner and absorbs them as
        initial directions here: the basis re-orthonormalizes the
        columns and recomputes ``G1 U`` / ``G1ᵀ U`` against *this*
        system's matrices, and every solve still converges on the exact
        residual test.  A good seed collapses the extension rounds of
        the Π build and the Kronecker-sum chains; a bad seed costs a
        few extra orthogonalizations and nothing else.

        *lowrank_u* seeds the shared :attr:`lowrank_kron` basis;
        *pi_u* seeds the private right basis of the Π solve (typically
        the ``.u`` factor of the neighbor's :class:`FactoredPi`).
        """
        with self._lazy_lock:
            if lowrank_u is not None:
                if self._lowrank is not None:
                    self._lowrank.seed_basis(lowrank_u)
                else:
                    self._warm_lowrank = np.asarray(lowrank_u)
            if pi_u is not None and self._pi is None:
                self._warm_pi = np.asarray(pi_u)

    def warm_state(self):
        """Converged basis columns for warm-starting a neighbor corner.

        Returns ``{"lowrank_u": ..., "pi_u": ...}`` with only the parts
        that were actually built (``None`` when neither exists).  The
        arrays are copies — safe to hand to another system's workspace.
        """
        with self._lazy_lock:
            state = {}
            if self._lowrank is not None and self._lowrank.dim:
                state["lowrank_u"] = self._lowrank.basis_columns()
            if isinstance(self._pi, FactoredPi) and self._pi.rank:
                state["pi_u"] = np.asarray(self._pi.u).copy()
            return state or None

    # -- associated input matrices -------------------------------------------

    def d1_coupling(self):
        """``MD``: the associated D1 block of ``b̃2`` (n × m²).

        Column ``(p, q)`` is ``(D1_q B[:, p] + D1_p B[:, q]) / 2``; for a
        SISO system this is the paper's ``D1 b``.
        """
        system = self.system
        n, m = self.n, self.m
        md = np.zeros((n, m * m))
        if system.d1 is None:
            return md
        for p in range(m):
            for q in range(m):
                col = p * m + q
                md[:, col] += 0.5 * (system.d1[q] @ system.b[:, p])
                md[:, col] += 0.5 * (system.d1[p] @ system.b[:, q])
        return md

    def b_kron_sym(self):
        """``sym(B ⊗ B) = ½ (B ⊗ B)(I + K_m)``: the paper's ``b 2©``."""
        b = self.system.b
        m = self.m
        bb = np.kron(b, b)
        return 0.5 * (bb + bb[:, permutation_indices(m, (1, 0))])

    def b2_tilde(self):
        """The full associated-H2 input matrix ``b̃2 = [MD; sym(B⊗B)]``."""
        return np.vstack([self.d1_coupling(), self.b_kron_sym()])


# ---------------------------------------------------------------------------
# generic realization object
# ---------------------------------------------------------------------------


def _unique_symmetric_columns(m, arity):
    """Representative column indices of a symmetric ``m**arity`` kernel.

    Symmetrized input matrices have identical columns for permuted input
    multi-indices; chaining only one representative per multiset loses
    nothing from the spanned subspace.
    """
    reps = {}
    for col in range(m**arity):
        digits = tuple(sorted((col // (m**t)) % m for t in range(arity)))
        reps.setdefault(digits, col)
    return sorted(reps.values())


class AssociatedRealization:
    """Linear realization ``H(s) = C (sI − A)^{-1} B`` of an associated
    transfer function.

    ``A`` is a structured operator (``matvec`` + ``solve_shifted``), ``B``
    a dense ``(dim, cols)`` matrix, and ``C`` the projection onto the
    first ``n`` lifted coordinates (the original state space), applied
    through :meth:`project_top`.

    Parameters
    ----------
    operator : operator with ``solve_shifted``
    b : (dim, cols) ndarray
    n_top : int
        Number of leading coordinates returned by the output map.
    input_arity : int
        Volterra order of the underlying kernel (1, 2 or 3); used to
        deduplicate symmetric input columns.
    n_inputs : int
        Number of physical system inputs ``m`` (columns are ``m**arity``).
    """

    def __init__(self, operator, b, n_top, input_arity, n_inputs):
        self.operator = operator
        self.b = np.asarray(b)
        if self.b.ndim == 1:
            self.b = self.b[:, None]
        if self.b.shape[0] != operator.dim:
            raise ValidationError(
                f"B has {self.b.shape[0]} rows, operator dim is "
                f"{operator.dim}"
            )
        self.n_top = int(n_top)
        self.input_arity = check_positive_int(input_arity, "input_arity")
        self.n_inputs = check_positive_int(n_inputs, "n_inputs")

    @property
    def dim(self):
        return self.operator.dim

    @property
    def n_cols(self):
        return self.b.shape[1]

    def project_top(self, x):
        """Output map ``c̃ = [I_n, 0, ...]``: keep the top block."""
        return np.asarray(x).reshape(-1)[: self.n_top]

    def eval(self, s):
        """Evaluate ``H(s)`` — an ``(n_top, cols)`` complex matrix."""
        out = np.empty((self.n_top, self.n_cols), dtype=complex)
        for col in range(self.n_cols):
            x = self.operator.solve_shifted(-s, self.b[:, col])
            out[:, col] = -self.project_top(x)
        return out

    def _moment_chain(self, col, count, s0):
        """One column's shift-invert chain (sequential by construction)."""
        current = self.b[:, col]
        vectors = []
        for _ in range(count):
            current = self.operator.solve_shifted(-s0, current)
            vectors.append(self.project_top(current))
        return vectors

    def chain_tasks(self, count, s0=0.0, deduplicate=True):
        """Independent per-column chain callables for the engine.

        Each retained input column's moment chain has no data
        dependency on the others; callers (or
        :meth:`moment_vectors`) schedule them through a
        :class:`~repro.engine.SolvePlan`.  Each callable returns the
        chain's projected vectors in moment order.
        """
        count = check_positive_int(count, "count")
        if deduplicate:
            cols = _unique_symmetric_columns(self.n_inputs, self.input_arity)
        else:
            cols = list(range(self.n_cols))
        return [partial(self._moment_chain, col, count, s0) for col in cols]

    def moment_vectors(self, count, s0=0.0, deduplicate=True):
        """Projected shift-invert chains for Krylov moment matching.

        Returns an ``(n_top, count * n_unique_cols)`` real/complex matrix
        whose columns span the space matching *count* moments of ``H(s)``
        about ``s0`` (per retained input column).  With ``deduplicate``
        only one column per symmetric input multiset is chained.  The
        per-column chains run as one engine plan (independent tasks;
        serial backend by default).
        """
        plan = SolvePlan("associated.moment_vectors")
        for fn in self.chain_tasks(count, s0=s0, deduplicate=deduplicate):
            plan.add(fn)
        chains = plan.execute()
        return np.column_stack([v for chain in chains for v in chain])

    def impulse_response(self, times):
        """Diagonal kernel ``h(t) = hn(t, ..., t)`` via dense ``expm``.

        Only available when the operator can be densified (small
        systems / tests); returns ``(len(times), n_top, cols)``.
        """
        a = self.operator.dense()
        times = np.atleast_1d(np.asarray(times, dtype=float))
        out = np.empty((times.size, self.n_top, self.n_cols))
        for idx, t in enumerate(times):
            phi = sla.expm(a * t) @ self.b
            out[idx] = phi[: self.n_top]
        return out

    def to_state_space(self, output=None):
        """Densify to a :class:`StateSpace` (small systems / tests).

        *output* optionally post-multiplies the top-block projection
        (e.g. a circuit's output row).
        """
        a = self.operator.dense()
        c = np.zeros((self.n_top, self.dim))
        c[:, : self.n_top] = np.eye(self.n_top)
        if output is not None:
            c = np.asarray(output) @ c
        return StateSpace(a, self.b, c)


# ---------------------------------------------------------------------------
# H1 and H2
# ---------------------------------------------------------------------------


class _G1Operator:
    """Adapter presenting ``G1`` through the operator interface.

    Shifted solves dispatch through the workspace: the shared Schur form
    for dense systems, the resolvent factory's sparse LU cache for sparse
    ones — so H1 moment chains on circuit-sized CSR systems never
    densify ``G1``.
    """

    def __init__(self, workspace):
        self.workspace = workspace
        self.g1 = workspace.system.g1
        self.shape = self.g1.shape

    @property
    def dim(self):
        return self.g1.shape[0]

    def matvec(self, x):
        return self.g1 @ np.asarray(x)

    def solve_shifted(self, shift, rhs):
        return self.workspace.solve_shifted(shift, rhs)

    def solve_shifted_transpose(self, shift, rhs):
        # Routed through the workspace: shared Schur form when dense, a
        # transposed backsolve on the factory's sparse LU when sparse —
        # no densification either way.
        return self.workspace.solve_shifted_transpose(shift, rhs)

    def dense(self):
        return self.g1.toarray() if sp.issparse(self.g1) else self.g1.copy()


def associated_h1(system, workspace=None):
    """Trivial realization of ``H1(s) = (sI − G1)^{-1} B``."""
    workspace = workspace or AssociatedWorkspace.for_system(system)
    op = _G1Operator(workspace)
    return AssociatedRealization(
        op,
        workspace.system.b,
        n_top=workspace.n,
        input_arity=1,
        n_inputs=workspace.m,
    )


def associated_h2(system, workspace=None):
    """The paper's eq.-(17) realization of ``A2(H2)``.

    Returns ``None`` when the system has neither quadratic nor bilinear
    terms (then ``H2 ≡ 0``).
    """
    workspace = workspace or AssociatedWorkspace.for_system(system)
    system = workspace.system
    if system.g2 is None and system.d1 is None:
        return None
    if system.g2 is None:
        raise SystemStructureError(
            "D1 without G2 is not supported by the lifted realization; "
            "provide an explicit (possibly zero) G2"
        )
    return AssociatedRealization(
        workspace.a2_operator,
        workspace.b2_tilde(),
        n_top=workspace.n,
        input_arity=2,
        n_inputs=workspace.m,
    )


class DecoupledH2Realization:
    """Eq.-(18) decoupled form of ``A2(H2)``.

    After the similarity transform built from ``Π`` the associated H2
    splits into two independent subsystems::

        H2(s) = (sI − G1)^{-1} (MD − Π b 2©)  +  Π (sI − G1 ⊕ G1)^{-1} b 2©

    whose Krylov chains can be generated separately (the paper notes this
    enables parallel subspace construction).

    Dense workspaces run the Kronecker-sum chains through the shared
    Schur form; sparse workspaces hold a factored Π and run them through
    the low-rank solver.  Every large-``n`` operation is then a sparse
    ``G1`` solve, and the ``n``-row products those solves feed — basis
    assembly included — stream in :func:`repro.memory.block_rows`-sized
    row tiles, so peak resident memory follows the configured
    ``max_block`` rather than ``n``.
    """

    def __init__(self, workspace):
        self.workspace = workspace
        self.pi = workspace.pi
        self.factored = isinstance(self.pi, FactoredPi)
        self.md = workspace.d1_coupling()
        if self.factored:
            # Column-wise Π application on the rank-≤2 factored columns
            # of sym(B⊗B): the dense (n², m²) Kronecker product is never
            # formed on the sparse path.
            self.bbs = None
            seed = np.empty_like(self.md)
            for col in range(self.n_cols):
                seed[:, col] = self.pi.apply_factored(
                    self._bbs_tensor(col)
                )
            self.seed_linear = self.md - seed
        else:
            self.bbs = workspace.b_kron_sym()
            self.seed_linear = self.md - self.pi @ self.bbs

    @property
    def n_cols(self):
        return self.workspace.m ** 2

    def _bbs_tensor(self, col):
        """Column *col* of ``sym(B ⊗ B)`` as a rank-≤2 2-mode tensor."""
        ws = self.workspace
        b = ws.system.b
        p, q = divmod(col, ws.m)
        if p == q:
            return FactoredTensor.rank_one([b[:, p], b[:, p]])
        f = b[:, [p, q]]
        core = np.array([[0.0, 0.5], [0.5, 0.0]])
        return FactoredTensor(core, [f, f])

    def eval(self, s):
        """Evaluate ``H2(s)`` by summing the two subsystem responses."""
        ws = self.workspace
        term1 = -ws.solve_shifted(-s, self.seed_linear.astype(complex))
        out = np.empty_like(term1)
        for col in range(self.n_cols):
            if self.factored:
                x = ws.lowrank_kron.solve(
                    self._bbs_tensor(col), k=2, shift=-s
                )
            else:
                x = ws.kron_solver.solve(self.bbs[:, col], k=2, shift=-s)
            out[:, col] = -(self.pi @ x)
        return term1 + out

    def _linear_chain(self, col, count, s0):
        """Chain on subsystem 1: ``(sI − G1)^{-1}`` with the Π-corrected
        linear seed."""
        ws = self.workspace
        current = self.seed_linear[:, col].astype(complex)
        vectors = []
        for _ in range(count):
            current = ws.solve_shifted(-s0, current)
            vectors.append(current.copy())
        return vectors

    def _kron_chain(self, col, count, s0):
        """Chain on subsystem 2: ``(sI − G1 ⊕ G1)^{-1}`` projected back
        through Π."""
        ws = self.workspace
        if self.factored:
            current = self._bbs_tensor(col)
            vectors = []
            for _ in range(count):
                current = ws.lowrank_kron.solve(current, k=2, shift=-s0)
                vectors.append(self.pi @ current)
            return vectors
        current = self.bbs[:, col].astype(complex)
        vectors = []
        for _ in range(count):
            current = ws.kron_solver.solve(current, k=2, shift=-s0)
            vectors.append(self.pi @ current)
        return vectors

    def chain_tasks(self, count, s0=0.0, deduplicate=True):
        """Independent Krylov-chain callables, tagged by subsystem.

        Returns ``[(subsystem, callable), ...]`` where *subsystem* is 0
        for the linear ``(sI − G1)`` chains and 1 for the Kronecker-sum
        chains — the paper's two eq.-(18) decoupled LTI subsystems, whose
        chains have no data dependencies and can be generated in
        parallel.  Shared lazy factorizations (Π, the Kronecker-sum
        solver) are forced *here*, before any task runs, so tasks never
        contend on building them.
        """
        ws = self.workspace
        count = check_positive_int(count, "count")
        if deduplicate:
            cols = _unique_symmetric_columns(ws.m, 2)
        else:
            cols = list(range(self.n_cols))
        if self.factored:
            ws.lowrank_kron  # force the shared lazy solver
        else:
            ws.kron_solver  # force the shared lazy factorization
        tasks = []
        for col in cols:
            tasks.append((0, partial(self._linear_chain, col, count, s0)))
            tasks.append((1, partial(self._kron_chain, col, count, s0)))
        return tasks

    def basis_blocks(self, count, s0=0.0, deduplicate=True):
        """Per-subsystem moment-vector blocks (each ``n × ...``).

        Returns a list of two blocks; their union spans the same moment
        space as the coupled realization's chains.  The underlying
        chains run as one engine plan (one task per subsystem per
        retained input column), and each block is then assembled in row
        tiles through :func:`stack_columns` — one engine task per tile,
        into arena-backed storage — so assembly overlaps across workers
        and never materializes an extra dense ``n``-row stack.
        """
        tasks = self.chain_tasks(count, s0=s0, deduplicate=deduplicate)
        plan = SolvePlan("decoupled-h2.basis_blocks")
        for subsystem, fn in tasks:
            plan.add(fn, tag=subsystem)
        chains = plan.execute()
        blocks = {0: [], 1: []}
        for (subsystem, _), chain in zip(tasks, chains):
            blocks[subsystem].extend(chain)
        return [
            stack_columns(blocks[0], "h2-dec-sub0"),
            stack_columns(blocks[1], "h2-dec-sub1"),
        ]


def associated_h2_decoupled(system, workspace=None):
    """Build the eq.-(18) decoupled realization (or ``None`` if H2 ≡ 0)."""
    workspace = workspace or AssociatedWorkspace.for_system(system)
    if workspace.system.g2 is None and workspace.system.d1 is None:
        return None
    if workspace.system.g2 is None:
        raise SystemStructureError(
            "D1 without G2 is not supported; provide an explicit G2"
        )
    return DecoupledH2Realization(workspace)


# ---------------------------------------------------------------------------
# H3
# ---------------------------------------------------------------------------


class AssociatedH3Operator:
    """Block-triangular state matrix of the ``A3(H3)`` realization.

    State layout (present blocks only)::

        [ x_a | x_b | x_c | x_d ]
          n     n·N    N·n   n³        with N = n + n² (dim of Ã2)

    * ``x_b`` block: ``G1 ⊕ Ã2``  (from ``H1(sᵢ) ⊗ H2(sⱼ, s_k)``)
    * ``x_c`` block: ``Ã2 ⊕ G1``  (from ``H2(sⱼ, s_k) ⊗ H1(sᵢ)``)
    * ``x_d`` block: ``G1 ⊕ G1 ⊕ G1`` (from the cubic ``G3`` term)

    The top row couples through ``G2 (I ⊗ c̃2)``, ``G2 (c̃2 ⊗ I)`` and
    ``G3``.  Shifted solves are pure back-substitution; the inner
    Kronecker-sum solves use the shared Schur machinery.
    """

    def __init__(self, workspace):
        self.workspace = workspace
        system = workspace.system
        self.n = workspace.n
        self.has_quad = system.g2 is not None
        self.has_cubic = system.g3 is not None
        if not (self.has_quad or self.has_cubic):
            raise SystemStructureError(
                "system has neither quadratic nor cubic terms; H3 ≡ 0"
            )
        n = self.n
        self.dim_b = 0
        self.dim_c = 0
        self.dim_d = 0
        if self.has_quad:
            self.a2_op = workspace.a2_operator
            self.n2 = self.a2_op.dim  # N = n + n²
            self.dim_b = n * self.n2
            self.dim_c = self.n2 * n
        if self.has_cubic:
            self.dim_d = n**3
        self.shape = (n + self.dim_b + self.dim_c + self.dim_d,) * 2

    @property
    def dim(self):
        return self.shape[0]

    def _split(self, x):
        x = np.asarray(x).reshape(self.dim)
        n = self.n
        parts = [x[:n]]
        offset = n
        for size in (self.dim_b, self.dim_c, self.dim_d):
            parts.append(x[offset : offset + size])
            offset += size
        return parts

    def _couple_top(self, x_b, x_c, x_d):
        """Evaluate the top-row coupling
        ``G2 (I ⊗ c̃2) x_b + G2 (c̃2 ⊗ I) x_c + G3 x_d``."""
        system = self.workspace.system
        n = self.n
        out = np.zeros(n, dtype=complex)
        if self.has_quad:
            # (I ⊗ c̃2) x_b: reshape (n, N), keep the leading n columns.
            xb_mat = x_b.reshape(n, self.n2)
            out += system.g2 @ xb_mat[:, :n].reshape(-1)
            # (c̃2 ⊗ I) x_c: reshape (N, n), keep the leading n rows.
            xc_mat = x_c.reshape(self.n2, n)
            out += system.g2 @ xc_mat[:n, :].reshape(-1)
        if self.has_cubic:
            out += system.g3 @ x_d
        return out

    def matvec(self, x):
        ws = self.workspace
        g1 = ws.system.g1
        x_a, x_b, x_c, x_d = self._split(np.asarray(x, dtype=complex))
        top = g1 @ x_a + self._couple_top(x_b, x_c, x_d)
        pieces = [top]
        if self.has_quad:
            n, n2 = self.n, self.n2
            xb_mat = x_b.reshape(n, n2)
            # (G1 ⊕ Ã2) vec(X) = vec(G1 X + X Ã2ᵀ)
            rows = np.stack(
                [self.a2_op.matvec(xb_mat[i]) for i in range(n)]
            )
            pieces.append((g1 @ xb_mat + rows).reshape(-1))
            xc_mat = x_c.reshape(n2, n)
            cols = np.stack(
                [self.a2_op.matvec(xc_mat[:, j]) for j in range(n)], axis=1
            )
            pieces.append((cols + xc_mat @ g1.T).reshape(-1))
        if self.has_cubic:
            pieces.append(kron_sum_power_matvec(g1, 3, x_d))
        return np.concatenate(pieces)

    def solve_shifted(self, shift, rhs):
        """Solve ``(A3 + shift I) x = rhs`` by block back-substitution."""
        ws = self.workspace
        r_a, r_b, r_c, r_d = self._split(np.asarray(rhs, dtype=complex))
        x_b = np.zeros(0, dtype=complex)
        x_c = np.zeros(0, dtype=complex)
        x_d = np.zeros(0, dtype=complex)
        if self.has_quad:
            x_b = solve_left_kron_sum(ws.schur, self.a2_op, r_b, shift=shift)
            x_c = solve_right_kron_sum(self.a2_op, ws.schur, r_c, shift=shift)
        if self.has_cubic:
            x_d = ws.kron_solver.solve(r_d, k=3, shift=shift)
        top_rhs = r_a - self._couple_top(x_b, x_c, x_d)
        x_a = ws.solve_shifted(shift, top_rhs)
        return np.concatenate([x_a, x_b, x_c, x_d])

    def dense(self):
        """Materialize ``A3`` (tiny systems / tests only)."""
        if self.dim > 4096:
            raise ValidationError(
                f"refusing to densify a {self.dim}-dimensional H3 operator"
            )
        ws = self.workspace
        g1 = ws._g1_dense()
        n = self.n
        blocks = [[g1]]
        diag = []
        if self.has_quad:
            a2 = self.a2_op.dense()
            n2 = self.n2
            c2 = np.zeros((n, n2))
            c2[:, :n] = np.eye(n)
            g2 = ws.system.g2.toarray()
            blocks[0].append(g2 @ np.kron(np.eye(n), c2))
            blocks[0].append(g2 @ np.kron(c2, np.eye(n)))
            diag.append(np.kron(g1, np.eye(n2)) + np.kron(np.eye(n), a2))
            diag.append(np.kron(a2, np.eye(n)) + np.kron(np.eye(n2), g1))
        if self.has_cubic:
            blocks[0].append(ws.system.g3.toarray())
            eye = np.eye(n)
            diag.append(
                np.kron(np.kron(g1, eye), eye)
                + np.kron(np.kron(eye, g1), eye)
                + np.kron(np.kron(eye, eye), g1)
            )
        total = self.dim
        out = np.zeros((total, total))
        out[:n, :n] = g1
        col = n
        for block in blocks[0][1:]:
            out[:n, col : col + block.shape[1]] = block
            col += block.shape[1]
        row = n
        for mat in diag:
            size = mat.shape[0]
            out[row : row + size, row : row + size] = mat
            row += size
        return out


def _h3_top_block(workspace):
    """Top (state-space) block of ``B3``: the associated D1 contribution
    ``(1/3) Σ_k D1_{p_k} · h2bar(0)[:, pair]`` with ``h2bar(0) = MD``."""
    system = workspace.system
    n, m = workspace.n, workspace.m
    top = np.zeros((n, m**3))
    if system.d1 is not None:
        md = workspace.d1_coupling()
        for k in range(3):
            pair_slots = [t for t in range(3) if t != k]
            for col in range(m**3):
                triple = ((col // (m * m)) % m, (col // m) % m, col % m)
                u_idx = triple[k]
                a_idx = triple[pair_slots[0]]
                b_idx = triple[pair_slots[1]]
                top[:, col] += (
                    system.d1[u_idx] @ md[:, a_idx * m + b_idx]
                )
        top /= 3.0
    return top


def _h3_input_matrix(workspace, op):
    """Assemble the ``B3`` input matrix of the ``A3(H3)`` realization."""
    system = workspace.system
    m = workspace.m
    b = system.b
    pieces = [_h3_top_block(workspace)]

    def _perm_sum(mat, perms):
        """``mat @ Σ_perms P`` via column indexing, no dense matmuls."""
        acc = mat[:, permutation_indices(m, perms[0])]
        for perm in perms[1:]:
            acc += mat[:, permutation_indices(m, perm)]
        return acc

    if op.has_quad:
        b2 = workspace.b2_tilde()
        # Left block: (1/3)(B ⊗ b̃2) Σᵢ P_(i,j,k);  i is the H1 slot.
        pieces.append(
            _perm_sum(np.kron(b, b2), ((0, 1, 2), (1, 0, 2), (2, 0, 1)))
            / 3.0
        )
        # Right block: (1/3)(b̃2 ⊗ B) Σᵢ P_(j,k,i).
        pieces.append(
            _perm_sum(np.kron(b2, b), ((1, 2, 0), (0, 2, 1), (0, 1, 2)))
            / 3.0
        )

    if op.has_cubic:
        bbb = np.kron(b, np.kron(b, b))
        pieces.append(
            _perm_sum(bbb, tuple(itertools.permutations(range(3)))) / 6.0
        )

    return np.vstack(pieces)


def _sym_pair_tensor(lead_vec, u, v, lead, weight):
    """``weight · lead_vec ⊗ sym(u ⊗ v)`` as a 3-mode Tucker tensor.

    The symmetrized pair sits on the two non-*lead* modes; *lead* is 0
    (b-block layout, pair trailing) or 2 (c-block layout, pair leading).
    """
    fuv = np.column_stack([u, v])
    core2 = np.array([[0.0, 0.5], [0.5, 0.0]]) * weight
    lv = np.asarray(lead_vec).reshape(-1, 1)
    if lead == 0:
        return FactoredTensor(core2[None, :, :], [lv, fuv, fuv])
    return FactoredTensor(core2[:, :, None], [fuv, fuv, lv])


class FactoredH3Realization:
    """Sparse-path realization of ``A3(H3)`` on compressed vectors.

    The circuit-scale counterpart of wrapping
    :class:`AssociatedH3Operator` in an :class:`AssociatedRealization`:
    same moment-chain / evaluation semantics, but the lifted state
    travels as :class:`~repro.linalg.operators.LiftedH3Vector` Tucker
    factors and every solve goes through
    :class:`~repro.linalg.operators.FactoredH3Operator` on ``G1``'s
    sparse LU — a lifted dimension of ``n + 2nN + n³ ≈ 2·10¹⁰`` at
    ``n = 2048`` is never instantiated.  The ``B3`` input columns are
    assembled directly in factored form from their Kronecker structure
    (``B ⊗ b̃2`` columns are rank-≤2 per block).
    """

    input_arity = 3

    def __init__(self, workspace):
        system = workspace.system
        self.workspace = workspace
        self.operator = FactoredH3Operator(
            system.g1,
            system.g2,
            system.g3,
            workspace.lowrank_kron,
            workspace.solve_shifted,
        )
        self.n_top = workspace.n
        self.n_inputs = workspace.m
        self.columns = self._build_columns()

    @property
    def dim(self):
        return self.operator.dim

    @property
    def n_cols(self):
        return len(self.columns)

    def _build_columns(self):
        ws = self.workspace
        system = ws.system
        n, m = ws.n, ws.m
        b = system.b
        op = self.operator
        top = _h3_top_block(ws)
        md = ws.d1_coupling() if op.has_quad else None
        columns = []
        for col in range(m**3):
            t = ((col // (m * m)) % m, (col // m) % m, col % m)
            b1 = b2 = c1 = c2 = d = None
            if op.has_quad:
                b1 = FactoredTensor.zeros((n, n))
                b2 = FactoredTensor.zeros((n, n, n))
                c1 = FactoredTensor.zeros((n, n))
                c2 = FactoredTensor.zeros((n, n, n))
                # Left block: (1/3)(B ⊗ b̃2) Σᵢ P — source column
                # (p, (q, r)) = permuted input triple.
                for perm in ((0, 1, 2), (1, 0, 2), (2, 0, 1)):
                    p_, q_, r_ = (t[perm[0]], t[perm[1]], t[perm[2]])
                    b1 = b1.add(FactoredTensor.rank_one(
                        [b[:, p_], md[:, q_ * m + r_]], weight=1.0 / 3.0
                    ))
                    b2 = b2.add(_sym_pair_tensor(
                        b[:, p_], b[:, q_], b[:, r_], lead=0,
                        weight=1.0 / 3.0,
                    ))
                # Right block: (1/3)(b̃2 ⊗ B) Σᵢ P — source column
                # ((u0, u1), u2).
                for perm in ((1, 2, 0), (0, 2, 1), (0, 1, 2)):
                    u0, u1, u2 = (t[perm[0]], t[perm[1]], t[perm[2]])
                    c1 = c1.add(FactoredTensor.rank_one(
                        [md[:, u0 * m + u1], b[:, u2]], weight=1.0 / 3.0
                    ))
                    c2 = c2.add(_sym_pair_tensor(
                        b[:, u2], b[:, u0], b[:, u1], lead=2,
                        weight=1.0 / 3.0,
                    ))
                b1, b2 = b1.compress(), b2.compress()
                c1, c2 = c1.compress(), c2.compress()
            if op.has_cubic:
                d = FactoredTensor.zeros((n, n, n))
                for perm in itertools.permutations(range(3)):
                    d = d.add(FactoredTensor.rank_one(
                        [b[:, t[perm[0]]], b[:, t[perm[1]]],
                         b[:, t[perm[2]]]],
                        weight=1.0 / 6.0,
                    ))
                d = d.compress()
            columns.append(
                LiftedH3Vector(top[:, col], b1=b1, b2=b2, c1=c1, c2=c2,
                               d=d)
            )
        return columns

    def project_top(self, vec):
        """Output map ``c̃ = [I_n, 0, ...]``: the dense top block."""
        return np.asarray(vec.a).reshape(-1)[: self.n_top]

    def eval(self, s):
        """Evaluate ``A3(H3)(s)`` — an ``(n, m³)`` complex matrix."""
        out = np.empty((self.n_top, self.n_cols), dtype=complex)
        for col in range(self.n_cols):
            x = self.operator.solve_shifted(-s, self.columns[col])
            out[:, col] = -self.project_top(x)
        return out

    def _moment_chain(self, col, count, s0):
        """One column's shift-invert chain on compressed vectors."""
        current = self.columns[col]
        vectors = []
        for _ in range(count):
            current = self.operator.solve_shifted(-s0, current)
            vectors.append(self.project_top(current).copy())
        return vectors

    def chain_tasks(self, count, s0=0.0, deduplicate=True):
        """Independent per-column chain callables (engine contract)."""
        count = check_positive_int(count, "count")
        if deduplicate:
            cols = _unique_symmetric_columns(self.n_inputs, 3)
        else:
            cols = list(range(self.n_cols))
        return [partial(self._moment_chain, col, count, s0) for col in cols]

    def moment_vectors(self, count, s0=0.0, deduplicate=True):
        """Projected shift-invert chains (see
        :meth:`AssociatedRealization.moment_vectors`)."""
        plan = SolvePlan("associated.moment_vectors[factored-h3]")
        for fn in self.chain_tasks(count, s0=s0, deduplicate=deduplicate):
            plan.add(fn)
        chains = plan.execute()
        return np.column_stack([v for chain in chains for v in chain])


def associated_h3(system, workspace=None):
    """Realization of ``A3(H3)`` (paper §2.2 plus the cubic extension).

    Returns ``None`` when ``H3 ≡ 0`` (no quadratic, bilinear or cubic
    terms).  Sparse systems get the matrix-free
    :class:`FactoredH3Realization` (compressed lifted vectors on the
    resolvent factory's sparse LU — ``G1`` is never densified); dense
    systems keep the Schur-based block operator.
    """
    workspace = workspace or AssociatedWorkspace.for_system(system)
    system = workspace.system
    if system.g2 is None and system.g3 is None:
        return None
    if workspace.is_sparse:
        return FactoredH3Realization(workspace)
    op = AssociatedH3Operator(workspace)
    b3 = _h3_input_matrix(workspace, op)
    return AssociatedRealization(
        op, b3, n_top=workspace.n, input_arity=3, n_inputs=workspace.m
    )
