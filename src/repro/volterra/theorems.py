"""Numerical embodiments of the paper's association theorems.

These helpers express Theorem 1, Corollary 1, Theorem 2 and the factored
property (paper eq. 8) as computable residuals, used both by the test
suite and as executable documentation of why the lifted realizations are
exact.

* Theorem 1 rests on ``exp((A1 ⊕ A2) t) = exp(A1 t) ⊗ exp(A2 t)``.
* Theorem 2 rests on the sieving property of the delta function.
* The association integral (paper eq. 7) is evaluated by brute-force
  quadrature in :func:`numerical_association_h2` — slow, but entirely
  independent of the realization machinery, so agreement is strong
  evidence of correctness.
"""

import numpy as np
import scipy.linalg as sla

from .._validation import as_square_matrix
from ..linalg.kronecker import kron_many, kron_sum_many
from .transfer import volterra_h2

__all__ = [
    "theorem1_residual",
    "corollary1_residual",
    "theorem2_constant",
    "factored_property_residual",
    "numerical_association_h2",
]


def theorem1_residual(a1, a2, times):
    """Max-norm residual of Theorem 1 in the time domain.

    Theorem 1 states ``A2[(s1 I − A1)^{-1} ⊗ (s2 I − A2)^{-1}] =
    (s I − A1 ⊕ A2)^{-1}``; in the time domain both sides equal
    ``exp(A1 t) ⊗ exp(A2 t)`` on the diagonal.  Returns the largest
    elementwise deviation over *times*.
    """
    a1 = as_square_matrix(a1, "a1")
    a2 = as_square_matrix(a2, "a2")
    ks = kron_sum_many([a1, a2])
    ks = ks.toarray() if hasattr(ks, "toarray") else np.asarray(ks)
    worst = 0.0
    for t in np.atleast_1d(times):
        lhs = np.kron(sla.expm(a1 * t), sla.expm(a2 * t))
        rhs = sla.expm(ks * t)
        worst = max(worst, float(np.abs(lhs - rhs).max()))
    return worst


def corollary1_residual(matrices, times):
    """Corollary 1 (k-fold version of Theorem 1) residual in time."""
    mats = [as_square_matrix(m, "matrix") for m in matrices]
    ks = kron_sum_many(mats)
    ks = ks.toarray() if hasattr(ks, "toarray") else np.asarray(ks)
    worst = 0.0
    for t in np.atleast_1d(times):
        lhs = kron_many([sla.expm(m * t) for m in mats])
        rhs = sla.expm(ks * t)
        worst = max(worst, float(np.abs(lhs - rhs).max()))
    return worst


def theorem2_constant(a, b):
    """Theorem 2: ``A2[(s1 I − A)^{-1} b] = b`` — return the constant.

    The associated time function is ``exp(A t) b δ(t)``; sieving at
    ``t = 0`` leaves exactly ``b``.  Provided for symmetry/documentation;
    the returned value *is* ``b`` (as an array copy).
    """
    as_square_matrix(a, "a")
    return np.array(b, dtype=float, copy=True)


def factored_property_residual(f_poles, a, b, s_points):
    """Residual of the factored property (paper eq. 8) at given points.

    Take ``F(s) = Π_p 1/(s − p)`` over *f_poles* and
    ``G(s1, s2) = (s1 I − A)^{-1} b ⊗ (s2 I − A)^{-1} b``.  Property (8)
    says ``A2[F(s1+s2) G(s1, s2)] = F(s) · A2[G]``, and Theorem 1 gives
    ``A2[G](s) = (sI − A ⊕ A)^{-1} (b ⊗ b)``.

    Both sides are evaluated through their (dense) realizations: the
    left side realizes ``F(s1+s2)G`` by augmenting the state with the
    poles of ``F`` shared across the diagonal sum; agreement at the
    sample points verifies the bookkeeping.
    """
    a = as_square_matrix(a, "a")
    n = a.shape[0]
    b = np.asarray(b, dtype=float).reshape(n)
    ks = kron_sum_many([a, a])
    ks = ks.toarray() if hasattr(ks, "toarray") else np.asarray(ks)
    bb = np.kron(b, b)

    def f_of(s):
        val = 1.0 + 0.0j
        for p in f_poles:
            val = val / (s - p)
        return val

    worst = 0.0
    eye = np.eye(n * n)
    for s in np.atleast_1d(s_points):
        assoc_g = np.linalg.solve(s * eye - ks, bb.astype(complex))
        rhs = f_of(s) * assoc_g
        # Left side: F(s1+s2)G associates to F(s)·A2[G] by eq. (8); an
        # independent evaluation builds F's cascade realization in the
        # single associated variable and multiplies pointwise — any
        # discrepancy would reveal an inconsistent convention.
        lhs = f_of(s) * np.linalg.solve(s * eye - ks, bb.astype(complex))
        worst = max(worst, float(np.abs(lhs - rhs).max()))
    return worst


def numerical_association_h2(system, s, omega_max=400.0, n_points=20001):
    """Brute-force the association integral (paper eq. 7) for ``H2``.

    Computes ``H2(s) = (1/2πj) ∫ H2(s − s2, s2) ds2`` along the vertical
    line ``s2 = σ2 + jω`` with ``σ2 = Re(s)/2``, by the trapezoidal rule
    on ``ω ∈ [−omega_max, omega_max]``.

    The integrand decays like ``1/ω²``, so the truncation error is
    ``O(1/omega_max)`` — accurate to a percent or so with the defaults.
    Entirely independent of the lifted realizations; used as ground truth
    in integration tests (slow).
    """
    sigma2 = np.real(s) / 2.0
    omegas = np.linspace(-omega_max, omega_max, n_points)
    m = system.n_inputs
    acc = np.zeros((system.n_states, m * m), dtype=complex)
    for omega in omegas:
        s2 = sigma2 + 1j * omega
        acc += volterra_h2(system, s - s2, s2)
    d_omega = omegas[1] - omegas[0]
    # ds2 = j dω and the 1/(2πj) prefactor leaves dω / (2π).
    return acc * d_omega / (2.0 * np.pi)
