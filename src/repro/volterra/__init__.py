"""Volterra theory: multivariate transfer functions, associated-transform
realizations (the paper's core contribution), variational time-domain
responses, and numerical theorem checks."""

from .associated import (
    AssociatedH3Operator,
    AssociatedRealization,
    AssociatedWorkspace,
    DecoupledH2Realization,
    FactoredH3Realization,
    associated_h1,
    associated_h2,
    associated_h2_decoupled,
    associated_h3,
)
from .evaluator import VolterraEvaluator, volterra_evaluator
from .response import (
    VolterraResponse,
    frequency_sweep,
    volterra_series_response,
)
from .theorems import (
    corollary1_residual,
    factored_property_residual,
    numerical_association_h2,
    theorem1_residual,
    theorem2_constant,
)
from .transfer import (
    apply_input_permutation,
    input_permutation,
    output_transfer,
    permutation_indices,
    volterra_h1,
    volterra_h2,
    volterra_h3,
)

__all__ = [
    "AssociatedH3Operator",
    "AssociatedRealization",
    "AssociatedWorkspace",
    "DecoupledH2Realization",
    "FactoredH3Realization",
    "associated_h1",
    "associated_h2",
    "associated_h2_decoupled",
    "associated_h3",
    "VolterraEvaluator",
    "volterra_evaluator",
    "VolterraResponse",
    "frequency_sweep",
    "volterra_series_response",
    "corollary1_residual",
    "factored_property_residual",
    "numerical_association_h2",
    "theorem1_residual",
    "theorem2_constant",
    "apply_input_permutation",
    "input_permutation",
    "output_transfer",
    "permutation_indices",
    "volterra_h1",
    "volterra_h2",
    "volterra_h3",
]
