"""repro — Nonlinear model order reduction via associated transforms of
high-order Volterra transfer functions.

Reproduction of: Zhang, Liu, Wang, Fong, Wong, "Fast Nonlinear Model
Order Reduction via Associated Transforms of High-Order Volterra Transfer
Functions", DAC 2012, pp. 289-294.

Quickstart
----------
>>> from repro.circuits import nonlinear_transmission_line
>>> from repro.mor import AssociatedTransformMOR
>>> from repro.simulation import simulate, step_source
>>> system = nonlinear_transmission_line(20).quadratic_linearize()
>>> rom = AssociatedTransformMOR(orders=(4, 2, 0)).reduce(system)
>>> result = simulate(rom.system, step_source(0.1), t_end=5.0, dt=0.01)

See README.md for the full tour and DESIGN.md for the system inventory.
"""

__version__ = "1.0.0"

from . import engine  # noqa: F401  (repro.engine.configure / REPRO_WORKERS)
from .errors import (  # noqa: F401
    ConvergenceError,
    NumericalError,
    ReproError,
    SystemStructureError,
    ValidationError,
)
from .mor import (  # noqa: F401
    AssociatedTransformMOR,
    NORMReducer,
    ReducedOrderModel,
    balanced_truncation,
    suggest_orders,
)
from .simulation import simulate  # noqa: F401
from .systems import (  # noqa: F401
    CubicODE,
    ExponentialODE,
    PolynomialODE,
    QLDAE,
    StateSpace,
)

__all__ = [
    "engine",
    "ConvergenceError",
    "NumericalError",
    "ReproError",
    "SystemStructureError",
    "ValidationError",
    "AssociatedTransformMOR",
    "NORMReducer",
    "ReducedOrderModel",
    "balanced_truncation",
    "suggest_orders",
    "simulate",
    "CubicODE",
    "ExponentialODE",
    "PolynomialODE",
    "QLDAE",
    "StateSpace",
    "__version__",
]
