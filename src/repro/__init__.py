"""repro — Nonlinear model order reduction via associated transforms of
high-order Volterra transfer functions.

Reproduction of: Zhang, Liu, Wang, Fong, Wong, "Fast Nonlinear Model
Order Reduction via Associated Transforms of High-Order Volterra Transfer
Functions", DAC 2012, pp. 289-294.

Quickstart
----------
>>> from repro.circuits import quadratic_rc_ladder_netlist
>>> from repro.pipeline import run_pipeline
>>> result = run_pipeline(
...     quadratic_rc_ladder_netlist(70),
...     reduce=(6, 3, 0),
...     sweep={"start": 0.02, "stop": 0.5, "points": 25},
...     store="./models",          # reuse the reduction across runs
... )
>>> result.report()["sweep"]["hd2"]

or, without importing anything:  ``python -m repro sweep spec.json``.
See README.md for the full tour and DESIGN.md for the system inventory.
"""

__version__ = "1.0.0"

from . import engine  # noqa: F401  (repro.engine.configure / REPRO_WORKERS)
from .errors import (  # noqa: F401
    ConvergenceError,
    NumericalError,
    ReproError,
    SystemStructureError,
    ValidationError,
)
from .mor import (  # noqa: F401
    AssociatedTransformMOR,
    NORMReducer,
    ReducedOrderModel,
    balanced_truncation,
    suggest_orders,
)
from .pipeline import (  # noqa: F401
    ReductionJob,
    SweepJob,
    TransientJob,
    run_pipeline,
)
from .simulation import simulate  # noqa: F401
from .store import ModelStore, ReductionArtifact  # noqa: F401
from .systems import (  # noqa: F401
    CubicODE,
    ExponentialODE,
    PolynomialODE,
    QLDAE,
    StateSpace,
)

__all__ = [
    "engine",
    "ConvergenceError",
    "NumericalError",
    "ReproError",
    "SystemStructureError",
    "ValidationError",
    "AssociatedTransformMOR",
    "NORMReducer",
    "ReducedOrderModel",
    "ReductionJob",
    "SweepJob",
    "TransientJob",
    "run_pipeline",
    "ModelStore",
    "ReductionArtifact",
    "balanced_truncation",
    "suggest_orders",
    "simulate",
    "CubicODE",
    "ExponentialODE",
    "PolynomialODE",
    "QLDAE",
    "StateSpace",
    "__version__",
]
