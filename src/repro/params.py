"""Named device parameters, corner grids, and Monte-Carlo samplers.

The DAC'12 flow reduces *one* circuit; real verification sweeps a
*family* — process corners and Monte-Carlo mismatch draws of the same
topology.  This module gives :class:`~repro.circuits.netlist.Netlist`
a typed parameter layer:

* :class:`Parameter` names a numeric device field (e.g. the ladder's
  series resistance) bound to one or more device sites, with a nominal
  value, an optional ``[low, high]`` corner range and an optional
  relative ``sigma`` for Gaussian mismatch draws.
* :func:`materialize` turns ``{name: value}`` assignments into a fresh
  concrete netlist via ``dataclasses.replace`` on the bound devices —
  every corner re-runs the device constructors, so invalid values fail
  with the same :class:`~repro.errors.ValidationError` a hand-built
  netlist would raise.
* :class:`ParameterGrid` materializes the cartesian corner grid (C
  order over axes in declaration order) and knows the grid topology —
  flat/multi index maps and axis neighbors — which the parametric
  reduction job uses to pick interpolation anchors.
* :class:`MonteCarloSampler` draws concrete value assignments from an
  explicitly seeded :func:`numpy.random.default_rng`; the seed is
  recorded on the sampler and in every report so a distribution can be
  reproduced bit-for-bit.

Because a parameter only changes device *values* (never the stamp
pattern), every corner of a grid shares one structural fingerprint —
:func:`structural_fingerprint` asserts this, and the reuse tiers of
:class:`~repro.pipeline.ParametricReductionJob` rely on it.
"""

import dataclasses

import numpy as np

from .errors import ValidationError

__all__ = [
    "MonteCarloSampler",
    "Parameter",
    "ParameterGrid",
    "materialize",
    "structural_fingerprint",
]

#: Numeric device fields a parameter may bind to.  Topology fields
#: (node indices) are deliberately excluded: a parameter must never be
#: able to change the stamp pattern.
_BINDABLE_EXCLUDE = {"node_pos", "node_neg"}


def _as_float(value, what):
    try:
        out = float(value)
    except (TypeError, ValueError):
        raise ValidationError(f"{what} must be a real number, got {value!r}")
    if not np.isfinite(out):
        raise ValidationError(f"{what} must be finite, got {out!r}")
    return out


@dataclasses.dataclass(frozen=True)
class Parameter:
    """A named numeric knob bound to device sites of a netlist.

    Parameters
    ----------
    name : str
        Unique parameter name (the key in value assignments).
    field : str
        Device dataclass field the parameter drives (``resistance``,
        ``capacitance``, ``alpha``, ...).
    devices : tuple of int
        Indices into ``netlist.devices`` of the bound sites; every
        site receives the same value.
    nominal : float
        Default value (used when an assignment omits the parameter).
    low, high : float, optional
        Corner range for grid sweeps; both required to put the
        parameter on a :class:`ParameterGrid` axis.
    sigma : float, optional
        Relative standard deviation for Monte-Carlo draws: samples are
        ``normal(nominal, sigma * |nominal|)`` clipped to
        ``[low, high]`` when a range is given.
    """

    name: str
    field: str
    devices: tuple
    nominal: float
    low: float = None
    high: float = None
    sigma: float = None

    def __post_init__(self):
        if not self.name or not isinstance(self.name, str):
            raise ValidationError("parameter name must be a non-empty string")
        if not self.field or not isinstance(self.field, str):
            raise ValidationError(
                f"parameter {self.name!r}: field must be a non-empty string"
            )
        if self.field in _BINDABLE_EXCLUDE:
            raise ValidationError(
                f"parameter {self.name!r} may not bind topology field "
                f"{self.field!r}"
            )
        try:
            sites = tuple(int(i) for i in self.devices)
        except (TypeError, ValueError):
            raise ValidationError(
                f"parameter {self.name!r}: devices must be a sequence of "
                f"integer indices, got {self.devices!r}"
            )
        if not sites:
            raise ValidationError(
                f"parameter {self.name!r} binds no device sites"
            )
        object.__setattr__(self, "devices", sites)
        object.__setattr__(
            self, "nominal", _as_float(self.nominal, f"{self.name}.nominal")
        )
        for bound in ("low", "high", "sigma"):
            value = getattr(self, bound)
            if value is not None:
                object.__setattr__(
                    self, bound, _as_float(value, f"{self.name}.{bound}")
                )
        if (self.low is None) != (self.high is None):
            raise ValidationError(
                f"parameter {self.name!r}: low and high must be given "
                "together"
            )
        if self.low is not None:
            if self.low > self.high:
                raise ValidationError(
                    f"parameter {self.name!r}: low ({self.low}) exceeds "
                    f"high ({self.high})"
                )
            if not (self.low <= self.nominal <= self.high):
                raise ValidationError(
                    f"parameter {self.name!r}: nominal {self.nominal} "
                    f"outside [{self.low}, {self.high}]"
                )
        if self.sigma is not None and self.sigma < 0:
            raise ValidationError(
                f"parameter {self.name!r}: sigma must be >= 0"
            )

    # -- range helpers ------------------------------------------------------

    @property
    def has_range(self):
        return self.low is not None

    def grid_values(self, points):
        """``points`` evenly spaced values across ``[low, high]``."""
        points = int(points)
        if points < 1:
            raise ValidationError(
                f"parameter {self.name!r}: grid needs >= 1 point"
            )
        if not self.has_range:
            raise ValidationError(
                f"parameter {self.name!r} has no [low, high] range; it "
                "cannot form a grid axis"
            )
        if points == 1:
            return np.array([self.nominal])
        return np.linspace(self.low, self.high, points)

    def draw(self, rng):
        """One Monte-Carlo value from the recorded-seed generator."""
        if self.sigma is not None and self.sigma > 0:
            value = self.nominal + self.sigma * abs(self.nominal) * float(
                rng.standard_normal()
            )
            if self.has_range:
                value = min(max(value, self.low), self.high)
            return value
        if self.has_range:
            return float(rng.uniform(self.low, self.high))
        return self.nominal

    # -- serialization ------------------------------------------------------

    def to_dict(self):
        data = {
            "name": self.name,
            "field": self.field,
            "devices": list(self.devices),
            "nominal": self.nominal,
        }
        for bound in ("low", "high", "sigma"):
            value = getattr(self, bound)
            if value is not None:
                data[bound] = value
        return data

    @classmethod
    def coerce(cls, data):
        """Build a :class:`Parameter` from a dict (or pass one through)."""
        if isinstance(data, cls):
            return data
        if not isinstance(data, dict):
            raise ValidationError(
                f"parameter spec must be a dict, got {type(data).__name__}"
            )
        unknown = set(data) - {
            "name", "field", "devices", "nominal", "low", "high", "sigma"
        }
        if unknown:
            raise ValidationError(
                f"unknown parameter keys: {sorted(unknown)}"
            )
        try:
            return cls(
                name=data["name"],
                field=data["field"],
                devices=tuple(data["devices"]),
                nominal=data["nominal"],
                low=data.get("low"),
                high=data.get("high"),
                sigma=data.get("sigma"),
            )
        except KeyError as exc:
            raise ValidationError(f"parameter spec missing key {exc}")


def check_bindings(netlist, parameters):
    """Validate *parameters* against *netlist* device sites.

    Raises :class:`~repro.errors.ValidationError` on duplicate names,
    out-of-range device indices, unknown fields, or non-numeric bound
    fields.  Returns the parameters as a tuple.
    """
    params = tuple(Parameter.coerce(p) for p in parameters)
    seen = set()
    for param in params:
        if param.name in seen:
            raise ValidationError(f"duplicate parameter name {param.name!r}")
        seen.add(param.name)
        for idx in param.devices:
            if not 0 <= idx < len(netlist.devices):
                raise ValidationError(
                    f"parameter {param.name!r}: device index {idx} out of "
                    f"range (netlist has {len(netlist.devices)} devices)"
                )
            device = netlist.devices[idx]
            fields = {f.name for f in dataclasses.fields(device)}
            if param.field not in fields:
                raise ValidationError(
                    f"parameter {param.name!r}: device {idx} "
                    f"({type(device).__name__}) has no field "
                    f"{param.field!r}"
                )
            current = getattr(device, param.field)
            if not isinstance(current, (int, float, np.floating)):
                raise ValidationError(
                    f"parameter {param.name!r}: field {param.field!r} of "
                    f"device {idx} is not numeric"
                )
    return params


def materialize(netlist, values=None, check=True):
    """A concrete netlist with parameter *values* applied.

    Unassigned parameters take their nominal value; unknown names in
    *values* raise.  The result is a plain netlist (no parameter
    annotations) sharing nothing mutable with the source.
    """
    params = getattr(netlist, "parameters", ())
    values = dict(values or {})
    unknown = set(values) - {p.name for p in params}
    if unknown:
        raise ValidationError(
            f"unknown parameter names in assignment: {sorted(unknown)}"
        )
    if check:
        check_bindings(netlist, params)
    assignments = {}
    for param in params:
        value = _as_float(
            values.get(param.name, param.nominal), f"value of {param.name!r}"
        )
        for idx in param.devices:
            assignments.setdefault(idx, {})[param.field] = value
    concrete = type(netlist)(name=netlist.name)
    for idx, device in enumerate(netlist.devices):
        replaced = assignments.get(idx)
        if replaced:
            try:
                device = dataclasses.replace(device, **replaced)
            except (TypeError, ValueError, ValidationError) as exc:
                raise ValidationError(
                    f"materializing device {idx} "
                    f"({type(device).__name__}): {exc}"
                )
        concrete._register(device)
        if hasattr(device, "input_index"):
            concrete._n_inputs = max(
                concrete._n_inputs, device.input_index + 1
            )
    concrete._n_nodes = max(concrete._n_nodes, netlist.n_nodes)
    if netlist.output_nodes is not None:
        concrete.set_output_nodes(netlist.output_nodes)
    return concrete


def structural_fingerprint(netlist, values=None, sparse=None):
    """Structural digest of the compiled system at *values*.

    Parameters drive device values only, so every assignment of a
    well-formed parametric netlist shares one digest — the invariant
    the parametric job's reuse tiers (shared symbolic LU, warm-started
    bases, ROM interpolation) rest on.  A value that changes assembled
    *structure* (e.g. a capacitance crossing the mass≈identity drop)
    yields a different digest, and the job falls back to cold
    reductions for it.
    """
    from .circuits.mna import structural_digest

    system = materialize(netlist, values).compile(sparse=sparse)
    return structural_digest(system)


class ParameterGrid:
    """Cartesian corner grid over a parametric netlist's ranged axes.

    Axes are the netlist's parameters *with ranges*, in declaration
    order; corners enumerate in C order (last axis fastest).  ``points``
    is an int (every axis) or a ``{name: int}`` mapping.
    """

    def __init__(self, netlist, points=3):
        params = check_bindings(netlist, getattr(netlist, "parameters", ()))
        if not params:
            raise ValidationError(
                "netlist has no parameters; annotate it with "
                "Netlist.with_params first"
            )
        axes = [p for p in params if p.has_range]
        if not axes:
            raise ValidationError(
                "no parameter has a [low, high] range; a grid needs at "
                "least one axis"
            )
        if isinstance(points, dict):
            unknown = set(points) - {p.name for p in axes}
            if unknown:
                raise ValidationError(
                    f"grid points given for non-axis parameters: "
                    f"{sorted(unknown)}"
                )
            counts = [int(points.get(p.name, 3)) for p in axes]
        else:
            counts = [int(points)] * len(axes)
        self.netlist = netlist
        self.axes = tuple(
            (param, param.grid_values(count))
            for param, count in zip(axes, counts)
        )
        self.shape = tuple(values.size for _, values in self.axes)
        self._fixed = {
            p.name: p.nominal for p in params if not p.has_range
        }

    def __len__(self):
        return int(np.prod(self.shape))

    # -- index topology -----------------------------------------------------

    def multi_index(self, flat):
        flat = int(flat)
        if not 0 <= flat < len(self):
            raise ValidationError(
                f"corner index {flat} out of range [0, {len(self)})"
            )
        return tuple(int(i) for i in np.unravel_index(flat, self.shape))

    def flat_index(self, multi):
        return int(np.ravel_multi_index(tuple(multi), self.shape))

    def corner_values(self, index):
        """``{name: value}`` at a flat or multi corner index."""
        multi = (
            self.multi_index(index)
            if np.isscalar(index)
            else tuple(int(i) for i in index)
        )
        values = dict(self._fixed)
        for (param, axis), pos in zip(self.axes, multi):
            values[param.name] = float(axis[pos])
        return values

    def corners(self):
        """All corner assignments, flat C order."""
        return [self.corner_values(flat) for flat in range(len(self))]

    def axis_neighbors(self, flat):
        """Flat indices of same-axis neighbors: ``[(axis, left, right)]``.

        Only interior positions yield entries — both neighbors must
        exist.  The parametric job interpolates a corner from the pair
        bracketing it along its last interior axis.
        """
        multi = self.multi_index(flat)
        pairs = []
        for axis, pos in enumerate(multi):
            if 0 < pos < self.shape[axis] - 1:
                left = list(multi)
                right = list(multi)
                left[axis] = pos - 1
                right[axis] = pos + 1
                pairs.append(
                    (axis, self.flat_index(left), self.flat_index(right))
                )
        return pairs

    def interp_schedule(self):
        """Corners in reduction waves: ``[[(flat, pair), ...], ...]``.

        An axis position is an *anchor position* when it is even or the
        axis endpoint (which cannot be bracketed).  A corner's wave is
        the number of its non-anchor positions; wave-0 corners carry
        ``pair=None`` and must be reduced outright, while a wave-k
        corner (k >= 1) comes with the flat indices of the two corners
        bracketing it along its first non-anchor axis — both one wave
        earlier, hence already completed when the job reaches it.  The
        parametric job reduces wave by wave, attempting residual-checked
        interpolation from each corner's pair before falling back to a
        real reduction.
        """

        def is_anchor(pos, size):
            return pos % 2 == 0 or pos == size - 1

        waves = {}
        for flat in range(len(self)):
            multi = self.multi_index(flat)
            wave = sum(
                0 if is_anchor(p, s) else 1
                for p, s in zip(multi, self.shape)
            )
            pair = None
            if wave:
                for axis, (p, s) in enumerate(zip(multi, self.shape)):
                    if not is_anchor(p, s):
                        left = list(multi)
                        right = list(multi)
                        left[axis] = p - 1
                        right[axis] = p + 1
                        pair = (
                            self.flat_index(left),
                            self.flat_index(right),
                        )
                        break
            waves.setdefault(wave, []).append((flat, pair))
        return [waves[k] for k in sorted(waves)]

    def nearest(self, values, exclude=()):
        """Flat index of the corner closest to *values* (normalized).

        Distances are measured per axis in units of the axis span, so
        heterogeneous parameter scales compare fairly.  ``exclude``
        skips flat indices (e.g. corners that failed to reduce).
        """
        excluded = set(int(i) for i in exclude)
        best, best_dist = None, np.inf
        for flat in range(len(self)):
            if flat in excluded:
                continue
            corner = self.corner_values(flat)
            dist = 0.0
            for param, axis in self.axes:
                span = float(axis[-1] - axis[0]) or 1.0
                target = float(values.get(param.name, param.nominal))
                dist += ((corner[param.name] - target) / span) ** 2
            if dist < best_dist:
                best, best_dist = flat, dist
        if best is None:
            raise ValidationError("no grid corner available")
        return best

    def bracket(self, values, exclude=()):
        """Two nearest distinct corners to *values* (for interpolation)."""
        first = self.nearest(values, exclude=exclude)
        if len(self) - len(set(exclude)) < 2:
            return first, first
        second = self.nearest(values, exclude=set(exclude) | {first})
        return first, second

    def materialize(self, index):
        """Concrete netlist at a flat or multi corner index."""
        return materialize(self.netlist, self.corner_values(index))

    def describe(self):
        return {
            "shape": list(self.shape),
            "axes": [
                {"name": param.name, "values": [float(v) for v in axis]}
                for param, axis in self.axes
            ],
            "corners": len(self),
        }


class MonteCarloSampler:
    """Explicitly seeded Monte-Carlo assignments over a parametric netlist.

    All *draws* are computed eagerly at construction from
    ``numpy.random.default_rng(seed)``; the seed is recorded on the
    sampler and belongs in every downstream report.
    """

    def __init__(self, netlist, draws, seed):
        self.params = check_bindings(
            netlist, getattr(netlist, "parameters", ())
        )
        if not self.params:
            raise ValidationError(
                "netlist has no parameters; annotate it with "
                "Netlist.with_params first"
            )
        draws = int(draws)
        if draws < 0:
            raise ValidationError("draw count must be >= 0")
        self.netlist = netlist
        self.seed = int(seed)
        rng = np.random.default_rng(self.seed)
        self.samples = [
            {param.name: float(param.draw(rng)) for param in self.params}
            for _ in range(draws)
        ]

    def __len__(self):
        return len(self.samples)

    def __iter__(self):
        return iter(self.samples)

    def materialize(self, index):
        return materialize(self.netlist, self.samples[int(index)])

    def describe(self):
        return {"draws": len(self.samples), "seed": self.seed}
