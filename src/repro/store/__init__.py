"""Persistence layer: reduction artifacts and the content-addressed
model store.

This package is the disk half of the paper's offline/online split —
reduce once (:meth:`ModelStore.reduce` computes on a miss, serves from
disk on a hit), then answer distortion/response queries on the reloaded
ROM in any later process.  See :mod:`repro.pipeline` for the one-call
API that routes through it and ``python -m repro`` for the CLI.
"""

from .artifact import (
    SCHEMA_VERSION,
    ReductionArtifact,
    SchemaMismatchError,
    reducer_provenance,
)
from .modelstore import (
    ModelStore,
    artifact_key,
    fingerprint_system,
    parse_ttl,
    reducer_fingerprint,
)

__all__ = [
    "SCHEMA_VERSION",
    "ReductionArtifact",
    "SchemaMismatchError",
    "reducer_provenance",
    "ModelStore",
    "artifact_key",
    "fingerprint_system",
    "parse_ttl",
    "reducer_fingerprint",
]
