"""Reduction artifacts: a ROM bundled with its provenance.

A :class:`~repro.mor.ReducedOrderModel` alone answers *what* the reduced
system is; an artifact also answers *where it came from* — which system
(structural fingerprint), which reducer configuration (orders, expansion
points, strategy, tolerances), which library version, and a content hash
of the projection basis so a tampered or bit-rotted artifact is detected
on load instead of silently serving wrong distortion numbers.
"""

import time

from ..errors import ValidationError
from ..mor.base import ReducedOrderModel
from ..serialize import array_digest, json_safe, load_payload, save_payload

__all__ = ["ReductionArtifact", "SCHEMA_VERSION", "SchemaMismatchError"]

#: Artifact schema version.  Bump on any incompatible payload change;
#: the store treats entries with a different schema as cache misses
#: (recompute-and-overwrite) rather than attempting migration.
SCHEMA_VERSION = 1


class SchemaMismatchError(ValidationError):
    """An intact artifact written under an incompatible schema version.

    Distinct from generic load failures so :class:`~repro.store.
    ModelStore` can treat it as a clean miss (recompute-and-overwrite)
    without quarantining a file that another library version can still
    read.
    """


def reducer_provenance(reducer):
    """Declarative description of a reducer's configuration.

    Collects the identity-defining attributes shared by the library's
    reducers (orders, expansion points, strategy, deduplication flag,
    deflation tolerance) plus the class name.  Unknown reducer types
    contribute whichever of these attributes they define — enough to
    distinguish any two configurations of the same class.
    """
    desc = {"class": type(reducer).__name__}
    for attr in ("orders", "expansion_points", "strategy", "deduplicate",
                 "tol"):
        if hasattr(reducer, attr):
            desc[attr] = json_safe(getattr(reducer, attr))
    return desc


class ReductionArtifact:
    """A reduced-order model plus the provenance of its reduction.

    Attributes
    ----------
    rom : ReducedOrderModel
        The reduction result (reduced system + basis + diagnostics).
    provenance : dict
        Flat JSON-safe record: ``schema``, ``library_version``,
        ``created_unix``, ``method``, ``orders``, ``expansion_points``,
        ``strategy``, ``tol``, ``basis_hash``, ``system_fingerprint``,
        ``system_class``, ``system_name``, ``full_order``,
        ``reduced_order``, ``build_time`` (absent fields were unknown at
        creation time).
    """

    def __init__(self, rom, provenance):
        if not isinstance(rom, ReducedOrderModel):
            raise ValidationError(
                f"rom must be a ReducedOrderModel, got {type(rom).__name__}"
            )
        self.rom = rom
        self.provenance = dict(provenance)

    @classmethod
    def from_reduction(cls, rom, system=None, reducer=None,
                       system_fingerprint=None):
        """Bundle a freshly built *rom* with full provenance.

        *system* and *reducer* are optional — whatever is passed is
        recorded; the basis hash and ROM geometry always are.
        """
        from .. import __version__

        provenance = {
            "schema": SCHEMA_VERSION,
            "library_version": __version__,
            "created_unix": float(time.time()),
            "method": rom.method,
            "orders": json_safe(rom.orders),
            "expansion_points": json_safe(rom.expansion_points),
            "basis_hash": array_digest(rom.basis),
            "full_order": int(rom.full_order),
            "reduced_order": int(rom.order),
            "build_time": json_safe(rom.build_time),
        }
        if reducer is not None:
            provenance["reducer"] = reducer_provenance(reducer)
            for attr in ("strategy", "tol"):
                if hasattr(reducer, attr):
                    provenance[attr] = json_safe(getattr(reducer, attr))
        if system is not None:
            provenance["system_class"] = type(system).__name__
            provenance["system_name"] = getattr(system, "name", "")
        if system_fingerprint is not None:
            provenance["system_fingerprint"] = str(system_fingerprint)
        return cls(rom, provenance)

    # -- integrity -----------------------------------------------------------

    def verify(self):
        """True when the stored basis hash matches the basis content."""
        recorded = self.provenance.get("basis_hash")
        return recorded is None or recorded == array_digest(self.rom.basis)

    def describe(self):
        """Provenance summary (JSON-safe copy) for reports and ``info``."""
        return json_safe(self.provenance)

    def __repr__(self):
        return (
            f"ReductionArtifact(method={self.rom.method!r}, "
            f"order={self.rom.order}, full_order={self.rom.full_order}, "
            f"schema={self.provenance.get('schema')})"
        )

    # -- serialization -------------------------------------------------------

    def to_dict(self):
        return {
            "__class__": "ReductionArtifact",
            "schema": SCHEMA_VERSION,
            "rom": self.rom.to_dict(),
            "provenance": json_safe(self.provenance),
        }

    @classmethod
    def from_dict(cls, data):
        kind = data.get("__class__")
        if kind != "ReductionArtifact":
            raise ValidationError(
                f"payload describes a {kind!r}, not a ReductionArtifact"
            )
        schema = data.get("schema")
        if schema != SCHEMA_VERSION:
            raise SchemaMismatchError(
                f"artifact schema {schema!r} is not supported by this "
                f"library version (expected {SCHEMA_VERSION})"
            )
        return cls(
            ReducedOrderModel.from_dict(data["rom"]), data["provenance"]
        )

    def save(self, path):
        """Write the artifact to *path* as one ``.npz`` archive (atomic)."""
        return save_payload(path, self.to_dict())

    @classmethod
    def load(cls, path, verify=True):
        """Load an artifact written by :meth:`save`.

        With *verify* (default) the basis content hash is re-checked and
        a mismatch raises :class:`~repro.errors.ValidationError` — the
        store maps that to a cache miss.
        """
        artifact = cls.from_dict(load_payload(path))
        if verify and not artifact.verify():
            raise ValidationError(
                f"artifact {path} failed its basis content check "
                "(corrupt or tampered)"
            )
        return artifact
