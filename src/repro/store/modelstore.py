"""Content-addressed on-disk cache of reduction artifacts.

The offline/online split of the paper's method only becomes a *serving*
architecture once reductions survive the process: :class:`ModelStore`
keys each artifact by a structural fingerprint of the system (shapes,
dtypes, sparsity pattern and data digests) combined with the reducer
configuration, so ``store.reduce(system, reducer)`` on an already-seen
pair is a disk hit — across runs, processes and machines sharing the
store directory.

Design points:

* **Content addressing** — the key is a SHA-256 over the system's
  numerical content and the reducer's identity-defining parameters.
  Renaming a system does not fork the cache; changing one matrix entry
  or one tolerance does.
* **Atomic writes** — artifacts and metadata go through temp-file +
  ``os.replace`` in the entry directory, so concurrent writers race
  benignly (last writer wins with a complete file) and a crash can
  never publish a torn artifact.
* **Versioned schema** — every entry records the artifact schema;
  entries from an incompatible schema read as misses and are
  recomputed, never migrated in place.
* **Corruption-safe loads** — any load failure (truncated zip, bad
  JSON, failed basis-hash check) is quarantined and treated as a miss:
  the caller recomputes and overwrites.  A broken cache can cost time,
  never correctness.
"""

import contextlib
import hashlib
import inspect
import json
import os
import shutil
import tempfile
import time
from pathlib import Path

try:
    import fcntl
except ImportError:  # non-POSIX: entry locking degrades to best-effort
    fcntl = None

import numpy as np

from ..errors import ValidationError
from ..memory import parse_budget
from ..serialize import durable_write, json_safe, update_digest
from ..systems.exponential import ExponentialODE
from ..systems.lti import StateSpace
from ..systems.polynomial import PolynomialODE
from ..testing.faults import fault_point
from .artifact import (
    SCHEMA_VERSION,
    ReductionArtifact,
    SchemaMismatchError,
    reducer_provenance,
)

__all__ = [
    "ModelStore",
    "artifact_key",
    "fingerprint_system",
    "parse_ttl",
    "reducer_fingerprint",
]

#: Fingerprint-format tag; bump when the hashed field set changes so old
#: store entries age out instead of colliding.
_FINGERPRINT_TAG = b"repro-fingerprint-v1"


@contextlib.contextmanager
def _entry_lock(entry_dir):
    """Hold the per-entry ``flock`` for a metadata read-modify-write.

    ``meta.json`` is written whole by :meth:`ModelStore.store` and
    patched in place by the last-access touch on reads; without mutual
    exclusion a touch that read the *old* metadata could republish it
    over a concurrent writer's fresh provenance.  The lock is kernel-
    owned (dies with the holder, like ``perf_log``'s trajectory lock)
    and best-effort: where ``fcntl`` is unavailable the writers fall
    back to bare atomic replaces, whose race loses only an access-time
    update.
    """
    if fcntl is None:
        yield
        return
    handle = open(os.path.join(entry_dir, ".lock"), "a+")
    try:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        yield
    finally:
        fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        handle.close()


_TTL_SUFFIXES = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}


def parse_ttl(value):
    """Parse a TTL spec to seconds, or ``None`` for "no TTL".

    Accepts ``None``/``""``/``"none"``/``0`` (no TTL), a plain second
    count, or a count with an s/m/h/d suffix (case-insensitive):
    ``"90s"``, ``"15m"``, ``"12h"``, ``"7d"``.
    """
    if value is None:
        return None
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        seconds = float(value)
    else:
        text = str(value).strip().lower()
        if text in ("", "none", "0"):
            return None
        scale = 1.0
        if text[-1] in _TTL_SUFFIXES:
            scale = _TTL_SUFFIXES[text[-1]]
            text = text[:-1]
        try:
            seconds = float(text) * scale
        except ValueError as exc:
            raise ValidationError(
                f"ttl must look like '7d', '12h' or a second count, "
                f"got {value!r}"
            ) from exc
    if seconds < 0:
        raise ValidationError(f"ttl must be >= 0, got {value!r}")
    return seconds or None


def fingerprint_system(system):
    """Hex SHA-256 structural fingerprint of a system.

    Hashes the class name plus every kernel-defining matrix — shapes,
    dtypes, sparsity structure (CSR indptr/indices) and data bytes —
    so two systems fingerprint equal iff they are numerically the same
    model.  The human-readable ``name`` is deliberately excluded.

    Supports the serializable system families (:class:`StateSpace`,
    the :class:`PolynomialODE` hierarchy) plus :class:`ExponentialODE`
    (hashing its exponential terms), covering everything
    MNA assembly can produce.
    """
    digest = hashlib.sha256()
    digest.update(_FINGERPRINT_TAG)
    digest.update(type(system).__name__.encode())
    if isinstance(system, StateSpace):
        fields = ("a", "b", "c", "d")
    elif isinstance(system, (PolynomialODE, ExponentialODE)):
        fields = ("g1", "b", "g2", "g3", "mass", "output")
    else:
        raise ValidationError(
            f"cannot fingerprint a {type(system).__name__}; supported: "
            "StateSpace, PolynomialODE/QLDAE/CubicODE, ExponentialODE"
        )
    for field in fields:
        digest.update(field.encode())
        update_digest(digest, getattr(system, field, None))
    d1 = getattr(system, "d1", None)
    digest.update(b"d1")
    if d1 is None:
        update_digest(digest, None)
    else:
        for mat in d1:
            update_digest(digest, mat)
    for term in getattr(system, "exp_terms", ()):
        digest.update(b"exp_term")
        update_digest(digest, np.asarray(term.coefficient))
        update_digest(digest, np.asarray(term.exponent))
    return digest.hexdigest()


def reducer_fingerprint(reducer):
    """Hex SHA-256 of a reducer's identity-defining configuration."""
    desc = reducer_provenance(reducer)
    encoded = json.dumps(desc, sort_keys=True, default=repr)
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def artifact_key(system, reducer, system_fingerprint=None):
    """Content-addressed key for (*system*, *reducer*).

    The same structural × reducer fingerprint the store shards entries
    by; exposed at module level so other layers (checkpoints, the
    serving daemon) can key state identically without holding a
    :class:`ModelStore`.  *system_fingerprint*, when given, must be the
    value :func:`fingerprint_system` would return for *system* — callers
    that already hold it (a served process fingerprints each loaded spec
    once) skip the re-hash of every system matrix.
    """
    digest = hashlib.sha256()
    digest.update(f"schema-{SCHEMA_VERSION}".encode())
    if system_fingerprint is None:
        system_fingerprint = fingerprint_system(system)
    digest.update(str(system_fingerprint).encode())
    digest.update(reducer_fingerprint(reducer).encode())
    return digest.hexdigest()


def _accepts_checkpoint(reducer):
    """True when ``reducer.reduce`` takes a ``checkpoint`` keyword."""
    try:
        signature = inspect.signature(reducer.reduce)
    except (TypeError, ValueError):
        return False
    return "checkpoint" in signature.parameters


class ModelStore:
    """Content-addressed artifact store rooted at one directory.

    Parameters
    ----------
    root : str or Path
        Store directory (created if absent).  Layout:
        ``objects/<key[:2]>/<key>/artifact.npz`` + ``meta.json`` per
        entry; quarantined corrupt files get a ``.corrupt`` suffix.

    The instance keeps hit/miss/corruption counters
    (:meth:`stats`, in the spirit of ``sparse_lu_stats``) so serving
    layers can report cache effectiveness.
    """

    def __init__(self, root):
        self.root = Path(root)
        (self.root / "objects").mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.quarantine_collisions = 0
        self.touches = 0
        self.evictions = 0

    # -- keys ----------------------------------------------------------------

    def key_for(self, system, reducer, system_fingerprint=None):
        """Content-addressed key for (*system*, *reducer*)."""
        return artifact_key(
            system, reducer, system_fingerprint=system_fingerprint
        )

    def _entry_dir(self, key):
        return self.root / "objects" / key[:2] / key

    def artifact_path(self, key):
        """Path the artifact for *key* lives at (whether or not present)."""
        return self._entry_dir(key) / "artifact.npz"

    def keys(self):
        """Keys of all entries currently on disk (sorted)."""
        objects = self.root / "objects"
        return sorted(
            entry.name
            for shard in objects.iterdir() if shard.is_dir()
            for entry in shard.iterdir()
            if entry.is_dir() and (entry / "artifact.npz").exists()
        )

    def __len__(self):
        return len(self.keys())

    def __contains__(self, key):
        return self.artifact_path(key).exists()

    # -- load / store --------------------------------------------------------

    def _quarantine(self, path):
        """Move a broken file aside so it is not re-parsed every query.

        Repeated corruption of the same entry must not overwrite the
        evidence: when ``<path>.corrupt`` already exists the quarantine
        file gets a unique numeric suffix instead, and the collision is
        counted (:meth:`stats`) so operators notice a store that keeps
        re-corrupting.
        """
        target = f"{path}.corrupt"
        if os.path.exists(target):
            self.quarantine_collisions += 1
            suffix = 1
            while os.path.exists(f"{target}.{suffix}"):
                suffix += 1
            target = f"{target}.{suffix}"
        try:
            os.replace(path, target)
        except OSError:
            pass  # racing writer replaced it, or FS refuses: still a miss

    def load(self, key, touch=True):
        """Artifact for *key*, or ``None`` on miss/corruption/schema skew.

        Never raises for a bad entry: any failure (unreadable archive,
        schema mismatch, failed basis-hash verification) quarantines the
        file, bumps the ``corrupt`` counter and reads as a miss so the
        caller recomputes.

        Successful loads record a last-access timestamp in the entry's
        ``meta.json`` (atomic, best-effort; *touch=False* skips it) —
        the signal eviction/GC policies and the serving layer's
        hot-cache warm start key on.
        """
        path = self.artifact_path(key)
        if not path.exists():
            return None
        try:
            artifact = ReductionArtifact.load(path, verify=True)
        except SchemaMismatchError:
            # Incompatible-but-intact entry written by another library
            # version: recompute-and-overwrite, don't quarantine what
            # that version can still read.
            return None
        except Exception:
            self.corrupt += 1
            self._quarantine(path)
            return None
        if touch:
            self._touch_meta(key)
        return artifact

    def _touch_meta(self, key):
        """Record "now" as *key*'s last access in ``meta.json``.

        Atomic (temp file + ``os.replace`` under the entry flock, so a
        concurrent :meth:`store` overwrite can never be resurrected with
        stale provenance) and best-effort: losing an access-time update
        to a crash or a read-only store directory costs nothing but
        eviction-ordering precision, so failures are swallowed.  No
        fsync — an access time is not worth a disk flush per read.
        """
        entry = self._entry_dir(key)
        meta_path = entry / "meta.json"
        try:
            with _entry_lock(entry):
                meta = json.loads(meta_path.read_text(encoding="utf-8"))
                if not isinstance(meta, dict):
                    return False
                meta["last_access_unix"] = float(time.time())
                fd, tmp_path = tempfile.mkstemp(
                    prefix="meta.json.tmp", dir=entry
                )
                try:
                    with os.fdopen(fd, "w", encoding="utf-8") as handle:
                        handle.write(
                            json.dumps(meta, indent=2, default=repr) + "\n"
                        )
                    os.replace(tmp_path, meta_path)
                except BaseException:
                    with contextlib.suppress(OSError):
                        os.unlink(tmp_path)
                    raise
        except (OSError, ValueError):
            return False
        self.touches += 1
        return True

    def read_meta(self, key):
        """The entry's ``meta.json`` dict, or ``None`` when unreadable."""
        try:
            meta = json.loads(
                (self._entry_dir(key) / "meta.json").read_text(
                    encoding="utf-8"
                )
            )
        except (OSError, ValueError):
            return None
        return meta if isinstance(meta, dict) else None

    def last_access(self, key):
        """Unix time of *key*'s last recorded access (or ``None``).

        Falls back to the artifact's creation time for entries written
        before access recording existed (or whose meta was lost).
        """
        meta = self.read_meta(key)
        if meta is None:
            return None
        value = meta.get("last_access_unix")
        if value is None:
            provenance = meta.get("provenance")
            if isinstance(provenance, dict):
                value = provenance.get("created_unix")
        try:
            return float(value)
        except (TypeError, ValueError):
            return None

    def recent_keys(self, limit=None):
        """Keys ordered most-recently-accessed first.

        The ordering eviction/GC reads, and what
        :meth:`repro.serve.HotROMCache.warm_start` uses to pre-load the
        hottest ROMs into a fresh serving process.  Entries without any
        recorded time sort last (oldest).
        """
        keys = self.keys()
        decorated = sorted(
            ((self.last_access(key) or 0.0, key) for key in keys),
            key=lambda pair: (-pair[0], pair[1]),
        )
        keys = [key for _, key in decorated]
        return keys if limit is None else keys[: max(0, int(limit))]

    def store(self, key, artifact):
        """Write *artifact* under *key* (atomic; overwrites).

        Returns the artifact path.  ``meta.json`` carries the
        JSON-queryable summary (schema, provenance) so tooling can list
        a store without decompressing any arrays.
        """
        entry = self._entry_dir(key)
        entry.mkdir(parents=True, exist_ok=True)
        path = entry / "artifact.npz"
        artifact.save(path)
        fault_point("store.before_meta")
        meta = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "provenance": json_safe(artifact.provenance),
            "last_access_unix": float(time.time()),
        }
        with _entry_lock(entry):
            durable_write(
                entry / "meta.json",
                json.dumps(meta, indent=2, default=repr) + "\n",
            )
        return path

    # -- the serving entry point ---------------------------------------------

    def reduce(self, system, reducer, checkpoint=None,
               system_fingerprint=None):
        """Reduce *system* with *reducer*, served from the store if seen.

        Returns ``(artifact, hit)`` — *hit* is True when the artifact
        came off disk.  On a miss (including a corrupt or
        schema-incompatible entry) the reduction runs in-process and
        the store entry is (re)written.

        *checkpoint* (a :class:`~repro.checkpoint.JobState`) is passed
        through to reducers whose ``reduce`` accepts one, so a killed
        miss-path build resumes from its last committed stage instead of
        restarting; reducers without checkpoint support run unchanged.

        *system_fingerprint* — the precomputed
        :func:`fingerprint_system` value — lets a serving process that
        fingerprints each loaded spec once skip re-hashing the system
        here (twice, historically: once for the key and once for the
        miss-path provenance).
        """
        if system_fingerprint is None:
            system_fingerprint = fingerprint_system(system)
        key = self.key_for(
            system, reducer, system_fingerprint=system_fingerprint
        )
        artifact = self.load(key)
        if artifact is not None:
            self.hits += 1
            return artifact, True
        self.misses += 1
        if checkpoint is not None and _accepts_checkpoint(reducer):
            rom = reducer.reduce(system, checkpoint=checkpoint)
        else:
            rom = reducer.reduce(system)
        artifact = ReductionArtifact.from_reduction(
            rom,
            system=system,
            reducer=reducer,
            system_fingerprint=system_fingerprint,
        )
        self.store(key, artifact)
        return artifact, False

    # -- maintenance ---------------------------------------------------------

    def verify(self, quarantine=True):
        """Re-check every entry end to end (``store verify``).

        Loads each artifact with its basis SHA-256 digest re-computed
        and compared against the recorded ``basis_hash``.  Failing
        entries are quarantined (unless *quarantine* is false) and
        counted as corrupt.  Returns a JSON-safe report::

            {"checked": N, "ok": N_ok, "corrupt": N_bad,
             "entries": [{"key", "ok", "error"?}, ...]}
        """
        entries = []
        bad = 0
        for key in self.keys():
            path = self.artifact_path(key)
            try:
                ReductionArtifact.load(path, verify=True)
            except Exception as exc:
                bad += 1
                self.corrupt += 1
                if quarantine:
                    self._quarantine(path)
                entries.append(
                    {"key": key, "ok": False, "error": str(exc)}
                )
            else:
                entries.append({"key": key, "ok": True})
        return {
            "checked": len(entries),
            "ok": len(entries) - bad,
            "corrupt": bad,
            "entries": entries,
        }

    def entry_bytes(self, key):
        """On-disk bytes of *key*'s entry directory (0 when absent)."""
        total = 0
        with contextlib.suppress(OSError):
            for child in self._entry_dir(key).iterdir():
                with contextlib.suppress(OSError):
                    if child.is_file():
                        total += child.stat().st_size
        return total

    def ls(self):
        """JSON-safe listing (``store ls``): one row per entry, most
        recently accessed first, plus totals."""
        rows = []
        total = 0
        for key in self.recent_keys():
            size = self.entry_bytes(key)
            total += size
            rows.append({
                "key": key,
                "bytes": int(size),
                "last_access_unix": self.last_access(key),
            })
        return {
            "entries": rows,
            "count": len(rows),
            "total_bytes": int(total),
        }

    def _evict(self, key):
        """Remove *key*'s entry under its flock; True when it is gone.

        The artifact is unlinked first while the entry lock is held, so
        a concurrent :meth:`load` observes a plain miss (and a racing
        :meth:`store` that re-creates the entry after we release the
        lock simply wins — eviction of a just-rewritten entry is not
        worth fencing against).
        """
        entry = self._entry_dir(key)
        if not entry.exists():
            return False
        try:
            with _entry_lock(entry):
                with contextlib.suppress(OSError):
                    (entry / "artifact.npz").unlink()
                with contextlib.suppress(OSError):
                    (entry / "meta.json").unlink()
        except OSError:
            return False
        shutil.rmtree(entry, ignore_errors=True)
        self.evictions += 1
        return True

    def gc(self, max_bytes=None, ttl=None, now=None):
        """Size/TTL-budgeted eviction (``store gc``).

        Two policies compose, both keyed on the ``last_access_unix``
        stamps reads record in ``meta.json``: entries idle longer than
        *ttl* (see :func:`parse_ttl`) are dropped unconditionally, then
        further entries go oldest-first until the store's on-disk size
        is at most *max_bytes* (see
        :func:`repro.memory.parse_budget`).  Entries without any
        recorded access sort oldest.  Each eviction holds the entry
        flock (concurrent readers see a clean miss) and an eviction is
        atomic per entry — GC never leaves a half-deleted artifact
        behind.  Returns a JSON-safe report.
        """
        max_bytes = parse_budget(max_bytes)
        ttl_seconds = parse_ttl(ttl)
        now = float(now if now is not None else time.time())
        oldest_first = list(reversed(self.recent_keys()))
        sizes = {key: self.entry_bytes(key) for key in oldest_first}
        total = sum(sizes.values())
        evicted = []

        def drop(key, reason):
            nonlocal total
            if self._evict(key):
                evicted.append({
                    "key": key,
                    "bytes": int(sizes[key]),
                    "reason": reason,
                })
                total -= sizes[key]
                return True
            return False

        if ttl_seconds is not None:
            for key in list(oldest_first):
                last = self.last_access(key)
                if last is None or now - last > ttl_seconds:
                    if drop(key, "ttl"):
                        oldest_first.remove(key)
        if max_bytes is not None:
            for key in list(oldest_first):
                if total <= max_bytes:
                    break
                drop(key, "size")
        return {
            "evicted": evicted,
            "evicted_count": len(evicted),
            "evicted_bytes": int(sum(e["bytes"] for e in evicted)),
            "remaining_entries": len(self),
            "remaining_bytes": int(total),
            "max_bytes": max_bytes,
            "ttl_seconds": ttl_seconds,
        }

    def stats(self):
        """Counters + entry count, ``sparse_lu_stats``-style."""
        return {
            "hits": int(self.hits),
            "misses": int(self.misses),
            "corrupt": int(self.corrupt),
            "quarantine_collisions": int(self.quarantine_collisions),
            "touches": int(self.touches),
            "evictions": int(self.evictions),
            "entries": len(self),
        }

    def __repr__(self):
        return f"ModelStore(root={str(self.root)!r}, entries={len(self)})"
