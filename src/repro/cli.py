"""``python -m repro`` — reduce, sweep, simulate and inspect from specs.

The CLI is the zero-import entry point to the pipeline: every command
takes a JSON netlist spec (the :meth:`repro.circuits.Netlist.to_dict`
format, or a ``{"generator": ...}`` reference to a named example
circuit), runs the declarative pipeline of :mod:`repro.pipeline`, and
prints a parseable JSON report to stdout.

Commands::

    python -m repro info     spec.json
    python -m repro reduce   spec.json --orders 6,3,0 --store ./models
    python -m repro sweep    spec.json --omega-start 0.02 --omega-stop 0.5
    python -m repro simulate spec.json --source sine:amplitude=0.1 \
        --t-end 10 --dt 0.02
    python -m repro store verify ./models

A spec file may embed default job sections (``"reduce"``, ``"sweep"``,
``"transient"`` — the dict forms the job classes coerce from); command
line flags override them.  ``--store DIR`` routes reductions through a
content-addressed :class:`~repro.store.ModelStore`, so re-running a
command on an unchanged spec serves the reduction from disk.

Fault tolerance: ``--checkpoint [DIR]`` snapshots the reduction at
stage boundaries so a killed build resumes bit-identically (``--resume``
asserts committed state exists), ``--memory-budget 512M`` spills
basis/Π blocks past the budget to disk-backed memory maps, and
``store verify`` re-checks every artifact's basis SHA-256 digest,
quarantining corrupt entries (exit 1 when any are found).

Exit codes: 0 on success, 2 on a usage/spec error, 1 on an internal
numerical failure.
"""

import argparse
import json
import sys
from pathlib import Path

from .analysis.reporting import write_csv_report, write_json_report
from .errors import ReproError, ValidationError
from .serialize import json_safe
from .serve import (
    InfoRequest,
    McRequest,
    ReduceRequest,
    ReproService,
    SimulateRequest,
    SweepRequest,
    run_daemon,
)
from .store import ModelStore

__all__ = ["main", "build_parser"]


def _parse_orders(text):
    try:
        parts = tuple(int(p) for p in str(text).split(","))
    except ValueError as exc:
        raise ValidationError(
            f"--orders must be comma-separated integers, got {text!r}"
        ) from exc
    if len(parts) != 3:
        raise ValidationError(
            f"--orders must be a q1,q2,q3 triple, got {text!r}"
        )
    return parts


def _parse_points(text):
    points = []
    for part in str(text).split(","):
        part = part.strip()
        try:
            value = complex(part)
        except ValueError as exc:
            raise ValidationError(
                f"bad expansion point {part!r} in {text!r}"
            ) from exc
        points.append(value.real if value.imag == 0.0 else value)
    return tuple(points)


def _parse_source(text):
    """``kind:key=value,key=value`` → a source-spec dict."""
    kind, _, params = str(text).partition(":")
    spec = {"kind": kind.strip()}
    if params.strip():
        for pair in params.split(","):
            key, sep, value = pair.partition("=")
            if not sep:
                raise ValidationError(
                    f"source parameter {pair!r} is not key=value "
                    f"(in {text!r})"
                )
            try:
                spec[key.strip()] = float(value)
            except ValueError as exc:
                raise ValidationError(
                    f"source parameter {key.strip()!r} must be numeric, "
                    f"got {value!r}"
                ) from exc
    return spec


def _load_spec(path):
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ValidationError(f"cannot read spec {path} ({exc})") from exc
    try:
        spec = json.loads(text)
    except ValueError as exc:
        raise ValidationError(
            f"spec {path} is not valid JSON ({exc})"
        ) from exc
    if not isinstance(spec, dict):
        raise ValidationError(f"spec {path} must hold a JSON object")
    return spec


def _sparse_flag(args):
    if getattr(args, "sparse", False):
        return True
    if getattr(args, "dense", False):
        return False
    return None


def _reduce_job(args, spec, required):
    """Merge the spec's ``reduce`` section with CLI flags."""
    section = spec.get("reduce")
    job = dict(section) if isinstance(section, dict) else {}
    if getattr(args, "orders", None):
        job["orders"] = _parse_orders(args.orders)
    if getattr(args, "expansion_points", None):
        job["expansion_points"] = _parse_points(args.expansion_points)
    if getattr(args, "strategy", None):
        job["strategy"] = args.strategy
    if not job:
        if required:
            raise ValidationError(
                "no reduction configured: pass --orders q1,q2,q3 or add "
                "a 'reduce' section to the spec"
            )
        return None
    return job


def _add_spec_argument(parser):
    parser.add_argument("spec", help="JSON netlist spec file")
    form = parser.add_mutually_exclusive_group()
    form.add_argument(
        "--sparse", action="store_true",
        help="force CSR (sparse fast path) MNA assembly",
    )
    form.add_argument(
        "--dense", action="store_true", help="force dense MNA assembly"
    )


def _add_reduce_arguments(parser):
    parser.add_argument(
        "--orders", help="moment orders q1,q2,q3 (e.g. 6,3,0)"
    )
    parser.add_argument(
        "--expansion-points",
        help="comma-separated expansion points (default 0.0)",
    )
    parser.add_argument(
        "--strategy", choices=("coupled", "decoupled"),
        help="H2 subspace strategy",
    )
    parser.add_argument(
        "--store", metavar="DIR",
        help="serve/record reductions through a ModelStore directory",
    )
    parser.add_argument(
        "--checkpoint", nargs="?", const=True, metavar="DIR",
        help="checkpoint the reduction so a killed build resumes "
        "bit-identically; with no DIR the state is keyed under --store",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="require committed checkpoint state to resume from "
        "(fails instead of silently recomputing)",
    )
    parser.add_argument(
        "--memory-budget", metavar="BYTES",
        help="cap resident basis/Pi memory (e.g. 512M); excess blocks "
        "spill to disk-backed memory maps and the solver streams in "
        "budget-derived row blocks",
    )
    parser.add_argument(
        "--max-block", metavar="ROWS",
        help="force the streaming row-block size of the solver core "
        "(default: derived from the memory budget; >= n reproduces "
        "the unblocked arithmetic exactly)",
    )


def _add_output_arguments(parser):
    parser.add_argument(
        "--out", metavar="FILE", help="also write the JSON report here"
    )
    parser.add_argument(
        "--csv", metavar="FILE",
        help="write the tabular result (sweep grid / transient trace) "
        "as CSV",
    )


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Associated-transform NMOR pipeline (DAC'12 repro): "
        "reduce circuits, sweep distortion, simulate transients — from "
        "JSON netlist specs, through a content-addressed model store.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser(
        "info", help="compile the spec and report system structure"
    )
    _add_spec_argument(p_info)
    p_info.add_argument(
        "--out", metavar="FILE", help="also write the JSON report here"
    )

    p_reduce = sub.add_parser(
        "reduce", help="build (or fetch) a ROM and report it"
    )
    _add_spec_argument(p_reduce)
    _add_reduce_arguments(p_reduce)
    p_reduce.add_argument(
        "--artifact", metavar="FILE",
        help="save the reduction artifact to this .npz path",
    )
    p_reduce.add_argument(
        "--out", metavar="FILE", help="also write the JSON report here"
    )

    p_sweep = sub.add_parser(
        "sweep", help="distortion sweep (on the ROM when orders given)"
    )
    _add_spec_argument(p_sweep)
    _add_reduce_arguments(p_sweep)
    p_sweep.add_argument("--omega-start", type=float)
    p_sweep.add_argument("--omega-stop", type=float)
    p_sweep.add_argument("--points", type=int)
    p_sweep.add_argument("--amplitude", type=float)
    p_sweep.add_argument(
        "--compare-full", action="store_true",
        help="also sweep the full model and report ROM deviation",
    )
    _add_output_arguments(p_sweep)

    p_sim = sub.add_parser(
        "simulate", help="transient simulation (ROM when orders given)"
    )
    _add_spec_argument(p_sim)
    _add_reduce_arguments(p_sim)
    p_sim.add_argument(
        "--source",
        help="input signal, kind:key=value,... "
        "(e.g. sine:amplitude=0.08,frequency=0.08)",
    )
    p_sim.add_argument("--t-end", type=float)
    p_sim.add_argument("--dt", type=float)
    p_sim.add_argument(
        "--compare-full", action="store_true",
        help="also integrate the full model and report ROM error",
    )
    _add_output_arguments(p_sim)

    p_mc = sub.add_parser(
        "mc",
        help="parametric multi-corner / Monte-Carlo distortion "
        "distributions over a parameter-annotated spec",
    )
    _add_spec_argument(p_mc)
    _add_reduce_arguments(p_mc)
    p_mc.add_argument("--omega-start", type=float)
    p_mc.add_argument("--omega-stop", type=float)
    p_mc.add_argument("--points", type=int)
    p_mc.add_argument("--amplitude", type=float)
    p_mc.add_argument(
        "--corners", type=int, metavar="N",
        help="grid points per ranged-parameter axis",
    )
    p_mc.add_argument(
        "--draws", type=int, metavar="N",
        help="Monte-Carlo draws on top of the corner grid",
    )
    p_mc.add_argument(
        "--seed", type=int, metavar="SEED",
        help="Monte-Carlo seed (recorded in the report)",
    )
    p_mc.add_argument(
        "--interp-tol", type=float, metavar="TOL",
        help="distortion tolerance of the ROM-interpolation tier",
    )
    p_mc.add_argument(
        "--no-warm", action="store_true",
        help="disable the warm-start reuse tier",
    )
    p_mc.add_argument(
        "--no-interp", action="store_true",
        help="disable the ROM-interpolation reuse tier",
    )
    # _sweep_job reads compare_full; for mc the per-corner accuracy
    # check is the interp tier's probe test, so the flag is fixed off.
    p_mc.set_defaults(compare_full=False)
    _add_output_arguments(p_mc)

    p_serve = sub.add_parser(
        "serve",
        help="long-lived HTTP/JSON daemon serving the pipeline verbs "
        "(POST /v1/info|reduce|sweep|simulate, GET /healthz|/metrics)",
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    p_serve.add_argument(
        "--port", type=int, default=8321,
        help="bind port (0 picks a free port; the daemon prints the "
        "resolved URL on stdout)",
    )
    p_serve.add_argument(
        "--store", metavar="DIR",
        help="serve/record reductions through a ModelStore directory",
    )
    p_serve.add_argument(
        "--hot-cache", type=int, default=8, metavar="N",
        help="entries kept in the in-memory hot-ROM cache (0 disables)",
    )
    p_serve.add_argument(
        "--preload", type=int, default=0, metavar="N",
        help="warm the hot cache with the N most recently accessed "
        "store entries before accepting requests",
    )
    p_serve.add_argument(
        "--queue-limit", type=int, default=8, metavar="N",
        help="maximum in-flight requests; excess arrivals get 429 + "
        "Retry-After instead of queueing unboundedly",
    )
    p_serve.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-request deadline (504 past it; shared caches stay "
        "intact)",
    )
    p_serve.add_argument(
        "--stats-interval", type=float, default=None, metavar="SECONDS",
        help="print a one-line serving-stats heartbeat to stderr at "
        "this period",
    )
    p_serve.add_argument(
        "--engine-backend", default=None,
        choices=("serial", "thread", "process"),
        help="solve-plan engine backend for request work (default: "
        "REPRO_BACKEND or serial)",
    )
    p_serve.add_argument(
        "--engine-workers", type=int, default=None, metavar="N",
        help="engine worker count ('auto' scaling when omitted and a "
        "parallel backend is selected)",
    )

    p_store = sub.add_parser(
        "store", help="model-store maintenance (verify, ls, gc)"
    )
    store_sub = p_store.add_subparsers(dest="store_command", required=True)
    p_verify = store_sub.add_parser(
        "verify",
        help="re-load every artifact and re-check its basis SHA-256 "
        "digest; quarantines corrupt entries (exit 1 when any found)",
    )
    p_verify.add_argument("root", help="ModelStore directory")
    p_verify.add_argument(
        "--no-quarantine", action="store_true",
        help="report corrupt entries without moving them aside",
    )
    p_verify.add_argument(
        "--out", metavar="FILE", help="also write the JSON report here"
    )
    p_ls = store_sub.add_parser(
        "ls",
        help="list entries (most recently accessed first) with per-entry "
        "sizes and totals",
    )
    p_ls.add_argument("root", help="ModelStore directory")
    p_ls.add_argument(
        "--out", metavar="FILE", help="also write the JSON report here"
    )
    p_gc = store_sub.add_parser(
        "gc",
        help="evict entries by idle TTL and/or until the store fits a "
        "size budget (oldest last_access first)",
    )
    p_gc.add_argument("root", help="ModelStore directory")
    p_gc.add_argument(
        "--max-bytes", metavar="SIZE", default=None,
        help="size budget the store must fit after GC, e.g. '512m' "
        "(default: no size limit)",
    )
    p_gc.add_argument(
        "--ttl", metavar="AGE", default=None,
        help="evict entries idle longer than AGE, e.g. '7d', '12h' "
        "(default: no TTL)",
    )
    p_gc.add_argument(
        "--out", metavar="FILE", help="also write the JSON report here"
    )
    return parser


def _sweep_job(args, spec):
    section = spec.get("sweep")
    job = dict(section) if isinstance(section, dict) else {}
    grid_flags = (args.omega_start, args.omega_stop, args.points)
    if any(flag is not None for flag in grid_flags):
        # CLI flags override the spec grid wholesale: an explicit
        # "omegas" list in the spec would otherwise shadow start/stop/
        # points inside SweepJob and the flags would silently no-op.
        job.pop("omegas", None)
        if args.omega_start is None or args.omega_stop is None:
            if "omegas" in (section or {}):
                raise ValidationError(
                    "the spec's sweep grid is an explicit omegas list; "
                    "overriding it needs both --omega-start and "
                    "--omega-stop"
                )
    if args.omega_start is not None:
        job["start"] = args.omega_start
    if args.omega_stop is not None:
        job["stop"] = args.omega_stop
    if args.points is not None:
        job["points"] = args.points
    if args.amplitude is not None:
        job["amplitude"] = args.amplitude
    if args.compare_full:
        job["compare_full"] = True
    if not job:
        raise ValidationError(
            "no sweep configured: pass --omega-start/--omega-stop or add "
            "a 'sweep' section to the spec"
        )
    return job


def _transient_job(args, spec):
    section = spec.get("transient")
    job = dict(section) if isinstance(section, dict) else {}
    if args.source is not None:
        job["source"] = _parse_source(args.source)
    if args.t_end is not None:
        job["t_end"] = args.t_end
    if args.dt is not None:
        job["dt"] = args.dt
    if args.compare_full:
        job["compare_full"] = True
    if not job:
        raise ValidationError(
            "no transient configured: pass --source/--t-end/--dt or add "
            "a 'transient' section to the spec"
        )
    return job


def _emit(args, report, csv_table=None):
    # json_safe + allow_nan=False: the stdout report is strict RFC-8259
    # JSON (non-finite floats become strings), as the module promises.
    report = json_safe(report)
    print(json.dumps(report, indent=2, default=repr, allow_nan=False))
    if getattr(args, "out", None):
        write_json_report(args.out, report)
    if getattr(args, "csv", None) and csv_table is not None:
        headers, rows = csv_table
        write_csv_report(args.csv, headers, rows)


def _pipeline_extras(args):
    """Fault-tolerance/memory knobs shared by reduce/sweep/simulate."""
    return {
        "checkpoint": getattr(args, "checkpoint", None),
        "resume": bool(getattr(args, "resume", False)),
        "memory_budget": getattr(args, "memory_budget", None),
        "max_block": getattr(args, "max_block", None),
    }


def _run(args):
    if args.command == "serve":
        if args.engine_backend or args.engine_workers is not None:
            from . import engine

            engine.configure(
                workers=args.engine_workers, backend=args.engine_backend
            )
        store = ModelStore(args.store) if args.store else None
        service = ReproService(store=store, hot_capacity=args.hot_cache)
        if args.preload:
            count = service.warm_start(limit=args.preload)
            print(
                f"preloaded {count} artifact(s) into the hot cache",
                file=sys.stderr, flush=True,
            )
        return run_daemon(
            service, host=args.host, port=args.port,
            queue_limit=args.queue_limit, timeout=args.timeout,
            stats_interval=args.stats_interval,
        )

    if args.command == "store":
        if args.store_command not in ("verify", "ls", "gc"):
            raise ValidationError(
                f"unknown store command {args.store_command!r}"
            )
        root = Path(args.root)
        if not (root / "objects").is_dir():
            raise ValidationError(
                f"{root} is not a ModelStore directory (no objects/)"
            )
        store = ModelStore(root)
        if args.store_command == "verify":
            report = store.verify(quarantine=not args.no_quarantine)
        elif args.store_command == "ls":
            report = store.ls()
        else:
            report = store.gc(max_bytes=args.max_bytes, ttl=args.ttl)
        report["command"] = f"store {args.store_command}"
        report["root"] = str(store.root)
        _emit(args, report)
        if args.store_command == "verify":
            return 1 if report["corrupt"] else 0
        return 0

    spec = _load_spec(args.spec)
    sparse = _sparse_flag(args)
    store = getattr(args, "store", None)
    store = ModelStore(store) if store else None
    # One-shot verbs run through the same ReproService the daemon
    # serves from: the CLI is a single-request serving process, so both
    # fronts execute — and report — the identical code path.
    service = ReproService(store=store, hot_capacity=1)

    def _store_stats(report):
        if store is not None:
            report["store"] = store.stats()
            report["store"]["root"] = str(store.root)

    if args.command == "info":
        outcome = service.handle(
            InfoRequest.from_payload({"spec": spec, "sparse": sparse})
        )
        _emit(args, outcome.report())
        return 0

    payload = {"spec": spec, "sparse": sparse, **_pipeline_extras(args)}

    if args.command == "reduce":
        payload["reduce"] = _reduce_job(args, spec, required=True)
        outcome = service.handle(ReduceRequest.from_payload(payload))
        report = outcome.report()
        _store_stats(report)
        if args.artifact:
            report["artifact_path"] = str(
                outcome.result.artifact.save(args.artifact)
            )
        _emit(args, report)
        return 0

    if args.command == "sweep":
        payload["reduce"] = _reduce_job(args, spec, required=False)
        payload["sweep"] = _sweep_job(args, spec)
        outcome = service.handle(SweepRequest.from_payload(payload))
        report = outcome.report()
        _store_stats(report)
        sweep = outcome.result.sweep
        headers = ["omega", "hd2", "hd3"]
        columns = [sweep["omegas"], sweep["hd2"], sweep["hd3"]]
        if "hd2_full" in sweep:
            headers += ["hd2_full", "hd3_full"]
            columns += [sweep["hd2_full"], sweep["hd3_full"]]
        rows = [list(row) for row in zip(*columns)]
        _emit(args, report, csv_table=(headers, rows))
        return 0

    if args.command == "mc":
        if args.checkpoint or args.resume:
            raise ValidationError(
                "checkpoint/resume do not apply to mc: the store dedup "
                "tier makes a rerun resume naturally"
            )
        section = spec.get("mc")
        mc_job = dict(section) if isinstance(section, dict) else {}
        if args.corners is not None:
            mc_job["grid_points"] = args.corners
        if args.draws is not None:
            mc_job["draws"] = args.draws
        if args.seed is not None:
            mc_job["seed"] = args.seed
        if args.interp_tol is not None:
            mc_job["interp_tol"] = args.interp_tol
        if args.no_warm:
            mc_job["warm"] = False
        if args.no_interp:
            mc_job["interp"] = False
        outcome = service.handle(McRequest.from_payload({
            "spec": spec,
            "sparse": sparse,
            "reduce": _reduce_job(args, spec, required=False),
            "sweep": _sweep_job(args, spec),
            "mc": mc_job or None,
        }))
        report = outcome.report()
        dist = outcome.result.distributions
        corners = dist["corners"]
        headers = ["omega", "hd2_p50", "hd2_p99", "hd3_p50", "hd3_p99"]
        columns = [
            dist["omegas"], corners["hd2_p50"], corners["hd2_p99"],
            corners["hd3_p50"], corners["hd3_p99"],
        ]
        rows = [list(row) for row in zip(*columns)]
        _emit(args, report, csv_table=(headers, rows))
        return 0

    if args.command == "simulate":
        payload["reduce"] = _reduce_job(args, spec, required=False)
        payload["transient"] = _transient_job(args, spec)
        outcome = service.handle(SimulateRequest.from_payload(payload))
        transient = outcome.result.transient
        times = transient.pop("times")
        outputs = transient.pop("output")
        full_outputs = transient.pop("full_output", None)
        report = outcome.report()
        _store_stats(report)
        headers = ["t", "output"]
        columns = [times, outputs]
        if full_outputs is not None:
            headers.append("full_output")
            columns.append(full_outputs)
        rows = [list(row) for row in zip(*columns)]
        _emit(args, report, csv_table=(headers, rows))
        return 0

    raise ValidationError(f"unknown command {args.command!r}")


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _run(args)
    except ValidationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"numerical failure: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
