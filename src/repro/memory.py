"""Memory budgeting: block planning, tile arena, and admit-or-spill.

A reduction at ``n >> 10^4`` holds three kinds of O(n·r) dense state:
per-chain Krylov blocks awaiting the final merge, the shared extended-
Krylov basis, and the eq.-(18) ``n × r²`` Π left factor.  This module
gives the solver core two cooperating knobs:

* **Blockwise streaming** (:class:`BlockPlanner`): every n-row
  intermediate in the Π build and the lifted H3 chains is produced and
  consumed in row blocks of at most ``max_block`` rows, so peak
  *resident* memory is O(n + max_block · r²) rather than O(n · r²).
  ``max_block`` resolves as explicit setting (:class:`tiling`,
  ``run_pipeline(max_block=...)``, ``--max-block``) >
  ``REPRO_MAX_BLOCK`` > derived from the byte budget > ``n`` (a single
  block — which executes exactly the historical unblocked operations,
  so results are bit-identical).  Full-size work arrays past the budget
  are allocated as writable memory-mapped *tiles* in a per-budget arena
  (:meth:`MemoryBudget.tile`); tile backing never changes numerics.
* **Admit-or-spill** (:meth:`MemoryBudget.admit`): finished blocks past
  the budget are spilled to disk as ``.npy`` files and handed back as
  read-only memory-mapped views — identical bytes, transparent to every
  consumer, so the build degrades to out-of-core instead of OOM-ing.

The budget is process-global (like the engine backend): set it with
``REPRO_MEMORY_BUDGET=512M`` in the environment, :func:`configure`, or
scoped via :class:`limit` (which is what ``run_pipeline(...,
memory_budget=...)`` uses).  Accounting is by ``weakref.finalize`` on
the admitted arrays: when a resident block is garbage-collected its
bytes return to the budget, and when a spilled view is collected its
backing file is unlinked.  Every spill/arena file a budget creates is
tracked and removed by :meth:`MemoryBudget.cleanup` at end of job
(``limit.__exit__`` calls it), so a completed pipeline leaves an empty
spill directory.

Unlimited (the default) is a pure pass-through — ``admit`` returns its
argument untouched and tiles are ordinary arrays.
"""

import os
import tempfile
import threading
import weakref
from pathlib import Path

import numpy as np

from .errors import ValidationError

__all__ = ["BlockPlanner", "MemoryBudget", "block_rows", "cleanup",
           "configure", "current_budget", "current_planner", "limit",
           "parse_budget", "parse_max_block", "release", "stats", "tile",
           "tiling"]

_SUFFIXES = {"k": 1024, "m": 1024 ** 2, "g": 1024 ** 3, "t": 1024 ** 4}

#: Fraction of the byte budget one streamed tile row-block may occupy;
#: the Π build holds a handful of live tiles (g2r/ct/xt/left), so the
#: derived ``max_block`` keeps their combined resident slices within
#: budget.
_TILE_FRACTION = 4

#: Floor for the *derived* ``max_block``: a budget tight enough to ask
#: for fewer rows than this gains nothing from going lower (the Π build
#: holds O(r²)-row working sets regardless) and single-digit blocks
#: degrade the blocked-accumulation conditioning.  An explicit
#: ``max_block``/``REPRO_MAX_BLOCK`` is not floored — tests use 1-row
#: blocks deliberately.
_MIN_DERIVED_BLOCK = 32


def parse_budget(value):
    """Parse a budget spec to bytes, or ``None`` for unlimited.

    Accepts ``None``/``""``/``"none"``/``"unlimited"``/``0`` (all
    unlimited), a plain byte count, or a count with a K/M/G/T binary
    suffix (case-insensitive): ``"512M"``, ``"2G"``, ``"1024k"``.
    """
    if value is None:
        return None
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        value = int(value)
        if value < 0:
            raise ValidationError(
                f"memory budget must be >= 0, got {value}"
            )
        return value or None
    text = str(value).strip().lower()
    if text in ("", "none", "unlimited", "0"):
        return None
    scale = 1
    if text[-1] in _SUFFIXES:
        scale = _SUFFIXES[text[-1]]
        text = text[:-1]
    try:
        count = float(text)
    except ValueError as exc:
        raise ValidationError(
            f"memory budget must look like '512M', '2G' or a byte "
            f"count, got {value!r}"
        ) from exc
    if count < 0:
        raise ValidationError(f"memory budget must be >= 0, got {value!r}")
    return int(count * scale) or None


class MemoryBudget:
    """Admit-or-spill accounting for large dense arrays.

    Parameters
    ----------
    budget : int or str or None
        Resident-byte budget (see :func:`parse_budget`); ``None`` means
        unlimited.
    spill_dir : str or Path, optional
        Directory for spill files.  Default: a fresh
        ``repro-spill-*`` temp directory, created lazily on first spill.
    """

    def __init__(self, budget=None, spill_dir=None):
        self.budget = parse_budget(budget)
        self._spill_dir = Path(spill_dir) if spill_dir is not None else None
        self._own_dir = spill_dir is None
        self._lock = threading.Lock()
        self._resident = 0
        self._serial = 0
        self._owned_paths = set()
        self.admitted_blocks = 0
        self.spilled_blocks = 0
        self.spilled_bytes = 0
        self.tile_blocks = 0
        self.tile_bytes = 0

    # -- internals -----------------------------------------------------------

    def _credit(self, nbytes):
        with self._lock:
            self._resident -= nbytes

    def _spill_path(self, label):
        with self._lock:
            if self._spill_dir is None:
                self._spill_dir = Path(
                    tempfile.mkdtemp(prefix="repro-spill-")
                )
            self._serial += 1
            serial = self._serial
        self._spill_dir.mkdir(parents=True, exist_ok=True)
        safe = "".join(
            ch if ch.isalnum() or ch in "-_." else "-" for ch in str(label)
        ) or "block"
        return self._spill_dir / f"{safe}-{serial:06d}.npy"

    @staticmethod
    def _unlink(path):
        try:
            os.unlink(path)
        except OSError:
            pass

    # -- the one entry point -------------------------------------------------

    def admit(self, array, label="block"):
        """Account *array* against the budget; spill it if over.

        Returns either *array* itself (resident — its bytes are
        charged until it is garbage-collected) or a read-only
        ``np.memmap`` view of a spilled copy with identical shape,
        dtype and contents.  Arrays the budget cannot help with
        (non-ndarray, views without their own memory, tiny blocks)
        pass through unchanged.
        """
        if self.budget is None:
            return array
        if not isinstance(array, np.ndarray) or isinstance(array, np.memmap):
            return array
        nbytes = int(array.nbytes)
        if nbytes == 0:
            return array
        base = array
        while isinstance(base.base, np.ndarray):
            base = base.base
        if isinstance(base, np.memmap):
            # Views of arena tiles (or of earlier spills) are already
            # disk-backed; re-spilling would copy the file.
            return array
        with self._lock:
            if self._resident + nbytes <= self.budget:
                self._resident += nbytes
                self.admitted_blocks += 1
                weakref.finalize(array, self._credit, nbytes)
                return array
        path = self._spill_path(label)
        np.save(path, np.ascontiguousarray(array))
        view = np.load(path, mmap_mode="r")
        with self._lock:
            self.spilled_blocks += 1
            self.spilled_bytes += nbytes
            self._owned_paths.add(str(path))
        weakref.finalize(view, self._forget, str(path))
        return view

    def _forget(self, path):
        """Finalizer for spilled views: unlink and drop the record."""
        with self._lock:
            self._owned_paths.discard(path)
        self._unlink(path)

    # -- streamed tiles ------------------------------------------------------

    def tile(self, shape, dtype=float, label="tile"):
        """A zeroed work array, disk-backed when it would bust the budget.

        Under an unlimited budget (or when the array is comfortably
        small) this is ``np.zeros`` — the streamed code paths then run
        entirely in memory.  Past that it is a *writable* ``.npy``
        memmap in the budget's spill arena: byte-identical semantics
        (POSIX file extension zero-fills), O(page cache) residency, and
        the file is reclaimed by :meth:`release`/:meth:`cleanup`.
        """
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape)) * dtype.itemsize
        if self.budget is None or nbytes * _TILE_FRACTION <= self.budget:
            if self.budget is not None:
                with self._lock:
                    self.tile_blocks += 1
            return np.zeros(shape, dtype=dtype)
        path = self._spill_path(label)
        arr = np.lib.format.open_memmap(
            path, mode="w+", dtype=dtype, shape=tuple(int(s) for s in shape)
        )
        with self._lock:
            self.tile_blocks += 1
            self.tile_bytes += nbytes
            # Disk-backed tiles *are* spilled blocks: they carry the
            # same "bytes that went to the spill dir" meaning callers
            # already watch through ``spilled_blocks``/``spilled_bytes``.
            self.spilled_blocks += 1
            self.spilled_bytes += nbytes
            self._owned_paths.add(str(path))
        return arr

    def release(self, array):
        """Eagerly reclaim the arena file behind *array*, if any.

        A no-op for plain arrays and for files this budget does not
        own.  Safe while views are still alive: POSIX keeps the mapped
        pages readable until the mapping itself is dropped.
        """
        base = array
        while isinstance(base, np.ndarray) and isinstance(base.base,
                                                          np.ndarray):
            base = base.base
        filename = getattr(base, "filename", None)
        if filename is None:
            return
        path = str(filename)
        with self._lock:
            owned = path in self._owned_paths
            self._owned_paths.discard(path)
        if owned:
            self._unlink(path)

    def cleanup(self):
        """End-of-job spill reclamation: unlink every file this budget
        created (spilled blocks *and* arena tiles) and remove the spill
        directory when it was our own temp dir and is now empty.

        Live memmap views stay readable (the data outlives the
        directory entry until the mapping is collected); what is
        reclaimed is the on-disk footprint a finished job would
        otherwise leak until garbage collection — or forever, for
        blocks kept alive by memoized workspaces.
        """
        with self._lock:
            paths = list(self._owned_paths)
            self._owned_paths.clear()
            spill_dir = self._spill_dir
            own_dir = self._own_dir
        for path in paths:
            self._unlink(path)
        if own_dir and spill_dir is not None:
            try:
                os.rmdir(spill_dir)
            except OSError:
                pass

    def stats(self):
        """Counters, ``worker_stats``-style."""
        with self._lock:
            return {
                "budget_bytes": self.budget,
                "resident_bytes": int(self._resident),
                "admitted_blocks": int(self.admitted_blocks),
                "spilled_blocks": int(self.spilled_blocks),
                "spilled_bytes": int(self.spilled_bytes),
                "tile_blocks": int(self.tile_blocks),
                "tile_bytes": int(self.tile_bytes),
                "spill_dir": (
                    str(self._spill_dir)
                    if self._spill_dir is not None else None
                ),
            }

    def __repr__(self):
        return (
            f"MemoryBudget(budget={self.budget!r}, "
            f"resident={self._resident}, spilled={self.spilled_blocks})"
        )


def parse_max_block(value):
    """Parse a ``max_block`` row count, or ``None`` for "derive/off".

    Accepts ``None``/``""``/``"none"``/``"auto"``/``0`` (all meaning
    "no explicit setting") or a positive integer row count.
    """
    if value is None:
        return None
    if isinstance(value, bool):
        raise ValidationError(f"max_block must be an integer, got {value!r}")
    if isinstance(value, (int, float)):
        count = int(value)
    else:
        text = str(value).strip().lower()
        if text in ("", "none", "auto", "0"):
            return None
        try:
            count = int(text)
        except ValueError as exc:
            raise ValidationError(
                f"max_block must be a positive row count, got {value!r}"
            ) from exc
    if count < 0:
        raise ValidationError(f"max_block must be >= 0, got {value!r}")
    return count or None


class BlockPlanner:
    """Budget → ``max_block`` derivation plus the tile arena of one build.

    Every streamed stage asks the planner two questions: *how many rows
    per block* (:meth:`block_rows` — explicit setting, else derived from
    the byte budget and the row width, else ``n`` for a single block)
    and *where do full-size work arrays live* (:meth:`tile` — RAM under
    an unlimited/roomy budget, a writable memmap in the budget's arena
    otherwise).  Tile backing never changes numerics; ``max_block`` only
    changes summation order across block boundaries (≤ 1e-10 drift), and
    ``max_block >= n`` executes exactly the unblocked operations.
    """

    def __init__(self, budget, max_block=None):
        self.budget = budget if budget is not None else _UNLIMITED
        self.max_block = parse_max_block(max_block)

    def block_rows(self, n, row_bytes=1):
        """Rows per streamed block for an ``(n, ...)`` intermediate with
        *row_bytes* bytes per row.  Clamped to ``[1, n]``."""
        n = max(int(n), 1)
        explicit = self.max_block
        if explicit is None:
            explicit = _env_max_block()
        if explicit is not None:
            return max(1, min(int(explicit), n))
        if self.budget.budget:
            per_row = max(int(row_bytes), 1)
            derived = self.budget.budget // (_TILE_FRACTION * per_row)
            derived = max(int(derived), _MIN_DERIVED_BLOCK)
            return min(derived, n)
        return n

    def tile(self, shape, dtype=float, label="tile"):
        """Arena-allocating :meth:`MemoryBudget.tile` of this planner's
        budget."""
        return self.budget.tile(shape, dtype=dtype, label=label)

    def release(self, array):
        """Eagerly reclaim an arena tile (:meth:`MemoryBudget.release`)."""
        self.budget.release(array)


# ---------------------------------------------------------------------------
# global configuration (mirrors repro.engine's configure/using shape)
# ---------------------------------------------------------------------------

_config_lock = threading.Lock()
_budget = None  # resolved lazily from REPRO_MEMORY_BUDGET on first use
_max_block = None  # explicit process-global max_block (tiling/configure)
_UNLIMITED = MemoryBudget(None)


def _env_max_block():
    raw = os.environ.get("REPRO_MAX_BLOCK", "")
    try:
        return parse_max_block(raw)
    except ValidationError as exc:
        raise ValidationError(
            f"REPRO_MAX_BLOCK must be a positive row count, got {raw!r}"
        ) from exc


def _from_env():
    raw = os.environ.get("REPRO_MEMORY_BUDGET", "")
    try:
        parsed = parse_budget(raw)
    except ValidationError as exc:
        raise ValidationError(
            f"REPRO_MEMORY_BUDGET must look like '512M' or a byte count, "
            f"got {raw!r}"
        ) from exc
    return _UNLIMITED if parsed is None else MemoryBudget(parsed)


def current_budget():
    """The globally active :class:`MemoryBudget` (unlimited by default)."""
    global _budget
    with _config_lock:
        if _budget is None:
            _budget = _from_env()
        return _budget


def _set_budget(budget):
    global _budget
    with _config_lock:
        previous = _budget
        _budget = budget
    return previous


def configure(budget=None, spill_dir=None, max_block=None):
    """Install a process-global budget (``None`` = unlimited).

    Overrides ``REPRO_MEMORY_BUDGET`` for the rest of the process;
    *max_block*, when given, overrides ``REPRO_MAX_BLOCK`` the same way
    (pass ``0``/``"auto"`` to return to the derived default).
    Returns the installed :class:`MemoryBudget`.
    """
    global _max_block
    parsed = parse_budget(budget)
    installed = (
        _UNLIMITED if parsed is None and spill_dir is None
        else MemoryBudget(parsed, spill_dir=spill_dir)
    )
    _set_budget(installed)
    if max_block is not None:
        with _config_lock:
            _max_block = parse_max_block(max_block)
    return installed


def admit(array, label="block"):
    """Module-level convenience: ``current_budget().admit(...)``."""
    return current_budget().admit(array, label)


def stats():
    """Counters of the active budget."""
    return current_budget().stats()


def current_planner():
    """The active :class:`BlockPlanner` (budget + explicit ``max_block``)."""
    with _config_lock:
        explicit = _max_block
    return BlockPlanner(current_budget(), explicit)


def block_rows(n, row_bytes=1):
    """Module-level ``current_planner().block_rows(...)``."""
    return current_planner().block_rows(n, row_bytes)


def tile(shape, dtype=float, label="tile"):
    """Module-level ``current_planner().tile(...)``."""
    return current_planner().tile(shape, dtype=dtype, label=label)


def release(array):
    """Module-level ``current_budget().release(...)``."""
    current_budget().release(array)


def cleanup():
    """End-of-job reclamation of the active budget's spill/arena files."""
    current_budget().cleanup()


class tiling:
    """Context manager: temporarily force an explicit ``max_block``.

    ``with memory.tiling(4096): ...`` — used by
    ``run_pipeline(max_block=...)`` and
    ``AssociatedTransformMOR.reduce(max_block=...)``.  ``None`` is a
    no-op (inherits ``REPRO_MAX_BLOCK`` / the budget derivation).
    """

    def __init__(self, max_block):
        self._target = parse_max_block(max_block)
        self._previous = None
        self._active = False

    def __enter__(self):
        global _max_block
        if self._target is not None:
            with _config_lock:
                self._previous = _max_block
                _max_block = self._target
            self._active = True
        return self

    def __exit__(self, exc_type, exc, tb):
        global _max_block
        if self._active:
            with _config_lock:
                _max_block = self._previous
            self._active = False
        return False


class limit:
    """Context manager: temporarily install a budget.

    ``with memory.limit("256M"): ...`` — used by
    ``run_pipeline(memory_budget=...)`` and the spill tests.  Accepts a
    spec (see :func:`parse_budget`) or a ready :class:`MemoryBudget`.
    """

    def __init__(self, budget, spill_dir=None):
        if isinstance(budget, MemoryBudget):
            self._target = budget
        else:
            parsed = parse_budget(budget)
            self._target = (
                _UNLIMITED if parsed is None and spill_dir is None
                else MemoryBudget(parsed, spill_dir=spill_dir)
            )
        self._previous = None

    def __enter__(self):
        self._previous = _set_budget(self._target)
        return self._target

    def __exit__(self, exc_type, exc, tb):
        _set_budget(self._previous)
        if self._target is not _UNLIMITED:
            # End-of-job spill reclamation: a completed (or failed)
            # scoped job must not leak its spill/arena files — blocks
            # kept alive by memoized workspaces would otherwise pin
            # them until process exit.
            self._target.cleanup()
        return False
