"""Memory budgeting: admit-or-spill for the large dense blocks.

A reduction at ``n >> 10^4`` holds three kinds of O(n·r) dense state:
per-chain Krylov blocks awaiting the final merge, the shared extended-
Krylov basis, and the eq.-(18) ``n × r²`` Π left factor.  Past a
configured budget this module spills such blocks to disk as ``.npy``
files and hands back read-only memory-mapped views — identical bytes,
transparent to every consumer (the blocks are only ever read), so the
build degrades to out-of-core instead of OOM-ing.

The budget is process-global (like the engine backend): set it with
``REPRO_MEMORY_BUDGET=512M`` in the environment, :func:`configure`, or
scoped via :class:`limit` (which is what ``run_pipeline(...,
memory_budget=...)`` uses).  Accounting is by ``weakref.finalize`` on
the admitted arrays: when a resident block is garbage-collected its
bytes return to the budget, and when a spilled view is collected its
backing file is unlinked.

Unlimited (the default) is a pure pass-through — ``admit`` returns its
argument untouched.
"""

import os
import tempfile
import threading
import weakref
from pathlib import Path

import numpy as np

from .errors import ValidationError

__all__ = ["MemoryBudget", "configure", "current_budget", "limit",
           "parse_budget", "stats"]

_SUFFIXES = {"k": 1024, "m": 1024 ** 2, "g": 1024 ** 3, "t": 1024 ** 4}


def parse_budget(value):
    """Parse a budget spec to bytes, or ``None`` for unlimited.

    Accepts ``None``/``""``/``"none"``/``"unlimited"``/``0`` (all
    unlimited), a plain byte count, or a count with a K/M/G/T binary
    suffix (case-insensitive): ``"512M"``, ``"2G"``, ``"1024k"``.
    """
    if value is None:
        return None
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        value = int(value)
        if value < 0:
            raise ValidationError(
                f"memory budget must be >= 0, got {value}"
            )
        return value or None
    text = str(value).strip().lower()
    if text in ("", "none", "unlimited", "0"):
        return None
    scale = 1
    if text[-1] in _SUFFIXES:
        scale = _SUFFIXES[text[-1]]
        text = text[:-1]
    try:
        count = float(text)
    except ValueError as exc:
        raise ValidationError(
            f"memory budget must look like '512M', '2G' or a byte "
            f"count, got {value!r}"
        ) from exc
    if count < 0:
        raise ValidationError(f"memory budget must be >= 0, got {value!r}")
    return int(count * scale) or None


class MemoryBudget:
    """Admit-or-spill accounting for large dense arrays.

    Parameters
    ----------
    budget : int or str or None
        Resident-byte budget (see :func:`parse_budget`); ``None`` means
        unlimited.
    spill_dir : str or Path, optional
        Directory for spill files.  Default: a fresh
        ``repro-spill-*`` temp directory, created lazily on first spill.
    """

    def __init__(self, budget=None, spill_dir=None):
        self.budget = parse_budget(budget)
        self._spill_dir = Path(spill_dir) if spill_dir is not None else None
        self._own_dir = spill_dir is None
        self._lock = threading.Lock()
        self._resident = 0
        self._serial = 0
        self.admitted_blocks = 0
        self.spilled_blocks = 0
        self.spilled_bytes = 0

    # -- internals -----------------------------------------------------------

    def _credit(self, nbytes):
        with self._lock:
            self._resident -= nbytes

    def _spill_path(self, label):
        with self._lock:
            if self._spill_dir is None:
                self._spill_dir = Path(
                    tempfile.mkdtemp(prefix="repro-spill-")
                )
            self._serial += 1
            serial = self._serial
        self._spill_dir.mkdir(parents=True, exist_ok=True)
        safe = "".join(
            ch if ch.isalnum() or ch in "-_." else "-" for ch in str(label)
        ) or "block"
        return self._spill_dir / f"{safe}-{serial:06d}.npy"

    @staticmethod
    def _unlink(path):
        try:
            os.unlink(path)
        except OSError:
            pass

    # -- the one entry point -------------------------------------------------

    def admit(self, array, label="block"):
        """Account *array* against the budget; spill it if over.

        Returns either *array* itself (resident — its bytes are
        charged until it is garbage-collected) or a read-only
        ``np.memmap`` view of a spilled copy with identical shape,
        dtype and contents.  Arrays the budget cannot help with
        (non-ndarray, views without their own memory, tiny blocks)
        pass through unchanged.
        """
        if self.budget is None:
            return array
        if not isinstance(array, np.ndarray) or isinstance(array, np.memmap):
            return array
        nbytes = int(array.nbytes)
        if nbytes == 0:
            return array
        with self._lock:
            if self._resident + nbytes <= self.budget:
                self._resident += nbytes
                self.admitted_blocks += 1
                weakref.finalize(array, self._credit, nbytes)
                return array
        path = self._spill_path(label)
        np.save(path, np.ascontiguousarray(array))
        view = np.load(path, mmap_mode="r")
        with self._lock:
            self.spilled_blocks += 1
            self.spilled_bytes += nbytes
        weakref.finalize(view, self._unlink, path)
        return view

    def stats(self):
        """Counters, ``worker_stats``-style."""
        with self._lock:
            return {
                "budget_bytes": self.budget,
                "resident_bytes": int(self._resident),
                "admitted_blocks": int(self.admitted_blocks),
                "spilled_blocks": int(self.spilled_blocks),
                "spilled_bytes": int(self.spilled_bytes),
                "spill_dir": (
                    str(self._spill_dir)
                    if self._spill_dir is not None else None
                ),
            }

    def __repr__(self):
        return (
            f"MemoryBudget(budget={self.budget!r}, "
            f"resident={self._resident}, spilled={self.spilled_blocks})"
        )


# ---------------------------------------------------------------------------
# global configuration (mirrors repro.engine's configure/using shape)
# ---------------------------------------------------------------------------

_config_lock = threading.Lock()
_budget = None  # resolved lazily from REPRO_MEMORY_BUDGET on first use
_UNLIMITED = MemoryBudget(None)


def _from_env():
    raw = os.environ.get("REPRO_MEMORY_BUDGET", "")
    try:
        parsed = parse_budget(raw)
    except ValidationError as exc:
        raise ValidationError(
            f"REPRO_MEMORY_BUDGET must look like '512M' or a byte count, "
            f"got {raw!r}"
        ) from exc
    return _UNLIMITED if parsed is None else MemoryBudget(parsed)


def current_budget():
    """The globally active :class:`MemoryBudget` (unlimited by default)."""
    global _budget
    with _config_lock:
        if _budget is None:
            _budget = _from_env()
        return _budget


def _set_budget(budget):
    global _budget
    with _config_lock:
        previous = _budget
        _budget = budget
    return previous


def configure(budget=None, spill_dir=None):
    """Install a process-global budget (``None`` = unlimited).

    Overrides ``REPRO_MEMORY_BUDGET`` for the rest of the process.
    Returns the installed :class:`MemoryBudget`.
    """
    parsed = parse_budget(budget)
    installed = (
        _UNLIMITED if parsed is None and spill_dir is None
        else MemoryBudget(parsed, spill_dir=spill_dir)
    )
    _set_budget(installed)
    return installed


def admit(array, label="block"):
    """Module-level convenience: ``current_budget().admit(...)``."""
    return current_budget().admit(array, label)


def stats():
    """Counters of the active budget."""
    return current_budget().stats()


class limit:
    """Context manager: temporarily install a budget.

    ``with memory.limit("256M"): ...`` — used by
    ``run_pipeline(memory_budget=...)`` and the spill tests.  Accepts a
    spec (see :func:`parse_budget`) or a ready :class:`MemoryBudget`.
    """

    def __init__(self, budget, spill_dir=None):
        if isinstance(budget, MemoryBudget):
            self._target = budget
        else:
            parsed = parse_budget(budget)
            self._target = (
                _UNLIMITED if parsed is None and spill_dir is None
                else MemoryBudget(parsed, spill_dir=spill_dir)
            )
        self._previous = None

    def __enter__(self):
        self._previous = _set_budget(self._target)
        return self._target

    def __exit__(self, exc_type, exc, tb):
        _set_budget(self._previous)
        return False
