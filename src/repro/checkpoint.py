"""Crash-safe checkpoint/resume state for long-running reductions.

A multi-hour basis build at ``n >> 10^4`` that dies at 95% must not
restart from zero.  :class:`JobState` snapshots a reduction's progress
at *stage* boundaries — one stage per chunk of Krylov-chain tasks — so
a killed build resumes from its last committed stage and produces a
**bit-identical** ROM: together with each stage the workspace's mutable
solver state (the shared extended-Krylov basis, the fallback-shift
cache, the factored Π) is snapshotted, so the resumed chains see
exactly the floating-point environment the cold run would have given
them.

On-disk layout under the checkpoint directory::

    manifest.json          committed-stage index — the single commit point
    blocks/<digest>.npz    per-stage chain-block payloads
    solver-<digest>.npz    extended-Krylov solver snapshot as of a stage
    pi-<digest>.npz        factored-Π snapshot (written once: Π is
                           immutable after its build)
    tiles/<digest>/        append-only *tile* log of the one in-flight
                           stage: per-task payloads/snapshots plus
                           ``log.jsonl``, whose fsync'd lines are the
                           tile commit points.  Folded into the stage
                           block at ``commit_stage`` and cleared, so a
                           SIGKILL mid-stage loses at most one tile of
                           work, not the whole stage.

Commit protocol (crash consistency): the stage's block payload and
solver snapshot are written first (atomic + fsync through
:func:`~repro.serialize.save_payload`), then ``manifest.json`` is
rewritten durably.  A crash anywhere in between leaves the previous
manifest intact — a stage is either fully committed (block *and*
matching solver state referenced together) or invisible; orphaned
block/solver files from a crashed commit are overwritten or garbage-
collected on the next run.  Stages are executed and committed in a
fixed deterministic order, so the committed set is always a prefix of
the stage sequence and the snapshot referenced by the last committed
stage is exactly the solver state the next stage must start from.

Checkpoints are keyed by the same structural × reducer fingerprint the
:class:`~repro.store.ModelStore` shards artifacts by
(:func:`checkpoint_for`), so a checkpoint can never be resumed against
a different system or reducer configuration: a mismatch discards the
stale state and starts fresh.
"""

import hashlib
import json
import os
import shutil
from pathlib import Path

from .errors import ValidationError
from .serialize import (
    durable_write,
    fsync_directory,
    load_payload,
    save_payload,
)
from .testing.faults import fault_point

__all__ = ["CHECKPOINT_SCHEMA", "JobState", "checkpoint_for"]

#: Manifest schema version; a mismatch discards the checkpoint (stale
#: state is merely a lost head start, never worth a migration bug).
CHECKPOINT_SCHEMA = 1


def _stage_digest(stage_id):
    return hashlib.sha256(str(stage_id).encode("utf-8")).hexdigest()[:16]


class JobState:
    """Resumable on-disk state of one reduction build.

    Parameters
    ----------
    directory : str or Path
        Checkpoint directory (created if absent).
    system_fingerprint, reducer_fingerprint : str, optional
        Identity of the job this state belongs to.  When given, a
        manifest recorded under different fingerprints (or schema) is
        discarded instead of resumed.

    Attributes
    ----------
    loaded : int
        Stages served from disk by this process (resume hits).
    computed : int
        Stages computed and committed by this process.
    resumed : bool
        True when the manifest held committed stages at open time.
    """

    def __init__(self, directory, system_fingerprint=None,
                 reducer_fingerprint=None):
        self.directory = Path(directory)
        self.system_fingerprint = system_fingerprint
        self.reducer_fingerprint = reducer_fingerprint
        self._stages = {}   # stage_id -> {"id", "block", "solver"}
        self._order = []    # stage ids in commit order
        self.loaded = 0
        self.computed = 0
        self.tiles_loaded = 0
        self.tiles_computed = 0
        self.resumed = False
        self.directory.mkdir(parents=True, exist_ok=True)
        self._read_manifest()

    # -- manifest ------------------------------------------------------------

    @property
    def manifest_path(self):
        return self.directory / "manifest.json"

    def _read_manifest(self):
        path = self.manifest_path
        if not path.exists():
            return
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            stages = data["stages"]
            schema = data["schema"]
        except Exception:
            # Torn or garbled manifest (the commit protocol makes this
            # near-impossible, but a checkpoint must never be able to
            # crash the build): start fresh.
            self._wipe()
            return
        if schema != CHECKPOINT_SCHEMA:
            self._wipe()
            return
        for ours, theirs in (
            (self.system_fingerprint, data.get("system_fingerprint")),
            (self.reducer_fingerprint, data.get("reducer_fingerprint")),
        ):
            if ours is not None and theirs is not None and ours != theirs:
                # A different job's state under our directory: resuming
                # it would silently produce the wrong ROM.
                self._wipe()
                return
        for entry in stages:
            self._stages[entry["id"]] = entry
            self._order.append(entry["id"])
        self.resumed = bool(self._order)

    def _write_manifest(self):
        manifest = {
            "schema": CHECKPOINT_SCHEMA,
            "system_fingerprint": self.system_fingerprint,
            "reducer_fingerprint": self.reducer_fingerprint,
            "stages": [self._stages[sid] for sid in self._order],
        }
        durable_write(
            self.manifest_path,
            json.dumps(manifest, indent=2) + "\n",
        )

    def _wipe(self):
        """Drop all recorded state and stale files; keep the directory."""
        self._stages = {}
        self._order = []
        self.resumed = False
        for child in self.directory.iterdir():
            if child.is_dir():
                shutil.rmtree(child, ignore_errors=True)
            else:
                try:
                    child.unlink()
                except OSError:
                    pass

    # -- stages --------------------------------------------------------------

    def __len__(self):
        return len(self._order)

    def stage_ids(self):
        """Committed stage ids in commit order."""
        return list(self._order)

    def has_stage(self, stage_id):
        """True when *stage_id* is committed and its block is readable."""
        entry = self._stages.get(stage_id)
        if entry is None:
            return False
        return (self.directory / "blocks" / entry["block"]).exists()

    def load_stage(self, stage_id):
        """The committed payload tree of *stage_id* (counts as a hit)."""
        entry = self._stages.get(stage_id)
        if entry is None:
            raise ValidationError(
                f"stage {stage_id!r} is not committed in {self.directory}"
            )
        payload = load_payload(self.directory / "blocks" / entry["block"])
        self.loaded += 1
        return payload

    def solver_state(self, stage_id=None):
        """Solver snapshot recorded as of *stage_id* (default: the last
        committed stage), with the solver and Π halves merged back into
        one :meth:`~repro.volterra.associated.AssociatedWorkspace
        .restore_solver_state` payload.  ``None`` when nothing is
        committed or the stage carried no solver state."""
        if not self._order:
            return None
        if stage_id is None:
            stage_id = self._order[-1]
        entry = self._stages.get(stage_id)
        if entry is None:
            return None
        merged = {}
        for field in ("solver", "pi"):
            name = entry.get(field)
            if name is None:
                continue
            path = self.directory / name
            if path.exists():
                merged.update(load_payload(path))
        return merged or None

    def commit_stage(self, stage_id, payload, solver_state=None,
                     pi_state=None):
        """Durably commit one stage: *payload* plus (optionally) the
        solver/Π snapshots the *next* stage must start from.

        ``solver_state=None`` / ``pi_state=None`` mean "unchanged since
        the previous stage" — the previous snapshot references are
        carried forward.  The two halves are split so the large,
        write-once Π factor is not rewritten with every stage whose
        Krylov basis grew.  The manifest rewrite is the single commit
        point; crash sites ``checkpoint.before_block`` /
        ``checkpoint.before_commit`` / ``checkpoint.after_commit``
        bracket it.
        """
        digest = _stage_digest(stage_id)
        blocks_dir = self.directory / "blocks"
        blocks_dir.mkdir(parents=True, exist_ok=True)
        block_name = f"{digest}.npz"
        fault_point("checkpoint.before_block")
        # Checkpoint payloads are written uncompressed: they are
        # snapshots of incremental progress, rewritten often and
        # discarded after success — compression time would eat directly
        # into the <= 10% overhead budget.
        save_payload(blocks_dir / block_name, payload, compress=False)
        last = self._stages[self._order[-1]] if self._order else {}
        solver_name = last.get("solver")
        pi_name = last.get("pi")
        if solver_state is not None:
            solver_name = f"solver-{digest}.npz"
            save_payload(
                self.directory / solver_name, solver_state, compress=False
            )
        if pi_state is not None:
            pi_name = f"pi-{digest}.npz"
            save_payload(
                self.directory / pi_name, pi_state, compress=False
            )
        fault_point("checkpoint.before_commit")
        entry = {
            "id": stage_id, "block": block_name,
            "solver": solver_name, "pi": pi_name,
        }
        if stage_id not in self._stages:
            self._order.append(stage_id)
        self._stages[stage_id] = entry
        self._write_manifest()
        fault_point("checkpoint.after_commit")
        self.computed += 1
        self._collect_garbage()
        return entry

    def _collect_garbage(self):
        """Unlink solver/Π snapshots no longer referenced by any stage,
        and tile logs of stages that have since been committed."""
        referenced = set()
        for entry in self._stages.values():
            referenced.add(entry.get("solver"))
            referenced.add(entry.get("pi"))
        for pattern in ("solver-*.npz", "pi-*.npz"):
            for path in self.directory.glob(pattern):
                if path.name not in referenced:
                    try:
                        path.unlink()
                    except OSError:
                        pass
        tiles_root = self.directory / "tiles"
        if tiles_root.is_dir():
            committed = {_stage_digest(sid) for sid in self._order}
            for child in tiles_root.iterdir():
                if child.is_dir() and child.name in committed:
                    shutil.rmtree(child, ignore_errors=True)

    # -- tiles ---------------------------------------------------------------
    #
    # Within one in-flight stage, every chain task is a *tile*.  Tiles
    # commit through a cheap append-only log (payload + optional solver
    # snapshots written atomically first, then one fsync'd JSON line —
    # the commit point), so the durability granularity matches the
    # compute granularity: a SIGKILL between any two tasks loses at
    # most the single task that was running.  The stage commit
    # supersedes its tiles and clears the log.

    def _tiles_dir(self, stage_id):
        return self.directory / "tiles" / _stage_digest(stage_id)

    def _tile_entries(self, tiles_dir):
        """The committed tile prefix of *tiles_dir*: contiguous indices
        from 0 with readable payloads; a torn tail line (crash mid-
        append) or a gap ends the prefix."""
        log = tiles_dir / "log.jsonl"
        try:
            text = log.read_text(encoding="utf-8")
        except OSError:
            return []
        entries = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except Exception:
                break
            if entry.get("index") != len(entries):
                break
            if not (tiles_dir / entry["payload"]).exists():
                break
            entries.append(entry)
        return entries

    def _resumable_tile_dir(self):
        """The tile directory of the one in-flight (uncommitted) stage,
        or ``None``.  Multiple pending directories cannot arise from
        the commit protocol; if external damage produces them anyway,
        tiles are ignored wholesale rather than guessed at."""
        root = self.directory / "tiles"
        if not root.is_dir():
            return None
        committed = {_stage_digest(sid) for sid in self._order}
        pending = [
            child for child in root.iterdir()
            if child.is_dir() and child.name not in committed
        ]
        if len(pending) == 1:
            return pending[0]
        return None

    def tile_count(self, stage_id):
        """Committed tiles of *stage_id*'s in-flight log (0 when the
        stage has no resumable tiles)."""
        return len(self.load_tile_entries(stage_id))

    def load_tile_entries(self, stage_id):
        """Log entries of *stage_id*'s resumable tile prefix."""
        tiles_dir = self._tiles_dir(stage_id)
        if self._resumable_tile_dir() != tiles_dir:
            return []
        return self._tile_entries(tiles_dir)

    def load_tiles(self, stage_id):
        """Payload trees of *stage_id*'s committed tile prefix (each
        counts as a tile resume hit)."""
        tiles_dir = self._tiles_dir(stage_id)
        payloads = []
        for entry in self.load_tile_entries(stage_id):
            payloads.append(load_payload(tiles_dir / entry["payload"]))
            self.tiles_loaded += 1
        return payloads

    def commit_tile(self, stage_id, tile_index, payload, solver_state=None,
                    pi_state=None):
        """Durably append one tile to *stage_id*'s tile log.

        The payload (and, when the workspace's solver state changed
        since the last commit, its snapshot halves) is written atomic +
        fsync first; the single fsync'd log line is the commit point.
        Crash sites ``checkpoint.before_tile`` / ``checkpoint
        .after_tile`` bracket it.
        """
        tiles_dir = self._tiles_dir(stage_id)
        tiles_dir.mkdir(parents=True, exist_ok=True)
        tile_index = int(tile_index)
        fault_point("checkpoint.before_tile")
        payload_name = f"tile-{tile_index:04d}.npz"
        save_payload(tiles_dir / payload_name, payload, compress=False)
        solver_name = pi_name = None
        if solver_state is not None:
            solver_name = f"solver-{tile_index:04d}.npz"
            save_payload(
                tiles_dir / solver_name, solver_state, compress=False
            )
        if pi_state is not None:
            pi_name = f"pi-{tile_index:04d}.npz"
            save_payload(tiles_dir / pi_name, pi_state, compress=False)
        entry = {
            "index": tile_index, "payload": payload_name,
            "solver": solver_name, "pi": pi_name,
        }
        log = tiles_dir / "log.jsonl"
        fresh = not log.exists()
        with open(log, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(entry, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        if fresh:
            fsync_directory(tiles_dir)
        self.tiles_computed += 1
        fault_point("checkpoint.after_tile")
        return entry

    def clear_tiles(self, stage_id):
        """Drop *stage_id*'s tile log (its stage commit supersedes it)."""
        shutil.rmtree(self._tiles_dir(stage_id), ignore_errors=True)

    def has_resumable_tiles(self):
        """True when an in-flight stage left committed tiles behind."""
        pending = self._resumable_tile_dir()
        return pending is not None and bool(self._tile_entries(pending))

    def latest_solver_state(self):
        """:meth:`solver_state` of the last committed stage, overlaid
        with any snapshots the in-flight stage's tile log recorded —
        the state a mid-stage resume must restore before re-entering
        the build."""
        merged = dict(self.solver_state() or {})
        pending = self._resumable_tile_dir()
        if pending is not None:
            solver_name = pi_name = None
            for entry in self._tile_entries(pending):
                solver_name = entry.get("solver") or solver_name
                pi_name = entry.get("pi") or pi_name
            for name in (solver_name, pi_name):
                if name and (pending / name).exists():
                    merged.update(load_payload(pending / name))
        return merged or None

    # -- lifecycle -----------------------------------------------------------

    def describe(self):
        """JSON-safe summary for pipeline reports."""
        return {
            "directory": str(self.directory),
            "stages_committed": len(self._order),
            "loaded": int(self.loaded),
            "computed": int(self.computed),
            "tiles_loaded": int(self.tiles_loaded),
            "tiles_computed": int(self.tiles_computed),
            "resumed": bool(self.resumed),
        }

    def discard(self):
        """Delete the checkpoint directory (after a successful build)."""
        shutil.rmtree(self.directory, ignore_errors=True)
        self._stages = {}
        self._order = []

    def __repr__(self):
        return (
            f"JobState({str(self.directory)!r}, "
            f"stages={len(self._order)}, resumed={self.resumed})"
        )


def checkpoint_for(root, system, reducer):
    """The :class:`JobState` for (*system*, *reducer*) under *root*.

    *root* is a :class:`~repro.store.ModelStore` (state lives under
    ``<store>/checkpoints/<key>``, keyed exactly like the artifact the
    build will produce) or a plain directory (one job per directory).
    """
    from .store.modelstore import (
        ModelStore,
        artifact_key,
        fingerprint_system,
        reducer_fingerprint,
    )

    system_fp = fingerprint_system(system)
    reducer_fp = reducer_fingerprint(reducer)
    if isinstance(root, ModelStore):
        key = artifact_key(system, reducer)
        directory = root.root / "checkpoints" / key
    else:
        directory = Path(root)
    return JobState(
        directory,
        system_fingerprint=system_fp,
        reducer_fingerprint=reducer_fp,
    )
