"""Reduced-order model container and shared projection helpers."""

import numpy as np

from .._validation import as_matrix
from ..errors import ValidationError
from ..serialize import json_safe, load_payload, save_payload

__all__ = ["ReducedOrderModel"]


class ReducedOrderModel:
    """Result of a projection-based model order reduction.

    Attributes
    ----------
    system : PolynomialODE (or subclass)
        The reduced system ``(VᵀG1V, VᵀG2(V⊗V), ..., VᵀB, CV)``.
    basis : (n, q) ndarray
        Orthonormal projection matrix ``V``.
    method : str
        Human-readable reducer name (``"associated-transform"``,
        ``"norm"``, ...).
    orders : tuple
        Moment counts ``(q1, q2, q3)`` requested per transfer function.
    expansion_points : tuple of complex
        Frequency expansion points used for the Krylov chains.
    build_time : float
        Wall-clock seconds spent constructing the projection basis (the
        paper's "Arnoldi" column in Table 1).
    details : dict
        Reducer-specific diagnostics (block sizes, deflation counts...).
    """

    def __init__(
        self,
        system,
        basis,
        method,
        orders=None,
        expansion_points=(0.0,),
        build_time=None,
        details=None,
    ):
        self.system = system
        self.basis = as_matrix(np.asarray(basis), "basis")
        self.method = str(method)
        self.orders = None if orders is None else tuple(orders)
        self.expansion_points = tuple(expansion_points)
        self.build_time = build_time
        self.details = dict(details or {})

    @property
    def order(self):
        """Dimension of the reduced state space."""
        return self.basis.shape[1]

    @property
    def full_order(self):
        """Dimension of the original state space."""
        return self.basis.shape[0]

    def lift(self, reduced_states):
        """Map reduced states back to the full space (``x ≈ V x_r``).

        Accepts a single state ``(q,)`` or a trajectory ``(steps, q)``.
        """
        arr = np.asarray(reduced_states)
        if arr.ndim == 1:
            if arr.shape[0] != self.order:
                raise ValidationError(
                    f"state has length {arr.shape[0]}, expected {self.order}"
                )
            return self.basis @ arr
        if arr.shape[1] != self.order:
            raise ValidationError(
                f"trajectory has {arr.shape[1]} columns, expected {self.order}"
            )
        return arr @ self.basis.T

    def __repr__(self):
        return (
            f"ReducedOrderModel(method={self.method!r}, "
            f"order={self.order}, full_order={self.full_order})"
        )

    # -- serialization -------------------------------------------------------

    def to_dict(self):
        """Payload-tree form (see :mod:`repro.serialize`).

        The reduced system serializes through its own ``to_dict`` (so a
        ROM of any serializable system family round-trips), expansion
        points as a complex array, and the free-form ``details`` dict
        through :func:`repro.serialize.json_safe` — diagnostics degrade
        to strings rather than make a ROM unsaveable.
        """
        return {
            "__class__": "ReducedOrderModel",
            "system": self.system.to_dict(),
            "basis": self.basis,
            "method": self.method,
            "orders": None if self.orders is None else list(self.orders),
            "expansion_points": np.asarray(
                self.expansion_points, dtype=complex
            ),
            "build_time": (
                None if self.build_time is None else float(self.build_time)
            ),
            "details": json_safe(self.details),
        }

    @classmethod
    def from_dict(cls, data):
        """Rebuild a :class:`ReducedOrderModel` from :meth:`to_dict`."""
        from ..systems import system_from_dict

        kind = data.get("__class__", "ReducedOrderModel")
        if kind != "ReducedOrderModel":
            raise ValidationError(
                f"payload describes a {kind!r}, not a ReducedOrderModel"
            )
        points = np.asarray(data["expansion_points"])
        orders = data["orders"]
        return cls(
            system_from_dict(data["system"]),
            data["basis"],
            method=data["method"],
            orders=None if orders is None else tuple(orders),
            expansion_points=tuple(points.tolist()),
            build_time=data["build_time"],
            details=data["details"],
        )

    def save(self, path):
        """Write the ROM to *path* as one ``.npz`` archive (atomic)."""
        return save_payload(path, self.to_dict())

    @classmethod
    def load(cls, path):
        """Load a ROM written by :meth:`save`."""
        return cls.from_dict(load_payload(path))
