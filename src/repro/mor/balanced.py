"""Balanced truncation for LTI systems (square-root algorithm).

Substrate for the paper's §4 remark that the associated single-``s``
transfer functions make "Hankel singular values or similar measure
inherent to linear MOR" directly applicable to nonlinear order selection
(see :mod:`repro.mor.selection`).
"""

import numpy as np
import scipy.linalg as sla

from ..errors import SystemStructureError, ValidationError
from ..systems.lti import StateSpace
from .base import ReducedOrderModel

__all__ = ["balanced_truncation"]


def _symmetric_factor(gram, tol=1e-12):
    """Low-rank factor ``Z`` with ``Z Zᵀ ≈ gram`` via clipped eigh."""
    sym = 0.5 * (gram + gram.T)
    eigvals, eigvecs = np.linalg.eigh(sym)
    cutoff = tol * max(eigvals.max(), 0.0)
    keep = eigvals > cutoff
    return eigvecs[:, keep] * np.sqrt(eigvals[keep])


def balanced_truncation(system, order=None, tol=None):
    """Square-root balanced truncation of a stable :class:`StateSpace`.

    Parameters
    ----------
    system : StateSpace
        Must be Hurwitz-stable.
    order : int, optional
        Target reduced order.  When omitted, *tol* decides.
    tol : float, optional
        Keep all Hankel singular values above ``tol * hsv_max``.
        Exactly one of *order* / *tol* must be given.

    Returns
    -------
    ReducedOrderModel
        With ``details["hankel_singular_values"]`` carrying the full HSV
        spectrum (the paper's proposed order-selection signal).

    Notes
    -----
    Implements the standard square-root algorithm: factor both Gramians,
    SVD the cross product ``Lᵀ U = W Σ Vᵀ``, and form the (oblique)
    balancing projections ``T = U V Σ^{-1/2}``, ``S = L W Σ^{-1/2}``.
    """
    if not isinstance(system, StateSpace):
        raise ValidationError("balanced_truncation expects a StateSpace")
    if (order is None) == (tol is None):
        raise ValidationError("specify exactly one of order= or tol=")
    if not system.is_stable():
        raise SystemStructureError("balanced truncation requires stability")
    p = system.controllability_gramian()
    q = system.observability_gramian()
    u = _symmetric_factor(p)
    l = _symmetric_factor(q)
    w, sigma, vt = np.linalg.svd(l.T @ u, full_matrices=False)
    hsv = sigma.copy()
    if order is None:
        if hsv.size == 0:
            raise SystemStructureError("system has no reachable/observable"
                                       " modes")
        order = int(np.sum(hsv > tol * hsv[0]))
        order = max(order, 1)
    order = min(order, int(np.sum(hsv > 0)))
    if order < 1:
        raise ValidationError("requested order is below 1")
    scale = 1.0 / np.sqrt(hsv[:order])
    t_right = u @ vt[:order].T * scale  # (n, r)
    t_left = l @ w[:, :order] * scale  # (n, r)
    a_r = t_left.T @ system.a @ t_right
    b_r = t_left.T @ system.b
    c_r = system.c @ t_right
    reduced = StateSpace(a_r, b_r, c_r, system.d)
    return ReducedOrderModel(
        reduced,
        t_right,
        method="balanced-truncation",
        orders=(order,),
        details={"hankel_singular_values": hsv},
    )
