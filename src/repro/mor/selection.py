"""Automatic moment-order selection via Hankel singular values.

Paper §4, first bullet: because the associated transforms are standard
single-``s`` linear systems, the number of moments to match for each
``Hn`` "can utilize the Hankel singular values or similar measure
inherent to linear MOR ... in contrast to the ad hoc order choice in
NORM".  This module implements that idea:

1. build a modest shift-invert Krylov surrogate for each associated
   realization (in the lifted space, matrix-free),
2. project the realization onto the surrogate — a small dense LTI system,
3. read off its Hankel singular values,
4. pick each order ``q_n`` as the number of HSVs above a relative
   threshold measured against the *largest HSV across all orders* (so
   weakly excited high-order kernels naturally get fewer moments).
"""

import numpy as np

from .._validation import check_positive_int
from ..errors import NumericalError
from ..linalg.arnoldi import merge_bases
from ..systems.lti import StateSpace
from ..volterra.associated import (
    AssociatedWorkspace,
    FactoredH3Realization,
    associated_h1,
    associated_h2,
    associated_h3,
)

__all__ = ["realization_hankel_values", "suggest_orders"]


def realization_hankel_values(realization, probe=8, s0=0.0):
    """Approximate HSVs of an associated realization.

    Builds *probe* shift-invert Krylov vectors in the lifted space,
    orthonormalizes them, projects ``(A, B, C)`` onto the span and
    computes the Hankel singular values of the small projected system.

    Falls back to the singular values of the projected moment matrix when
    the Krylov-compressed surrogate is not Hurwitz (rare; the projection
    is one-sided), and for the sparse-path
    :class:`~repro.volterra.associated.FactoredH3Realization` — whose
    lifted vectors exist only in compressed form, so the surrogate is
    read off the projected chains directly.
    """
    probe = check_positive_int(probe, "probe")
    if isinstance(realization, FactoredH3Realization):
        moments = realization.moment_vectors(
            probe, s0=s0, deduplicate=False
        )
        return np.linalg.svd(np.real(moments), compute_uv=False)
    op = realization.operator
    chains = []
    current = realization.b.astype(complex)
    for _ in range(probe):
        cols = np.column_stack(
            [op.solve_shifted(-s0, current[:, j])
             for j in range(current.shape[1])]
        )
        chains.append(cols)
        current = cols
    basis = merge_bases(chains, tol=1e-10)
    # Project the lifted operator: A_small = Vᵀ (A V).
    av = np.column_stack(
        [op.matvec(basis[:, j]) for j in range(basis.shape[1])]
    )
    a_small = basis.T @ np.real(av)
    b_small = basis.T @ realization.b
    c_small = np.column_stack(
        [realization.project_top(basis[:, j])
         for j in range(basis.shape[1])]
    )
    surrogate = StateSpace(a_small, b_small, c_small)
    if surrogate.is_stable():
        try:
            return surrogate.hankel_singular_values()
        except NumericalError:
            pass
    moments = np.hstack(
        [realization.project_top(chain) if chain.ndim == 1
         else np.column_stack([realization.project_top(chain[:, j])
                               for j in range(chain.shape[1])])
         for chain in chains]
    )
    return np.linalg.svd(np.real(moments), compute_uv=False)


def suggest_orders(system, probe=8, tol=1e-4, s0=0.0, max_order=None):
    """Suggest ``(q1, q2, q3)`` moment orders from HSV decay.

    Parameters
    ----------
    system : PolynomialODE
    probe : int
        Surrogate Krylov depth per transfer function.
    tol : float
        Keep moments whose HSV exceeds ``tol * max(all HSVs)``.
    s0 : float
        Expansion point.
    max_order : int, optional
        Upper bound on each suggested order (defaults to *probe*).

    Returns
    -------
    (q1, q2, q3) tuple plus a dict of HSV arrays, as
    ``(orders, {"H1": hsv1, "H2": hsv2, "H3": hsv3})``.
    """
    explicit = system.to_explicit()
    workspace = AssociatedWorkspace(explicit)
    cap = max_order if max_order is not None else probe
    realizations = {"H1": associated_h1(explicit, workspace)}
    r2 = associated_h2(explicit, workspace)
    if r2 is not None:
        realizations["H2"] = r2
    r3 = associated_h3(explicit, workspace)
    if r3 is not None:
        realizations["H3"] = r3
    hsvs = {
        key: realization_hankel_values(real, probe=probe, s0=s0)
        for key, real in realizations.items()
    }
    global_max = max(h[0] for h in hsvs.values() if h.size)
    orders = []
    for key in ("H1", "H2", "H3"):
        if key not in hsvs or hsvs[key].size == 0:
            orders.append(0)
            continue
        count = int(np.sum(hsvs[key] > tol * global_max))
        orders.append(min(max(count, 0), cap))
    if orders[0] == 0:
        orders[0] = 1  # always keep at least the linear response
    return tuple(orders), hsvs
