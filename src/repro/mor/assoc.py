"""The proposed NMOR method: moment matching on associated transforms.

This is the paper's algorithm.  For a QLDAE (or cubic ODE) the reducer

1. builds the associated single-``s`` realizations of ``H1``, ``A2(H2)``
   and ``A3(H3)`` (exact linear systems; §2.2),
2. generates ``q1``/``q2``/``q3`` shift-invert Krylov vectors for each,
   projected onto the original ``n``-dimensional state space through the
   ``c̃ = [I_n, 0]`` output maps (§2.3),
3. merges the blocks into one orthonormal ``V`` (rank-deflated), and
4. Galerkin-projects the polynomial system onto ``span(V)``.

The resulting ROM order is ``O(q1 + q2 + q3)`` — the paper's headline —
versus the ``O(q1 + q2³ + q3⁴)`` of NORM (see :mod:`repro.mor.norm`).

Two subspace strategies are provided:

* ``"coupled"`` — chains on the block-triangular lifted operators
  directly (paper eq. 17),
* ``"decoupled"`` — the eq.-(18) Sylvester similarity transform, which
  splits ``A2(H2)`` into independent subsystems whose chains could be
  generated in parallel.  On sparse circuit-compiled systems this is
  also the scale path: Π is solved in factored form and every chain is
  a sparse-``G1`` solve, so the full method runs at ``n ≫ 2000``.

Multipoint (rational Krylov) expansion is supported by passing several
``expansion_points`` (paper §4, third bullet).
"""

import time

import numpy as np

from .. import memory
from .._validation import check_nonnegative_int
from ..engine import SolvePlan
from ..errors import ValidationError
from ..linalg.arnoldi import merge_bases
from ..volterra.associated import (
    AssociatedWorkspace,
    associated_h1,
    associated_h2,
    associated_h2_decoupled,
    associated_h3,
    stack_columns,
)
from .base import ReducedOrderModel

__all__ = ["AssociatedTransformMOR"]

#: Tasks per checkpoint stage on the checkpointed build path.  Small
#: enough that a kill between any two commits loses at most a few
#: chains; large enough that the per-stage manifest rewrite stays a
#: rounding error against the chain solves.
_CHECKPOINT_CHUNK = 4


def _rom_stability_details(reduced):
    """Spectral-abscissa diagnostics of a reduced system's linear part.

    One-sided Galerkin projection does not guarantee stability in
    general; recording the reduced spectrum lets callers detect (and
    re-tune orders / expansion points on) an unstable ROM.  Structural
    zero modes from exact lifting (uncontrollable, projecting to ~1e-12
    eigenvalues) are tolerated.
    """
    if reduced.mass is not None:
        pencil = np.linalg.solve(reduced.mass, reduced.g1)
    else:
        pencil = reduced.g1
    eig_max = float(np.linalg.eigvals(pencil).real.max())
    scale = max(float(np.abs(pencil).max()), 1.0)
    return {
        "rom_linear_spectral_abscissa": eig_max,
        "rom_linear_stable": bool(eig_max < 1e-8 * scale),
    }


class AssociatedTransformMOR:
    """Projection-based NMOR via associated transforms (the paper's method).

    Parameters
    ----------
    orders : tuple (q1, q2, q3)
        Moments to match for ``H1``, ``A2(H2)`` and ``A3(H3)``.  A zero
        skips that transfer function entirely.
    expansion_points : sequence of complex
        Frequency expansion points ``s0`` (default: DC).  Several points
        give a multipoint/rational-Krylov basis.
    strategy : {"coupled", "decoupled"}
        Subspace construction for ``A2(H2)`` — see module docstring.
    deduplicate : bool
        Chain only one input column per symmetric multiset (no loss of
        span for symmetrized kernels).
    tol : float
        Relative SVD cutoff when merging/deflating basis blocks.
    """

    def __init__(
        self,
        orders=(6, 3, 2),
        expansion_points=(0.0,),
        strategy="coupled",
        deduplicate=True,
        tol=1e-10,
    ):
        if len(orders) != 3:
            raise ValidationError("orders must be a (q1, q2, q3) triple")
        self.orders = tuple(
            check_nonnegative_int(q, f"orders[{idx}]")
            for idx, q in enumerate(orders)
        )
        if sum(self.orders) == 0:
            raise ValidationError("at least one moment order must be > 0")
        self.expansion_points = tuple(expansion_points)
        if not self.expansion_points:
            raise ValidationError("need at least one expansion point")
        if strategy not in ("coupled", "decoupled"):
            raise ValidationError(
                f"strategy must be 'coupled' or 'decoupled', got {strategy!r}"
            )
        self.strategy = strategy
        self.deduplicate = bool(deduplicate)
        self.tol = float(tol)

    def build_basis(self, system, workspace=None, checkpoint=None,
                    max_block=None):
        """Construct the projection basis ``V`` (without projecting).

        Returns ``(V, details)`` where *details* records per-block vector
        counts and which transfer functions were present.

        Sparse systems (CSR ``g1``) run fully matrix-free on the
        resolvent factory's sparse LU: the H1 chains, the eq.-(18)
        factored-Π decoupled H2 chains and the compressed lifted H3
        chains never densify ``G1``, so full ``orders=(q1, q2, q3)``
        bases build at ``n ≫ 2000`` with ``strategy="decoupled"``.
        Only ``strategy="coupled"`` still needs the dense Schur form
        (size-guarded through the workspace) — it remains the small-n
        reference the sparse path is tested against.

        All Krylov chains — per transfer function, per expansion point,
        per retained input column, and (for the decoupled strategy) per
        eq.-(18) subsystem — are independent, so the whole build is
        emitted as **one** engine plan and dispatched across the
        configured backend's workers; the serial default reproduces the
        historical inline loops exactly.

        With *checkpoint* (a :class:`~repro.checkpoint.JobState`) the
        build instead executes in deterministically ordered stages of at
        most ``_CHECKPOINT_CHUNK`` chains, durably committing each stage
        (chain vectors + the workspace's mutable solver state) as it
        completes.  A killed build re-entered with the same checkpoint
        loads the committed prefix from disk, restores the solver state
        the last commit recorded, and computes only the remaining stages
        — yielding a bit-identical basis.

        *max_block* forces the row-block size every streamed n-row
        intermediate (the Π build, blocked Gram updates, tile-wise
        block assembly) is produced in — see
        :class:`repro.memory.BlockPlanner`.  ``None`` inherits
        ``REPRO_MAX_BLOCK`` or the budget-derived default;
        ``max_block >= n`` executes the unblocked operations exactly.
        """
        with memory.tiling(max_block):
            return self._build_basis(system, workspace, checkpoint)

    def _build_basis(self, system, workspace, checkpoint):
        if workspace is not None:
            # A caller-supplied workspace (multi-point reuse, parametric
            # warm start) pins the explicit form: its factorizations —
            # and any warm-start seeds — must act on the very matrices
            # the chains see.
            system = workspace.system
        else:
            system = system.to_explicit()
            # Memoized per system: multiple expansion points, repeated
            # builds and any distortion analysis on the same system all
            # share one Schur factorization of G1 (and one Π / lifted
            # operator when present).
            workspace = AssociatedWorkspace.for_system(system)
        if checkpoint is not None:
            # Restore *before* the realizations are constructed: the
            # decoupled-H2 realization consumes Π and the shared
            # low-rank solver at init time, and a resumed build must
            # see exactly the state the committed stages — plus any
            # tiles the in-flight stage durably logged before a kill —
            # were computed with (also skipping the Π recompute).
            state = checkpoint.latest_solver_state()
            if state:
                workspace.restore_solver_state(state)
        q1, q2, q3 = self.orders

        r1 = associated_h1(system, workspace) if q1 > 0 else None
        r2 = None
        dec2 = None
        if q2 > 0:
            if self.strategy == "decoupled":
                dec2 = associated_h2_decoupled(system, workspace)
            else:
                r2 = associated_h2(system, workspace)
        r3 = associated_h3(system, workspace) if q3 > 0 else None

        # One spec per (transfer function × expansion point):
        # (label, s0, chain callables, subsystem tags or None), in the
        # deterministic order both execution paths share.
        specs = []
        for s0 in self.expansion_points:
            if r1 is not None:
                fns = r1.chain_tasks(q1, s0=s0, deduplicate=self.deduplicate)
                specs.append(("H1", s0, fns, None))
            if dec2 is not None:
                tasks = dec2.chain_tasks(
                    q2, s0=s0, deduplicate=self.deduplicate
                )
                specs.append((
                    "H2-dec", s0,
                    [fn for _, fn in tasks],
                    [subsystem for subsystem, _ in tasks],
                ))
            elif r2 is not None:
                fns = r2.chain_tasks(q2, s0=s0, deduplicate=self.deduplicate)
                specs.append(("H2", s0, fns, None))
            if r3 is not None:
                fns = r3.chain_tasks(q3, s0=s0, deduplicate=self.deduplicate)
                specs.append(("H3", s0, fns, None))

        if checkpoint is None:
            # Emit every independent chain into one plan, remembering
            # how to regroup the ordered results into the per-block
            # layout the details dict has always reported.
            plan = SolvePlan("assoc-mor.build_basis")
            bounds = []
            for label, s0, fns, subsystems in specs:
                start = len(plan)
                for index, fn in enumerate(fns):
                    tag = (
                        (f"H2-sub{subsystems[index]}", s0)
                        if subsystems is not None else (label, s0)
                    )
                    plan.add(fn, tag=tag)
                bounds.append((start, len(plan)))
            results = plan.execute()
            group_chains = [
                (label, s0, results[start:end], subsystems)
                for (label, s0, _, subsystems), (start, end)
                in zip(specs, bounds)
            ]
        else:
            group_chains = self._execute_checkpointed(
                specs, workspace, checkpoint
            )

        blocks = []
        details = {"blocks": []}
        for label, s0, chains, subsystems in group_chains:
            if label == "H2-dec":
                per_sub = {0: [], 1: []}
                for subsystem, chain in zip(subsystems, chains):
                    per_sub[subsystem].extend(chain)
                for idx in (0, 1):
                    block = memory.admit(
                        stack_columns(per_sub[idx], f"H2-sub{idx}"),
                        f"H2-sub{idx}",
                    )
                    blocks.append(block)
                    details["blocks"].append(
                        (f"H2-sub{idx}", s0, block.shape[1])
                    )
            else:
                block = memory.admit(
                    stack_columns(
                        [vec for chain in chains for vec in chain], label
                    ),
                    label,
                )
                blocks.append(block)
                details["blocks"].append((label, s0, block.shape[1]))

        if not blocks:
            raise ValidationError(
                "no basis blocks were generated; the requested transfer "
                "functions are all identically zero for this system"
            )
        basis = merge_bases(blocks, tol=self.tol)
        details["raw_vectors"] = int(sum(b.shape[1] for b in blocks))
        details["deflated_to"] = int(basis.shape[1])
        if checkpoint is not None:
            details["checkpoint"] = checkpoint.describe()
        return basis, details

    def _execute_checkpointed(self, specs, workspace, checkpoint):
        """Run the chain groups stage by stage against *checkpoint*.

        Stages execute in a fixed deterministic order; committed stages
        are consumed strictly as a prefix (a gap — possible only through
        external file damage — breaks the prefix and everything after it
        is recomputed, so the solver-state evolution always matches the
        cold run).  Within the one in-flight stage every chain task
        commits as a *tile* through the checkpoint's append-only tile
        log, so a SIGKILL between any two tasks loses at most the task
        that was running; the stage commit folds its tiles into the
        durable stage block and clears the log.  The workspace's
        mutable solver state is snapshotted with a tile/stage only when
        it changed since the matching previous commit.
        """
        # On resume the restored snapshot *is* the committed version;
        # on a cold start there is no committed version yet, so the
        # first stage always snapshots (capturing e.g. the Π computed
        # during realization construction).  The two snapshot halves are
        # versioned independently: the Krylov basis grows with most
        # stages, the (large) Π factor is written exactly once.  The
        # stage-level track is kept separate from the tile-level track:
        # stage entries carry snapshot references forward from the
        # previous *stage*, so deduplicating a stage commit against a
        # tile snapshot (cleared with the stage) would leave the
        # manifest pointing at stale state.  After a mid-stage tile
        # resume the stage track stays at "never", forcing the next
        # stage commit to persist the tile-restored state durably.
        never = object()
        stage_lowrank = stage_pi = never
        if checkpoint.resumed and not checkpoint.has_resumable_tiles():
            stage_lowrank, stage_pi = workspace.solver_version()
        total_stages = sum(
            -(-len(fns) // _CHECKPOINT_CHUNK) for _, _, fns, _ in specs
        )
        group_chains = []
        prefix = True
        stage_index = 0
        for gindex, (label, s0, fns, subsystems) in enumerate(specs):
            chains = []
            chunk_starts = range(0, len(fns), _CHECKPOINT_CHUNK)
            for cindex, lo in enumerate(chunk_starts):
                hi = min(lo + _CHECKPOINT_CHUNK, len(fns))
                stage_id = f"{gindex:02d}.{cindex:02d}:{label}@{s0!r}"
                stage_index += 1
                if prefix and checkpoint.has_stage(stage_id):
                    payload = checkpoint.load_stage(stage_id)
                    part = [
                        [np.asarray(vec) for vec in chain]
                        for chain in payload["chains"]
                    ]
                else:
                    part = []
                    if prefix:
                        # Mid-stage resume: consume the in-flight
                        # stage's committed tile prefix.  The restored
                        # solver state already includes these tiles'
                        # effect (build_basis restores
                        # ``latest_solver_state``), so recomputation
                        # continues exactly where the kill struck.
                        part = [
                            [np.asarray(vec) for vec in tile["chain"]]
                            for tile in checkpoint.load_tiles(stage_id)
                        ]
                    prefix = False
                    tile_lowrank, tile_pi = workspace.solver_version()
                    for index in range(lo + len(part), hi):
                        tag = (
                            (f"H2-sub{subsystems[index]}", s0)
                            if subsystems is not None else (label, s0)
                        )
                        plan = SolvePlan(
                            f"assoc-mor.build_basis[{stage_id}"
                            f"#{index - lo}]"
                        )
                        plan.add(fns[index], tag=tag)
                        chain = plan.execute()[0]
                        part.append(chain)
                        if index < hi - 1:
                            # The stage commit right after the last
                            # task supersedes its tile: skip the
                            # double write.
                            snapshot = pi_snapshot = None
                            lowrank_v, pi_v = workspace.solver_version()
                            if lowrank_v != tile_lowrank:
                                snapshot = workspace.lowrank_state()
                            if pi_v != tile_pi:
                                pi_snapshot = workspace.pi_state()
                            checkpoint.commit_tile(
                                stage_id, index - lo, {"chain": chain},
                                solver_state=snapshot,
                                pi_state=pi_snapshot,
                            )
                            tile_lowrank, tile_pi = lowrank_v, pi_v
                    snapshot = pi_snapshot = None
                    lowrank_v, pi_v = workspace.solver_version()
                    if stage_index < total_stages:
                        # No stage follows the last one, so its solver
                        # state can never be resumed from: skip the
                        # (largest) snapshot write entirely.
                        if lowrank_v != stage_lowrank:
                            snapshot = workspace.lowrank_state()
                        if pi_v != stage_pi:
                            pi_snapshot = workspace.pi_state()
                    checkpoint.commit_stage(
                        stage_id, {"chains": part},
                        solver_state=snapshot, pi_state=pi_snapshot,
                    )
                    stage_lowrank, stage_pi = lowrank_v, pi_v
                chains.extend(part)
            group_chains.append((label, s0, chains, subsystems))
        return group_chains

    def reduce(self, system, checkpoint=None, max_block=None,
               workspace=None):
        """Reduce *system* and return a :class:`ReducedOrderModel`.

        The Krylov basis is generated from the explicit form (the
        associated realizations need ``mass = I``), but the projection is
        applied to the *original* system: for a mass-form passive MNA
        model the congruence ``(VᵀMV, VᵀG1V, ...)`` preserves the
        definiteness structure — and hence ROM stability — that folding
        the mass matrix would destroy.  Both forms have identical
        transfer functions, so the matched moments are the same.

        *checkpoint* (a :class:`~repro.checkpoint.JobState`) makes the
        basis build stage-committed and resumable; *max_block* streams
        the build in fixed-size row blocks — see :meth:`build_basis`.
        *workspace* (an :class:`~repro.volterra.associated.
        AssociatedWorkspace` over this system's explicit form) lets a
        caller pre-seed the lazy solvers — the parametric sweep's
        warm-start hook; the basis build then runs on the workspace's
        explicit system.
        """
        explicit = workspace.system if workspace is not None \
            else system.to_explicit()
        start = time.perf_counter()
        basis, details = self.build_basis(
            explicit, workspace=workspace, checkpoint=checkpoint,
            max_block=max_block,
        )
        build_time = time.perf_counter() - start
        target = system if system.mass is not None else explicit
        reduced = target.project(basis)
        details.update(_rom_stability_details(reduced))
        return ReducedOrderModel(
            reduced,
            basis,
            method=f"associated-transform ({self.strategy})",
            orders=self.orders,
            expansion_points=self.expansion_points,
            build_time=build_time,
            details=details,
        )
