"""NORM baseline: multivariate Volterra moment matching (Li & Pileggi).

NORM [7, 6 in the paper] matches moments of the *multivariate* transfer
functions directly.  Expanding eq. (14b) about ``(s1, s2) = (0, 0)``,

    H1(s) = Σ_k s^k m_k,             m_k = -G1^{-(k+1)} B,
    H2(s1, s2) = Σ (s1+s2)^j s1^k s2^l · G1^{-(j+1)} [G2 sym(m_k ⊗ m_l)
                                                      + D1-coupling]

so the space containing every H2 moment of total order < q2 is spanned by

    { G1^{-(j+1)} w_{kl} : j + k + l <= q2 - 1 },
    w_{kl} = G2 sym(m_k ⊗ m_l) + D1 coupling,

whose cardinality grows like ``q2³/6`` — and the third-order analogue
like ``q3⁴`` — the "dimensionality curse" the associated transform
removes.  This module implements that subspace generation faithfully so
the paper's ROM-size comparisons (Fig. 3, Fig. 4, Table 1) can be
reproduced.
"""

import time

import numpy as np

from .._validation import check_nonnegative_int
from ..errors import ValidationError
from ..linalg.arnoldi import merge_bases
from ..linalg.lu import factorized_solver, shifted_matrix
from .base import ReducedOrderModel

__all__ = ["NORMReducer"]


class NORMReducer:
    """Multivariate moment-matching NMOR (the baseline the paper beats).

    Parameters
    ----------
    orders : tuple (k1, k2, k3)
        Moment orders for ``H1``, ``H2(s1, s2)``, ``H3(s1, s2, s3)``.
    s0 : float
        Expansion point (DC by default, as in the paper's experiments).
    tol : float
        SVD deflation tolerance when merging the moment blocks.
    """

    def __init__(self, orders=(6, 3, 2), s0=0.0, tol=1e-10):
        if len(orders) != 3:
            raise ValidationError("orders must be a (k1, k2, k3) triple")
        self.orders = tuple(
            check_nonnegative_int(k, f"orders[{idx}]")
            for idx, k in enumerate(orders)
        )
        if sum(self.orders) == 0:
            raise ValidationError("at least one moment order must be > 0")
        self.s0 = s0
        self.tol = float(tol)

    # -- internals -------------------------------------------------------------

    @staticmethod
    def _sym_pair_columns(system, left, right):
        """``G2 sym(left ⊗ right)`` columns plus the D1 coupling.

        *left*, *right* are ``(n, m)`` / ``(n, cols)`` moment matrices;
        returns an ``(n, m * cols)`` seed block.
        """
        n = system.n_states
        m_left = left.shape[1]
        m_right = right.shape[1]
        seed = np.zeros((n, m_left * m_right))
        if system.g2 is not None:
            for p in range(m_left):
                for q in range(m_right):
                    col = p * m_right + q
                    pair = 0.5 * (
                        np.kron(left[:, p], right[:, q])
                        + np.kron(right[:, q], left[:, p])
                    )
                    seed[:, col] += system.g2 @ pair
        if system.d1 is not None and m_right == system.n_inputs:
            # D1 coupling: the u-slot rides on the right factor's input
            # index; moments of D1 H1 terms live in the same total order.
            for p in range(m_left):
                for q in range(m_right):
                    col = p * m_right + q
                    seed[:, col] += 0.5 * (system.d1[q] @ left[:, p])
        return seed

    def reduce(self, system):
        """Reduce *system*; returns a :class:`ReducedOrderModel`.

        Like the proposed reducer, the basis comes from the explicit
        form but the projection is applied to the original (possibly
        mass-form) system to preserve passivity structure.
        """
        from .assoc import _rom_stability_details

        explicit = system.to_explicit()
        start = time.perf_counter()
        basis, details = self.build_basis(explicit)
        build_time = time.perf_counter() - start
        target = system if system.mass is not None else explicit
        reduced = target.project(basis)
        details.update(_rom_stability_details(reduced))
        return ReducedOrderModel(
            reduced,
            basis,
            method="norm",
            orders=self.orders,
            expansion_points=(self.s0,),
            build_time=build_time,
            details=details,
        )

    def build_basis(self, system):
        """Generate the multivariate moment vectors and orthonormalize."""
        system = system.to_explicit()
        k1, k2, k3 = self.orders
        n = system.n_states
        # Shared sparse-aware dispatch: sparse g1 stays on a sparse LU
        # instead of silently densifying.
        solve = factorized_solver(shifted_matrix(system.g1, self.s0))

        max_h1 = max(k1, k2, k3)
        h1_moments = []
        current = np.array(system.b, dtype=float)
        for _ in range(max_h1 if max_h1 > 0 else 1):
            current = solve(current)
            h1_moments.append(current.copy())

        blocks = []
        details = {"blocks": []}
        if k1 > 0:
            block = np.hstack(h1_moments[:k1])
            blocks.append(block)
            details["blocks"].append(("H1", block.shape[1]))

        h2_vectors = []  # (total_order, (n, cols) block) for reuse in H3
        if k2 > 0 and (system.g2 is not None or system.d1 is not None):
            count = 0
            for k in range(k2):
                for l in range(k2 - k):
                    seed = self._sym_pair_columns(
                        system, h1_moments[k], h1_moments[l]
                    )
                    chain = seed
                    for j in range(k2 - k - l):
                        chain = solve(chain)
                        h2_vectors.append((k + l + j, chain.copy()))
                        count += chain.shape[1]
            if h2_vectors:
                block = np.hstack([vec for _, vec in h2_vectors])
                blocks.append(block)
                details["blocks"].append(("H2", count))

        if k3 > 0:
            h3_blocks = []
            count = 0
            # Cross terms G2 (H1 ⊗ H2): pair every H1 moment with every
            # H2 moment vector subject to the total-order budget.
            if system.g2 is not None and h2_vectors:
                for a in range(k3):
                    for order_u, u_block in h2_vectors:
                        if a + order_u >= k3:
                            continue
                        seed = self._sym_pair_columns(
                            system, h1_moments[a], u_block
                        )
                        chain = seed
                        for j in range(k3 - a - order_u):
                            chain = solve(chain)
                            h3_blocks.append(chain.copy())
                            count += chain.shape[1]
            # D1 coupling on H2 moments.
            if system.d1 is not None and h2_vectors:
                for order_u, u_block in h2_vectors:
                    if order_u >= k3:
                        continue
                    seeds = []
                    for d1_i in system.d1:
                        seeds.append(d1_i @ u_block)
                    seed = np.hstack(seeds)
                    chain = seed
                    for j in range(k3 - order_u):
                        chain = solve(chain)
                        h3_blocks.append(chain.copy())
                        count += chain.shape[1]
            # Cubic term G3 sym(m_a ⊗ m_b ⊗ m_c).
            if system.g3 is not None:
                m = system.n_inputs
                for a in range(k3):
                    for b_ord in range(k3 - a):
                        for c_ord in range(k3 - a - b_ord):
                            seed = np.zeros((n, m**3))
                            for p in range(m):
                                for q in range(m):
                                    for r in range(m):
                                        col = (p * m + q) * m + r
                                        trip = np.kron(
                                            h1_moments[a][:, p],
                                            np.kron(
                                                h1_moments[b_ord][:, q],
                                                h1_moments[c_ord][:, r],
                                            ),
                                        )
                                        seed[:, col] += system.g3 @ trip
                            chain = seed
                            for j in range(k3 - a - b_ord - c_ord):
                                chain = solve(chain)
                                h3_blocks.append(chain.copy())
                                count += chain.shape[1]
            if h3_blocks:
                blocks.append(np.hstack(h3_blocks))
                details["blocks"].append(("H3", count))

        if not blocks:
            raise ValidationError(
                "no moment vectors generated; requested orders are all "
                "zero or the system is purely linear"
            )
        basis = merge_bases(blocks, tol=self.tol)
        details["raw_vectors"] = int(sum(b.shape[1] for b in blocks))
        details["deflated_to"] = int(basis.shape[1])
        return basis, details
