"""Model order reduction: the proposed associated-transform NMOR, the
NORM baseline, linear Krylov projection, balanced truncation, and
HSV-based automatic order selection."""

from .assoc import AssociatedTransformMOR
from .balanced import balanced_truncation
from .base import ReducedOrderModel
from .krylov import krylov_basis, reduce_lti
from .norm import NORMReducer
from .selection import realization_hankel_values, suggest_orders

__all__ = [
    "AssociatedTransformMOR",
    "balanced_truncation",
    "ReducedOrderModel",
    "krylov_basis",
    "reduce_lti",
    "NORMReducer",
    "realization_hankel_values",
    "suggest_orders",
]
