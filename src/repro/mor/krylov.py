"""Linear Krylov-subspace model order reduction (PRIMA-style substrate).

Moment-matching projection for LTI systems: the orthonormal basis of
``K_q((A − s0 I)^{-1}, (A − s0 I)^{-1} B)`` matches ``q`` moments of the
transfer function about ``s0`` (block version for MIMO).  This is the
"workhorse" the paper builds on (its §1 cites PRIMA [9]); the associated
transform reduces the *nonlinear* problem to exactly this primitive.
"""

import numpy as np
import scipy.sparse as sp

from .._validation import check_positive_int
from ..errors import ValidationError
from ..linalg.arnoldi import merge_bases
from ..linalg.lu import factorized_solver, shifted_matrix
from ..systems.lti import StateSpace
from .base import ReducedOrderModel

__all__ = ["krylov_basis", "reduce_lti"]


def krylov_basis(a, b, count, s0=0.0, tol=1e-10):
    """Orthonormal basis of the block shift-invert Krylov space.

    Parameters
    ----------
    a : (n, n) array_like or sparse
        Scipy sparse input is factored with a sparse LU (one ``splu`` of
        ``A − s0 I`` per expansion point, never densified); dense input
        takes the LAPACK path unchanged.
    b : (n,) or (n, m) array_like
        Block starting vectors.
    count : int
        Moments to match per input (chain length).
    s0 : complex
        Expansion point; must not be an eigenvalue of ``a``.
    tol : float
        Deflation tolerance for the final orthonormalization.
    """
    if not sp.issparse(a):
        a = np.asarray(a, dtype=float)
    n = a.shape[0]
    if a.shape != (n, n):
        raise ValidationError(f"a must be square, got {a.shape}")
    b = np.asarray(b)
    if b.ndim == 1:
        b = b[:, None]
    count = check_positive_int(count, "count")
    shifted = shifted_matrix(a, s0)
    solve = factorized_solver(shifted)
    blocks = []
    current = b.astype(shifted.dtype)
    for _ in range(count):
        current = solve(current)
        blocks.append(current.copy())
    return merge_bases(blocks, tol=tol)


def reduce_lti(system, count, s0=0.0, tol=1e-10):
    """Moment-matching reduction of an LTI :class:`StateSpace`.

    Returns a :class:`ReducedOrderModel` whose ``system`` attribute is the
    projected :class:`StateSpace`; ``2*count`` is NOT claimed (one-sided
    Galerkin matches ``count`` moments per expansion point).
    """
    if not isinstance(system, StateSpace):
        raise ValidationError("reduce_lti expects a StateSpace")
    points = np.atleast_1d(np.asarray(s0))
    blocks = [
        krylov_basis(system.a, system.b, count, s0=point, tol=tol)
        for point in points
    ]
    basis = merge_bases(blocks, tol=tol)
    reduced = system.project(basis)
    return ReducedOrderModel(
        reduced,
        basis,
        method="linear-krylov",
        orders=(count,),
        expansion_points=tuple(points.tolist()),
    )
