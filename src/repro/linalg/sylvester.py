"""Sylvester-equation and Kronecker-sum solvers.

These routines implement the computational core of the paper's §2.3:
every Krylov step of the associated-transform method needs solves with
shifted repeated Kronecker sums ``(k© G1 − s I)`` whose dimension is
``n^k``.  Forming those matrices is hopeless for the paper's circuit
sizes; instead, one Schur decomposition of ``G1`` (n × n) turns each solve
into triangular sweeps of total cost ``O(n^{k+1})`` and memory ``O(n^k)``.

Identities used (row-major ``vec``; see :mod:`repro.linalg.kronecker`)::

    (A ⊕ A) vec(X)      = vec(A X + X Aᵀ)
    (A ⊕ A ⊕ A) vec(X)  = vec of summed mode products of the 3-tensor X

The module also solves the paper's eq.-(18) decoupling equation

    G1 Π + G2 = Π (G1 ⊕ G1)

which splits the associated second-order transfer function into two
independent LTI subsystems.
"""

import numpy as np
import scipy.linalg as sla

from .._validation import as_matrix, as_square_matrix
from ..errors import NumericalError, ValidationError
from .kronecker import mode_apply
from .schur import SchurForm

__all__ = [
    "triangular_sylvester_solve",
    "triangular_sylvester_solve_transposed",
    "KronSumSolver",
    "solve_pi_sylvester",
    "pi_sylvester_residual",
]

_SINGULAR_RTOL = 1e-13


def _check_diag_gap(values, scale):
    gap = np.abs(values).min()
    if gap <= _SINGULAR_RTOL * scale:
        raise NumericalError(
            "Sylvester/Kronecker-sum solve is numerically singular "
            f"(smallest shifted eigenvalue magnitude = {gap:.3e}); "
            "the spectrum pairing lambda_i + lambda_j + shift vanishes"
        )


def triangular_sylvester_solve(t, alpha, w):
    """Solve ``T Y + Y Tᵀ + alpha Y = W`` with upper-triangular ``T``.

    This is the Bartels–Stewart back-substitution specialized to the case
    where both coefficient matrices come from the same (complex) Schur
    factor.  Columns are swept from right to left; each step is one
    shifted triangular solve.

    Parameters
    ----------
    t : (n, n) complex ndarray, upper triangular.
    alpha : complex
        Scalar shift.
    w : (n, m) complex ndarray
        Right-hand side; ``m`` need not equal ``n`` — the general contract
        is ``T Y + Y S + alpha Y = W`` with ``S = Tᵀ[:m, :m]`` when
        ``m <= n``.  In this library it is always called with ``m == n``.

    Returns
    -------
    (n, m) complex ndarray.
    """
    t = np.asarray(t)
    w = np.asarray(w, dtype=complex)
    n, m = w.shape
    diag = np.diag(t)
    pair_sums = diag[:, None] + diag[None, :m] + alpha
    _check_diag_gap(pair_sums, max(np.abs(diag).max(), 1.0))
    y = np.empty((n, m), dtype=complex)
    # One shared work matrix: only the diagonal changes per column, so
    # the O(n²) allocate-and-add of ``T + beta I`` is hoisted out of the
    # sweep (an O(n³)-per-solve saving across the m columns).
    shifted = t.astype(complex, copy=True)
    for j in range(m - 1, -1, -1):
        rhs = w[:, j]
        if j + 1 < m:
            # Couplings from Y Tᵀ: column j receives Y[:, k] * T[j, k]
            # for k > j.
            rhs = rhs - y[:, j + 1 :] @ t[j, j + 1 : m]
        np.fill_diagonal(shifted, diag + (t[j, j] + alpha))
        y[:, j] = sla.solve_triangular(shifted, rhs, lower=False)
    return y


def triangular_sylvester_solve_transposed(t, alpha, w):
    """Solve ``Tᵀ Y + Y T + alpha Y = W`` with upper-triangular ``T``.

    The transposed counterpart of :func:`triangular_sylvester_solve`;
    columns are swept left to right and each step is one lower-triangular
    (transposed upper) solve.
    """
    t = np.asarray(t)
    w = np.asarray(w, dtype=complex)
    n, m = w.shape
    diag = np.diag(t)
    pair_sums = diag[:, None] + diag[None, :m] + alpha
    _check_diag_gap(pair_sums, max(np.abs(diag).max(), 1.0))
    y = np.empty((n, m), dtype=complex)
    shifted = t.astype(complex, copy=True)
    for j in range(m):
        rhs = w[:, j]
        if j > 0:
            # Couplings from Y T: column j receives Y[:, k] * T[k, j]
            # for k < j.
            rhs = rhs - y[:, :j] @ t[:j, j]
        np.fill_diagonal(shifted, diag + (t[j, j] + alpha))
        y[:, j] = sla.solve_triangular(shifted, rhs, lower=False, trans="T")
    return y


class KronSumSolver:
    """Shifted solves with repeated Kronecker sums of a fixed matrix.

    Given a square ``A`` (n × n), precomputes its complex Schur form once
    and then solves, matrix-free,

    * ``(A + shift I) x = rhs``                      (``k = 1``),
    * ``((A ⊕ A) + shift I) x = rhs``                (``k = 2``),
    * ``((A ⊕ A ⊕ A) + shift I) x = rhs``            (``k = 3``),

    plus the transposed variants for ``k ∈ {1, 2}``.  This is exactly the
    paper's Schur trick: ``k© A = (Q k©)(k© T)(Q k©)ᴴ`` so each solve is a
    sequence of triangular substitutions.

    Results are complex; use :meth:`solve_real` when the right-hand side
    and operator are real and a real answer is expected.
    """

    def __init__(self, a, schur=None):
        a = as_square_matrix(a, "a")
        self.n = a.shape[0]
        if schur is not None and schur.n != self.n:
            raise ValidationError(
                "precomputed Schur form has mismatching dimension"
            )
        self.schur = schur if schur is not None else SchurForm(a)

    # -- internal transforms ------------------------------------------------

    def _to_schur_basis(self, x_mat, conjugate_right):
        q = self.schur.q
        qh = q.conj().T
        if conjugate_right:
            # Y = Qᴴ X conj(Q)
            return qh @ x_mat @ q.conj()
        # Y = Qᵀ X Q
        return q.T @ x_mat @ q

    def _from_schur_basis(self, y_mat, conjugate_right):
        q = self.schur.q
        if conjugate_right:
            # X = Q Y Qᵀ
            return q @ y_mat @ q.T
        # X = conj(Q) Y Qᴴ
        return q.conj() @ y_mat @ q.conj().T

    # -- public API ---------------------------------------------------------

    def solve(self, rhs, k=2, shift=0.0):
        """Solve ``((k© A) + shift I) x = rhs`` for ``k`` in {1, 2, 3}.

        ``rhs`` is a flat vector of length ``n**k`` in row-major tensor
        ordering.  Returns a complex vector of the same length.
        """
        n = self.n
        rhs = np.asarray(rhs, dtype=complex).reshape(-1)
        if rhs.size != n**k:
            raise ValidationError(
                f"rhs has length {rhs.size}, expected n**k = {n**k}"
            )
        if k == 1:
            return self.schur.solve_shifted(shift, rhs)
        if k == 2:
            v_mat = rhs.reshape(n, n)
            w = self._to_schur_basis(v_mat, conjugate_right=True)
            y = triangular_sylvester_solve(self.schur.t, shift, w)
            return self._from_schur_basis(y, conjugate_right=True).reshape(-1)
        if k == 3:
            return self._solve_three_way(rhs, shift)
        raise ValidationError(f"k must be 1, 2 or 3, got {k}")

    def solve_transpose(self, rhs, k=2, shift=0.0):
        """Solve ``((k© Aᵀ) + shift I) x = rhs`` for ``k`` in {1, 2}."""
        n = self.n
        rhs = np.asarray(rhs, dtype=complex).reshape(-1)
        if rhs.size != n**k:
            raise ValidationError(
                f"rhs has length {rhs.size}, expected n**k = {n**k}"
            )
        if k == 1:
            return self.schur.solve_shifted_transpose(shift, rhs)
        if k == 2:
            v_mat = rhs.reshape(n, n)
            w = self._to_schur_basis(v_mat, conjugate_right=False)
            y = triangular_sylvester_solve_transposed(self.schur.t, shift, w)
            return self._from_schur_basis(
                y, conjugate_right=False
            ).reshape(-1)
        raise ValidationError(f"k must be 1 or 2 for transpose, got {k}")

    def solve_real(self, rhs, k=2, shift=0.0, rtol=1e-8):
        """Like :meth:`solve` but assert and return a real result."""
        x = self.solve(rhs, k=k, shift=shift)
        scale = max(np.abs(x).max(), 1.0)
        if np.abs(x.imag).max() > rtol * scale:
            raise NumericalError(
                "expected a real solution but imaginary residue "
                f"{np.abs(x.imag).max():.3e} exceeds tolerance"
            )
        return x.real.copy()

    def _solve_three_way(self, rhs, shift):
        """Triangular sweep for ``(A ⊕ A ⊕ A + shift I) x = rhs``.

        In the Schur basis the equation for the 3-tensor ``Y`` is

            mode0(T) Y + mode1(T) Y + mode2(T) Y + shift Y = W.

        Sweeping the last index ``r`` from high to low reduces each slab
        to a two-way triangular Sylvester solve with an extra diagonal
        shift ``T[r, r]``.
        """
        n = self.n
        t = self.schur.t
        q = self.schur.q
        qh = q.conj().T
        w = rhs.reshape(n, n, n)
        for axis in range(3):
            w = mode_apply(w, qh, axis)
        diag = np.diag(t)
        triple = (
            diag[:, None, None] + diag[None, :, None] + diag[None, None, :]
        ) + shift
        _check_diag_gap(triple, max(np.abs(diag).max(), 1.0))
        y = np.empty((n, n, n), dtype=complex)
        for r in range(n - 1, -1, -1):
            rhs_slab = w[:, :, r].copy()
            if r + 1 < n:
                # Couplings along the last mode: T[r, p] Y[:, :, p], p > r.
                rhs_slab -= np.tensordot(
                    y[:, :, r + 1 :], t[r, r + 1 :], axes=([2], [0])
                )
            y[:, :, r] = triangular_sylvester_solve(
                t, shift + t[r, r], rhs_slab
            )
        for axis in range(3):
            y = mode_apply(y, q, axis)
        return y.reshape(-1)


def solve_pi_sylvester(g1, g2, solver=None):
    """Solve the paper's eq.-(18) Sylvester equation for ``Π``.

    Finds the ``n × n²`` matrix ``Π`` with::

        G1 Π + G2 = Π (G1 ⊕ G1)

    which exists whenever no eigenvalue of ``G1`` equals the sum of two
    eigenvalues of ``G1`` (always true for stable ``G1``).  ``Π`` realizes
    the similarity transform that block-diagonalizes the lifted
    second-order state matrix (paper eq. 17 → 18).

    Parameters
    ----------
    g1 : (n, n) array_like
    g2 : (n, n²) array_like or sparse
    solver : KronSumSolver, optional
        Reused Schur factorization of ``g1``; computed when omitted.

    Returns
    -------
    (n, n²) float ndarray.

    Notes
    -----
    Writing the unknown as the 3-tensor ``P[i, j, k]`` the equation reads
    ``mode0(G1) P − mode1(G1ᵀ) P − mode2(G1ᵀ) P = −G2`` and is solved by
    triangular sweeps over the trailing two indices in the Schur basis;
    cost ``O(n⁴)``, memory ``O(n³)`` complex.
    """
    g1 = as_square_matrix(g1, "g1")
    n = g1.shape[0]
    g2 = as_matrix(g2, "g2")
    if g2.shape != (n, n * n):
        raise ValidationError(
            f"g2 must have shape (n, n^2) = ({n}, {n * n}), got {g2.shape}"
        )
    if solver is None:
        solver = KronSumSolver(g1)
    t = solver.schur.t
    q = solver.schur.q
    qh = q.conj().T
    diag = np.diag(t)
    combo = diag[:, None, None] - diag[None, :, None] - diag[None, None, :]
    _check_diag_gap(combo, max(np.abs(diag).max(), 1.0))

    # Schur-basis right-hand side: C = mode0(Qᴴ) mode1(Qᵀ) mode2(Qᵀ) (−G2).
    c = (-g2).reshape(n, n, n).astype(complex)
    c = mode_apply(c, qh, 0)
    c = mode_apply(c, q.T, 1)
    c = mode_apply(c, q.T, 2)

    # Solve mode0(T) Y − mode1(Tᵀ) Y − mode2(Tᵀ) Y = C by ascending sweep
    # over (j, k): couplings come from p < j (mode 1) and p < k (mode 2).
    y = np.empty((n, n, n), dtype=complex)
    shifted = t.astype(complex, copy=True)
    for k in range(n):
        for j in range(n):
            rhs = c[:, j, k].copy()
            if j > 0:
                rhs += y[:, :j, k] @ t[:j, j]
            if k > 0:
                rhs += y[:, j, :k] @ t[:k, k]
            np.fill_diagonal(shifted, diag - (t[j, j] + t[k, k]))
            y[:, j, k] = sla.solve_triangular(shifted, rhs, lower=False)

    # Back-transform: Π = mode0(Q) mode1(conj(Q)) mode2(conj(Q)) Y.
    y = mode_apply(y, q, 0)
    y = mode_apply(y, q.conj(), 1)
    y = mode_apply(y, q.conj(), 2)
    pi = y.reshape(n, n * n)
    scale = max(np.abs(pi).max(), 1.0)
    if np.abs(pi.imag).max() > 1e-8 * scale:
        raise NumericalError(
            "Pi came out complex beyond rounding; inputs may be complex"
        )
    return np.ascontiguousarray(pi.real)


def pi_sylvester_residual(g1, g2, pi):
    """Residual ``‖G1 Π + G2 − Π (G1 ⊕ G1)‖_F`` (testing helper).

    Evaluated matrix-free via mode products so it stays ``O(n³)`` in
    memory.
    """
    g1 = as_square_matrix(g1, "g1")
    n = g1.shape[0]
    g2 = as_matrix(g2, "g2")
    p3 = np.asarray(pi).reshape(n, n, n)
    term = mode_apply(p3, g1, 0)
    term = term - mode_apply(p3, g1.T, 1) - mode_apply(p3, g1.T, 2)
    resid = term.reshape(n, n * n) + g2
    return float(np.linalg.norm(resid))
