"""Sylvester-equation and Kronecker-sum solvers.

These routines implement the computational core of the paper's §2.3:
every Krylov step of the associated-transform method needs solves with
shifted repeated Kronecker sums ``(k© G1 − s I)`` whose dimension is
``n^k``.  Forming those matrices is hopeless for the paper's circuit
sizes; instead, one Schur decomposition of ``G1`` (n × n) turns each solve
into triangular sweeps of total cost ``O(n^{k+1})`` and memory ``O(n^k)``.

Identities used (row-major ``vec``; see :mod:`repro.linalg.kronecker`)::

    (A ⊕ A) vec(X)      = vec(A X + X Aᵀ)
    (A ⊕ A ⊕ A) vec(X)  = vec of summed mode products of the 3-tensor X

The module also solves the paper's eq.-(18) decoupling equation

    G1 Π + G2 = Π (G1 ⊕ G1)

which splits the associated second-order transfer function into two
independent LTI subsystems.
"""

import threading

import numpy as np
import scipy.linalg as sla
import scipy.sparse as sp

from .. import memory
from .._validation import as_matrix, as_square_matrix
from ..errors import NumericalError, ValidationError
from ._hotloops import scatter_add_rows
from .kronecker import mode_apply
from .schur import SchurForm

__all__ = [
    "triangular_sylvester_solve",
    "triangular_sylvester_solve_transposed",
    "KronSumSolver",
    "solve_pi_sylvester",
    "pi_sylvester_residual",
    "FactoredTensor",
    "FactoredPi",
    "LowRankKronSolver",
]

_SINGULAR_RTOL = 1e-13

#: Column-block width for the Bartels–Stewart sweeps.  Big enough that
#: the cross-block coupling GEMMs dominate the per-column GEMVs, small
#: enough that a block's RHS panel stays cache-resident.
_SYLVESTER_BLOCK = 64


def _row_spans(n, step):
    """Yield ``(lo, hi)`` row spans of at most *step* rows covering *n*.

    A single span ``(0, n)`` when ``step >= n`` — the streamed code
    paths then execute exactly the historical unblocked operations on
    full-array views, so results are bit-identical to the pre-streaming
    implementation.
    """
    step = max(int(step), 1)
    for lo in range(0, n, step):
        yield lo, min(n, lo + step)


def _check_diag_gap(values, scale):
    gap = np.abs(values).min()
    if gap <= _SINGULAR_RTOL * scale:
        raise NumericalError(
            "Sylvester/Kronecker-sum solve is numerically singular "
            f"(smallest shifted eigenvalue magnitude = {gap:.3e}); "
            "the spectrum pairing lambda_i + lambda_j + shift vanishes"
        )


def triangular_sylvester_solve(t, alpha, w):
    """Solve ``T Y + Y Tᵀ + alpha Y = W`` with upper-triangular ``T``.

    This is the Bartels–Stewart back-substitution specialized to the case
    where both coefficient matrices come from the same (complex) Schur
    factor.  Columns are swept from right to left; each step is one
    shifted triangular solve.

    Parameters
    ----------
    t : (n, n) complex ndarray, upper triangular.
    alpha : complex
        Scalar shift.
    w : (n, m) complex ndarray
        Right-hand side; ``m`` need not equal ``n`` — the general contract
        is ``T Y + Y S + alpha Y = W`` with ``S = Tᵀ[:m, :m]`` when
        ``m <= n``.  In this library it is always called with ``m == n``.

    Returns
    -------
    (n, m) complex ndarray.
    """
    t = np.asarray(t)
    w = np.asarray(w, dtype=complex)
    n, m = w.shape
    diag = np.diag(t)
    pair_sums = diag[:, None] + diag[None, :m] + alpha
    _check_diag_gap(pair_sums, max(np.abs(diag).max(), 1.0))
    y = np.empty((n, m), dtype=complex)
    # One shared work matrix: only the diagonal changes per column, so
    # the O(n²) allocate-and-add of ``T + beta I`` is hoisted out of the
    # sweep (an O(n³)-per-solve saving across the m columns).
    shifted = t.astype(complex, copy=True)
    # Blocked sweep: the coupling from all already-solved columns right
    # of a block lands as one GEMM per block (level-3 BLAS) instead of
    # one GEMV per column over an ever-longer tail — the couplings are
    # half the flops of the whole sweep at m == n.  Within a block the
    # remaining short-range couplings stay per-column.  Summation
    # grouping differs from the historical per-column sweep at rounding
    # level only.
    for hi in range(m, 0, -_SYLVESTER_BLOCK):
        lo = max(0, hi - _SYLVESTER_BLOCK)
        rhs_block = np.ascontiguousarray(w[:, lo:hi], dtype=complex)
        if hi < m:
            # Couplings from Y Tᵀ: columns [lo, hi) receive
            # Y[:, k] * T[j, k] for every solved k >= hi.
            rhs_block -= y[:, hi:] @ t[lo:hi, hi:m].T
        for j in range(hi - 1, lo - 1, -1):
            rhs = rhs_block[:, j - lo]
            if j + 1 < hi:
                rhs = rhs - y[:, j + 1 : hi] @ t[j, j + 1 : hi]
            np.fill_diagonal(shifted, diag + (t[j, j] + alpha))
            y[:, j] = sla.solve_triangular(shifted, rhs, lower=False)
    return y


def triangular_sylvester_solve_transposed(t, alpha, w):
    """Solve ``Tᵀ Y + Y T + alpha Y = W`` with upper-triangular ``T``.

    The transposed counterpart of :func:`triangular_sylvester_solve`;
    columns are swept left to right and each step is one lower-triangular
    (transposed upper) solve.
    """
    t = np.asarray(t)
    w = np.asarray(w, dtype=complex)
    n, m = w.shape
    diag = np.diag(t)
    pair_sums = diag[:, None] + diag[None, :m] + alpha
    _check_diag_gap(pair_sums, max(np.abs(diag).max(), 1.0))
    y = np.empty((n, m), dtype=complex)
    shifted = t.astype(complex, copy=True)
    # Blocked left-to-right sweep, mirroring the forward solve: the
    # coupling from all already-solved columns left of a block is one
    # GEMM; intra-block couplings stay per-column.
    for lo in range(0, m, _SYLVESTER_BLOCK):
        hi = min(m, lo + _SYLVESTER_BLOCK)
        rhs_block = np.ascontiguousarray(w[:, lo:hi], dtype=complex)
        if lo > 0:
            # Couplings from Y T: columns [lo, hi) receive
            # Y[:, k] * T[k, j] for every solved k < lo.
            rhs_block -= y[:, :lo] @ t[:lo, lo:hi]
        for j in range(lo, hi):
            rhs = rhs_block[:, j - lo]
            if j > lo:
                rhs = rhs - y[:, lo:j] @ t[lo:j, j]
            np.fill_diagonal(shifted, diag + (t[j, j] + alpha))
            y[:, j] = sla.solve_triangular(
                shifted, rhs, lower=False, trans="T"
            )
    return y


class KronSumSolver:
    """Shifted solves with repeated Kronecker sums of a fixed matrix.

    Given a square ``A`` (n × n), precomputes its complex Schur form once
    and then solves, matrix-free,

    * ``(A + shift I) x = rhs``                      (``k = 1``),
    * ``((A ⊕ A) + shift I) x = rhs``                (``k = 2``),
    * ``((A ⊕ A ⊕ A) + shift I) x = rhs``            (``k = 3``),

    plus the transposed variants for ``k ∈ {1, 2}``.  This is exactly the
    paper's Schur trick: ``k© A = (Q k©)(k© T)(Q k©)ᴴ`` so each solve is a
    sequence of triangular substitutions.

    Results are complex; use :meth:`solve_real` when the right-hand side
    and operator are real and a real answer is expected.
    """

    def __init__(self, a, schur=None):
        a = as_square_matrix(a, "a")
        self.n = a.shape[0]
        if schur is not None and schur.n != self.n:
            raise ValidationError(
                "precomputed Schur form has mismatching dimension"
            )
        self.schur = schur if schur is not None else SchurForm(a)

    # -- internal transforms ------------------------------------------------

    def _to_schur_basis(self, x_mat, conjugate_right):
        q = self.schur.q
        qh = q.conj().T
        if conjugate_right:
            # Y = Qᴴ X conj(Q)
            return qh @ x_mat @ q.conj()
        # Y = Qᵀ X Q
        return q.T @ x_mat @ q

    def _from_schur_basis(self, y_mat, conjugate_right):
        q = self.schur.q
        if conjugate_right:
            # X = Q Y Qᵀ
            return q @ y_mat @ q.T
        # X = conj(Q) Y Qᴴ
        return q.conj() @ y_mat @ q.conj().T

    # -- public API ---------------------------------------------------------

    def solve(self, rhs, k=2, shift=0.0):
        """Solve ``((k© A) + shift I) x = rhs`` for ``k`` in {1, 2, 3}.

        ``rhs`` is a flat vector of length ``n**k`` in row-major tensor
        ordering.  Returns a complex vector of the same length.
        """
        n = self.n
        rhs = np.asarray(rhs, dtype=complex).reshape(-1)
        if rhs.size != n**k:
            raise ValidationError(
                f"rhs has length {rhs.size}, expected n**k = {n**k}"
            )
        if k == 1:
            return self.schur.solve_shifted(shift, rhs)
        if k == 2:
            v_mat = rhs.reshape(n, n)
            w = self._to_schur_basis(v_mat, conjugate_right=True)
            y = triangular_sylvester_solve(self.schur.t, shift, w)
            return self._from_schur_basis(y, conjugate_right=True).reshape(-1)
        if k == 3:
            return self._solve_three_way(rhs, shift)
        raise ValidationError(f"k must be 1, 2 or 3, got {k}")

    def solve_transpose(self, rhs, k=2, shift=0.0):
        """Solve ``((k© Aᵀ) + shift I) x = rhs`` for ``k`` in {1, 2}."""
        n = self.n
        rhs = np.asarray(rhs, dtype=complex).reshape(-1)
        if rhs.size != n**k:
            raise ValidationError(
                f"rhs has length {rhs.size}, expected n**k = {n**k}"
            )
        if k == 1:
            return self.schur.solve_shifted_transpose(shift, rhs)
        if k == 2:
            v_mat = rhs.reshape(n, n)
            w = self._to_schur_basis(v_mat, conjugate_right=False)
            y = triangular_sylvester_solve_transposed(self.schur.t, shift, w)
            return self._from_schur_basis(
                y, conjugate_right=False
            ).reshape(-1)
        raise ValidationError(f"k must be 1 or 2 for transpose, got {k}")

    def solve_real(self, rhs, k=2, shift=0.0, rtol=1e-8):
        """Like :meth:`solve` but assert and return a real result."""
        x = self.solve(rhs, k=k, shift=shift)
        scale = max(np.abs(x).max(), 1.0)
        if np.abs(x.imag).max() > rtol * scale:
            raise NumericalError(
                "expected a real solution but imaginary residue "
                f"{np.abs(x.imag).max():.3e} exceeds tolerance"
            )
        return x.real.copy()

    def _solve_three_way(self, rhs, shift):
        """Triangular sweep for ``(A ⊕ A ⊕ A + shift I) x = rhs``.

        In the Schur basis the equation for the 3-tensor ``Y`` is

            mode0(T) Y + mode1(T) Y + mode2(T) Y + shift Y = W.

        Sweeping the last index ``r`` from high to low reduces each slab
        to a two-way triangular Sylvester solve with an extra diagonal
        shift ``T[r, r]``.
        """
        n = self.n
        t = self.schur.t
        q = self.schur.q
        qh = q.conj().T
        w = rhs.reshape(n, n, n)
        for axis in range(3):
            w = mode_apply(w, qh, axis)
        diag = np.diag(t)
        triple = (
            diag[:, None, None] + diag[None, :, None] + diag[None, None, :]
        ) + shift
        _check_diag_gap(triple, max(np.abs(diag).max(), 1.0))
        y = np.empty((n, n, n), dtype=complex)
        for r in range(n - 1, -1, -1):
            rhs_slab = w[:, :, r].copy()
            if r + 1 < n:
                # Couplings along the last mode: T[r, p] Y[:, :, p], p > r.
                rhs_slab -= np.tensordot(
                    y[:, :, r + 1 :], t[r, r + 1 :], axes=([2], [0])
                )
            y[:, :, r] = triangular_sylvester_solve(
                t, shift + t[r, r], rhs_slab
            )
        for axis in range(3):
            y = mode_apply(y, q, axis)
        return y.reshape(-1)


def solve_pi_sylvester(g1, g2, solver=None):
    """Solve the paper's eq.-(18) Sylvester equation for ``Π``.

    Finds the ``n × n²`` matrix ``Π`` with::

        G1 Π + G2 = Π (G1 ⊕ G1)

    which exists whenever no eigenvalue of ``G1`` equals the sum of two
    eigenvalues of ``G1`` (always true for stable ``G1``).  ``Π`` realizes
    the similarity transform that block-diagonalizes the lifted
    second-order state matrix (paper eq. 17 → 18).

    Parameters
    ----------
    g1 : (n, n) array_like
    g2 : (n, n²) array_like or sparse
    solver : KronSumSolver, optional
        Reused Schur factorization of ``g1``; computed when omitted.

    Returns
    -------
    (n, n²) float ndarray.

    Notes
    -----
    Writing the unknown as the 3-tensor ``P[i, j, k]`` the equation reads
    ``mode0(G1) P − mode1(G1ᵀ) P − mode2(G1ᵀ) P = −G2`` and is solved by
    triangular sweeps over the trailing two indices in the Schur basis;
    cost ``O(n⁴)``, memory ``O(n³)`` complex.
    """
    g1 = as_square_matrix(g1, "g1")
    n = g1.shape[0]
    g2 = as_matrix(g2, "g2")
    if g2.shape != (n, n * n):
        raise ValidationError(
            f"g2 must have shape (n, n^2) = ({n}, {n * n}), got {g2.shape}"
        )
    if solver is None:
        solver = KronSumSolver(g1)
    pi = _solve_pi_schur(solver.schur, g2)
    scale = max(np.abs(pi).max(), 1.0)
    if np.abs(pi.imag).max() > 1e-8 * scale:
        raise NumericalError(
            "Pi came out complex beyond rounding; inputs may be complex"
        )
    return np.ascontiguousarray(pi.real)


def _solve_pi_schur(schur, g2):
    """Schur-basis triangular sweep for the Π equation (complex output).

    The computational core of :func:`solve_pi_sylvester`, shared with the
    low-rank Galerkin solver (whose projected problem may be complex when
    the shared Krylov basis is).
    """
    n = schur.n
    t = schur.t
    q = schur.q
    qh = q.conj().T
    diag = np.diag(t)
    combo = diag[:, None, None] - diag[None, :, None] - diag[None, None, :]
    _check_diag_gap(combo, max(np.abs(diag).max(), 1.0))

    # Schur-basis right-hand side: C = mode0(Qᴴ) mode1(Qᵀ) mode2(Qᵀ) (−G2).
    c = np.asarray(-g2).reshape(n, n, n).astype(complex)
    c = mode_apply(c, qh, 0)
    c = mode_apply(c, q.T, 1)
    c = mode_apply(c, q.T, 2)

    # Solve mode0(T) Y − mode1(Tᵀ) Y − mode2(Tᵀ) Y = C by ascending sweep
    # over (j, k): couplings come from p < j (mode 1) and p < k (mode 2).
    y = np.empty((n, n, n), dtype=complex)
    shifted = t.astype(complex, copy=True)
    for k in range(n):
        for j in range(n):
            rhs = c[:, j, k].copy()
            if j > 0:
                rhs += y[:, :j, k] @ t[:j, j]
            if k > 0:
                rhs += y[:, j, :k] @ t[:k, k]
            np.fill_diagonal(shifted, diag - (t[j, j] + t[k, k]))
            y[:, j, k] = sla.solve_triangular(shifted, rhs, lower=False)

    # Back-transform: Π = mode0(Q) mode1(conj(Q)) mode2(conj(Q)) Y.
    y = mode_apply(y, q, 0)
    y = mode_apply(y, q.conj(), 1)
    y = mode_apply(y, q.conj(), 2)
    return y.reshape(n, n * n)


def pi_sylvester_residual(g1, g2, pi):
    """Residual ``‖G1 Π + G2 − Π (G1 ⊕ G1)‖_F`` (testing helper).

    Accepts a dense ``(n, n²)`` Π (evaluated matrix-free via mode
    products, ``O(n³)`` memory) or a :class:`FactoredPi` (evaluated
    through Gram matrices at ``O(n·r² + nnz·r³)`` — usable at circuit
    sizes where even one dense ``n × n²`` matrix is out of reach).
    ``g1`` may be sparse on the factored path.
    """
    if isinstance(pi, FactoredPi):
        return _factored_pi_residual(g1, g2, pi)
    g1 = as_square_matrix(g1, "g1")
    n = g1.shape[0]
    g2 = as_matrix(g2, "g2")
    p3 = np.asarray(pi).reshape(n, n, n)
    term = mode_apply(p3, g1, 0)
    term = term - mode_apply(p3, g1.T, 1) - mode_apply(p3, g1.T, 2)
    resid = term.reshape(n, n * n) + g2
    return float(np.linalg.norm(resid))


def _g2_coo_parts(g2, n):
    """COO split of a (possibly sparse) ``(n, n²)`` G2 into
    ``(rows, i, j, vals)`` index arrays with duplicates summed."""
    csr = sp.csr_matrix(g2)
    if csr.shape != (n, n * n):
        raise ValidationError(
            f"g2 must have shape (n, n^2) = ({n}, {n * n}), got {csr.shape}"
        )
    csr.sum_duplicates()
    coo = csr.tocoo()
    return coo.row, coo.col // n, coo.col % n, coo.data


def _g2_fiber_blocks(rows, ii, jj, vals, n):
    """Spanning blocks of G2's lifted-side (mode-1/2) tensor fibers.

    Yields ``(fiber_count, block)`` pairs gathered directly from the COO
    data.  Both the Π seed construction and the factored residual use
    *this one* extraction — they must agree exactly for the residual
    identity (fibers seeded into ``U`` ⇒ projection defect ~0) to hold.
    """
    for key, ridx in ((rows * n + jj, ii), (rows * n + ii, jj)):
        uniq, inv = np.unique(key, return_inverse=True)
        block = np.zeros((n, uniq.size))
        np.add.at(block, (ridx, inv), vals)
        yield uniq.size, block


def _factored_pi_residual(g1, g2, pi):
    """``‖G1 Π + G2 − Π (G1 ⊕ G1)‖_F`` for a factored (real) Π.

    With ``Π = L (U⊗U)ᵀ`` (``U`` orthonormal) the residual splits, via
    ``G1ᵀU = U Ht + Su`` with ``Su ⊥ U``, into mutually orthogonal
    pieces that are each evaluated *without* large-term cancellation
    (a naive ``‖·‖²`` expansion would floor the result at √eps·‖G2‖):

    * the in-span coefficient ``G1 L + Ĝ2 − L (Htᵀ⊕Htᵀ)``,
    * the out-of-span defect through the ``SuᵀSu`` Gram,
    * ``G2``'s own projection defect, bounded by its explicit lifted-side
      fiber defects (exactly zero when the fibers span ``U``, as the
      Galerkin solver guarantees) and folded in with a triangle
      inequality — a *tight upper bound*, exact when the defect is zero.

    No ``n²``-sided intermediate is formed; ``g1`` may be sparse.
    """
    n = g1.shape[0]
    if g1.shape[0] != g1.shape[1]:
        raise ValidationError(f"g1 must be square, got shape {g1.shape}")
    u = pi.u
    if u.shape[0] != n:
        raise ValidationError(
            f"factored Pi basis has {u.shape[0]} rows, expected {n}"
        )
    rows, ii, jj, vals = _g2_coo_parts(g2, n)
    g2_sq = float(np.vdot(vals, vals).real)
    r = pi.rank
    if r == 0:
        return float(np.sqrt(g2_sq))
    left = pi.left
    l3 = left.reshape(n, r, r)
    # Ĝ2 = G2 (U ⊗ U) through the COO contraction.
    contrib = np.einsum("e,eb,ec->ebc", vals, u[ii], u[jj], optimize=True)
    g2r = np.zeros((n, r, r), dtype=contrib.dtype)
    scatter_add_rows(g2r, rows, contrib)
    bu = g1.T @ u if sp.issparse(g1) else np.asarray(g1).T @ u
    ht = u.conj().T @ bu
    su = bu - u @ ht
    # In-span coefficient: G1 L + Ĝ2 − L (Htᵀ ⊗ I) − L (I ⊗ Htᵀ).
    m_in = (g1 @ left).reshape(n, r, r) + g2r
    m_in = m_in - np.einsum("pbe,db->pde", l3, ht, optimize=True)
    m_in = m_in - np.einsum("pdc,ec->pde", l3, ht, optimize=True)
    in_span = float(np.real(np.vdot(m_in, m_in)))
    # Out-of-span defect through the Su Gram.
    gs = su.conj().T @ su
    out_sq = max(float(np.real(np.einsum(
        "pbc,bd,pdc->", l3.conj(), gs, l3, optimize=True))), 0.0)
    out_sq += max(float(np.real(np.einsum(
        "pbc,ce,pbe->", l3.conj(), gs, l3, optimize=True))), 0.0)
    # G2's own projection defect via explicit lifted-side fiber blocks.
    delta_sq = 0.0
    for _, block in _g2_fiber_blocks(rows, ii, jj, vals, n):
        defect = block - u @ (u.conj().T @ block)
        delta_sq += float(np.real(np.vdot(defect, defect)))
    # The ΔG2 piece is not orthogonal to the Su pieces; computing their
    # cross term directly would reintroduce an O(√eps·‖G2‖) floor (a
    # large in-span G2 contracted against tiny out-of-span factors), so
    # the two are combined by triangle inequality instead — exact when
    # the fiber defect is zero.
    out = (np.sqrt(out_sq) + np.sqrt(delta_sq)) ** 2
    return float(np.sqrt(max(in_span + out, 0.0)))


# ---------------------------------------------------------------------------
# low-rank (Tucker-factored) Kronecker-sum machinery
# ---------------------------------------------------------------------------


class FactoredTensor:
    """Tucker-factored vector in the lifted space ``⊗ᵏ ℝⁿ``.

    Represents ``x = vec(C ×₀ U₀ ×₁ U₁ ... )`` through a small ``k``-way
    core ``C`` of shape ``(r₀, ..., r_{k−1})`` and one ``(n_t, r_t)``
    factor per tensor mode.  This is the compressed currency of the
    sparse lifted-H2/H3 machinery: an ``n³``-dimensional chain vector
    whose multilinear ranks stay ``O(10)`` costs ``O(n·r + r³)`` memory
    instead of ``n³``.
    """

    __slots__ = ("core", "factors")

    def __init__(self, core, factors):
        core = np.asarray(core)
        factors = [np.asarray(f) for f in factors]
        if core.ndim != len(factors):
            raise ValidationError(
                f"core has {core.ndim} modes but {len(factors)} factors "
                "were given"
            )
        for axis, f in enumerate(factors):
            if f.ndim != 2:
                raise ValidationError(
                    f"factor {axis} must be 2-D, got ndim={f.ndim}"
                )
            if f.shape[1] != core.shape[axis]:
                raise ValidationError(
                    f"factor {axis} has {f.shape[1]} columns, core mode "
                    f"has size {core.shape[axis]}"
                )
        self.core = core
        self.factors = factors

    # -- constructors --------------------------------------------------------

    @classmethod
    def zeros(cls, dims):
        """The zero tensor over mode sizes *dims* (rank-0 factors)."""
        dims = tuple(int(d) for d in dims)
        core = np.zeros((0,) * len(dims))
        return cls(core, [np.zeros((d, 0)) for d in dims])

    @classmethod
    def rank_one(cls, vectors, weight=1.0):
        """``weight · v₀ ⊗ v₁ ⊗ ...`` from a sequence of vectors."""
        factors = [np.asarray(v).reshape(-1, 1) for v in vectors]
        core = np.full((1,) * len(factors), weight)
        return cls(core, factors)

    # -- shape ---------------------------------------------------------------

    @property
    def order(self):
        return self.core.ndim

    @property
    def shape(self):
        return tuple(f.shape[0] for f in self.factors)

    @property
    def ranks(self):
        return self.core.shape

    @property
    def dim(self):
        return int(np.prod(self.shape))

    # -- algebra -------------------------------------------------------------

    def to_vector(self):
        """Densify to a flat row-major vector (small systems / tests)."""
        if min(self.core.shape, default=0) == 0:
            return np.zeros(self.dim)
        t = self.core
        for axis, f in enumerate(self.factors):
            t = mode_apply(t, f, axis)
        return t.reshape(-1)

    def scaled(self, alpha):
        return FactoredTensor(self.core * alpha, self.factors)

    def add(self, other):
        """Structural sum: concatenated factors, block-embedded cores."""
        if not isinstance(other, FactoredTensor):
            raise ValidationError("can only add another FactoredTensor")
        if self.order != other.order or self.shape != other.shape:
            raise ValidationError(
                f"shape mismatch: {self.shape} vs {other.shape}"
            )
        ranks = tuple(
            a + b for a, b in zip(self.core.shape, other.core.shape)
        )
        dtype = np.result_type(
            self.core, other.core, *self.factors, *other.factors
        )
        core = np.zeros(ranks, dtype=dtype)
        core[tuple(slice(0, s) for s in self.core.shape)] = self.core
        core[tuple(slice(s, None) for s in self.core.shape)] = other.core
        factors = [
            np.hstack([f.astype(dtype, copy=False),
                       g.astype(dtype, copy=False)])
            for f, g in zip(self.factors, other.factors)
        ]
        return FactoredTensor(core, factors)

    def norm(self):
        """Frobenius norm ``‖x‖₂`` via per-mode Gram matrices."""
        if min(self.core.shape, default=0) == 0:
            return 0.0
        t = self.core
        for axis, f in enumerate(self.factors):
            t = mode_apply(t, f.conj().T @ f, axis)
        return float(np.sqrt(max(np.real(np.vdot(self.core, t)), 0.0)))

    def compress(self, tol=1e-12, factors_orthonormal=False):
        """Rank-truncated copy (QR on the factors + sequential HOSVD).

        *tol* is relative to the tensor norm; pass
        ``factors_orthonormal=True`` to skip the QR step when the factors
        are known orthonormal (e.g. a shared Krylov basis).
        """
        core = self.core
        if min(core.shape, default=0) == 0:
            return FactoredTensor.zeros(self.shape)
        qs = []
        if factors_orthonormal:
            qs = list(self.factors)
        else:
            for axis, f in enumerate(self.factors):
                q, r = np.linalg.qr(f)
                qs.append(q)
                core = mode_apply(core, r, axis)
        total = float(np.linalg.norm(core))
        if total == 0.0:
            return FactoredTensor.zeros(self.shape)
        cutoff = (tol * total) ** 2
        new_factors = []
        for axis in range(core.ndim):
            mat = np.moveaxis(core, axis, 0).reshape(core.shape[axis], -1)
            gram = mat @ mat.conj().T
            w, v = np.linalg.eigh(gram)
            keep = w > cutoff
            if not np.any(keep):
                keep[-1] = True
            v = v[:, keep]
            core = mode_apply(core, v.conj().T, axis)
            new_factors.append(qs[axis] @ v)
        return FactoredTensor(core, new_factors)


class FactoredPi:
    """Factored solution ``Π ≈ L · (U ⊗ U)ᵀ`` of the eq.-(18) Sylvester
    equation.

    ``U`` is an orthonormal ``(n, r)`` basis of the *right* (lifted)
    space and ``L`` a dense ``(n, r²)`` left factor — the ``U·Wᵀ``
    factored form with ``W = U ⊗ U`` held implicitly in Kronecker form,
    so the ``n × n²`` matrix (and anything ``n²``-sided) is never
    materialized.  The left factor itself is built and consumed in row
    blocks of at most ``max_block`` rows (see :mod:`repro.memory`): past
    the byte budget it lives in the planner's tile arena as a writable
    memmap from the moment it is produced, so even the ``(n, r²)`` slab
    never has to be resident at once.  The left side carries no rank
    reduction: Π's singular values decay too slowly on realistic
    circuits for a two-sided low-rank form to reach engineering
    residuals, but its *action on the decoupled-H2 chain subspace* —
    all the realization ever needs — is captured exactly by a small
    right basis.

    Acts on dense vectors/matrices over the ``n²`` lifted space and on
    :class:`FactoredTensor` operands (the decoupled-H2 chain vectors).
    """

    __slots__ = ("left", "u", "residual", "rhs_norm")

    def __init__(self, left, u, residual=None, rhs_norm=None):
        # Keep the ndarray subclass: an arena-backed np.memmap from the
        # streamed build must stay recognizably disk-backed.
        self.left = left if isinstance(left, np.ndarray) else np.asarray(left)
        self.u = np.asarray(u)
        r = self.u.shape[1]
        if self.left.shape != (self.u.shape[0], r * r):
            raise ValidationError(
                f"left factor must be (n, r^2) = ({self.u.shape[0]}, "
                f"{r * r}), got {self.left.shape}"
            )
        # The left factor is only ever *read* after construction.  A
        # streamed build hands in an arena-backed memmap (admit passes
        # it through); a RAM-resident factor past the budget is spilled
        # to a read-only memmap here (a no-op while unlimited).
        self.left = memory.admit(self.left, "pi-left")
        self.residual = residual
        self.rhs_norm = rhs_norm

    def state_dict(self):
        """Payload-tree snapshot (checkpoint/resume round trip)."""
        return {
            "left": np.asarray(self.left),
            "u": self.u,
            "residual": self.residual,
            "rhs_norm": self.rhs_norm,
        }

    @classmethod
    def from_state(cls, state):
        """Rebuild from a :meth:`state_dict` payload tree."""
        return cls(
            state["left"], state["u"],
            residual=state.get("residual"),
            rhs_norm=state.get("rhs_norm"),
        )

    @property
    def n(self):
        return self.u.shape[0]

    @property
    def rank(self):
        return self.u.shape[1]

    @property
    def shape(self):
        return (self.n, self.n * self.n)

    def apply(self, rhs):
        """``Π @ rhs`` for a dense ``(n²,)`` vector or ``(n², m)`` matrix."""
        rhs = np.asarray(rhs)
        squeeze = rhs.ndim == 1
        mat = rhs.reshape(self.n, self.n, -1)
        if self.rank == 0:
            out = np.zeros(
                (self.n, mat.shape[2]), dtype=np.result_type(rhs, self.left)
            )
            return out[:, 0] if squeeze else out
        t = np.tensordot(self.u.T, mat, axes=(1, 0))       # (r, n, m)
        t = np.tensordot(t, self.u, axes=(1, 0))           # (r, m, r)
        w = t.transpose(0, 2, 1).reshape(self.rank ** 2, -1)
        out = self.left @ w
        return out[:, 0] if squeeze else out

    def apply_factored(self, tensor):
        """``Π @ vec(X)`` for a 2-mode :class:`FactoredTensor` X."""
        if tensor.order != 2:
            raise ValidationError("apply_factored expects a 2-mode tensor")
        if min(tensor.core.shape, default=0) == 0 or self.rank == 0:
            return np.zeros(self.n, dtype=np.result_type(
                self.left, tensor.core))
        p = self.u.T @ tensor.factors[0]
        q = self.u.T @ tensor.factors[1]
        w = p @ tensor.core @ q.T
        return self.left @ w.reshape(-1)

    def __matmul__(self, other):
        if isinstance(other, FactoredTensor):
            return self.apply_factored(other)
        return self.apply(other)

    def to_dense(self):
        """Materialize Π as ``(n, n²)`` (small systems / tests only)."""
        if self.n ** 3 > 64_000_000:
            raise ValidationError(
                f"refusing to densify a factored Pi with n = {self.n}"
            )
        r = self.rank
        if r == 0:
            return np.zeros((self.n, self.n * self.n))
        t = self.left.reshape(self.n, r, r)
        t = mode_apply(t, self.u, 1)
        t = mode_apply(t, self.u, 2)
        return t.reshape(self.n, self.n * self.n)

# ---------------------------------------------------------------------------
# low-rank Galerkin solver (sparse circuit scale)
# ---------------------------------------------------------------------------


#: Relative column-norm threshold below which a candidate basis direction
#: is considered already spanned and dropped.
_BASIS_DROP_TOL = 1e-10

#: Hard cap on Galerkin refinement rounds (each round extends the basis).
_MAX_GALERKIN_ROUNDS = 80

#: Basis dimension above which the projected 3-way solve switches from
#: the Schur sweep (O(r²) Python-level triangular solves) to the
#: eigenvector fast path (pure GEMMs); the exact residual test guards
#: against eigenbasis ill-conditioning either way.
_EIG_THRESHOLD = 48

#: Eigenbasis condition number beyond which the projected eig fast path
#: is not trusted and the Schur sweep is used instead.
_EIG_COND_LIMIT = 1e10


def _blocked_product(a, b, conjugate=False):
    """``aᴴ b`` (``aᵀ b`` when *conjugate* is false) in row blocks.

    A single block (``max_block >= n``) is one GEMM — bit-identical to
    the unblocked expression; otherwise the accumulation keeps only one
    row block's operands live at a time (summation-order drift across
    block boundaries is within the ≤ 1e-10 streaming parity contract).
    """
    n = a.shape[0]
    width = a.shape[1] + (b.shape[1] if b.ndim > 1 else 1)
    step = memory.block_rows(
        n, row_bytes=width * max(a.itemsize, b.itemsize)
    )
    left = (lambda x: x.conj().T) if conjugate else (lambda x: x.T)
    if step >= n:
        return left(a) @ b
    out = None
    for lo, hi in _row_spans(n, step):
        part = left(a[lo:hi]) @ b[lo:hi]
        out = part if out is None else out + part
    return out


class _KrylovBasis:
    """Growing orthonormal basis of extended-Krylov directions of ``G1``.

    Tracks ``U``, ``A U`` and ``Aᵀ U`` incrementally so the projected
    matrix ``H = Uᴴ A U`` and the *explicit* residual factors
    ``Ru = A U − U H`` / ``Su = (I − UUᴴ) Aᵀ U`` (whose Gram matrices
    give exact residual norms without cancellation) are O(n·r²) updates.
    """

    def __init__(self, g1, max_dim):
        self.g1 = g1
        self.n = g1.shape[0]
        self.max_dim = int(max_dim)
        self.u = np.empty((self.n, 0))
        self.au = np.empty((self.n, 0))
        self.atu = np.empty((self.n, 0))
        self.last = 0  # first column of the newest block
        self._h = None

    @property
    def dim(self):
        return self.u.shape[1]

    def _promote_complex(self):
        if not np.iscomplexobj(self.u):
            self.u = self.u.astype(complex)
            self.au = self.au.astype(complex)
            self.atu = self.atu.astype(complex)
            self._h = None

    def absorb(self, block):
        """Orthonormalize *block* against ``U`` and append what is new.

        Returns True when the basis grew.
        """
        block = np.asarray(block)
        if block.ndim == 1:
            block = block[:, None]
        if block.shape[1] == 0:
            return False
        if np.iscomplexobj(block):
            if not np.any(block.imag):
                block = np.ascontiguousarray(block.real)
            else:
                self._promote_complex()
        norms = np.linalg.norm(block, axis=0)
        bscale = norms.max()
        if bscale == 0.0:
            return False
        room = self.max_dim - self.dim
        if room <= 0:
            return False
        for _ in range(2):  # CGS2 against the existing basis
            if self.dim:
                coeff = _blocked_product(self.u, block, conjugate=True)
                block = block - self.u @ coeff
        q, r, _ = sla.qr(block, mode="economic", pivoting=True)
        diag = np.abs(np.diag(r))
        count = int(np.count_nonzero(diag > _BASIS_DROP_TOL * bscale))
        count = min(count, room)
        if count == 0:
            return False
        new = q[:, :count]
        if np.iscomplexobj(new) and not np.iscomplexobj(self.u):
            self._promote_complex()
        elif np.iscomplexobj(self.u) and not np.iscomplexobj(new):
            new = new.astype(complex)
        self.last = self.dim
        self.u = np.hstack([self.u, new])
        self.au = np.hstack([self.au, self.g1 @ new])
        self.atu = np.hstack([self.atu, self.g1.T @ new])
        self._h = None
        return True

    def state_dict(self):
        """Snapshot of the growth state (checkpoint/resume round trip).

        ``u``/``au``/``atu``/``last`` determine every future
        absorb/extend decision.  The projected-matrix cache ``_h`` is
        mathematically derived but still snapshotted when present: a
        BLAS product is only reproducible down to the last ulp within
        one execution context, so a resumed run recomputing ``H`` from
        bit-identical factors can land one ulp away from the cached
        value the cold run kept using — enough to break bit-identical
        resume at tight solve tolerances.
        """
        return {
            "u": self.u.copy(),
            "au": self.au.copy(),
            "atu": self.atu.copy(),
            "last": int(self.last),
            "max_dim": int(self.max_dim),
            "h": None if self._h is None else self._h.copy(),
        }

    def load_state(self, state):
        """Restore a :meth:`state_dict` snapshot (same ``g1``)."""
        self.u = np.ascontiguousarray(np.asarray(state["u"]))
        self.au = np.ascontiguousarray(np.asarray(state["au"]))
        self.atu = np.ascontiguousarray(np.asarray(state["atu"]))
        self.last = int(state["last"])
        self.max_dim = int(state.get("max_dim", self.max_dim))
        h = state.get("h")
        self._h = None if h is None else np.ascontiguousarray(np.asarray(h))

    def h(self):
        """Projected matrix ``H = Uᴴ G1 U`` (cached per growth step)."""
        if self._h is None or self._h.shape[0] != self.dim:
            self._h = self.u.conj().T @ self.au
        return self._h

    def gram_plain(self):
        """``RuᴴRu`` with ``Ru = G1 U − U H`` (formed explicitly — the
        ``AUᴴAU − HᴴH`` difference would floor the measurable residual
        around √eps through cancellation).  Accumulated in row blocks,
        so no second (n, r) residual slab is resident under tight
        ``max_block`` settings."""
        h = self.h()
        step = memory.block_rows(
            self.n, row_bytes=2 * max(self.dim, 1) * self.au.itemsize
        )
        if step >= self.n:
            ru = self.au - self.u @ h
            gr = ru.conj().T @ ru
        else:
            gr = None
            for lo, hi in _row_spans(self.n, step):
                ru = self.au[lo:hi] - self.u[lo:hi] @ h
                part = ru.conj().T @ ru
                gr = part if gr is None else gr + part
        return 0.5 * (gr + gr.conj().T)

    def gram_transpose(self):
        """``SuᴴSu`` with ``Su = (I − UUᴴ) G1ᵀ U`` (row-blocked like
        :meth:`gram_plain`)."""
        coeff = _blocked_product(self.u, self.atu, conjugate=True)
        step = memory.block_rows(
            self.n, row_bytes=2 * max(self.dim, 1) * self.atu.itemsize
        )
        if step >= self.n:
            su = self.atu - self.u @ coeff
            gs = su.conj().T @ su
        else:
            gs = None
            for lo, hi in _row_spans(self.n, step):
                su = self.atu[lo:hi] - self.u[lo:hi] @ coeff
                part = su.conj().T @ su
                gs = part if gs is None else gs + part
        return 0.5 * (gs + gs.conj().T)


class LowRankKronSolver:
    """Matrix-free Galerkin solver for the lifted Kronecker-sum systems.

    Solves ``((k© G1) + shift·I) x = rhs`` for ``k ∈ {2, 3}`` with a
    Tucker-factored right-hand side, and the paper's eq.-(18) Π Sylvester
    equation with a sparse low-rank ``G2`` — **without a Schur form of
    G1**.  All large-``n`` work is shifted solves with ``G1``/``G1ᵀ``
    through the caller-supplied callables, which on the sparse path hit
    the resolvent factory's reusable sparse LU.

    Kronecker-sum solves project onto one growing shared extended-Krylov
    basis (directions ``(G1 + σI)^{-1} w`` and ``G1 w``), where the
    projected problem has the same Kronecker-sum structure at size ``r``
    and is solved densely.  Because the basis only grows, moment-chain
    recursions — whose step-``t+1`` right-hand side lives in the
    step-``t`` basis — converge in a single projection after the first
    few steps.

    Concurrency note: one solver-wide lock guards the shared basis, so
    engine-dispatched chain tasks on the sparse path serialize through
    it (correct under any ``REPRO_WORKERS``, but effectively serial —
    the shared-basis reuse is worth far more than intra-solve
    parallelism here; the thread backend's speedup applies to the dense
    Schur path's independent per-column solves).

    The Π equation gets a *right-sided* projection instead (see
    :meth:`solve_pi`): Π's singular values decay too slowly on realistic
    circuits for a two-sided low-rank form, so the left side stays full
    and only the lifted ``n²`` side is compressed.

    Both iterations stop on **exact** residual norms: with the
    right-hand-side factors absorbed into the basis, Galerkin
    orthogonality reduces the true residual to Gram matrices of the
    explicit defect factors ``G1 U − U H`` / ``(I − UUᴴ) G1ᵀ U`` plus an
    in-space term, so the reported residual is the honest
    ``‖(k©G1 + sI)x − rhs‖`` / :func:`pi_sylvester_residual` value, not
    a proxy.

    Parameters
    ----------
    g1 : (n, n) sparse or dense matrix
    solve_shifted : callable ``(shift, rhs) -> (G1 + shift·I)^{-1} rhs``
    solve_shifted_transpose : callable, optional
        Same contract for ``G1ᵀ``; required by :meth:`solve_pi`.
    tol : float
        Default relative residual target.
    tol_floor : float, optional
        Soft acceptance floor: when the basis cap stalls an iteration
        above *tol* but at or below ``tol_floor``, the solve returns
        the stalled solution (counted in ``stats["soft_accepts"]``)
        instead of raising.  Lets callers request residuals well below
        a downstream decision threshold (e.g. a basis-deflation
        cutoff, whose keep/drop choices must not flip on solve noise)
        without turning previously-convergent problems into failures.
    max_dim : int
        Basis-dimension cap; exceeding it raises
        :class:`~repro.errors.NumericalError`.
    block_cap : int
        Maximum number of columns expanded per extension round.
    """

    def __init__(
        self,
        g1,
        solve_shifted,
        solve_shifted_transpose=None,
        *,
        tol=1e-9,
        tol_floor=None,
        max_dim=None,
        block_cap=32,
        compress_tol=1e-12,
    ):
        if g1.shape[0] != g1.shape[1]:
            raise ValidationError(f"g1 must be square, got {g1.shape}")
        self.g1 = g1
        self.n = g1.shape[0]
        self._solve = solve_shifted
        self._solve_t = solve_shifted_transpose
        self.tol = float(tol)
        self.tol_floor = None if tol_floor is None else float(tol_floor)
        self.max_dim = int(max_dim) if max_dim else min(self.n, 320)
        self.block_cap = int(block_cap)
        self.compress_tol = float(compress_tol)
        self._lock = threading.RLock()
        self._basis = _KrylovBasis(g1, self.max_dim)
        self._small = None
        self._small_dim = -1
        self._eig = None
        self._eig_dim = -1
        diag = g1.diagonal() if sp.issparse(g1) else np.diag(g1)
        self._fallback_sigma = -(1.0 + float(np.abs(diag).mean()))
        self._sigma_ok = {}
        self.stats = {
            "solves": 0, "pi_iterations": 0, "extensions": 0,
            "soft_accepts": 0,
        }

    @property
    def dim(self):
        """Current dimension of the shared Kronecker-sum basis."""
        return self._basis.dim

    def basis_columns(self):
        """Copy of the shared basis ``U`` (warm-start seed for a
        neighboring parametric corner's solver)."""
        with self._lock:
            return self._basis.u.copy()

    def seed_basis(self, u):
        """Warm-start the shared basis with columns from a *different*
        system's converged basis (e.g. the nearest completed corner of
        a parameter sweep).

        Unlike :meth:`load_state` — which restores a same-``g1``
        snapshot verbatim — seeding runs the columns through
        :meth:`_KrylovBasis.absorb`, which re-orthonormalizes them and
        recomputes ``G1 U`` / ``G1ᵀ U`` against *this* solver's ``g1``.
        Every later solve still converges on the exact-residual test,
        so seeding changes iteration counts, never the answers beyond
        the configured tolerance.  Returns True when the basis grew.
        """
        u = np.asarray(u)
        if u.ndim != 2 or u.shape[0] != self.n:
            raise ValidationError(
                f"seed basis must be ({self.n}, r), got {u.shape}"
            )
        with self._lock:
            return self._basis.absorb(u)

    # -- checkpoint state ----------------------------------------------------

    @property
    def state_version(self):
        """Cheap fingerprint of the mutable shared state.

        Changes whenever :meth:`state_dict` would produce a different
        snapshot — used by the checkpoint layer to skip re-serializing
        an unchanged solver between stages.
        """
        basis = self._basis
        return (
            basis.dim,
            bool(np.iscomplexobj(basis.u)),
            len(self._sigma_ok),
            basis._h is not None,
        )

    def state_dict(self):
        """Payload-tree snapshot of everything a resumed run needs to
        replay bit-identically: the shared extended-Krylov basis
        (``U``/``AU``/``AᵀU``/``last``) and the fallback-shift cache
        ``_sigma_ok`` (which changes *numerics*, not just speed — a
        resumed run must retreat to the same fallback shifts).  The
        dense small-problem caches rebuild deterministically.
        """
        with self._lock:
            state = self._basis.state_dict()
            state["sigma_ok"] = [
                {
                    "sigma": sigma,
                    "transpose": bool(transpose),
                    "use": sigma_use,
                }
                for (sigma, transpose), sigma_use
                in self._sigma_ok.items()
            ]
            state["stats"] = {
                key: int(value) for key, value in self.stats.items()
            }
            return state

    def load_state(self, state):
        """Restore a :meth:`state_dict` snapshot onto this solver.

        The solver must wrap the same ``g1`` (the checkpoint layer
        guarantees that through the structural fingerprint in its key).
        """
        with self._lock:
            self._basis.load_state(state)
            self.max_dim = self._basis.max_dim
            self._sigma_ok = {
                (complex(entry["sigma"]), bool(entry["transpose"])):
                    entry["use"]
                for entry in state.get("sigma_ok", [])
            }
            for key, value in state.get("stats", {}).items():
                if key in self.stats:
                    self.stats[key] = int(value)
            self._small = None
            self._small_dim = -1
            self._eig = None
            self._eig_dim = -1

    # -- direction generation ------------------------------------------------

    def _apply_inverse(self, sigma, block, transpose=False):
        solve = self._solve_t if transpose else self._solve
        if solve is None:
            raise ValidationError(
                "solve_shifted_transpose is required for transposed "
                "Krylov directions (the Pi Sylvester iteration)"
            )
        key = (complex(sigma), transpose)
        sigma_use = self._sigma_ok.get(key, sigma)
        try:
            return solve(sigma_use, block)
        except NumericalError:
            if sigma_use != sigma:
                raise
            # σ sits (numerically) on the spectrum — e.g. a DC inverse of
            # a singular G1; retreat further into the left half-plane.
            sigma_use = sigma + self._fallback_sigma
            out = solve(sigma_use, block)
            self._sigma_ok[key] = sigma_use
            return out

    def _extend(self, basis, sigma, transpose=False):
        if basis.dim >= basis.max_dim:
            return False
        w = basis.u[:, basis.last:]
        if w.shape[1] == 0:
            w = basis.u
        if w.shape[1] > self.block_cap:
            w = w[:, : self.block_cap]
        if transpose:
            cands = [
                self._apply_inverse(sigma, w, transpose=True),
                basis.g1.T @ w,
            ]
        else:
            cands = [self._apply_inverse(sigma, w), basis.g1 @ w]
        self.stats["extensions"] += 1
        return basis.absorb(np.hstack(cands))

    # -- shifted Kronecker-sum solves ----------------------------------------

    def solve(self, rhs, k=2, shift=0.0, tol=None):
        """Solve ``((k© G1) + shift·I) x = rhs`` for a factored *rhs*.

        *rhs* is a :class:`FactoredTensor` with ``k`` modes of size
        ``n``; the result is a compressed :class:`FactoredTensor`.
        Failure to reach *tol* within the basis cap raises
        :class:`NumericalError`.
        """
        if k not in (2, 3):
            raise ValidationError(f"k must be 2 or 3, got {k}")
        if not isinstance(rhs, FactoredTensor):
            raise ValidationError(
                "rhs must be a FactoredTensor (use KronSumSolver for "
                "dense right-hand sides)"
            )
        if rhs.order != k or rhs.shape != (self.n,) * k:
            raise ValidationError(
                f"rhs has shape {rhs.shape}, expected {(self.n,) * k}"
            )
        tol = self.tol if tol is None else float(tol)
        with self._lock:
            self.stats["solves"] += 1
            rhs = rhs.compress(self.compress_tol)
            rhs_norm = float(np.linalg.norm(rhs.core))
            if rhs_norm == 0.0:
                return FactoredTensor.zeros((self.n,) * k)
            basis = self._basis
            basis.absorb(np.hstack(rhs.factors))
            sigma = shift / k
            resid = np.inf
            pending = None
            for _ in range(_MAX_GALERKIN_ROUNDS):
                try:
                    y, resid = self._galerkin(rhs, k, shift)
                    # Any rhs component outside span(U) — possible when
                    # the basis cap truncated the absorption — enters
                    # the true residual directly; without this term a
                    # saturated basis could report convergence on a
                    # silently projected right-hand side.
                    resid = float(np.sqrt(
                        resid ** 2 + self._rhs_defect_sq(basis, rhs)
                    ))
                    pending = None
                except NumericalError as exc:
                    # A Ritz combination λ_i + λ_j (+ λ_k) + shift can
                    # sit (numerically) on zero at an intermediate basis
                    # even when the full operator is fine; growing the
                    # basis moves the Ritz values (same retry as
                    # solve_pi).
                    pending = exc
                    y = None
                if y is not None and resid <= tol * rhs_norm:
                    out = FactoredTensor(y, [basis.u] * k)
                    return out.compress(
                        self.compress_tol, factors_orthonormal=True
                    )
                if not self._extend(basis, sigma):
                    floor = self.tol_floor
                    if (y is not None and floor is not None
                            and resid <= floor * rhs_norm):
                        self.stats["soft_accepts"] += 1
                        out = FactoredTensor(y, [basis.u] * k)
                        return out.compress(
                            self.compress_tol, factors_orthonormal=True
                        )
                    break
            if pending is not None:
                raise pending
            raise NumericalError(
                f"low-rank Kronecker-sum solve (k={k}, shift={shift}) "
                f"stalled at relative residual {resid / rhs_norm:.3e} "
                f"with basis dimension {basis.dim} (cap {basis.max_dim})"
            )

    @staticmethod
    def _rhs_defect_sq(basis, rhs):
        """``‖rhs − (⊗UUᴴ) rhs‖²`` via the telescoping decomposition.

        The pieces (projector on modes < i, defect at mode i, identity
        after) are mutually orthogonal, so the defect is summed exactly
        — no ``‖rhs‖² − ‖proj‖²`` cancellation.
        """
        u = basis.u
        projected = [u @ (u.conj().T @ f) for f in rhs.factors]
        defects = [f - p for f, p in zip(rhs.factors, projected)]
        total = 0.0
        for i in range(rhs.order):
            factors = []
            for t in range(rhs.order):
                if t < i:
                    factors.append(projected[t])
                elif t == i:
                    factors.append(defects[i])
                else:
                    factors.append(rhs.factors[t])
            total += FactoredTensor(rhs.core, factors).norm() ** 2
        return total

    def _small_solver(self):
        if self._small_dim != self.dim:
            self._small = KronSumSolver(self._basis.h())
            self._small_dim = self.dim
        return self._small

    def _eig_factors(self):
        """Eigendecomposition of ``H`` (or None when ill-conditioned)."""
        if self._eig_dim != self.dim:
            self._eig_dim = self.dim
            self._eig = None
            try:
                lam, s = np.linalg.eig(self._basis.h())
                sinv = np.linalg.inv(s)
                if np.linalg.cond(s) <= _EIG_COND_LIMIT:
                    self._eig = (lam, s, sinv)
            except np.linalg.LinAlgError:
                self._eig = None
        return self._eig

    def _projected_kron_solve(self, c, k, shift):
        """Solve ``((k© H) + shift) Y = C`` at the projected size."""
        dim = self.dim
        eig = self._eig_factors() if (k == 3 and dim > _EIG_THRESHOLD) \
            else None
        if eig is not None:
            lam, s, sinv = eig
            ct = c.astype(complex)
            for axis in range(k):
                ct = mode_apply(ct, sinv, axis)
            denom = (
                lam[:, None, None] + lam[None, :, None] + lam[None, None, :]
            ) + shift
            _check_diag_gap(denom, max(np.abs(lam).max(), 1.0))
            y = ct / denom
            for axis in range(k):
                y = mode_apply(y, s, axis)
            return y
        small = self._small_solver()
        return small.solve(c.reshape(-1), k=k, shift=shift).reshape(
            (dim,) * k
        )

    def _galerkin(self, rhs, k, shift):
        """One projected solve; returns ``(core, exact residual norm)``."""
        basis = self._basis
        c = rhs.core.astype(complex)
        for axis, f in enumerate(rhs.factors):
            c = mode_apply(c, basis.u.conj().T @ f, axis)
        y = self._projected_kron_solve(c, k, shift)
        h = basis.h()
        # In-space defect (nonzero when the projected solve itself is
        # inexact, e.g. the eig fast path on a non-normal H)...
        r_in = shift * y - c
        for axis in range(k):
            r_in = r_in + mode_apply(y, h, axis)
        resid_sq = float(np.real(np.vdot(r_in, r_in)))
        # ...plus the out-of-space part through the defect Gram.
        gr = basis.gram_plain()
        for axis in range(k):
            resid_sq += max(
                float(np.real(np.vdot(y, mode_apply(y, gr, axis)))), 0.0
            )
        return y, float(np.sqrt(max(resid_sq, 0.0)))

    # -- the eq.-(18) Π equation ---------------------------------------------

    def solve_pi(self, g2, tol=None, max_rank=None, max_seed=None,
                 seed_basis=None, floor=None):
        """Right-sided low-rank solve of ``G1 Π + G2 = Π (G1 ⊕ G1)``.

        Builds a private real basis ``U`` from ``G2``'s lifted-side COO
        fibers plus ``G1ᵀ``-sided extended-Krylov directions, and solves
        the right-projected equation ``G1 Π̂ + Ĝ2 = Π̂ (H ⊕ H)`` exactly
        in the left (state) space — one cached sparse shifted ``G1``
        solve per Schur pair of ``H``.  Returns a :class:`FactoredPi`
        ``Π ≈ Π̂ (U⊗U)ᵀ``; the stopping test
        ``residual ≤ tol · ‖G2‖_F`` is the true
        :func:`pi_sylvester_residual` value.

        *seed_basis* optionally warm-starts the right basis with extra
        real ``(n, r)`` columns — typically the ``.u`` factor of a
        neighboring parametric corner's converged :class:`FactoredPi`.
        The mandatory G2 fiber seeds are always absorbed first (they
        make the residual identity exact), the warm columns after; the
        stopping test is unchanged, so a warm start saves extension
        rounds without relaxing the accuracy contract.

        Raises :class:`NumericalError` when ``G2``'s fiber spans are too
        wide for a low-rank treatment (callers may then fall back to the
        dense Schur path) or when the iteration stalls above *floor*
        (the soft acceptance threshold — defaults to the solver's
        ``tol_floor``; see the class docstring).
        """
        tol = self.tol if tol is None else float(tol)
        floor = self.tol_floor if floor is None else float(floor)
        with self._lock:
            n = self.n
            rows, ii, jj, vals = _g2_coo_parts(g2, n)
            if np.iscomplexobj(vals) or np.iscomplexobj(
                self.g1.data if sp.issparse(self.g1) else self.g1
            ):
                raise ValidationError(
                    "the low-rank Pi solve expects real G1/G2"
                )
            g2_norm = float(np.linalg.norm(vals))
            if g2_norm == 0.0:
                return FactoredPi(np.zeros((n, 0)), np.zeros((n, 0)), 0.0,
                                  0.0)
            if max_rank is None:
                # Bound the dense (n, r²) left factor near ~100 MB.
                max_rank = min(
                    self.max_dim, max(int(np.sqrt(1.6e7 / max(n, 1))), 24)
                )
            basis = _KrylovBasis(self.g1, max_rank)
            seeds = self._pi_seed_blocks(rows, ii, jj, vals, max_seed)
            for block in seeds:
                basis.absorb(block)
            if seed_basis is not None:
                warm = np.asarray(seed_basis)
                if warm.ndim != 2 or warm.shape[0] != n:
                    raise ValidationError(
                        f"Pi seed basis must be ({n}, r), got {warm.shape}"
                    )
                if np.iscomplexobj(warm):
                    warm = np.ascontiguousarray(warm.real)
                basis.absorb(warm)
            resid = np.inf
            pending = None
            for _ in range(_MAX_GALERKIN_ROUNDS):
                self.stats["pi_iterations"] += 1
                try:
                    left, resid = self._pi_right_solve(
                        basis, rows, ii, jj, vals, seeds
                    )
                    pending = None
                except NumericalError as exc:
                    # A Ritz pair λ_b + λ_c can sit (numerically) on
                    # G1's spectrum even when the full equation is fine;
                    # growing the basis moves the Ritz values.
                    pending = exc
                    left = None
                if left is not None and resid <= tol * g2_norm:
                    return FactoredPi(
                        left, basis.u.copy(), float(resid), g2_norm
                    )
                if not self._extend(basis, 0.0, transpose=True):
                    if (left is not None and floor is not None
                            and resid <= floor * g2_norm):
                        self.stats["soft_accepts"] += 1
                        return FactoredPi(
                            left, basis.u.copy(), float(resid), g2_norm
                        )
                    if left is not None:
                        memory.release(left)
                    break
                if left is not None:
                    # Superseded round: reclaim its arena tile eagerly
                    # (a no-op when the left factor was RAM-resident).
                    memory.release(left)
            if pending is not None:
                raise pending
            raise NumericalError(
                f"low-rank Pi Sylvester iteration stalled at relative "
                f"residual {resid / g2_norm:.3e} with right-basis "
                f"dimension {basis.dim} (cap {basis.max_dim})"
            )

    def _pi_seed_blocks(self, rows, ii, jj, vals, max_seed):
        """Spanning blocks of G2's lifted-side (mode-1/2) fiber spaces.

        Gathered directly from the COO data (never ``toarray``).  With
        these absorbed, ``G2 = Ĝ2 (U⊗U)ᵀ`` holds exactly and the
        residual identity in :meth:`_pi_right_solve` is exact.  A fiber
        count beyond *max_seed* means ``G2`` is not low-rank on the
        lifted side and the solver refuses.
        """
        if max_seed is None:
            max_seed = max(4 * self.block_cap, 64)
        blocks = []
        for count, block in _g2_fiber_blocks(rows, ii, jj, vals, self.n):
            if count > max_seed:
                raise NumericalError(
                    f"G2 has {count} distinct lifted-side tensor "
                    f"fibers (> {max_seed}); the right-hand side is not "
                    "low-rank — use the dense Schur Pi solve"
                )
            blocks.append(block)
        return blocks

    def _pi_right_solve(self, basis, rows, ii, jj, vals, seeds):
        """One right-projected Π solve; returns ``(left, residual)``.

        Solves ``G1 Π̂ − Π̂ (H⊕H) = −Ĝ2`` by transforming the right side
        with the complex Schur form ``H = Q T Qᴴ`` (``H⊕H`` becomes
        upper triangular in lexicographic pair order) and sweeping the
        ``r²`` columns with one shifted sparse ``G1`` solve each; the
        ``(d,e)``/``(e,d)`` columns share a shift, and the shell
        ordering keeps them adjacent so the factory's LU cache serves
        both from one factorization.
        """
        u = basis.u
        r = basis.dim
        n = self.n
        planner = memory.current_planner()
        # Streamed tiling: every (n, r, r) intermediate below lives in
        # the planner's tile arena (plain arrays under an unlimited
        # budget) and is filled/consumed in row blocks of at most
        # ``step`` rows, so the resident footprint of this solve is
        # O(step · r²) + O(n · r) regardless of n.  Row width covers the
        # two complex tiles (ct, xt) a block touches at once.
        step = planner.block_rows(n, row_bytes=2 * r * r * 16)
        can_slice = sp.issparse(self.g1) or isinstance(self.g1, np.ndarray)
        if not can_slice:
            step = n
        g2r = ct = xt = leftc = None
        try:
            # Ĝ2 = G2 (U ⊗ U) via the COO contraction: (n, r, r).
            g2r = planner.tile((n, r, r), float, "pi-g2r")
            nnz = int(vals.shape[0])
            chunk = max(1, nnz if step >= n else min(nnz, step))
            for lo in range(0, nnz, chunk):
                hi = min(nnz, lo + chunk)
                contrib = np.einsum(
                    "e,eb,ec->ebc", vals[lo:hi], u[ii[lo:hi]], u[jj[lo:hi]],
                    optimize=True,
                )
                scatter_add_rows(g2r, rows[lo:hi], contrib)
            h = basis.h()
            t, q = sla.schur(h.astype(complex), output="complex")
            lam = np.diag(t)
            # C̃ = −Ĝ2 (Q ⊗ Q): transform the pair index into Schur space.
            ct = planner.tile((n, r, r), complex, "pi-ct")
            for lo, hi in _row_spans(n, step):
                ct[lo:hi] = -np.einsum(
                    "pbc,bd,ce->pde", g2r[lo:hi], q, q, optimize=True
                )
            xt = planner.tile((n, r, r), complex, "pi-xt")
            # Shell sweep: shell s handles (d, s) for d <= s and (s, c) for
            # c < s, so all lex-earlier couplings are available and the
            # (d, s)/(s, d) shift pair stays adjacent for LU reuse.  The
            # per-column state is O(n) — tile-friendly by construction.
            for s_idx in range(r):
                order = []
                for d in range(s_idx):
                    order.append((d, s_idx))
                    order.append((s_idx, d))
                order.append((s_idx, s_idx))
                for d, e in order:
                    # (G1 − (T[d,d]+T[e,e])I) x_de = c_de
                    #     + Σ_{b<d} x_be T[b,d] + Σ_{c<e} x_dc T[c,e]
                    # — the strictly-upper couplings of X̃ (T⊕T) move to
                    # the right-hand side with a PLUS sign.
                    rhs = np.array(ct[:, d, e])
                    if d > 0:
                        rhs += xt[:, :d, e] @ t[:d, d]
                    if e > 0:
                        rhs += xt[:, d, :e] @ t[:e, e]
                    mu = lam[d] + lam[e]
                    x = self._solve(-mu, rhs)
                    # One iterative-refinement step against the same
                    # cached LU: the pair shifts λ_d + λ_e can land close
                    # to G1's spectrum (same-side spectra), where a
                    # single backsolve leaves an O(κ·eps) column defect
                    # that would propagate through the triangular sweep.
                    defect = rhs - (self.g1 @ x - mu * x)
                    x = x + self._solve(-mu, defect)
                    xt[:, d, e] = x
            planner.release(ct)
            ct = None
            # Back-transform: Π̂ = X̃ (Qᴴ ⊗ Qᴴ) applied on the pair index.
            qh = q.conj().T
            leftc = planner.tile((n, r, r), complex, "pi-left-work")
            imag_max = 0.0
            abs_max = 0.0
            for lo, hi in _row_spans(n, step):
                lb = np.einsum(
                    "pde,db,ec->pbc", xt[lo:hi], qh, qh, optimize=True
                )
                leftc[lo:hi] = lb
                imag_max = max(imag_max, float(np.abs(lb.imag).max()))
                abs_max = max(abs_max, float(np.abs(lb).max()))
            planner.release(xt)
            xt = None
            if imag_max <= 1e-8 * max(abs_max, 1.0):
                left = planner.tile((n, r, r), float, "pi-left")
                for lo, hi in _row_spans(n, step):
                    left[lo:hi] = leftc[lo:hi].real
                planner.release(leftc)
                leftc = None
            else:
                left = leftc
                leftc = None
            # Exact residual: in-space defect + G2 projection defect +
            # out-of-space defect through the Su Gram — all accumulated
            # blockwise so no (n, r²) residual slab is ever resident.
            lmat = left.reshape(n, r * r)
            g2r_flat = g2r.reshape(n, r * r)
            resid_sq = 0.0
            for lo, hi in _row_spans(n, step):
                if step >= n:
                    rb = self.g1 @ lmat + g2r_flat
                else:
                    rb = self.g1[lo:hi] @ lmat + g2r_flat[lo:hi]
                rb = rb - (
                    np.einsum("pbe,bd->pde", left[lo:hi], h)
                    + np.einsum("pdc,ce->pde", left[lo:hi], h)
                ).reshape(hi - lo, r * r)
                resid_sq += float(np.real(np.vdot(rb, rb)))
            planner.release(g2r)
            g2r = None
            # G2 projection defect, bounded through the explicit fiber
            # defects (the ``‖G2‖² − ‖Ĝ2‖²`` difference would floor the
            # measurable residual at √eps·‖G2‖ through cancellation;
            # with the fibers seeded into U both defects are ~0).
            for block in seeds:
                db = block - u @ (u.T @ block)
                resid_sq += float(np.vdot(db, db).real)
            gs = basis.gram_transpose()
            acc1 = 0.0 + 0.0j
            acc2 = 0.0 + 0.0j
            for lo, hi in _row_spans(n, step):
                lb = left[lo:hi]
                acc1 += np.einsum(
                    "pbc,bd,pdc->", lb.conj(), gs, lb, optimize=True
                )
                acc2 += np.einsum(
                    "pbc,ce,pbe->", lb.conj(), gs, lb, optimize=True
                )
            resid_sq += max(float(np.real(acc1)), 0.0)
            resid_sq += max(float(np.real(acc2)), 0.0)
            return lmat, float(np.sqrt(max(resid_sq, 0.0)))
        finally:
            for temp in (g2r, ct, xt, leftc):
                if temp is not None:
                    planner.release(temp)
