"""Matrix-free linear operators for the lifted associated realizations.

The associated transform turns the second-order Volterra transfer function
of an ``n``-state QLDAE into a linear system with state matrix (paper
eq. 17)::

    Ã2 = [ G1   G2      ]        (size n + n²)
         [ 0    G1 ⊕ G1 ]

and the third-order one into block-triangular systems whose inner blocks
are Kronecker sums of ``Ã2`` and ``G1`` (sizes ``n·(n+n²)``).  These are
far too large to form; this module provides operator objects exposing
``matvec`` and shifted solves that exploit the block-triangular +
Kronecker-sum structure, so a Krylov iteration touches only
``O(n²)``/``O(n³)`` memory.
"""

import threading

import numpy as np
import scipy.linalg as sla
import scipy.sparse as sp

from .. import memory
from .._validation import as_square_matrix, as_sparse
from ..errors import SystemStructureError, ValidationError
from ._hotloops import scatter_add_rows
from .kronecker import kron_sum_power, kron_sum_power_matvec
from .schur import SchurForm
from .sylvester import FactoredTensor, KronSumSolver, _g2_coo_parts


def _coo_spans(nnz, rank, itemsize=16):
    """``(lo, hi)`` nonzero spans sized so one span's ``(chunk, rank)``
    contraction temporary respects the active ``max_block`` plan.

    A single span when nothing bounds the block size — the streamed
    contractions below then run the exact historical one-shot einsum,
    bit-identical by construction.
    """
    step = memory.block_rows(nnz, row_bytes=max(int(rank), 1) * itemsize)
    for lo in range(0, nnz, max(step, 1)):
        yield lo, min(nnz, lo + step)

__all__ = [
    "DenseOperator",
    "KronSumOperator",
    "QuadraticLiftedOperator",
    "LiftedH3Vector",
    "FactoredH3Operator",
    "solve_left_kron_sum",
    "solve_right_kron_sum",
]


class DenseOperator:
    """Thin operator wrapper around a dense matrix (testing / small n).

    Provides the same ``matvec`` / ``solve_shifted`` interface as the
    structured operators, with one LU factorization cached per shift.
    """

    def __init__(self, a):
        self.a = as_square_matrix(a, "a")
        self.shape = self.a.shape
        self._lu_cache = {}
        self._lock = threading.Lock()

    @property
    def dim(self):
        return self.shape[0]

    def matvec(self, x):
        return self.a @ np.asarray(x)

    def _lu(self, shift, transpose):
        key = (complex(shift), bool(transpose))
        with self._lock:
            lu = self._lu_cache.get(key)
        if lu is None:
            mat = self.a.T if transpose else self.a
            shifted = mat.astype(complex) + shift * np.eye(self.dim)
            lu = sla.lu_factor(shifted)
            with self._lock:
                lu = self._lu_cache.setdefault(key, lu)
        return lu

    def solve_shifted(self, shift, rhs):
        """Solve ``(A + shift I) x = rhs``."""
        return sla.lu_solve(self._lu(shift, False), np.asarray(rhs, complex))

    def solve_shifted_transpose(self, shift, rhs):
        """Solve ``(Aᵀ + shift I) x = rhs``."""
        return sla.lu_solve(self._lu(shift, True), np.asarray(rhs, complex))

    def dense(self):
        return self.a.copy()


class KronSumOperator:
    """Operator for ``k© A = A ⊕ ... ⊕ A`` (k terms) of size ``n**k``."""

    def __init__(self, a, k, solver=None):
        self.a = as_square_matrix(a, "a")
        self.k = int(k)
        if self.k < 1 or self.k > 3:
            raise ValidationError(f"k must be 1..3, got {k}")
        self.n = self.a.shape[0]
        self.shape = (self.n**self.k,) * 2
        self.solver = solver if solver is not None else KronSumSolver(self.a)

    @property
    def dim(self):
        return self.shape[0]

    def matvec(self, x):
        if self.k == 1:
            return self.a @ np.asarray(x)
        return kron_sum_power_matvec(self.a, self.k, x)

    def solve_shifted(self, shift, rhs):
        """Solve ``((k© A) + shift I) x = rhs`` via the Schur sweeps."""
        return self.solver.solve(rhs, k=self.k, shift=shift)

    def solve_shifted_transpose(self, shift, rhs):
        return self.solver.solve_transpose(rhs, k=self.k, shift=shift)

    def dense(self):
        if self.dim > 4096:
            raise ValidationError(
                f"refusing to densify a {self.dim}-dimensional Kronecker sum"
            )
        mat = kron_sum_power(self.a, self.k)
        return mat.toarray() if sp.issparse(mat) else np.asarray(mat)


class QuadraticLiftedOperator:
    """The paper's eq.-(17) state matrix ``Ã2`` as a structured operator.

    ``Ã2 = [[G1, G2], [0, G1 ⊕ G1]]`` with ``G1`` dense ``n × n`` and
    ``G2`` (sparse) ``n × n²``.  Shifted solves use block back-substitution
    with the Schur-based Kronecker-sum solver for the ``(2, 2)`` block —
    never forming the ``n² × n²`` matrix — at ``O(n³)`` per solve.
    """

    def __init__(self, g1, g2, kron_solver=None, schur=None):
        self.g1 = as_square_matrix(g1, "g1")
        self.n = self.g1.shape[0]
        self.g2 = as_sparse(g2, "g2")
        if self.g2.shape != (self.n, self.n**2):
            raise ValidationError(
                f"g2 must be (n, n^2) = ({self.n}, {self.n ** 2}), "
                f"got {self.g2.shape}"
            )
        self.kron_solver = (
            kron_solver if kron_solver is not None else KronSumSolver(self.g1)
        )
        # The (1,1)-block shifted solves reuse the same Schur factors.
        self.schur = schur if schur is not None else self.kron_solver.schur
        self.shape = (self.n + self.n**2,) * 2

    @property
    def dim(self):
        return self.shape[0]

    def split(self, x):
        """Split a lifted vector into its (n,) and (n²,) parts."""
        x = np.asarray(x)
        if x.shape[-1] != self.dim and x.size != self.dim:
            raise ValidationError(
                f"vector has length {x.size}, expected {self.dim}"
            )
        x = x.reshape(self.dim)
        return x[: self.n], x[self.n :]

    def matvec(self, x):
        x1, x2 = self.split(x)
        top = self.g1 @ x1 + self.g2 @ x2
        bottom = kron_sum_power_matvec(self.g1, 2, x2)
        return np.concatenate([top, bottom])

    def solve_shifted(self, shift, rhs):
        """Solve ``(Ã2 + shift I) x = rhs`` by block back-substitution."""
        r1, r2 = self.split(np.asarray(rhs, dtype=complex))
        x2 = self.kron_solver.solve(r2, k=2, shift=shift)
        x1 = self.schur.solve_shifted(shift, r1 - self.g2 @ x2)
        return np.concatenate([x1, x2])

    def solve_shifted_transpose(self, shift, rhs):
        """Solve ``(Ã2ᵀ + shift I) x = rhs`` (forward block substitution)."""
        r1, r2 = self.split(np.asarray(rhs, dtype=complex))
        x1 = self.schur.solve_shifted_transpose(shift, r1)
        x2 = self.kron_solver.solve_transpose(
            r2 - self.g2.T @ x1, k=2, shift=shift
        )
        return np.concatenate([x1, x2])

    def dense(self):
        """Materialize ``Ã2`` (small systems / tests only)."""
        if self.dim > 4096:
            raise ValidationError(
                f"refusing to densify a {self.dim}-dimensional lifted matrix"
            )
        top = np.hstack([self.g1, self.g2.toarray()])
        ks = kron_sum_power(self.g1, 2)
        ks = ks.toarray() if sp.issparse(ks) else np.asarray(ks)
        bottom = np.hstack([np.zeros((self.n**2, self.n)), ks])
        return np.vstack([top, bottom])


def solve_left_kron_sum(schur_a, b_op, v, shift=0.0):
    """Solve ``((A ⊕ B) + shift I) x = v`` with small ``A``, operator ``B``.

    ``A`` is ``n_A × n_A`` (given by its :class:`SchurForm` *schur_a*),
    ``B`` is any operator exposing ``solve_shifted``; ``v`` is ``vec(V)``
    with ``V`` of shape ``(n_A, dim_B)`` row-major.

    With ``A = Q T Qᴴ`` the equation ``A X + X Bᵀ + shift X = V`` becomes
    ``T Y + Y Bᵀ + shift Y = Qᴴ V``; rows are swept bottom-up and each row
    costs one shifted ``B``-solve.
    """
    if not isinstance(schur_a, SchurForm):
        schur_a = SchurForm(schur_a)
    na = schur_a.n
    nb = b_op.dim
    v_mat = np.asarray(v, dtype=complex).reshape(na, nb)
    t = schur_a.t
    q = schur_a.q
    w = q.conj().T @ v_mat
    y = np.empty((na, nb), dtype=complex)
    for i in range(na - 1, -1, -1):
        rhs = w[i, :]
        if i + 1 < na:
            rhs = rhs - t[i, i + 1 :] @ y[i + 1 :, :]
        y[i, :] = b_op.solve_shifted(shift + t[i, i], rhs)
    x_mat = q @ y
    return x_mat.reshape(-1)


def solve_right_kron_sum(b_op, schur_a, v, shift=0.0):
    """Solve ``((B ⊕ A) + shift I) x = v`` with operator ``B``, small ``A``.

    ``v`` is ``vec(V)`` with ``V`` of shape ``(dim_B, n_A)`` row-major.
    The equation ``B X + X Aᵀ + shift X = V`` is transformed on the right
    with ``conj(Q)`` so the coupling matrix becomes ``Tᵀ``; columns are
    swept right-to-left with one shifted ``B``-solve each.
    """
    if not isinstance(schur_a, SchurForm):
        schur_a = SchurForm(schur_a)
    na = schur_a.n
    nb = b_op.dim
    v_mat = np.asarray(v, dtype=complex).reshape(nb, na)
    t = schur_a.t
    q = schur_a.q
    w = v_mat @ q.conj()
    x = np.empty((nb, na), dtype=complex)
    for j in range(na - 1, -1, -1):
        rhs = w[:, j]
        if j + 1 < na:
            rhs = rhs - x[:, j + 1 :] @ t[j, j + 1 :]
        x[:, j] = b_op.solve_shifted(shift + t[j, j], rhs)
    x_mat = x @ q.T
    return x_mat.reshape(-1)


# ---------------------------------------------------------------------------
# matrix-free lifted H3 operator (sparse circuit scale)
# ---------------------------------------------------------------------------


class LiftedH3Vector:
    """Compressed state vector of the ``A3(H3)`` realization.

    The lifted state splits into blocks ``[x_a | x_b | x_c | x_d]`` of
    sizes ``n``, ``n·N``, ``N·n`` and ``n³`` (``N = n + n²``).  At
    circuit scale even *one* dense lifted vector is out of reach
    (``n³ = 8.6·10⁹`` entries at n = 2048), so everything but the top
    block is held Tucker-factored:

    * ``a``  — the top (original state) block, dense ``(n,)``,
    * ``b1``/``b2`` — the ``x_b`` block split by ``Ã2``'s column blocks
      into an ``(n, n)`` 2-mode and an ``(n, n, n)`` 3-mode tensor,
    * ``c1``/``c2`` — the same split of ``x_c`` by ``Ã2``'s row blocks,
    * ``d``  — the cubic ``(n, n, n)`` block.

    Blocks that are absent from the realization (no quadratic / no cubic
    term) are ``None``.
    """

    __slots__ = ("a", "b1", "b2", "c1", "c2", "d")

    def __init__(self, a, b1=None, b2=None, c1=None, c2=None, d=None):
        self.a = np.asarray(a)
        self.b1 = b1
        self.b2 = b2
        self.c1 = c1
        self.c2 = c2
        self.d = d

    @property
    def n(self):
        return self.a.shape[0]

    def to_vector(self):
        """Densify to the block layout of ``AssociatedH3Operator``
        (small systems / tests only)."""
        n = self.n
        parts = [np.asarray(self.a, dtype=complex)]
        if self.b1 is not None:
            x1 = self.b1.to_vector().reshape(n, n)
            x2 = self.b2.to_vector().reshape(n, n * n)
            parts.append(np.hstack([x1, x2]).reshape(-1))
        if self.c1 is not None:
            x1 = self.c1.to_vector().reshape(n, n)
            x2 = self.c2.to_vector().reshape(n * n, n)
            parts.append(np.vstack([x1, x2]).reshape(-1))
        if self.d is not None:
            parts.append(self.d.to_vector())
        return np.concatenate(parts)


class FactoredH3Operator:
    """Matrix-free shifted solves with the ``A3(H3)`` state matrix.

    The sparse-path counterpart of ``AssociatedH3Operator`` (see
    :mod:`repro.volterra.associated`): same block back-substitution,
    same ``solve_shifted`` contract, but every inner Kronecker-sum solve
    routes through a :class:`~repro.linalg.sylvester.LowRankKronSolver`
    on ``G1``'s sparse LU, and the lifted blocks travel as
    :class:`LiftedH3Vector` Tucker factors.  The block reduction:

    * ``x_d`` and the ``x_b``/``x_c`` tails are ``(3© G1 + sI)`` solves
      with low-multilinear-rank right-hand sides,
    * the ``x_b``/``x_c`` heads are ``(2© G1 + sI)`` solves whose
      right-hand sides pick up the sparse ``G2`` contracted against the
      tail's Tucker factors (``O(nnz·r²)``, never ``n²``-sided),
    * the top row is one sparse shifted ``G1`` solve after contracting
      ``G2``/``G3`` with the factored blocks.

    Parameters
    ----------
    g1 : (n, n) sparse/dense matrix
    g2 : (n, n²) sparse or None
    g3 : (n, n³) sparse or None
    kron_solver : LowRankKronSolver
        Shared low-rank Kronecker-sum solver (typically the workspace's).
    solve_shifted : callable ``(shift, rhs) -> (G1 + shift·I)^{-1} rhs``
    """

    def __init__(self, g1, g2, g3, kron_solver, solve_shifted):
        self.g1 = g1
        self.n = g1.shape[0]
        self.has_quad = g2 is not None
        self.has_cubic = g3 is not None
        if not (self.has_quad or self.has_cubic):
            raise SystemStructureError(
                "system has neither quadratic nor cubic terms; H3 ≡ 0"
            )
        self.kron = kron_solver
        self._solve_g1 = solve_shifted
        n = self.n
        self._g2_parts = (
            _g2_coo_parts(g2, n) if self.has_quad else None
        )
        self._g3_parts = None
        if self.has_cubic:
            csr = sp.csr_matrix(g3)
            csr.sum_duplicates()
            coo = csr.tocoo()
            self._g3_parts = (
                coo.row,
                coo.col // (n * n),
                (coo.col // n) % n,
                coo.col % n,
                coo.data,
            )
        self.n2 = n + n * n
        dim = n
        if self.has_quad:
            dim += 2 * n * self.n2
        if self.has_cubic:
            dim += n ** 3
        self.shape = (dim, dim)

    @property
    def dim(self):
        return self.shape[0]

    # -- sparse contractions --------------------------------------------------

    def _g2_vec(self, tensor):
        """``G2 @ vec(X)`` for a 2-mode Tucker ``X`` — dense ``(n,)``."""
        rows, ii, jj, vals = self._g2_parts
        out = np.zeros(self.n, dtype=complex)
        if min(tensor.core.shape, default=0) == 0 or rows.size == 0:
            return out
        p, q = tensor.factors
        for lo, hi in _coo_spans(rows.size, 1):
            t_vals = np.einsum(
                "ab,ea,eb->e", tensor.core, p[ii[lo:hi]], q[jj[lo:hi]],
                optimize=True,
            )
            scatter_add_rows(out, rows[lo:hi], vals[lo:hi] * t_vals)
        return out

    def _g3_vec(self, tensor):
        """``G3 @ vec(X)`` for a 3-mode Tucker ``X`` — dense ``(n,)``."""
        rows, ii, jj, kk, vals = self._g3_parts
        out = np.zeros(self.n, dtype=complex)
        if min(tensor.core.shape, default=0) == 0 or rows.size == 0:
            return out
        p, q, s = tensor.factors
        for lo, hi in _coo_spans(rows.size, 1):
            t_vals = np.einsum(
                "abc,ea,eb,ec->e", tensor.core, p[ii[lo:hi]], q[jj[lo:hi]],
                s[kk[lo:hi]], optimize=True,
            )
            scatter_add_rows(out, rows[lo:hi], vals[lo:hi] * t_vals)
        return out

    def solve_shifted(self, shift, vec):
        """Solve ``(A3 + shift·I) x = rhs`` by block back-substitution
        on a :class:`LiftedH3Vector`."""
        if not isinstance(vec, LiftedH3Vector):
            raise ValidationError(
                "the factored H3 operator solves LiftedH3Vector "
                "right-hand sides; use AssociatedH3Operator for dense "
                "lifted vectors"
            )
        kron = self.kron
        out_b1 = out_b2 = out_c1 = out_c2 = out_d = None
        coupling = np.zeros(self.n, dtype=complex)
        if self.has_quad:
            out_b2 = kron.solve(vec.b2, k=3, shift=shift)
            rb1 = vec.b1.add(self._xb_g2_coupling(out_b2).scaled(-1.0))
            out_b1 = kron.solve(rb1, k=2, shift=shift)
            out_c2 = kron.solve(vec.c2, k=3, shift=shift)
            rc1 = vec.c1.add(self._xc_g2_coupling(out_c2).scaled(-1.0))
            out_c1 = kron.solve(rc1, k=2, shift=shift)
            coupling += self._g2_vec(out_b1)
            coupling += self._g2_vec(out_c1)
        if self.has_cubic:
            out_d = kron.solve(vec.d, k=3, shift=shift)
            coupling += self._g3_vec(out_d)
        x_a = self._solve_g1(shift, np.asarray(vec.a, dtype=complex)
                             - coupling)
        return LiftedH3Vector(
            x_a, b1=out_b1, b2=out_b2, c1=out_c1, c2=out_c2, d=out_d
        )

    def _xb_g2_coupling(self, x2):
        """``X2 G2ᵀ``: the quadratic coupling feeding the b-block head.

        ``[X2 G2ᵀ][i, r] = Σ_{jk} X2[i, jk] G2[r, jk]`` contracted
        against the Tucker factors of ``X2`` — returns a 2-mode Tucker
        with left factor ``P`` and a dense accumulated right factor.
        """
        rows, ii, jj, vals = self._g2_parts
        if min(x2.core.shape, default=0) == 0 or rows.size == 0:
            return FactoredTensor.zeros((self.n, self.n))
        p, q, s = x2.factors
        # t[e, a] = Σ_bc C[a,b,c] Q[j_e, b] S[k_e, c]  with (j, k) the
        # decomposed pair index of G2's flat n² column — streamed over
        # nonzero spans so the (nnz, rank) temporary never materializes
        # whole under a tight max_block plan.
        rank = x2.core.shape[0]
        right = np.zeros(
            (self.n, rank), dtype=np.result_type(x2.core, q, s)
        )
        for lo, hi in _coo_spans(rows.size, rank):
            t = np.einsum(
                "abc,eb,ec->ea", x2.core, q[ii[lo:hi]], s[jj[lo:hi]],
                optimize=True,
            )
            scatter_add_rows(right, rows[lo:hi], vals[lo:hi, None] * t)
        core = np.eye(rank, dtype=right.dtype)
        return FactoredTensor(core, [p, right])

    def _xc_g2_coupling(self, x2):
        """``G2 X2``: the quadratic coupling feeding the c-block head.

        ``[G2 X2][r, c] = Σ_{ij} G2[r, ij] X2[ij, c]`` — returns a
        2-mode Tucker with a dense accumulated left factor and right
        factor ``S``.
        """
        rows, ii, jj, vals = self._g2_parts
        if min(x2.core.shape, default=0) == 0 or rows.size == 0:
            return FactoredTensor.zeros((self.n, self.n))
        p, q, s = x2.factors
        # t[e, c] = Σ_ab C[a,b,c] P[i_e, a] Q[j_e, b] — streamed over
        # nonzero spans like the b-block coupling above.
        rank = x2.core.shape[2]
        left = np.zeros(
            (self.n, rank), dtype=np.result_type(x2.core, p, q)
        )
        for lo, hi in _coo_spans(rows.size, rank):
            t = np.einsum(
                "abc,ea,eb->ec", x2.core, p[ii[lo:hi]], q[jj[lo:hi]],
                optimize=True,
            )
            scatter_add_rows(left, rows[lo:hi], vals[lo:hi, None] * t)
        core = np.eye(rank, dtype=left.dtype)
        return FactoredTensor(core, [left, s])
