"""Matrix-free linear operators for the lifted associated realizations.

The associated transform turns the second-order Volterra transfer function
of an ``n``-state QLDAE into a linear system with state matrix (paper
eq. 17)::

    Ã2 = [ G1   G2      ]        (size n + n²)
         [ 0    G1 ⊕ G1 ]

and the third-order one into block-triangular systems whose inner blocks
are Kronecker sums of ``Ã2`` and ``G1`` (sizes ``n·(n+n²)``).  These are
far too large to form; this module provides operator objects exposing
``matvec`` and shifted solves that exploit the block-triangular +
Kronecker-sum structure, so a Krylov iteration touches only
``O(n²)``/``O(n³)`` memory.
"""

import threading

import numpy as np
import scipy.linalg as sla
import scipy.sparse as sp

from .._validation import as_square_matrix, as_sparse
from ..errors import ValidationError
from .kronecker import kron_sum_power, kron_sum_power_matvec
from .schur import SchurForm
from .sylvester import KronSumSolver

__all__ = [
    "DenseOperator",
    "KronSumOperator",
    "QuadraticLiftedOperator",
    "solve_left_kron_sum",
    "solve_right_kron_sum",
]


class DenseOperator:
    """Thin operator wrapper around a dense matrix (testing / small n).

    Provides the same ``matvec`` / ``solve_shifted`` interface as the
    structured operators, with one LU factorization cached per shift.
    """

    def __init__(self, a):
        self.a = as_square_matrix(a, "a")
        self.shape = self.a.shape
        self._lu_cache = {}
        self._lock = threading.Lock()

    @property
    def dim(self):
        return self.shape[0]

    def matvec(self, x):
        return self.a @ np.asarray(x)

    def _lu(self, shift, transpose):
        key = (complex(shift), bool(transpose))
        with self._lock:
            lu = self._lu_cache.get(key)
        if lu is None:
            mat = self.a.T if transpose else self.a
            shifted = mat.astype(complex) + shift * np.eye(self.dim)
            lu = sla.lu_factor(shifted)
            with self._lock:
                lu = self._lu_cache.setdefault(key, lu)
        return lu

    def solve_shifted(self, shift, rhs):
        """Solve ``(A + shift I) x = rhs``."""
        return sla.lu_solve(self._lu(shift, False), np.asarray(rhs, complex))

    def solve_shifted_transpose(self, shift, rhs):
        """Solve ``(Aᵀ + shift I) x = rhs``."""
        return sla.lu_solve(self._lu(shift, True), np.asarray(rhs, complex))

    def dense(self):
        return self.a.copy()


class KronSumOperator:
    """Operator for ``k© A = A ⊕ ... ⊕ A`` (k terms) of size ``n**k``."""

    def __init__(self, a, k, solver=None):
        self.a = as_square_matrix(a, "a")
        self.k = int(k)
        if self.k < 1 or self.k > 3:
            raise ValidationError(f"k must be 1..3, got {k}")
        self.n = self.a.shape[0]
        self.shape = (self.n**self.k,) * 2
        self.solver = solver if solver is not None else KronSumSolver(self.a)

    @property
    def dim(self):
        return self.shape[0]

    def matvec(self, x):
        if self.k == 1:
            return self.a @ np.asarray(x)
        return kron_sum_power_matvec(self.a, self.k, x)

    def solve_shifted(self, shift, rhs):
        """Solve ``((k© A) + shift I) x = rhs`` via the Schur sweeps."""
        return self.solver.solve(rhs, k=self.k, shift=shift)

    def solve_shifted_transpose(self, shift, rhs):
        return self.solver.solve_transpose(rhs, k=self.k, shift=shift)

    def dense(self):
        if self.dim > 4096:
            raise ValidationError(
                f"refusing to densify a {self.dim}-dimensional Kronecker sum"
            )
        mat = kron_sum_power(self.a, self.k)
        return mat.toarray() if sp.issparse(mat) else np.asarray(mat)


class QuadraticLiftedOperator:
    """The paper's eq.-(17) state matrix ``Ã2`` as a structured operator.

    ``Ã2 = [[G1, G2], [0, G1 ⊕ G1]]`` with ``G1`` dense ``n × n`` and
    ``G2`` (sparse) ``n × n²``.  Shifted solves use block back-substitution
    with the Schur-based Kronecker-sum solver for the ``(2, 2)`` block —
    never forming the ``n² × n²`` matrix — at ``O(n³)`` per solve.
    """

    def __init__(self, g1, g2, kron_solver=None, schur=None):
        self.g1 = as_square_matrix(g1, "g1")
        self.n = self.g1.shape[0]
        self.g2 = as_sparse(g2, "g2")
        if self.g2.shape != (self.n, self.n**2):
            raise ValidationError(
                f"g2 must be (n, n^2) = ({self.n}, {self.n ** 2}), "
                f"got {self.g2.shape}"
            )
        self.kron_solver = (
            kron_solver if kron_solver is not None else KronSumSolver(self.g1)
        )
        # The (1,1)-block shifted solves reuse the same Schur factors.
        self.schur = schur if schur is not None else self.kron_solver.schur
        self.shape = (self.n + self.n**2,) * 2

    @property
    def dim(self):
        return self.shape[0]

    def split(self, x):
        """Split a lifted vector into its (n,) and (n²,) parts."""
        x = np.asarray(x)
        if x.shape[-1] != self.dim and x.size != self.dim:
            raise ValidationError(
                f"vector has length {x.size}, expected {self.dim}"
            )
        x = x.reshape(self.dim)
        return x[: self.n], x[self.n :]

    def matvec(self, x):
        x1, x2 = self.split(x)
        top = self.g1 @ x1 + self.g2 @ x2
        bottom = kron_sum_power_matvec(self.g1, 2, x2)
        return np.concatenate([top, bottom])

    def solve_shifted(self, shift, rhs):
        """Solve ``(Ã2 + shift I) x = rhs`` by block back-substitution."""
        r1, r2 = self.split(np.asarray(rhs, dtype=complex))
        x2 = self.kron_solver.solve(r2, k=2, shift=shift)
        x1 = self.schur.solve_shifted(shift, r1 - self.g2 @ x2)
        return np.concatenate([x1, x2])

    def solve_shifted_transpose(self, shift, rhs):
        """Solve ``(Ã2ᵀ + shift I) x = rhs`` (forward block substitution)."""
        r1, r2 = self.split(np.asarray(rhs, dtype=complex))
        x1 = self.schur.solve_shifted_transpose(shift, r1)
        x2 = self.kron_solver.solve_transpose(
            r2 - self.g2.T @ x1, k=2, shift=shift
        )
        return np.concatenate([x1, x2])

    def dense(self):
        """Materialize ``Ã2`` (small systems / tests only)."""
        if self.dim > 4096:
            raise ValidationError(
                f"refusing to densify a {self.dim}-dimensional lifted matrix"
            )
        top = np.hstack([self.g1, self.g2.toarray()])
        ks = kron_sum_power(self.g1, 2)
        ks = ks.toarray() if sp.issparse(ks) else np.asarray(ks)
        bottom = np.hstack([np.zeros((self.n**2, self.n)), ks])
        return np.vstack([top, bottom])


def solve_left_kron_sum(schur_a, b_op, v, shift=0.0):
    """Solve ``((A ⊕ B) + shift I) x = v`` with small ``A``, operator ``B``.

    ``A`` is ``n_A × n_A`` (given by its :class:`SchurForm` *schur_a*),
    ``B`` is any operator exposing ``solve_shifted``; ``v`` is ``vec(V)``
    with ``V`` of shape ``(n_A, dim_B)`` row-major.

    With ``A = Q T Qᴴ`` the equation ``A X + X Bᵀ + shift X = V`` becomes
    ``T Y + Y Bᵀ + shift Y = Qᴴ V``; rows are swept bottom-up and each row
    costs one shifted ``B``-solve.
    """
    if not isinstance(schur_a, SchurForm):
        schur_a = SchurForm(schur_a)
    na = schur_a.n
    nb = b_op.dim
    v_mat = np.asarray(v, dtype=complex).reshape(na, nb)
    t = schur_a.t
    q = schur_a.q
    w = q.conj().T @ v_mat
    y = np.empty((na, nb), dtype=complex)
    for i in range(na - 1, -1, -1):
        rhs = w[i, :]
        if i + 1 < na:
            rhs = rhs - t[i, i + 1 :] @ y[i + 1 :, :]
        y[i, :] = b_op.solve_shifted(shift + t[i, i], rhs)
    x_mat = q @ y
    return x_mat.reshape(-1)


def solve_right_kron_sum(b_op, schur_a, v, shift=0.0):
    """Solve ``((B ⊕ A) + shift I) x = v`` with operator ``B``, small ``A``.

    ``v`` is ``vec(V)`` with ``V`` of shape ``(dim_B, n_A)`` row-major.
    The equation ``B X + X Aᵀ + shift X = V`` is transformed on the right
    with ``conj(Q)`` so the coupling matrix becomes ``Tᵀ``; columns are
    swept right-to-left with one shifted ``B``-solve each.
    """
    if not isinstance(schur_a, SchurForm):
        schur_a = SchurForm(schur_a)
    na = schur_a.n
    nb = b_op.dim
    v_mat = np.asarray(v, dtype=complex).reshape(nb, na)
    t = schur_a.t
    q = schur_a.q
    w = v_mat @ q.conj()
    x = np.empty((nb, na), dtype=complex)
    for j in range(na - 1, -1, -1):
        rhs = w[:, j]
        if j + 1 < na:
            rhs = rhs - x[:, j + 1 :] @ t[j, j + 1 :]
        x[:, j] = b_op.solve_shifted(shift + t[j, j], rhs)
    x_mat = x @ q.T
    return x_mat.reshape(-1)
