"""Vectorized (and optionally JIT-compiled) scatter kernels.

``np.add.at`` is the textbook way to accumulate COO-style contributions
into rows of an output array, and it is also one of numpy's slowest
operations: the buffered ufunc machinery dispatches per *element*, so
the streaming contractions built on it — ``kronecker.sparse_kron_apply``,
the factored-chain Tucker couplings in :mod:`repro.linalg.operators`,
the H3/Ĝ2 COO assemblies in :mod:`repro.linalg.sylvester` — spend most
of their time in scatter bookkeeping rather than arithmetic.

:func:`scatter_add_rows` replaces it for the leading-axis ("row")
scatter those sites share:

* 1-D real output      → ``np.bincount`` (a single C pass),
* 1-D complex output   → two ``bincount`` passes (real, imag),
* N-D output           → stable sort + ``np.add.reduceat`` per row
  group, skipping the sort entirely when the row index is already
  non-decreasing (CSR→COO row indices always are).

Numerical equivalence: the 1-D paths (``bincount``) and the JIT path
walk contributions in their original element order and are
**bit-identical** to the ``np.add.at`` they replace (for the
zero-initialized outputs every call site uses).  The N-D ``reduceat``
path sums each row group with numpy's pairwise reduction instead of
strictly sequentially — *more* accurate, and within a few ulps of the
sequential result; every caller tolerance (≤ 1e-10 backend parity, the
analytic kernel checks) sits orders of magnitude above that.  Callers
accumulating into an already populated output should keep
``np.add.at`` (grouped summation would reassociate against the
existing values).

JIT path
--------
When numba is importable and ``REPRO_JIT`` is ``auto`` (the default),
the scatter compiles to a trivial typed loop — element-ordered, hence
also bit-identical — which beats even the vectorized paths on large
streams.  ``REPRO_JIT=off`` disables compilation; a missing or broken
numba silently falls back to the pure-numpy paths.  :func:`jit_status`
reports what actually happened, for benchmarks and bug reports.
"""

import os
import threading

import numpy as np

from ..errors import ValidationError

__all__ = ["scatter_add_rows", "jit_status"]

_JIT_MODES = ("auto", "off")

_jit_lock = threading.Lock()
#: None = not yet resolved; False = unavailable/disabled; otherwise the
#: compiled (1-D kernel, 2-D kernel) pair.
_jit_kernels = None


def _jit_mode():
    raw = os.environ.get("REPRO_JIT", "").strip().lower() or "auto"
    if raw not in _JIT_MODES:
        raise ValidationError(
            f"REPRO_JIT must be one of {_JIT_MODES}, got {raw!r}"
        )
    return raw


def _build_jit_kernels():
    """Compile the scatter loops with numba, or return False."""
    try:
        from numba import njit
    except Exception:
        return False
    try:

        @njit(cache=False)
        def scatter_1d(out, rows, contrib):
            for e in range(rows.size):
                out[rows[e]] += contrib[e]

        @njit(cache=False)
        def scatter_2d(out, rows, contrib):
            for e in range(rows.size):
                row = rows[e]
                for k in range(contrib.shape[1]):
                    out[row, k] += contrib[e, k]

        # Force compilation now so a broken toolchain surfaces here —
        # where the fallback catches it — not inside a solve.
        probe_rows = np.zeros(1, dtype=np.intp)
        scatter_1d(np.zeros(1), probe_rows, np.zeros(1))
        scatter_2d(np.zeros((1, 1)), probe_rows, np.zeros((1, 1)))
        return scatter_1d, scatter_2d
    except Exception:
        return False


def _jit():
    """The compiled kernel pair, or False when JIT is off/unavailable."""
    global _jit_kernels
    if _jit_mode() == "off":
        return False
    with _jit_lock:
        if _jit_kernels is None:
            _jit_kernels = _build_jit_kernels()
        return _jit_kernels


def jit_status():
    """``{"mode", "available", "active"}`` for the optional JIT path."""
    mode = _jit_mode()
    if mode == "off":
        return {"mode": mode, "available": None, "active": False}
    kernels = _jit()
    return {
        "mode": mode,
        "available": bool(kernels),
        "active": bool(kernels),
    }


def _scatter_sorted(out, rows, contrib):
    """Grouped ``reduceat`` scatter assuming *rows* is non-decreasing."""
    starts = np.flatnonzero(np.diff(rows)) + 1
    starts = np.concatenate((np.zeros(1, dtype=starts.dtype), starts))
    sums = np.add.reduceat(contrib, starts, axis=0)
    out[rows[starts]] += sums


def scatter_add_rows(out, rows, contrib):
    """``out[rows[e]] += contrib[e]`` over all elements, fast.

    Parameters
    ----------
    out : (n, ...) ndarray
        Zero-initialized accumulator (see module docstring for the
        numerical-equivalence contract).  Modified in place and
        returned.
    rows : (nnz,) integer ndarray
        Target row per contribution; duplicates accumulate.
    contrib : (nnz, ...) ndarray
        Per-element contributions; trailing shape must match *out*.
    """
    rows = np.asarray(rows)
    contrib = np.asarray(contrib)
    if rows.size == 0:
        return out
    kernels = _jit()
    if kernels:
        scatter_1d, scatter_2d = kernels
        flat_rows = np.ascontiguousarray(rows, dtype=np.intp)
        if out.ndim == 1:
            scatter_1d(out, flat_rows, np.ascontiguousarray(contrib))
        else:
            scatter_2d(
                out.reshape(out.shape[0], -1),
                flat_rows,
                np.ascontiguousarray(
                    contrib.reshape(contrib.shape[0], -1)
                ),
            )
        return out
    if out.ndim == 1 and out.dtype.kind in "fc" and contrib.dtype.kind in "fc":
        minlength = out.shape[0]
        if np.iscomplexobj(out) or np.iscomplexobj(contrib):
            out += np.bincount(
                rows, weights=contrib.real, minlength=minlength
            ) + 1j * np.bincount(
                rows, weights=contrib.imag, minlength=minlength
            )
        else:
            out += np.bincount(rows, weights=contrib, minlength=minlength)
        return out
    if rows.size > 1 and not (np.diff(rows) >= 0).all():
        order = np.argsort(rows, kind="stable")
        rows = rows[order]
        contrib = contrib[order]
    _scatter_sorted(out, rows, contrib)
    return out
