"""Schur-form utilities for fast shifted solves.

The paper's §2.3 accelerates every solve with ``(k© G1 − s I)`` by
factoring ``G1`` once: with the Schur form ``G1 = Q R Qᵀ`` the repeated
Kronecker sum inherits the factorization
``k© G1 = (Q k©)(k© R)(Q k©)ᵀ`` and each solve reduces to a
(quasi-)triangular backward substitution.

We implement the same idea with the **complex** Schur form, whose ``T``
factor is strictly upper triangular.  That removes the 2×2-block case of
the real quasi-triangular form at the cost of complex arithmetic; for real
inputs all results are real up to rounding (asserted in the test suite).
"""

import threading

import numpy as np
import scipy.linalg as sla

from .._validation import as_square_matrix
from ..errors import NumericalError

__all__ = ["SchurForm"]

#: Relative threshold below which a shifted triangular diagonal is
#: considered singular.
_SINGULAR_RTOL = 1e-13


class SchurForm:
    """Complex Schur decomposition ``A = Q T Qᴴ`` with shifted solves.

    Precomputes the factorization once so that solves with ``A + αI`` and
    ``Aᵀ + αI`` (for arbitrary, possibly complex, shifts ``α``) cost one
    triangular substitution each.

    Parameters
    ----------
    a : (n, n) array_like
        Square matrix to factor (dense; sparse inputs are densified).

    Attributes
    ----------
    t : (n, n) complex ndarray
        Upper-triangular Schur factor.
    q : (n, n) complex ndarray
        Unitary factor.
    eigenvalues : (n,) complex ndarray
        ``diag(T)`` — the eigenvalues of ``A``.
    """

    def __init__(self, a):
        a = as_square_matrix(a, "a")
        self.n = a.shape[0]
        t, q = sla.schur(a.astype(complex), output="complex")
        self.t = t
        self.q = q
        self.eigenvalues = np.diag(t).copy()
        self._scale = max(np.abs(self.eigenvalues).max(), 1.0)
        # Reusable work matrix for shifted triangular solves: only the
        # diagonal depends on the shift, so per-solve cost is O(n) setup
        # instead of an O(n²) allocate-and-add of ``T + alpha I``.  Held
        # per thread: concurrent tasks from the solve-plan engine each
        # mutate their own copy, so shifted solves are thread-safe.
        self._work = threading.local()

    def _shifted_t(self, alpha):
        work = getattr(self._work, "mat", None)
        if work is None:
            work = self.t.copy()
            self._work.mat = work
        np.fill_diagonal(work, self.eigenvalues + alpha)
        return work

    def _check_shift(self, alpha):
        """Raise when ``A + alpha I`` is (numerically) singular."""
        gap = np.abs(self.eigenvalues + alpha).min()
        if gap <= _SINGULAR_RTOL * max(self._scale, abs(alpha)):
            raise NumericalError(
                f"shifted matrix A + ({alpha})I is numerically singular "
                f"(smallest |lambda + alpha| = {gap:.3e})"
            )

    def solve_shifted(self, alpha, rhs):
        """Solve ``(A + alpha I) x = rhs``.

        *rhs* may be a vector or a matrix of stacked right-hand sides.
        Returns a complex ndarray of the same shape.
        """
        self._check_shift(alpha)
        rhs = np.asarray(rhs, dtype=complex)
        squeeze = rhs.ndim == 1
        if squeeze:
            rhs = rhs[:, None]
        w = self.q.conj().T @ rhs
        y = sla.solve_triangular(self._shifted_t(alpha), w, lower=False)
        x = self.q @ y
        return x[:, 0] if squeeze else x

    def solve_shifted_transpose(self, alpha, rhs):
        """Solve ``(Aᵀ + alpha I) x = rhs`` (plain transpose, no conjugate).

        Uses ``Aᵀ = conj(Q) Tᵀ Qᵀ``, so the substitution runs on the
        lower-triangular ``Tᵀ``.
        """
        self._check_shift(alpha)
        rhs = np.asarray(rhs, dtype=complex)
        squeeze = rhs.ndim == 1
        if squeeze:
            rhs = rhs[:, None]
        w = self.q.T @ rhs
        # (Tᵀ + alpha I) y = w  solved as an upper-triangular transposed
        # system.
        y = sla.solve_triangular(
            self._shifted_t(alpha), w, lower=False, trans="T"
        )
        x = self.q.conj() @ y
        return x[:, 0] if squeeze else x

    def matvec(self, x):
        """Apply ``A @ x`` using the factored form (mainly for testing)."""
        x = np.asarray(x, dtype=complex)
        return self.q @ (self.t @ (self.q.conj().T @ x))
