"""Shared one-shot LU helpers (sparse-aware).

:func:`sparse_lu` is the one home of the SuperLU wrapper (error mapping
plus the near-singular pivot guard shared with
:class:`~repro.linalg.resolvent.ResolventFactory`'s sparse branch);
:func:`factorized_solver` layers the sparse/dense dispatch on top for
callers that just need a ``solve`` callable — the shift-invert Krylov
chains (:mod:`repro.mor.krylov`, :mod:`repro.mor.norm`) and the
variational integrator (:mod:`repro.volterra.response`).  Chord-Newton
(:mod:`repro.simulation.newton`) wraps :func:`sparse_lu` in its own
cache-facing factorization objects instead, because the chord cache
tracks which storage form it holds.
"""

import hashlib
import threading
from collections import OrderedDict

import numpy as np
import scipy.linalg as sla
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..errors import NumericalError

__all__ = [
    "csc_pattern_digest",
    "factorized_solver",
    "shifted_matrix",
    "sparse_lu",
    "sparse_lu_shared",
    "symbolic_cache_stats",
]

#: A sparse-LU U-pivot smaller than this multiple of the largest pivot
#: marks the matrix numerically singular (mirrors the dense Schur
#: eigenvalue-gap threshold in the resolvent factory).
_PIVOT_RTOL = 1e-13

#: Distinct sparsity patterns whose fill-reducing column orderings are
#: kept alive for :func:`sparse_lu_shared`.  A parametric corner sweep
#: uses exactly one pattern; the bound only matters when many unrelated
#: systems interleave.
_SYMBOLIC_CACHE_CAP = 32

_SYMBOLIC_LOCK = threading.Lock()
_SYMBOLIC_CACHE = OrderedDict()  # pattern digest -> perm_c ndarray


def _guard_pivots(lu):
    pivots = np.abs(lu.U.diagonal())
    if pivots.size and pivots.min() <= _PIVOT_RTOL * pivots.max():
        raise NumericalError(
            "matrix is numerically singular (sparse LU pivot ratio "
            f"{pivots.min() / max(pivots.max(), 1e-300):.3e})"
        )


def _splu(csc, guard, **options):
    try:
        lu = spla.splu(csc, **options)
    except RuntimeError as exc:
        raise NumericalError(f"sparse LU failed: {exc}") from exc
    if guard:
        _guard_pivots(lu)
    return lu


def sparse_lu(mat, guard=True):
    """SuperLU factorization of a sparse square matrix.

    With *guard* (the default) a vanishing U pivot raises
    :class:`~repro.errors.NumericalError` instead of letting the
    backsolve return garbage silently.  Chord-Newton passes
    ``guard=False``: its near-singular iteration matrices are recovered
    by backtracking/refresh, matching the dense LAPACK behavior.
    """
    return _splu(sp.csc_matrix(mat), guard)


def csc_pattern_digest(mat):
    """Content digest of a sparse matrix's CSC sparsity pattern.

    Hashes shape + ``indptr`` + ``indices`` (never the data), so two
    matrices with the same structure — e.g. every corner of a parameter
    sweep — share one digest regardless of their numeric values.
    """
    csc = mat if sp.issparse(mat) and mat.format == "csc" \
        else sp.csc_matrix(mat)
    digest = hashlib.sha256()
    digest.update(repr(csc.shape).encode())
    digest.update(np.ascontiguousarray(csc.indptr).tobytes())
    digest.update(np.ascontiguousarray(csc.indices).tobytes())
    return digest.hexdigest()


class _PermutedLU:
    """SuperLU factorization of a column-pre-permuted matrix.

    Wraps ``splu(A[:, perm])`` so callers see solves in the original
    column order: ``A x = b`` with ``x = Π y`` where ``A[:, perm] y = b``
    (and the transposed/adjoint variants permute the right-hand side
    instead).  Exposes ``.U``/``.L`` of the underlying factorization for
    the pivot guard.
    """

    __slots__ = ("_lu", "_perm")

    def __init__(self, lu, perm):
        self._lu = lu
        self._perm = perm

    @property
    def U(self):
        return self._lu.U

    @property
    def L(self):
        return self._lu.L

    def solve(self, rhs, trans="N"):
        if trans == "N":
            y = self._lu.solve(np.ascontiguousarray(rhs))
            out = np.empty_like(y)
            out[self._perm] = y
            return out
        if trans in ("T", "H"):
            permuted = np.ascontiguousarray(np.asarray(rhs)[self._perm])
            return self._lu.solve(permuted, trans=trans)
        raise ValueError(f"unsupported trans {trans!r}")


def sparse_lu_shared(mat, pattern, guard=True):
    """Factor *mat* reusing the symbolic analysis cached for *pattern*.

    SuperLU has no public symbolic/numeric split, but its expensive
    structural work — the fill-reducing column ordering — depends only
    on the sparsity pattern.  The first factorization of a pattern runs
    the full analysis and caches ``perm_c``; later factorizations of
    the *same* pattern (every corner of a parameter sweep, every shift
    of one resolvent factory) pre-permute the columns and factor with
    ``permc_spec="NATURAL"``, i.e. a numeric-only refactorization under
    the shared ordering.  Row (partial) pivoting still runs per matrix,
    so the numerics are those of a fresh factorization.

    *pattern* is the :func:`csc_pattern_digest` of *mat* (callers cache
    it; a digest from a different pattern degrades fill quality but
    never correctness).  Returns ``(lu, reused)`` where *reused* tells
    whether the cached ordering served this factorization.
    """
    csc = sp.csc_matrix(mat)
    with _SYMBOLIC_LOCK:
        perm = _SYMBOLIC_CACHE.get(pattern)
        if perm is not None:
            _SYMBOLIC_CACHE.move_to_end(pattern)
    if perm is None or perm.shape[0] != csc.shape[1]:
        lu = _splu(csc, guard)
        with _SYMBOLIC_LOCK:
            _SYMBOLIC_CACHE[pattern] = np.asarray(lu.perm_c).copy()
            while len(_SYMBOLIC_CACHE) > _SYMBOLIC_CACHE_CAP:
                _SYMBOLIC_CACHE.popitem(last=False)
        return lu, False
    lu = _splu(csc[:, perm], guard, permc_spec="NATURAL")
    return _PermutedLU(lu, perm), True


def symbolic_cache_stats():
    """Size snapshot of the shared symbolic-analysis cache (tests)."""
    with _SYMBOLIC_LOCK:
        return {"patterns": len(_SYMBOLIC_CACHE)}


def shifted_matrix(a, shift):
    """``A − shift·I`` in storage and dtype matching *a* and *shift*.

    Sparse input stays sparse (CSC, ready for ``splu``); dense input
    relies on numpy's dtype promotion for complex shifts.
    """
    n = a.shape[0]
    if sp.issparse(a):
        complex_shift = (
            np.iscomplexobj(np.asarray(shift)) and np.imag(shift) != 0.0
        )
        dtype = complex if complex_shift or a.dtype.kind == "c" else float
        return sp.csc_matrix(
            a.astype(dtype)
            - shift * sp.identity(n, dtype=dtype, format="csc")
        )
    return np.asarray(a) - shift * np.eye(n)


def factorized_solver(mat):
    """Factor *mat* once and return a ``solve(rhs)`` callable.

    Sparse matrices go through SuperLU with a pivot-ratio singularity
    guard (raising :class:`~repro.errors.NumericalError`); dense ones
    through LAPACK ``lu_factor`` with its native error behavior.
    """
    if sp.issparse(mat):
        return sparse_lu(mat).solve
    lu = sla.lu_factor(mat)

    def solve(rhs):
        return sla.lu_solve(lu, rhs)

    return solve
