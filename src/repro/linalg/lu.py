"""Shared one-shot LU helpers (sparse-aware).

:func:`sparse_lu` is the one home of the SuperLU wrapper (error mapping
plus the near-singular pivot guard shared with
:class:`~repro.linalg.resolvent.ResolventFactory`'s sparse branch);
:func:`factorized_solver` layers the sparse/dense dispatch on top for
callers that just need a ``solve`` callable — the shift-invert Krylov
chains (:mod:`repro.mor.krylov`, :mod:`repro.mor.norm`) and the
variational integrator (:mod:`repro.volterra.response`).  Chord-Newton
(:mod:`repro.simulation.newton`) wraps :func:`sparse_lu` in its own
cache-facing factorization objects instead, because the chord cache
tracks which storage form it holds.
"""

import numpy as np
import scipy.linalg as sla
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..errors import NumericalError

__all__ = ["factorized_solver", "shifted_matrix", "sparse_lu"]

#: A sparse-LU U-pivot smaller than this multiple of the largest pivot
#: marks the matrix numerically singular (mirrors the dense Schur
#: eigenvalue-gap threshold in the resolvent factory).
_PIVOT_RTOL = 1e-13


def sparse_lu(mat, guard=True):
    """SuperLU factorization of a sparse square matrix.

    With *guard* (the default) a vanishing U pivot raises
    :class:`~repro.errors.NumericalError` instead of letting the
    backsolve return garbage silently.  Chord-Newton passes
    ``guard=False``: its near-singular iteration matrices are recovered
    by backtracking/refresh, matching the dense LAPACK behavior.
    """
    try:
        lu = spla.splu(sp.csc_matrix(mat))
    except RuntimeError as exc:
        raise NumericalError(f"sparse LU failed: {exc}") from exc
    if guard:
        pivots = np.abs(lu.U.diagonal())
        if pivots.size and pivots.min() <= _PIVOT_RTOL * pivots.max():
            raise NumericalError(
                "matrix is numerically singular (sparse LU pivot ratio "
                f"{pivots.min() / max(pivots.max(), 1e-300):.3e})"
            )
    return lu


def shifted_matrix(a, shift):
    """``A − shift·I`` in storage and dtype matching *a* and *shift*.

    Sparse input stays sparse (CSC, ready for ``splu``); dense input
    relies on numpy's dtype promotion for complex shifts.
    """
    n = a.shape[0]
    if sp.issparse(a):
        complex_shift = (
            np.iscomplexobj(np.asarray(shift)) and np.imag(shift) != 0.0
        )
        dtype = complex if complex_shift or a.dtype.kind == "c" else float
        return sp.csc_matrix(
            a.astype(dtype)
            - shift * sp.identity(n, dtype=dtype, format="csc")
        )
    return np.asarray(a) - shift * np.eye(n)


def factorized_solver(mat):
    """Factor *mat* once and return a ``solve(rhs)`` callable.

    Sparse matrices go through SuperLU with a pivot-ratio singularity
    guard (raising :class:`~repro.errors.NumericalError`); dense ones
    through LAPACK ``lu_factor`` with its native error behavior.
    """
    if sp.issparse(mat):
        return sparse_lu(mat).solve
    lu = sla.lu_factor(mat)

    def solve(rhs):
        return sla.lu_solve(lu, rhs)

    return solve
