"""Arnoldi iteration and orthonormal-basis utilities.

The projection bases for both the proposed associated-transform NMOR and
the NORM baseline are built here: a standard Arnoldi process (modified
Gram–Schmidt with one reorthogonalization pass, happy-breakdown aware)
plus helpers to merge several Krylov/moment blocks into one orthonormal
projection matrix with rank deflation.
"""

import numpy as np

from .._validation import check_positive_int
from ..errors import NumericalError, ValidationError

__all__ = [
    "arnoldi",
    "orthonormalize",
    "merge_bases",
    "ArnoldiResult",
]

#: Vectors whose norm falls below this multiple of the starting norm are
#: treated as linearly dependent (happy breakdown / deflation).
_DEFLATION_RTOL = 1e-10


class ArnoldiResult:
    """Container for an Arnoldi factorization ``A V_m = V_{m+1} H̄_m``.

    Attributes
    ----------
    basis : (n, m) ndarray
        Orthonormal Krylov basis ``V_m``.
    hessenberg : (m+1, m) or (m, m) ndarray
        The (extended) Hessenberg matrix; square when breakdown occurred.
    breakdown : bool
        True when the iteration terminated early because the Krylov space
        is invariant (happy breakdown).
    """

    def __init__(self, basis, hessenberg, breakdown):
        self.basis = basis
        self.hessenberg = hessenberg
        self.breakdown = breakdown

    @property
    def size(self):
        return self.basis.shape[1]


def arnoldi(apply_op, start, steps, reorthogonalize=True):
    """Run *steps* Arnoldi iterations of the operator *apply_op*.

    Parameters
    ----------
    apply_op : callable
        Maps a vector of length ``n`` to a vector of length ``n`` (e.g.
        ``lambda v: lu_solve(lu, v)`` for shift-invert moment matching).
    start : (n,) array_like
        Starting vector (need not be normalized).
    steps : int
        Maximum Krylov dimension.
    reorthogonalize : bool
        Use two block Gram-Schmidt passes (CGS2) for numerical
        orthogonality (recommended; cheap relative to the solves).
        When False, a single modified-Gram-Schmidt pass runs instead.

    Returns
    -------
    ArnoldiResult
    """
    steps = check_positive_int(steps, "steps")
    v0 = np.asarray(start, dtype=float if np.isrealobj(start) else complex)
    v0 = v0.reshape(-1)
    norm0 = np.linalg.norm(v0)
    if norm0 == 0.0:
        raise ValidationError("Arnoldi starting vector is zero")
    n = v0.size
    dtype = v0.dtype if v0.dtype.kind == "c" else np.float64
    basis = np.empty((n, steps + 1), dtype=dtype)
    hess = np.zeros((steps + 1, steps), dtype=dtype)
    basis[:, 0] = v0 / norm0
    breakdown = False
    m = steps
    for j in range(steps):
        w = np.asarray(apply_op(basis[:, j]))
        if w.shape != (n,):
            raise ValidationError(
                f"operator returned shape {w.shape}, expected ({n},)"
            )
        if w.dtype.kind == "c" and dtype == np.float64:
            # Promote lazily if the operator introduces complex arithmetic.
            basis = basis.astype(complex)
            hess = hess.astype(complex)
            dtype = basis.dtype
        w = w.astype(dtype, copy=True)
        scale = np.linalg.norm(w)
        if reorthogonalize:
            # Block Gram-Schmidt with one reorthogonalization pass
            # (CGS2): two BLAS-2 projections instead of per-column
            # np.vdot loops, with orthogonality error matching
            # reorthogonalized MGS ("twice is enough").
            active = basis[:, : j + 1]
            for _ in range(2):
                coeffs = active.conj().T @ w
                hess[: j + 1, j] += coeffs
                w -= active @ coeffs
        else:
            # Single-pass callers keep modified Gram-Schmidt: one CGS
            # pass alone loses orthogonality like O(kappa²u) vs MGS's
            # O(kappa·u).
            for i in range(j + 1):
                coeff = np.vdot(basis[:, i], w)
                hess[i, j] += coeff
                w -= coeff * basis[:, i]
        h_next = np.linalg.norm(w)
        hess[j + 1, j] = h_next
        if h_next <= _DEFLATION_RTOL * max(scale, 1e-300):
            breakdown = True
            m = j + 1
            break
        basis[:, j + 1] = w / h_next
    if breakdown:
        return ArnoldiResult(basis[:, :m], hess[:m, :m], True)
    return ArnoldiResult(basis[:, :steps], hess[: steps + 1, :steps], False)


def orthonormalize(vectors, tol=1e-10):
    """Orthonormalize the columns of *vectors* with rank deflation.

    Uses an SVD so the retained columns span the numerically significant
    range of the input.  Columns contributing singular values below
    ``tol * s_max`` are dropped.

    Returns an (n, r) ndarray with orthonormal columns, ``r <= ncols``.
    """
    mat = np.atleast_2d(np.asarray(vectors))
    if mat.ndim != 2:
        raise ValidationError("expected a matrix of column vectors")
    if mat.shape[1] == 0:
        return mat.reshape(mat.shape[0], 0)
    u, s, _ = np.linalg.svd(mat, full_matrices=False)
    if s.size == 0 or s[0] == 0.0:
        raise NumericalError("cannot orthonormalize an all-zero block")
    rank = int(np.sum(s > tol * s[0]))
    return np.ascontiguousarray(u[:, :rank])


def merge_bases(blocks, tol=1e-10):
    """Merge several basis blocks into one orthonormal projection matrix.

    Blocks are concatenated in order and deflated jointly; real and
    imaginary parts of complex blocks are split so the final basis is
    real (projecting real system matrices with a real V keeps the ROM
    real, which the transient simulator requires).

    Every column is normalized to unit length before the joint SVD: the
    spanned subspace is scale-invariant, and without normalization the
    higher-order kernel chains (whose raw magnitude scales with
    ``‖G2‖ ‖b‖²`` or ``‖G3‖ ‖b‖³``) would be deflated away whenever the
    nonlinearity is numerically weak.

    Parameters
    ----------
    blocks : sequence of (n, k_i) arrays
    tol : float
        Relative singular-value cutoff for deflation.

    Returns
    -------
    (n, r) float ndarray with orthonormal columns.
    """
    cols = []
    n = None
    for block in blocks:
        arr = np.atleast_2d(np.asarray(block))
        if arr.shape[1] == 0:
            continue
        if n is None:
            n = arr.shape[0]
        elif arr.shape[0] != n:
            raise ValidationError(
                "basis blocks have inconsistent row counts "
                f"({arr.shape[0]} vs {n})"
            )
        if np.iscomplexobj(arr):
            cols.append(arr.real)
            imag = arr.imag
            if np.abs(imag).max() > tol * max(np.abs(arr.real).max(), 1.0):
                cols.append(imag)
        else:
            cols.append(arr)
    if not cols:
        raise ValidationError("no nonempty basis blocks to merge")
    stacked = np.hstack(cols)
    norms = np.linalg.norm(stacked, axis=0)
    keep = norms > 0.0
    if not np.any(keep):
        raise NumericalError("all basis columns are zero")
    stacked = stacked[:, keep] / norms[keep]
    return orthonormalize(stacked, tol=tol)
