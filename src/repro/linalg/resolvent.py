"""Factorization-reuse resolvent solves — the library's solve substrate.

The paper's cost argument (§2.3) is that the associated-transform method
wins because *every* shifted solve reuses one factorization of the system
matrix.  This module is the reusable embodiment of that idea for the
plain resolvent ``(s I − G1)^{-1}``:

* :class:`ResolventFactory` factors ``G1`` **once** (complex Schur form
  for dense input, sparse LU per shift for sparse input) and then serves
  ``(s I − G1)^{-1} RHS`` for *any* shift ``s`` at ``O(n²)`` per solve
  (dense path) instead of the ``O(n³)`` of a fresh ``np.linalg.solve``.
* :meth:`ResolventFactory.solve_many` batches whole shift grids: the
  right-hand side is rotated into the Schur basis once, each shift costs
  one triangular substitution, and the back-rotation is a single GEMM
  over all shifts — the primitive behind the batched frequency sweeps in
  :mod:`repro.analysis.distortion` and :mod:`repro.volterra.response`.
* :meth:`ResolventFactory.for_system` memoizes one factory per system
  object (invalidated when the state matrix is replaced), so distortion
  analysis, Volterra kernel evaluation and MOR basis construction on the
  same system all share a single factorization.

Everything caches *factorizations*, never answers: results are always
recomputed from the factored form, so cached and direct paths agree to
rounding.
"""

import threading
from collections import OrderedDict

import numpy as np
import scipy.linalg as sla
import scipy.sparse as sp

from .._validation import as_square_matrix
from ..engine import ProcessSpec, SolvePlan, chunk_bounds, get_executor
from ..engine.process import process_token, worker_cache
from ..errors import NumericalError, ValidationError
from .lu import csc_pattern_digest, sparse_lu_shared
from .schur import SchurForm

__all__ = ["ResolventFactory"]

#: Relative threshold below which ``s I − G1`` is considered singular.
_SINGULAR_RTOL = 1e-13

#: Maximum number of per-shift sparse LU factorizations kept alive.
_SPARSE_LU_CACHE = 64

#: Serializes :meth:`ResolventFactory.for_system` so that concurrent
#: callers hammering the same system always observe exactly one factory.
_FOR_SYSTEM_LOCK = threading.RLock()


class _RealSparseLU:
    """Real SuperLU factorization serving complex right-hand sides.

    Real shifts on real matrices (DC moments, real H1 chains) factor in
    real arithmetic — roughly half the flops and memory of the complex
    factorization they previously paid — and complex right-hand sides
    are served by two real backsolves (still cheaper than one complex
    backsolve on a complex factorization).
    """

    __slots__ = ("_lu",)

    def __init__(self, lu):
        self._lu = lu

    def solve(self, rhs, trans="N"):
        if np.iscomplexobj(rhs):
            real = self._lu.solve(np.ascontiguousarray(rhs.real), trans=trans)
            if np.any(rhs.imag):
                imag = self._lu.solve(
                    np.ascontiguousarray(rhs.imag), trans=trans
                )
                return real + 1j * imag
            return real.astype(complex)
        return self._lu.solve(np.ascontiguousarray(rhs), trans=trans)


def _solve_many_sparse_worker(payload):
    """Process-backend worker: one chunk of sparse per-shift solves.

    Rebuilds a :class:`ResolventFactory` from the shared-memory CSR
    matrix (memoized per worker under the parent's token, so the LRU of
    per-shift LUs persists across chunks and plans) and replays exactly
    the parent's ``_sparse_lu(s).solve(rhs)`` sequence — bit-identical
    to the serial path.
    """
    factory = worker_cache(
        ("resolvent.sparse", payload["token"]),
        lambda: ResolventFactory(payload["matrix"]),
    )
    rhs = np.ascontiguousarray(payload["rhs"])
    shifts = np.atleast_1d(np.asarray(payload["shifts"], dtype=complex))
    out = np.empty((shifts.size, factory.n, rhs.shape[1]), dtype=complex)
    for j, s in enumerate(shifts):
        out[j] = factory._sparse_lu(s).solve(rhs)
    return {"x": out}


def _solve_many_dense_worker(payload):
    """Process-backend worker: one chunk of dense triangular solves.

    Receives the parent's Schur ``T`` factor (shared memory) rather
    than ``A`` — no per-worker refactorization, and the substitution
    runs on the very same triangular matrix as the serial path.  The
    parent keeps the up-front rotation and the final back-rotation
    GEMM, so the only per-shift work here mirrors
    ``ResolventFactory._triangular``.
    """
    neg_t, diag, scale = worker_cache(
        ("resolvent.dense", payload["token"]),
        lambda: (
            -np.asarray(payload["t"]),
            np.diag(payload["t"]).copy(),
            max(np.abs(np.diag(payload["t"])).max(), 1.0),
        ),
    )
    w = payload["w"]
    shifts = np.atleast_1d(np.asarray(payload["shifts"], dtype=complex))
    n, m = w.shape
    ys = np.empty((n, shifts.size * m), dtype=complex)
    work = neg_t.copy()
    for j, s in enumerate(shifts):
        s = complex(s)
        gap = np.abs(s - diag).min()
        if gap <= _SINGULAR_RTOL * max(scale, abs(s)):
            raise NumericalError(
                f"resolvent shift s = {s} is numerically an eigenvalue "
                f"(smallest |s - lambda| = {gap:.3e})"
            )
        np.fill_diagonal(work, s - diag)
        ys[:, j * m : (j + 1) * m] = sla.solve_triangular(
            work, w, lower=False
        )
    return {"ys": ys}


class ResolventFactory:
    """Serve ``(s I − A)^{-1} RHS`` for arbitrary shifts from one setup.

    Parameters
    ----------
    a : (n, n) array_like or sparse
        System matrix.  Dense input is Schur-factored once (``A = Q T Qᴴ``,
        so ``(s I − A)^{-1} = Q (s I − T)^{-1} Qᴴ`` and every shift costs
        one triangular substitution).  Sparse input keeps its CSC form and
        caches one sparse LU per distinct shift (bounded LRU); **real**
        sparse input additionally keeps the matrix real, so real shifts
        (DC moments, real H1 chains) factor in real arithmetic — about
        half the flops and memory — and only complex shifts pay the
        complex cast (see :class:`_RealSparseLU`).
    schur : SchurForm, optional
        Precomputed factorization of a dense ``a`` to share (e.g. from an
        :class:`~repro.volterra.associated.AssociatedWorkspace`).

    Attributes
    ----------
    matrix : the matrix handed in (identity is used for cache checks).
    schur : SchurForm or None (dense path only).
    solve_count : number of resolvent applications served so far.
    """

    def __init__(self, a, schur=None):
        self._lock = threading.RLock()
        if sp.issparse(a):
            if a.shape[0] != a.shape[1]:
                raise ValidationError(
                    f"a must be square, got shape {a.shape}"
                )
            self.matrix = a
            self.n = a.shape[0]
            self.schur = None
            # Real input keeps a real CSC: real shifts then factor in
            # real arithmetic (see _RealSparseLU); the complex form is
            # built lazily only when a complex shift actually arrives.
            dtype = complex if a.dtype.kind == "c" else float
            self._csc = sp.csc_matrix(a, copy=False).astype(dtype)
            self._real = dtype is float
            self._eye = sp.identity(self.n, dtype=dtype, format="csc")
            self._csc_complex = None if self._real else self._csc
            self._eye_complex = None if self._real else self._eye
            self._lu_cache = OrderedDict()
            # Pattern digest of the shifted matrix (sI − A) per
            # arithmetic kind, computed from the first factorization:
            # the shift only changes values, so one digest per kind
            # serves every subsequent shift — and every *other* factory
            # over the same sparsity pattern (parametric corners).
            self._shift_pattern = {}
            self.sparse_lu_stats = {
                "real": 0,
                "complex": 0,
                "symbolic_analyses": 0,
                "symbolic_reuses": 0,
            }
        else:
            dense = as_square_matrix(a, "a")
            self.matrix = a if isinstance(a, np.ndarray) else dense
            self.n = dense.shape[0]
            if schur is not None and schur.n != dense.shape[0]:
                raise ValidationError(
                    "precomputed Schur form has mismatching dimension"
                )
            self.schur = schur if schur is not None else SchurForm(dense)
            # Work matrix for (s I − T): off-diagonals are fixed at −T,
            # only the diagonal changes per shift.  One copy per thread,
            # so concurrent per-shift tasks never trample each other.
            self._neg_t = -self.schur.t
            self._work = threading.local()
            self._diag = self.schur.eigenvalues
            self._scale = max(np.abs(self._diag).max(), 1.0)
        self.solve_count = 0

    # -- cache management ----------------------------------------------------

    @classmethod
    def for_system(cls, system, attr="_resolvent_factory"):
        """One factory per system object, keyed on the state matrix.

        Works for anything exposing ``.g1`` (polynomial systems) or ``.a``
        (LTI state spaces).  The cache is invalidated when the state
        matrix attribute is rebound to a different array; callers that
        mutate matrices *in place* must drop the cached attribute
        themselves.
        """
        mat = getattr(system, "g1", None)
        if mat is None:
            mat = getattr(system, "a", None)
        if mat is None:
            raise ValidationError(
                "system exposes neither .g1 nor .a; cannot build a "
                "resolvent factory"
            )
        def _lookup():
            cached = getattr(system, attr, None)
            if cached is not None and cached.matrix is mat:
                return cached
            return None

        # Compute-outside-lock, first-insert-wins: concurrent callers
        # racing on one cold system may factor G1 twice (identical
        # results, the first insert is what everyone returns), but the
        # global lock is never held across the O(n³) factorization — a
        # cold build on one system cannot stall lookups on others.
        with _FOR_SYSTEM_LOCK:
            cached = _lookup()
            if cached is not None:
                return cached
        factory = cls(mat)
        with _FOR_SYSTEM_LOCK:
            cached = _lookup()
            if cached is not None:
                return cached
            try:
                setattr(system, attr, factory)
            except AttributeError:
                pass
            return factory

    # -- internals -----------------------------------------------------------

    def _check_shift(self, s):
        gap = np.abs(s - self._diag).min()
        if gap <= _SINGULAR_RTOL * max(self._scale, abs(s)):
            raise NumericalError(
                f"resolvent shift s = {s} is numerically an eigenvalue "
                f"(smallest |s - lambda| = {gap:.3e})"
            )

    def _csc_as_complex(self):
        """The complex CSC pair (matrix, identity), built lazily."""
        with self._lock:
            if self._csc_complex is None:
                self._csc_complex = self._csc.astype(complex)
                self._eye_complex = sp.identity(
                    self.n, dtype=complex, format="csc"
                )
            return self._csc_complex, self._eye_complex

    def _factor_shift(self, key):
        """Factor ``(key I − A)`` — real arithmetic for real shifts on
        real matrices, complex otherwise."""
        # sparse_lu's pivot guard mirrors the dense path's eigenvalue-gap
        # check: a shift numerically on the spectrum raises instead of
        # returning a garbage backsolve silently.  The factorization
        # goes through the shared symbolic-analysis cache: the
        # fill-reducing column ordering is computed once per sparsity
        # pattern (module-wide, so parametric corners with identical
        # CSR structure share it) and later shifts/corners pay a
        # numeric-only refactorization.
        try:
            if self._real and key.imag == 0.0:
                kind = "real"
                shifted = self._csc * (-1.0) + key.real * self._eye
            else:
                kind = "complex"
                csc, eye = self._csc_as_complex()
                shifted = csc * (-1.0) + key * eye
            pattern = self._shift_pattern.get(kind)
            if pattern is None:
                pattern = csc_pattern_digest(shifted)
                with self._lock:
                    self._shift_pattern.setdefault(kind, pattern)
            lu, reused = sparse_lu_shared(shifted, pattern)
            if kind == "real":
                lu = _RealSparseLU(lu)
        except NumericalError as exc:
            raise NumericalError(
                f"sparse LU of (sI - A) at s = {key}: {exc}"
            ) from exc
        with self._lock:
            self.sparse_lu_stats[kind] += 1
            self.sparse_lu_stats[
                "symbolic_reuses" if reused else "symbolic_analyses"
            ] += 1
        return lu

    def _sparse_lu(self, s):
        key = complex(s)
        with self._lock:
            lu = self._lu_cache.get(key)
            if lu is not None:
                # True LRU: a hit refreshes recency so hot shifts survive
                # long sweeps over many other shifts.
                self._lu_cache.move_to_end(key)
                return lu
        # Factor outside the lock so concurrent distinct shifts overlap;
        # two threads racing on the *same* cold shift duplicate the
        # factorization (identical results) and the first insert wins.
        lu = self._factor_shift(key)
        with self._lock:
            existing = self._lu_cache.get(key)
            if existing is not None:
                self._lu_cache.move_to_end(key)
                return existing
            self._lu_cache[key] = lu
            if len(self._lu_cache) > _SPARSE_LU_CACHE:
                self._lu_cache.popitem(last=False)
        return lu

    def _triangular(self, s, w):
        """Solve ``(s I − T) y = w`` on this thread's −T work matrix."""
        self._check_shift(s)
        work = getattr(self._work, "mat", None)
        if work is None:
            work = self._neg_t.copy()
            self._work.mat = work
        np.fill_diagonal(work, s - self._diag)
        return sla.solve_triangular(work, w, lower=False)

    # -- public API ----------------------------------------------------------

    def solve(self, s, rhs):
        """Solve ``(s I − A) x = rhs`` for one shift.

        *rhs* may be a vector or a matrix of stacked right-hand sides;
        the result is complex with the same shape.
        """
        rhs = np.asarray(rhs, dtype=complex)
        squeeze = rhs.ndim == 1
        mat = rhs[:, None] if squeeze else rhs
        if mat.shape[0] != self.n:
            raise ValidationError(
                f"rhs has {mat.shape[0]} rows, expected {self.n}"
            )
        with self._lock:
            self.solve_count += mat.shape[1]
        if self.schur is None:
            x = self._sparse_lu(s).solve(np.ascontiguousarray(mat))
        else:
            w = self.schur.q.conj().T @ mat
            x = self.schur.q @ self._triangular(s, w)
        return x[:, 0] if squeeze else x

    def solve_transpose(self, s, rhs):
        """Solve ``(s I − Aᵀ) x = rhs`` for one shift.

        Reuses the same factorization as :meth:`solve`: the dense path
        runs the transposed triangular substitution on the shared Schur
        form; the sparse path serves ``(s I − A)ᵀ x = rhs`` from the
        cached per-shift sparse LU via a transposed backsolve — no second
        factorization.  This is what lets the low-rank Π Sylvester
        iteration (:mod:`repro.linalg.sylvester`) generate its
        ``G1ᵀ``-sided Krylov directions at circuit scale.
        """
        rhs = np.asarray(rhs, dtype=complex)
        squeeze = rhs.ndim == 1
        mat = rhs[:, None] if squeeze else rhs
        if mat.shape[0] != self.n:
            raise ValidationError(
                f"rhs has {mat.shape[0]} rows, expected {self.n}"
            )
        with self._lock:
            self.solve_count += mat.shape[1]
        if self.schur is None:
            x = self._sparse_lu(s).solve(
                np.ascontiguousarray(mat), trans="T"
            )
        else:
            # (s I − Aᵀ) x = rhs  ⇔  (Aᵀ + (−s) I) x = −rhs.
            x = -self.schur.solve_shifted_transpose(-s, mat)
        return x[:, 0] if squeeze else x

    def solve_many(self, shifts, rhs):
        """Solve ``(s I − A) x = rhs`` for a whole grid of shifts.

        Parameters
        ----------
        shifts : sequence of complex
        rhs : (n,) or (n, m) array_like
            Shared right-hand side (e.g. the input matrix ``B`` for a
            frequency sweep of ``H1``).

        Returns
        -------
        (len(shifts), n) or (len(shifts), n, m) complex ndarray.

        On the dense path the basis rotations are hoisted out of the
        shift loop: one ``Qᴴ RHS`` up front, one ``Q @ [y_1 | y_2 | ...]``
        GEMM at the end, and a single triangular substitution per shift.

        The per-shift solves have no data dependencies, so the grid is
        emitted as a :class:`~repro.engine.SolvePlan` of contiguous
        chunks — one per worker of the configured engine backend; the
        default serial backend reproduces the historical inline loop
        exactly.  Under the process backend each chunk ships to a
        worker process: the sparse path sends the CSR matrix through
        shared memory and replays the identical LU/solve sequence
        (bit-identical results); the dense path sends the parent's
        Schur ``T`` factor, so workers run the same triangular
        substitutions and the parent keeps the back-rotation GEMM.
        """
        shifts = np.atleast_1d(np.asarray(shifts, dtype=complex))
        rhs = np.asarray(rhs, dtype=complex)
        squeeze = rhs.ndim == 1
        mat = rhs[:, None] if squeeze else rhs
        if mat.shape[0] != self.n:
            raise ValidationError(
                f"rhs has {mat.shape[0]} rows, expected {self.n}"
            )
        k, m = shifts.size, mat.shape[1]
        with self._lock:
            self.solve_count += k * m
        executor = get_executor()
        workers = executor.workers
        ship = (
            getattr(executor, "backend_name", "serial") == "process"
            and k > 1
        )
        if ship:
            token = process_token(self)
        if self.schur is None:
            dense_rhs = np.ascontiguousarray(mat)
            out = np.empty((k, self.n, m), dtype=complex)

            def _sparse_chunk(lo, hi):
                for idx in range(lo, hi):
                    out[idx] = self._sparse_lu(shifts[idx]).solve(dense_rhs)

            def _sparse_merge(lo, hi):
                def apply(result):
                    out[lo:hi] = result["x"]

                return apply

            plan = SolvePlan("resolvent.solve_many[sparse]")
            for lo, hi in chunk_bounds(k, workers):
                task = plan.add(_sparse_chunk, lo, hi)
                if ship:
                    task.spec = ProcessSpec(
                        "repro.linalg.resolvent:_solve_many_sparse_worker",
                        lambda lo=lo, hi=hi: {
                            "token": token,
                            "matrix": self.matrix,
                            "rhs": dense_rhs,
                            "shifts": shifts[lo:hi],
                        },
                        merge=_sparse_merge(lo, hi),
                    )
            plan.execute()
        else:
            w = self.schur.q.conj().T @ mat
            ys = np.empty((self.n, k * m), dtype=complex)

            def _dense_chunk(lo, hi):
                for idx in range(lo, hi):
                    s = shifts[idx]
                    ys[:, idx * m : (idx + 1) * m] = self._triangular(s, w)

            def _dense_merge(lo, hi):
                def apply(result):
                    ys[:, lo * m : hi * m] = result["ys"]

                return apply

            plan = SolvePlan("resolvent.solve_many[dense]")
            for lo, hi in chunk_bounds(k, workers):
                task = plan.add(_dense_chunk, lo, hi)
                if ship:
                    task.spec = ProcessSpec(
                        "repro.linalg.resolvent:_solve_many_dense_worker",
                        lambda lo=lo, hi=hi: {
                            "token": token,
                            "t": self.schur.t,
                            "w": w,
                            "shifts": shifts[lo:hi],
                        },
                        merge=_dense_merge(lo, hi),
                    )
            plan.execute()
            x = self.schur.q @ ys
            out = np.moveaxis(x.reshape(self.n, k, m), 1, 0)
        return out[:, :, 0] if squeeze else out

    def matvec(self, x):
        """Apply ``A @ x`` (testing convenience)."""
        if self.schur is None:
            return self._csc @ np.asarray(x, dtype=complex)
        return self.schur.matvec(x)
