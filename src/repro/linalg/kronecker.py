"""Kronecker-product and Kronecker-sum algebra.

This module is the algebraic substrate of the associated-transform method:
the paper's lifted realizations are built from Kronecker products (``⊗``),
Kronecker sums (``⊕``) and their repeated forms, written in the paper as
``M 2©`` (``M ⊗ M``) and ``2© M`` (``M ⊕ M``).

Conventions
-----------
``vec`` is **row-major** (numpy's default ``reshape(-1)``).  With that
convention, for ``X`` of shape ``(p, q)``::

    (A ⊗ B) vec(X) = vec(A @ X @ B.T)

where ``A`` has ``p`` columns and ``B`` has ``q`` columns.  Every routine
in :mod:`repro.linalg` that reshapes vectors states shapes in terms of
this convention.

The Kronecker sum of square ``A`` (n_A × n_A) and ``B`` (n_B × n_B) is::

    A ⊕ B = A ⊗ I_{n_B} + I_{n_A} ⊗ B

and satisfies ``exp(A ⊕ B) = exp(A) ⊗ exp(B)``, the identity behind the
paper's Theorem 1.
"""

import numpy as np
import scipy.sparse as sp

from .._validation import as_square_matrix, check_positive_int
from ..errors import ValidationError
from ._hotloops import scatter_add_rows

__all__ = [
    "kron",
    "kron_many",
    "kron_power",
    "kron_sum",
    "kron_sum_many",
    "kron_sum_power",
    "vec",
    "unvec",
    "kron_matvec",
    "kron_sum_matvec",
    "kron_sum_power_matvec",
    "sparse_kron_apply",
    "mode_apply",
    "commutation_matrix",
    "symmetrize_pair",
]


def kron(a, b):
    """Kronecker product that preserves sparsity.

    Returns a CSR matrix when either operand is sparse, otherwise a dense
    ndarray (``numpy.kron``).
    """
    if sp.issparse(a) or sp.issparse(b):
        return sp.kron(sp.csr_matrix(a), sp.csr_matrix(b), format="csr")
    return np.kron(np.asarray(a), np.asarray(b))


def kron_many(matrices):
    """Kronecker product of a sequence of matrices, left to right."""
    matrices = list(matrices)
    if not matrices:
        raise ValidationError("kron_many requires at least one matrix")
    out = matrices[0]
    for mat in matrices[1:]:
        out = kron(out, mat)
    return out


def kron_power(matrix, k):
    """``matrix ⊗ matrix ⊗ ... ⊗ matrix`` with *k* factors.

    This is the paper's superscript-circled notation ``M k©``; vectors are
    supported (``b 2© = b ⊗ b``).
    """
    k = check_positive_int(k, "k")
    return kron_many([matrix] * k)


def _eye_like(matrix, n):
    """Identity of size n, sparse when *matrix* is sparse."""
    if sp.issparse(matrix):
        return sp.identity(n, dtype=matrix.dtype, format="csr")
    return np.eye(n, dtype=np.asarray(matrix).dtype)


def kron_sum(a, b):
    """Kronecker sum ``A ⊕ B = A ⊗ I + I ⊗ B`` of two square matrices."""
    a_sq = a if sp.issparse(a) else as_square_matrix(a, "a")
    b_sq = b if sp.issparse(b) else as_square_matrix(b, "b")
    if sp.issparse(a_sq) and a_sq.shape[0] != a_sq.shape[1]:
        raise ValidationError(f"a must be square, got shape {a_sq.shape}")
    if sp.issparse(b_sq) and b_sq.shape[0] != b_sq.shape[1]:
        raise ValidationError(f"b must be square, got shape {b_sq.shape}")
    na = a_sq.shape[0]
    nb = b_sq.shape[0]
    return kron(a_sq, _eye_like(b_sq, nb)) + kron(_eye_like(a_sq, na), b_sq)


def kron_sum_many(matrices):
    """Kronecker sum of a sequence of square matrices (associative)."""
    matrices = list(matrices)
    if not matrices:
        raise ValidationError("kron_sum_many requires at least one matrix")
    out = matrices[0]
    for mat in matrices[1:]:
        out = kron_sum(out, mat)
    return out


def kron_sum_power(matrix, k):
    """``matrix ⊕ matrix ⊕ ... ⊕ matrix`` with *k* terms.

    This is the paper's prefixed-circled notation ``k© M``; e.g.
    ``kron_sum_power(G1, 2) = G1 ⊗ I + I ⊗ G1``.
    """
    k = check_positive_int(k, "k")
    return kron_sum_many([matrix] * k)


def vec(matrix):
    """Row-major vectorization (see module docstring)."""
    if sp.issparse(matrix):
        matrix = matrix.toarray()
    return np.asarray(matrix).reshape(-1)


def unvec(vector, shape):
    """Inverse of :func:`vec`: reshape a vector to *shape* row-major."""
    vector = np.asarray(vector)
    expected = int(np.prod(shape))
    if vector.size != expected:
        raise ValidationError(
            f"cannot unvec length-{vector.size} vector to shape {tuple(shape)}"
        )
    return vector.reshape(shape)


def kron_matvec(factors, x):
    """Apply ``(F_1 ⊗ F_2 ⊗ ... ⊗ F_k) @ x`` without forming the product.

    Parameters
    ----------
    factors : sequence of 2-D arrays
        The Kronecker factors, ``F_i`` of shape ``(m_i, n_i)``.
    x : ndarray
        Vector of length ``prod(n_i)`` (row-major multi-index ordering).

    Returns
    -------
    ndarray of length ``prod(m_i)``.

    Notes
    -----
    Implemented as successive tensor mode products; cost is
    ``O(prod(n) * sum(m_i))`` instead of forming a ``prod(m) × prod(n)``
    matrix.
    """
    factors = [f if sp.issparse(f) else np.asarray(f) for f in factors]
    if not factors:
        raise ValidationError("kron_matvec requires at least one factor")
    in_dims = [f.shape[1] for f in factors]
    x = np.asarray(x)
    if x.size != int(np.prod(in_dims)):
        raise ValidationError(
            f"x has length {x.size}, expected {int(np.prod(in_dims))}"
        )
    tensor = x.reshape(in_dims)
    for axis, factor in enumerate(factors):
        tensor = mode_apply(tensor, factor, axis)
    return tensor.reshape(-1)


def sparse_kron_apply(mat, factors):
    """Compute ``mat @ kron(*factors)`` without forming the product.

    Parameters
    ----------
    mat : sparse (p, prod(n_t)) matrix
        Sparse coefficient matrix whose column index is the row-major
        multi-index over the factor row dimensions (e.g. ``G2`` over
        ``(i, j)``, ``G3`` over ``(i, j, k)``).
    factors : sequence of (n_t, m_t) ndarrays
        Kronecker factors (dense; typically memoized ``H1``/``H2``
        blocks).

    Returns
    -------
    (p, prod(m_t)) ndarray.

    Notes
    -----
    This is the streaming contraction behind the Volterra kernel
    assembly: ``G3 @ kron(H1, H1, H1)`` costs ``O(nnz · m³)`` time and
    memory here, versus the ``O(n³ m³)`` dense intermediate of
    materializing the Kronecker product first (84 MB at ``n = 120``,
    out-of-memory by ``n ≈ 500``).
    """
    factors = [np.asarray(f) for f in factors]
    if not factors:
        raise ValidationError("sparse_kron_apply requires >= 1 factor")
    if any(f.ndim != 2 for f in factors):
        raise ValidationError("factors must be 2-D matrices")
    in_dims = [f.shape[0] for f in factors]
    expected = int(np.prod(in_dims))
    if mat.shape[1] != expected:
        raise ValidationError(
            f"mat has {mat.shape[1]} columns, expected prod(n_t) = "
            f"{expected}"
        )
    # COO input passes through untouched, so hot loops (the Volterra
    # kernel assembly contracts the same G2/G3 at every frequency
    # triple) can convert once and reuse.
    coo = mat if isinstance(mat, sp.coo_matrix) else sp.coo_matrix(mat)
    out_cols = int(np.prod([f.shape[1] for f in factors]))
    dtype = np.result_type(coo.data, *factors)
    out = np.zeros((mat.shape[0], out_cols), dtype=dtype)
    if coo.nnz == 0:
        return out
    # Decompose the flat column index into one index array per factor.
    idx = coo.col
    parts = []
    for nd in reversed(in_dims):
        parts.append(idx % nd)
        idx = idx // nd
    parts.reverse()
    gathered = [f[p] for f, p in zip(factors, parts)]  # (nnz, m_t) each
    if len(factors) == 1:
        contrib = coo.data[:, None] * gathered[0]
    elif len(factors) == 2:
        contrib = np.einsum(
            "e,ep,eq->epq", coo.data, *gathered, optimize=True
        ).reshape(coo.nnz, out_cols)
    elif len(factors) == 3:
        contrib = np.einsum(
            "e,ep,eq,er->epqr", coo.data, *gathered, optimize=True
        ).reshape(coo.nnz, out_cols)
    else:
        raise ValidationError(
            f"sparse_kron_apply supports 1..3 factors, got {len(factors)}"
        )
    scatter_add_rows(out, coo.row, contrib)
    return out


def mode_apply(tensor, matrix, axis):
    """Tensor mode product: contract *matrix* with *tensor* along *axis*.

    ``result[..., i, ...] = sum_j matrix[i, j] * tensor[..., j, ...]``
    with the contracted index at position *axis* in both tensors.
    """
    tensor = np.asarray(tensor)
    moved = np.moveaxis(tensor, axis, 0)
    lead = moved.shape[0]
    flat = moved.reshape(lead, -1)
    if sp.issparse(matrix):
        out_flat = matrix @ flat
        out_lead = matrix.shape[0]
    else:
        matrix = np.asarray(matrix)
        out_flat = matrix @ flat
        out_lead = matrix.shape[0]
    out = out_flat.reshape((out_lead,) + moved.shape[1:])
    return np.moveaxis(out, 0, axis)


def kron_sum_matvec(a, b, x):
    """Apply ``(A ⊕ B) @ x`` without forming the Kronecker sum.

    ``x`` is ``vec(X)`` with ``X`` of shape ``(n_A, n_B)`` (row-major), and
    ``(A ⊕ B) vec(X) = vec(A @ X + X @ B.T)``.
    """
    na = a.shape[0]
    nb = b.shape[0]
    x_mat = unvec(np.asarray(x), (na, nb))
    out = a @ x_mat + (b @ x_mat.T).T
    return out.reshape(-1)


def kron_sum_power_matvec(a, k, x):
    """Apply ``(k© A) @ x = (A ⊕ ... ⊕ A) @ x`` matrix-free.

    ``x`` is interpreted as a row-major tensor with *k* axes of length
    ``n``; each axis gets one mode product with ``A`` and the results are
    summed (the derivative-of-Kronecker-power structure).
    """
    k = check_positive_int(k, "k")
    n = a.shape[0]
    tensor = np.asarray(x).reshape((n,) * k)
    out = np.zeros_like(tensor, dtype=np.result_type(tensor, a.dtype))
    for axis in range(k):
        out += mode_apply(tensor, a, axis)
    return out.reshape(-1)


def commutation_matrix(m, n, sparse=True):
    """The commutation (perfect-shuffle) matrix ``K_{m,n}``.

    ``K_{m,n} @ vec(X) = vec(X.T)`` for ``X`` of shape ``(m, n)``
    (row-major vec).  Used to express symmetry of second-order Volterra
    kernels: ``K_{n,n} (u ⊗ v) = v ⊗ u``.
    """
    m = check_positive_int(m, "m")
    n = check_positive_int(n, "n")
    rows = np.arange(m * n)
    i, j = np.divmod(rows, n)
    cols = j * m + i
    data = np.ones(m * n)
    mat = sp.csr_matrix((data, (cols, rows)), shape=(m * n, m * n))
    if sparse:
        return mat
    return mat.toarray()


def symmetrize_pair(u, v):
    """Return the symmetrized Kronecker pair ``(u ⊗ v + v ⊗ u) / 2``."""
    u = np.asarray(u).reshape(-1)
    v = np.asarray(v).reshape(-1)
    if u.shape != v.shape:
        raise ValidationError(
            f"u and v must have equal length, got {u.size} and {v.size}"
        )
    return 0.5 * (np.kron(u, v) + np.kron(v, u))
