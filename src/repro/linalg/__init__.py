"""Linear-algebra substrate: Kronecker algebra, Schur/Sylvester solvers,
matrix-free lifted operators, Arnoldi, and moment utilities."""

from .arnoldi import ArnoldiResult, arnoldi, merge_bases, orthonormalize
from .kronecker import (
    commutation_matrix,
    kron,
    kron_many,
    kron_matvec,
    kron_power,
    kron_sum,
    kron_sum_many,
    kron_sum_matvec,
    kron_sum_power,
    kron_sum_power_matvec,
    mode_apply,
    symmetrize_pair,
    unvec,
    vec,
)
from .moments import moment_chain, moment_chain_operator, transfer_moments_dense
from .operators import (
    DenseOperator,
    KronSumOperator,
    QuadraticLiftedOperator,
    solve_left_kron_sum,
    solve_right_kron_sum,
)
from .resolvent import ResolventFactory
from .schur import SchurForm
from .sylvester import (
    KronSumSolver,
    pi_sylvester_residual,
    solve_pi_sylvester,
    triangular_sylvester_solve,
    triangular_sylvester_solve_transposed,
)

__all__ = [
    "ArnoldiResult",
    "arnoldi",
    "merge_bases",
    "orthonormalize",
    "commutation_matrix",
    "kron",
    "kron_many",
    "kron_matvec",
    "kron_power",
    "kron_sum",
    "kron_sum_many",
    "kron_sum_matvec",
    "kron_sum_power",
    "kron_sum_power_matvec",
    "mode_apply",
    "symmetrize_pair",
    "unvec",
    "vec",
    "moment_chain",
    "moment_chain_operator",
    "transfer_moments_dense",
    "DenseOperator",
    "KronSumOperator",
    "QuadraticLiftedOperator",
    "solve_left_kron_sum",
    "solve_right_kron_sum",
    "ResolventFactory",
    "SchurForm",
    "KronSumSolver",
    "pi_sylvester_residual",
    "solve_pi_sylvester",
    "triangular_sylvester_solve",
    "triangular_sylvester_solve_transposed",
]
