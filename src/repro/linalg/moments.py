"""Moment (Taylor-coefficient) utilities for transfer functions.

For a transfer function ``H(s) = C (s E − A)^{-1} B`` expanded at ``s0``,
the k-th moment is ``C ((A − s0 E)^{-1} E)^k (A − s0 E)^{-1} B`` up to
sign.  Krylov projection matrices that contain the corresponding chain of
vectors match those moments implicitly (PRIMA-style); this module
generates the chains and evaluates moments for verification.
"""

import numpy as np

from .._validation import check_nonnegative_int, check_positive_int
from ..errors import ValidationError

__all__ = [
    "moment_chain",
    "moment_chain_operator",
    "transfer_moments_dense",
]


def moment_chain(solve, start, count):
    """Generate the shift-invert Krylov chain ``x_k = solve^k(start)``.

    Parameters
    ----------
    solve : callable
        Applies ``(A - s0 I)^{-1}`` (or any fixed solve) to a vector.
    start : array_like
        Chain seed (typically ``B`` or a coupling vector).
    count : int
        Number of chain vectors to produce.

    Returns
    -------
    list of ndarray, length *count*:
    ``[solve(start), solve²(start), ...]``.
    """
    count = check_positive_int(count, "count")
    vectors = []
    current = np.asarray(start)
    for _ in range(count):
        current = np.asarray(solve(current))
        vectors.append(current)
    return vectors


def moment_chain_operator(operator, start, count, shift=0.0):
    """Moment chain using an operator's ``solve_shifted`` method.

    Produces ``[(A - s0 I)^{-1} start, (A - s0 I)^{-2} start, ...]`` where
    the expansion point enters as ``shift = -s0`` in the operator call
    ``solve_shifted(shift, ·)`` (which solves ``(A + shift I) x = rhs``).
    """
    count = check_positive_int(count, "count")
    vectors = []
    current = np.asarray(start)
    for _ in range(count):
        current = operator.solve_shifted(shift, current)
        vectors.append(current)
    return vectors


def transfer_moments_dense(a, b, c, count, s0=0.0):
    """Moments of ``H(s) = c (sI − a)^{-1} b`` about ``s0`` (dense).

    Returns the list ``[m_0, ..., m_{count-1}]`` with
    ``m_k = c (s0 I − a)^{-(k+1)} b * (-1)^k`` — i.e. the Taylor
    coefficients of ``H`` at ``s0``: ``H(s) = Σ_k m_k (s − s0)^k``.

    Intended for verification on small systems: reduced models that match
    moments can be checked against the originals with this routine.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    c = np.asarray(c)
    count = check_nonnegative_int(count, "count")
    n = a.shape[0]
    if a.shape != (n, n):
        raise ValidationError(f"a must be square, got {a.shape}")
    base = s0 * np.eye(n) - a
    moments = []
    current = b
    for k in range(count):
        current = np.linalg.solve(base, current)
        moments.append(((-1.0) ** k) * (c @ current))
    return moments
