"""Implicit one-step integrators for polynomial (D)AE systems.

Both schemes solve, per step, the nonlinear equation

    M (x_{k+1} − x_k) = dt [ θ f(x_{k+1}, u_{k+1}) + (1−θ) f(x_k, u_k) ]

with ``θ = 1`` (backward Euler, L-stable, first order) or ``θ = ½``
(trapezoidal, A-stable, second order — the default for the paper-style
transient plots).  ``M`` is the mass matrix (identity when absent); it is
never inverted, so mildly stiff RC/RLC systems integrate cleanly.

Sparse systems (CSR ``g1``/``mass``, e.g. circuit-stamped MNA models)
stay sparse through the whole step: the identity mass is a sparse
identity, the iteration matrix ``M − dt·θ·J`` is assembled in CSR, and
the Newton layer factors it with a sparse LU.  A mixed sparse/dense pair
falls back to the dense iteration matrix (the dense factor dominates the
cost anyway).
"""

import numpy as np
import scipy.sparse as sp

from ..errors import ValidationError
from ..linalg.lu import sparse_lu
from .newton import newton_solve

__all__ = ["implicit_step", "THETA_BACKWARD_EULER", "THETA_TRAPEZOIDAL"]

THETA_BACKWARD_EULER = 1.0
THETA_TRAPEZOIDAL = 0.5


def implicit_step(
    system,
    x_k,
    u_k,
    u_k1,
    dt,
    theta=THETA_TRAPEZOIDAL,
    newton_tol=1e-10,
    max_iterations=25,
    jac_cache=None,
):
    """Advance one implicit θ-step; returns ``(x_{k+1}, newton_iters)``.

    Parameters
    ----------
    system : PolynomialODE
        May carry a (non-singular) mass matrix.
    x_k : (n,) current state
    u_k, u_k1 : (m,) inputs at both endpoints
    dt : float step size
    theta : float in (0, 1]
    jac_cache : JacobianCache, optional
        Chord-Newton state shared across steps: the LU of the iteration
        matrix ``M − dt·θ·J`` from previous steps is reused until
        convergence degrades.  Only valid while ``dt`` and ``theta`` stay
        fixed between calls (the fixed-step driver guarantees this).
    """
    if not 0.0 < theta <= 1.0:
        raise ValidationError(f"theta must be in (0, 1], got {theta}")
    if dt <= 0.0:
        raise ValidationError("dt must be positive")
    n = system.n_states
    sparse_system = getattr(system, "is_sparse", False) or sp.issparse(
        system.mass
    )
    if system.mass is not None:
        mass = system.mass
    elif sparse_system:
        mass = sp.identity(n, format="csr")
    else:
        mass = np.eye(n)
    f_k = system.rhs(x_k, u_k)
    const = mass @ x_k + dt * (1.0 - theta) * f_k

    def residual(x):
        return mass @ x - dt * theta * system.rhs(x, u_k1) - const

    mass_dense = None  # lazy one-time densification for mixed pairs only

    def jacobian(x):
        nonlocal mass_dense
        jac = system.jacobian(x, u_k1)
        if sp.issparse(mass) and sp.issparse(jac):
            return sp.csr_matrix(mass - dt * theta * jac)
        if sp.issparse(jac):
            jac = jac.toarray()
        if mass_dense is None:
            mass_dense = mass.toarray() if sp.issparse(mass) else mass
        return mass_dense - dt * theta * jac

    # Predictor: explicit-Euler-ish guess keeps Newton counts low.
    if system.mass is None:
        guess = x_k + dt * f_k
    elif sp.issparse(mass):
        # One sparse LU of the mass matrix, memoized on the system so the
        # fixed-step driver pays it once, not once per step.  Unguarded:
        # a nearly singular mass still yields a usable (if poor)
        # predictor, matching the dense np.linalg.solve behavior; exact
        # singularity raises NumericalError via the shared helper.
        cached = getattr(system, "_mass_lu", None)
        if cached is None or cached[0] is not mass:
            cached = (mass, sparse_lu(mass, guard=False))
            try:
                system._mass_lu = cached
            except AttributeError:
                pass
        guess = x_k + dt * cached[1].solve(f_k)
    else:
        guess = x_k + dt * np.linalg.solve(mass, f_k)
    return newton_solve(
        residual,
        jacobian,
        guess,
        tol=newton_tol,
        max_iterations=max_iterations,
        jac_cache=jac_cache,
    )
