"""Implicit one-step integrators for polynomial (D)AE systems.

Both schemes solve, per step, the nonlinear equation

    M (x_{k+1} − x_k) = dt [ θ f(x_{k+1}, u_{k+1}) + (1−θ) f(x_k, u_k) ]

with ``θ = 1`` (backward Euler, L-stable, first order) or ``θ = ½``
(trapezoidal, A-stable, second order — the default for the paper-style
transient plots).  ``M`` is the mass matrix (identity when absent); it is
never inverted, so mildly stiff RC/RLC systems integrate cleanly.
"""

import numpy as np

from ..errors import ValidationError
from .newton import newton_solve

__all__ = ["implicit_step", "THETA_BACKWARD_EULER", "THETA_TRAPEZOIDAL"]

THETA_BACKWARD_EULER = 1.0
THETA_TRAPEZOIDAL = 0.5


def implicit_step(
    system,
    x_k,
    u_k,
    u_k1,
    dt,
    theta=THETA_TRAPEZOIDAL,
    newton_tol=1e-10,
    max_iterations=25,
    jac_cache=None,
):
    """Advance one implicit θ-step; returns ``(x_{k+1}, newton_iters)``.

    Parameters
    ----------
    system : PolynomialODE
        May carry a (non-singular) mass matrix.
    x_k : (n,) current state
    u_k, u_k1 : (m,) inputs at both endpoints
    dt : float step size
    theta : float in (0, 1]
    jac_cache : JacobianCache, optional
        Chord-Newton state shared across steps: the LU of the iteration
        matrix ``M − dt·θ·J`` from previous steps is reused until
        convergence degrades.  Only valid while ``dt`` and ``theta`` stay
        fixed between calls (the fixed-step driver guarantees this).
    """
    if not 0.0 < theta <= 1.0:
        raise ValidationError(f"theta must be in (0, 1], got {theta}")
    if dt <= 0.0:
        raise ValidationError("dt must be positive")
    n = system.n_states
    mass = system.mass if system.mass is not None else np.eye(n)
    f_k = system.rhs(x_k, u_k)
    const = mass @ x_k + dt * (1.0 - theta) * f_k

    def residual(x):
        return mass @ x - dt * theta * system.rhs(x, u_k1) - const

    def jacobian(x):
        return mass - dt * theta * system.jacobian(x, u_k1)

    # Predictor: explicit-Euler-ish guess keeps Newton counts low.
    guess = x_k + dt * np.linalg.solve(mass, f_k) if system.mass is not None \
        else x_k + dt * f_k
    return newton_solve(
        residual,
        jacobian,
        guess,
        tol=newton_tol,
        max_iterations=max_iterations,
        jac_cache=jac_cache,
    )
