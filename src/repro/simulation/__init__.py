"""Transient simulation: input sources, Newton, implicit integrators,
and the fixed-step driver used for the paper's runtime comparisons."""

from .integrators import (
    THETA_BACKWARD_EULER,
    THETA_TRAPEZOIDAL,
    implicit_step,
)
from .newton import JacobianCache, newton_solve
from .sources import (
    cosine_source,
    exponential_pulse_source,
    multitone_source,
    pulse_source,
    sine_source,
    stack_sources,
    step_source,
    surge_source,
    zero_source,
)
from .transient import TransientResult, simulate

__all__ = [
    "THETA_BACKWARD_EULER",
    "THETA_TRAPEZOIDAL",
    "implicit_step",
    "JacobianCache",
    "newton_solve",
    "cosine_source",
    "exponential_pulse_source",
    "multitone_source",
    "pulse_source",
    "sine_source",
    "stack_sources",
    "step_source",
    "surge_source",
    "zero_source",
    "TransientResult",
    "simulate",
]
