"""Transient simulation driver — the paper's "ODE solve" workload.

Fixed-step implicit integration of a polynomial system (full model or
ROM) under a time-dependent input; reports wall time and Newton
statistics so Table 1's runtime comparison can be regenerated.
"""

import time

import numpy as np

from ..errors import ValidationError
from .integrators import THETA_TRAPEZOIDAL, implicit_step
from .newton import JacobianCache

__all__ = ["TransientResult", "simulate"]


class TransientResult:
    """Trajectory container returned by :func:`simulate`.

    Attributes
    ----------
    times : (steps,) ndarray
    states : (steps, n) ndarray
    outputs : (steps, p) ndarray
    wall_time : float
        Seconds spent inside the integration loop.
    newton_iterations : int
        Total Newton iterations across all steps.
    jacobian_factorizations : int or None
        LU factorizations of the Newton iteration matrix (chord-Newton
        runs only; ``None`` when the exact-Newton path was used).
    """

    def __init__(
        self,
        times,
        states,
        outputs,
        wall_time,
        newton_iterations,
        jacobian_factorizations=None,
    ):
        self.times = times
        self.states = states
        self.outputs = outputs
        self.wall_time = wall_time
        self.newton_iterations = newton_iterations
        self.jacobian_factorizations = jacobian_factorizations

    @property
    def steps(self):
        return self.times.size

    def output(self, index=0):
        """One output channel as a 1-D trace."""
        return self.outputs[:, index]

    def __repr__(self):
        return (
            f"TransientResult(steps={self.steps}, "
            f"wall_time={self.wall_time:.3f}s, "
            f"newton_iterations={self.newton_iterations})"
        )


def simulate(
    system,
    u_fn,
    t_end,
    dt,
    x0=None,
    theta=THETA_TRAPEZOIDAL,
    newton_tol=1e-10,
    max_newton=25,
    reuse_jacobian=True,
):
    """Integrate *system* from 0 to *t_end* with fixed step *dt*.

    Parameters
    ----------
    system : PolynomialODE (or anything with rhs/jacobian/mass/observe)
    u_fn : callable ``t -> scalar or (m,)``
    t_end, dt : float
    x0 : (n,) initial state (defaults to zero — the circuits' shifted
        operating point)
    theta : float
        Implicit scheme parameter (0.5 = trapezoidal, 1.0 = BE).
    reuse_jacobian : bool
        When True (default) a chord-Newton :class:`JacobianCache` is
        carried across all timesteps, so the LU of the iteration matrix
        is refactorized only when convergence degrades instead of at
        every Newton iteration.  The convergence tolerance is unchanged;
        set False to force the classic exact-Newton path.

    Sparse systems (CSR ``g1``/``mass``, e.g. circuit-scale MNA models)
    integrate without any densification: the iteration matrix stays CSR
    and is factored with a sparse LU, and a sparse mass matrix is
    factored once for the per-step predictor.

    Returns
    -------
    TransientResult
    """
    if t_end <= 0 or dt <= 0:
        raise ValidationError("t_end and dt must be positive")
    n = system.n_states
    m = system.n_inputs
    steps = int(round(t_end / dt)) + 1
    times = np.arange(steps) * dt
    states = np.zeros((steps, n))
    if x0 is not None:
        x0 = np.asarray(x0, dtype=float).reshape(n)
        states[0] = x0

    def u_at(t):
        val = np.atleast_1d(np.asarray(u_fn(t), dtype=float))
        if val.shape != (m,):
            raise ValidationError(
                f"input returned shape {val.shape}, expected ({m},)"
            )
        return val

    total_newton = 0
    jac_cache = JacobianCache() if reuse_jacobian else None
    start = time.perf_counter()
    u_prev = u_at(times[0])
    for k in range(steps - 1):
        u_next = u_at(times[k + 1])
        states[k + 1], iters = implicit_step(
            system,
            states[k],
            u_prev,
            u_next,
            dt,
            theta=theta,
            newton_tol=newton_tol,
            max_iterations=max_newton,
            jac_cache=jac_cache,
        )
        total_newton += iters
        u_prev = u_next
    wall = time.perf_counter() - start
    outputs = system.observe(states)
    if outputs.ndim == 1:
        outputs = outputs[:, None]
    return TransientResult(
        times,
        states,
        outputs,
        wall,
        total_newton,
        jacobian_factorizations=(
            jac_cache.factorizations if jac_cache is not None else None
        ),
    )
