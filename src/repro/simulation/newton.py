"""Damped Newton solver for the implicit integration steps."""

import numpy as np
import scipy.linalg as sla

from ..errors import ConvergenceError

__all__ = ["newton_solve"]


def newton_solve(
    residual,
    jacobian,
    x0,
    tol=1e-10,
    max_iterations=25,
    damping_steps=4,
):
    """Solve ``residual(x) = 0`` by Newton's method with backtracking.

    Parameters
    ----------
    residual : callable ``x -> (n,)``
    jacobian : callable ``x -> (n, n)``
    x0 : (n,) initial guess
    tol : float
        Convergence threshold on ``‖residual‖_∞`` relative to the scale
        of the first residual (plus an absolute floor).
    max_iterations : int
    damping_steps : int
        Number of step-halving attempts per iteration when the full step
        does not decrease the residual norm.

    Returns
    -------
    (x, iterations)

    Raises
    ------
    ConvergenceError
        When the iteration stalls or exceeds *max_iterations*.
    """
    x = np.array(x0, dtype=float)
    res = residual(x)
    norm = np.abs(res).max()
    floor = tol * max(norm, 1.0) + 1e-14
    if norm <= floor:
        return x, 0
    for iteration in range(1, max_iterations + 1):
        jac = jacobian(x)
        try:
            step = sla.lu_solve(sla.lu_factor(jac), res)
        except (ValueError, sla.LinAlgError) as exc:
            raise ConvergenceError(
                f"Newton Jacobian is singular at iteration {iteration}",
                iterations=iteration,
                residual=float(norm),
            ) from exc
        scale = 1.0
        for _ in range(damping_steps + 1):
            trial = x - scale * step
            trial_res = residual(trial)
            trial_norm = np.abs(trial_res).max()
            if trial_norm < norm or not np.isfinite(norm):
                break
            scale *= 0.5
        else:
            raise ConvergenceError(
                "Newton backtracking failed to reduce the residual",
                iterations=iteration,
                residual=float(norm),
            )
        x = trial
        res = trial_res
        norm = trial_norm
        if norm <= floor:
            return x, iteration
    raise ConvergenceError(
        f"Newton did not converge in {max_iterations} iterations "
        f"(residual {norm:.3e})",
        iterations=max_iterations,
        residual=float(norm),
    )
