"""Damped Newton solver with optional chord-mode Jacobian reuse.

The transient driver calls Newton once per timestep; exact Newton
re-assembles and re-factorizes the iteration matrix at *every iteration
of every step*, which dominates the paper's Table-1 runtime.  Chord
(modified) Newton instead keeps one LU factorization alive — in a
:class:`JacobianCache` owned by the caller, so it persists *across
timesteps* — and only refreshes it when convergence degrades.  The
convergence test is unchanged (it is on the residual, not the step), so
chord iterates land inside the same tolerance ball as exact Newton.

Sparse fast path: a scipy-sparse iteration matrix (what sparse systems'
``jacobian`` produces through :func:`~repro.simulation.integrators.
implicit_step`) is detected here and factored **once** with
``scipy.sparse.linalg.splu`` — it is never densified, so a circuit-sized
chord-Newton transient costs ``O(nnz)`` per factorization instead of
``O(n³)``.  Dense matrices take the LAPACK ``lu_factor`` path unchanged.
"""

import threading

import numpy as np
import scipy.linalg as sla
import scipy.sparse as sp

from ..errors import ConvergenceError, NumericalError
from ..linalg.lu import sparse_lu

__all__ = ["newton_solve", "JacobianCache"]

#: A reused-Jacobian iteration must shrink the residual by at least this
#: factor per step; anything slower triggers a refactorization.
_CHORD_REFRESH_RATIO = 0.5


class _DenseFactorization:
    """LAPACK LU of a dense iteration matrix."""

    is_sparse = False

    def __init__(self, jac):
        self._lu = sla.lu_factor(jac)

    def solve(self, rhs):
        return sla.lu_solve(self._lu, rhs)


class _SparseFactorization:
    """SuperLU factorization of a sparse iteration matrix (no densify).

    Unguarded (``guard=False``): near-singular iteration matrices are
    recovered by Newton's backtracking/refresh machinery, matching the
    dense LAPACK path's behavior.
    """

    is_sparse = True

    def __init__(self, jac):
        self._lu = sparse_lu(jac, guard=False)

    def solve(self, rhs):
        return self._lu.solve(rhs)


def _factorize(jac):
    """Factor an iteration matrix, sparse-aware; returns a solver with a
    ``solve(rhs)`` method and an ``is_sparse`` flag."""
    if sp.issparse(jac):
        return _SparseFactorization(jac)
    return _DenseFactorization(jac)


#: Exceptions the factorization/backsolve layer can raise on a singular
#: iteration matrix (LAPACK raises ValueError/LinAlgError, the shared
#: sparse_lu helper NumericalError, SuperLU's backsolve RuntimeError).
_FACTOR_ERRORS = (ValueError, RuntimeError, sla.LinAlgError, NumericalError)


class JacobianCache:
    """Persistent LU of the Newton iteration matrix (chord Newton).

    Hand one instance to consecutive :func:`newton_solve` calls (the
    transient driver keeps one per :func:`~repro.simulation.transient.
    simulate` run) and the factorization from the previous timestep seeds
    the next one.  The cache refreshes itself whenever

    * the residual contraction per iteration is worse than
      ``refresh_ratio``,
    * backtracking had to damp the step, or
    * the cached factorization turns out singular/non-finite.

    Sparse iteration matrices are factored with ``splu`` and reused
    identically; :attr:`lu` then holds the sparse factorization object.

    Attributes
    ----------
    factorizations : int
        LU factorizations performed (the expensive operation saved).
    reuses : int
        Newton iterations served from a previously computed LU.
    """

    def __init__(self, refresh_ratio=_CHORD_REFRESH_RATIO):
        self.refresh_ratio = float(refresh_ratio)
        self.lu = None
        self.factorizations = 0
        self.reuses = 0
        # A cache shared across concurrently integrated trajectories
        # (engine-dispatched transient batches) must not interleave a
        # factor with another thread's invalidate and count updates.
        self._lock = threading.Lock()

    def invalidate(self):
        """Drop the cached factorization (forces a refresh next use)."""
        with self._lock:
            self.lu = None

    def factor(self, jac):
        """Factor *jac* and make it the cached iteration matrix."""
        lu = _factorize(jac)
        with self._lock:
            self.lu = lu
            self.factorizations += 1
        return lu

    def note_reuse(self):
        """Count one Newton iteration served from the cached LU."""
        with self._lock:
            self.reuses += 1


def _backtrack(residual, x, step, norm, damping_steps):
    """Damped line search; returns (trial, res, norm, scale) or None."""
    scale = 1.0
    for _ in range(damping_steps + 1):
        trial = x - scale * step
        trial_res = residual(trial)
        trial_norm = np.abs(trial_res).max()
        if trial_norm < norm or not np.isfinite(norm):
            return trial, trial_res, trial_norm, scale
        scale *= 0.5
    return None


def newton_solve(
    residual,
    jacobian,
    x0,
    tol=1e-10,
    max_iterations=25,
    damping_steps=4,
    jac_cache=None,
):
    """Solve ``residual(x) = 0`` by (chord-)Newton with backtracking.

    Parameters
    ----------
    residual : callable ``x -> (n,)``
    jacobian : callable ``x -> (n, n)``
        May return either a dense ndarray or a scipy sparse matrix; the
        latter is factored with a sparse LU (never densified).
    x0 : (n,) initial guess
    tol : float
        Convergence threshold on ``‖residual‖_∞`` relative to the scale
        of the first residual (plus an absolute floor).
    max_iterations : int
    damping_steps : int
        Number of step-halving attempts per iteration when the full step
        does not decrease the residual norm.
    jac_cache : JacobianCache, optional
        When given, runs chord Newton: the cached LU is reused across
        iterations *and across calls*, refreshed on slow convergence.
        When omitted the classic exact-Newton path (one factorization
        per iteration) runs unchanged.

    Returns
    -------
    (x, iterations)

    Raises
    ------
    ConvergenceError
        When the iteration stalls or exceeds *max_iterations*.
    """
    x = np.array(x0, dtype=float)
    res = residual(x)
    norm = np.abs(res).max()
    floor = tol * max(norm, 1.0) + 1e-14
    if norm <= floor:
        return x, 0
    for iteration in range(1, max_iterations + 1):
        # Snapshot the cached LU exactly once per iteration: with a
        # cache shared across threads, re-reading jac_cache.lu after
        # another thread's invalidate() would hand a None to factor().
        cached_lu = jac_cache.lu if jac_cache is not None else None
        fresh = jac_cache is None or cached_lu is None
        # Evaluate the Jacobian outside the try: errors raised by the
        # user callable must propagate untouched, not be misreported as
        # a singular iteration matrix.
        jac = jacobian(x) if fresh else None
        try:
            if jac_cache is None:
                lu = _factorize(jac)
            elif cached_lu is None:
                lu = jac_cache.factor(jac)
            else:
                lu = cached_lu
                jac_cache.note_reuse()
            step = lu.solve(res)
        except _FACTOR_ERRORS as exc:
            raise ConvergenceError(
                f"Newton Jacobian is singular at iteration {iteration}",
                iterations=iteration,
                residual=float(norm),
            ) from exc
        if not np.isfinite(step).all():
            if not fresh:
                # A stale factorization can go bad (near-singular pivot
                # growth); retry once with a fresh Jacobian before
                # declaring failure.
                jac_cache.invalidate()
                continue
            raise ConvergenceError(
                f"Newton step is non-finite at iteration {iteration}",
                iterations=iteration,
                residual=float(norm),
            )
        accepted = _backtrack(residual, x, step, norm, damping_steps)
        if accepted is None:
            if not fresh:
                # Backtracking failure with a reused Jacobian is a
                # staleness symptom, not divergence: refresh and retry
                # the same iterate.
                jac_cache.invalidate()
                fresh = True
                jac = jacobian(x)
                try:
                    retry = jac_cache.factor(jac).solve(res)
                except _FACTOR_ERRORS as exc:
                    raise ConvergenceError(
                        "Newton Jacobian is singular at iteration "
                        f"{iteration}",
                        iterations=iteration,
                        residual=float(norm),
                    ) from exc
                if np.isfinite(retry).all():
                    accepted = _backtrack(
                        residual, x, retry, norm, damping_steps
                    )
            if accepted is None:
                raise ConvergenceError(
                    "Newton backtracking failed to reduce the residual",
                    iterations=iteration,
                    residual=float(norm),
                )
        x, res, trial_norm, scale = accepted
        if jac_cache is not None and not fresh:
            # Chord-mode health check: slow contraction or a damped step
            # means the frozen Jacobian has drifted too far.
            if scale < 1.0 or trial_norm > jac_cache.refresh_ratio * norm:
                jac_cache.invalidate()
        norm = trial_norm
        if norm <= floor:
            return x, iteration
    raise ConvergenceError(
        f"Newton did not converge in {max_iterations} iterations "
        f"(residual {norm:.3e})",
        iterations=max_iterations,
        residual=float(norm),
    )
