"""Input-signal generators for transient simulation.

Each factory returns a callable ``u(t) -> float``; multi-input systems
combine several with :func:`stack_sources`.  The shapes cover the paper's
experiments: steps and sinusoids for the transmission-line circuits
(Figs. 2-3), two-tone/interferer pairs for the RF receiver (Fig. 4) and
the double-exponential surge for the varistor circuit (Fig. 5).
"""

import numpy as np

from ..errors import ValidationError

__all__ = [
    "step_source",
    "pulse_source",
    "sine_source",
    "cosine_source",
    "multitone_source",
    "exponential_pulse_source",
    "surge_source",
    "stack_sources",
    "zero_source",
]


def zero_source():
    """The identically-zero input."""

    def u(t):
        return 0.0

    return u


def step_source(amplitude=1.0, t_on=0.0):
    """Unit-style step: ``amplitude`` for ``t >= t_on``, else 0."""

    def u(t):
        return amplitude if t >= t_on else 0.0

    return u


def pulse_source(amplitude=1.0, t_on=0.0, width=1.0):
    """Rectangular pulse of the given width."""
    if width <= 0:
        raise ValidationError("pulse width must be positive")

    def u(t):
        return amplitude if t_on <= t < t_on + width else 0.0

    return u


def sine_source(amplitude=1.0, frequency=1.0, phase=0.0):
    """``amplitude * sin(2π f t + phase)``."""
    omega = 2.0 * np.pi * frequency

    def u(t):
        return amplitude * np.sin(omega * t + phase)

    return u


def cosine_source(amplitude=1.0, frequency=1.0, phase=0.0):
    """``amplitude * cos(2π f t + phase)``."""
    omega = 2.0 * np.pi * frequency

    def u(t):
        return amplitude * np.cos(omega * t + phase)

    return u


def multitone_source(amplitudes, frequencies, phases=None):
    """Sum of sinusoids — the classic weakly-nonlinear test stimulus."""
    amplitudes = np.atleast_1d(np.asarray(amplitudes, dtype=float))
    frequencies = np.atleast_1d(np.asarray(frequencies, dtype=float))
    if phases is None:
        phases = np.zeros_like(amplitudes)
    phases = np.atleast_1d(np.asarray(phases, dtype=float))
    if not (amplitudes.shape == frequencies.shape == phases.shape):
        raise ValidationError(
            "amplitudes, frequencies and phases must have equal lengths"
        )
    omegas = 2.0 * np.pi * frequencies

    def u(t):
        return float(np.sum(amplitudes * np.sin(omegas * t + phases)))

    return u


def exponential_pulse_source(amplitude=1.0, tau_rise=1.0, tau_fall=5.0):
    """Double-exponential pulse ``A (e^{-t/τ_fall} − e^{-t/τ_rise})``.

    Normalized so the peak value equals *amplitude*.
    """
    if tau_rise <= 0 or tau_fall <= 0:
        raise ValidationError("time constants must be positive")
    if tau_rise >= tau_fall:
        raise ValidationError("tau_rise must be smaller than tau_fall")
    t_peak = (
        np.log(tau_fall / tau_rise)
        * tau_rise
        * tau_fall
        / (tau_fall - tau_rise)
    )
    peak = np.exp(-t_peak / tau_fall) - np.exp(-t_peak / tau_rise)

    def u(t):
        if t < 0:
            return 0.0
        return (
            amplitude
            * (np.exp(-t / tau_fall) - np.exp(-t / tau_rise))
            / peak
        )

    return u


def surge_source(amplitude=9.8e3, tau_rise=0.1, tau_fall=2.0):
    """Lightning-style surge (paper Fig. 5: US = 9.8 kV pulse).

    A convenience alias of :func:`exponential_pulse_source` with
    surge-test-like rise/fall ratios.
    """
    return exponential_pulse_source(amplitude, tau_rise, tau_fall)


def stack_sources(sources):
    """Combine scalar sources into one vector-valued input ``u(t)``."""
    sources = list(sources)
    if not sources:
        raise ValidationError("need at least one source")

    def u(t):
        return np.array([float(src(t)) for src in sources])

    return u
