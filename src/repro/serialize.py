"""Serialization substrate: nested payload trees ↔ ``.npz`` files.

The offline/online split of the paper's NMOR workflow (reduce once,
query many times) only pays off if the reduction *survives the process*:
systems, ROMs and reduction artifacts must round-trip through disk.
This module is the shared codec every ``to_dict``/``from_dict`` +
``save``/``load`` pair in the library builds on.

A *payload tree* is a nested structure of

* JSON scalars (``None``, ``bool``, ``int``, ``float``, ``str``),
* complex scalars,
* lists/tuples (tuples normalize to lists on decode),
* string-keyed dicts,
* numpy ndarrays (any dtype numpy stores natively), and
* scipy sparse matrices (normalized to CSR — sparsity is **preserved**:
  a CSR matrix written to disk comes back as CSR, never densified).

``save_payload`` flattens the tree into one ``.npz`` archive: every
array/CSR block becomes an npz member, the remaining structure becomes a
JSON manifest stored as a ``uint8`` member.  Loads use
``allow_pickle=False`` throughout, so a payload file can never execute
code — a corrupt or malicious file fails with an exception, which the
:mod:`repro.store` layer treats as a cache miss.

Writes are atomic *and durable*: the archive is assembled in a temp file
in the target directory, ``fsync``'d, moved into place with
``os.replace``, and the parent directory is ``fsync``'d — so neither a
crash mid-write nor a power loss right after the rename can lose or
tear a file under its final name.  :func:`durable_write` exposes the
same discipline for small text files (store metadata, reports), and
both paths carry named :func:`~repro.testing.faults.fault_point` crash
sites so the guarantee is testable.
"""

import hashlib
import io
import json
import os
import tempfile

import numpy as np
import scipy.sparse as sp

from .errors import ValidationError
from .testing.faults import fault_point

__all__ = [
    "array_digest",
    "decode_payload_bytes",
    "durable_write",
    "encode_payload_bytes",
    "fsync_directory",
    "json_safe",
    "load_payload",
    "save_payload",
    "update_digest",
]

#: Reserved marker keys — payload dicts must not use them as plain keys.
_MARKERS = ("__ndarray__", "__csr__", "__complex__", "__manifest__")


# ---------------------------------------------------------------------------
# encoding / decoding
# ---------------------------------------------------------------------------


def _encode(node, arrays, path):
    """Encode one tree node into its JSON form, collecting arrays."""
    if node is None or isinstance(node, (bool, str)):
        return node
    if isinstance(node, (int, np.integer)):
        return int(node)
    if isinstance(node, (float, np.floating)):
        return float(node)
    if isinstance(node, (complex, np.complexfloating)):
        node = complex(node)
        return {"__complex__": [node.real, node.imag]}
    if isinstance(node, np.ndarray):
        key = f"a{len(arrays)}"
        arrays[key] = node
        return {"__ndarray__": key}
    if sp.issparse(node):
        csr = sp.csr_matrix(node)
        key = f"a{len(arrays)}"
        arrays[f"{key}.data"] = csr.data
        arrays[f"{key}.indices"] = csr.indices
        arrays[f"{key}.indptr"] = csr.indptr
        return {"__csr__": {"key": key, "shape": list(csr.shape)}}
    if isinstance(node, (list, tuple)):
        return [
            _encode(item, arrays, f"{path}[{idx}]")
            for idx, item in enumerate(node)
        ]
    if isinstance(node, dict):
        out = {}
        for key, value in node.items():
            if not isinstance(key, str):
                raise ValidationError(
                    f"payload dict keys must be strings, got {key!r} "
                    f"at {path}"
                )
            if key in _MARKERS:
                raise ValidationError(
                    f"payload key {key!r} is reserved (at {path})"
                )
            out[key] = _encode(value, arrays, f"{path}.{key}")
        return out
    raise ValidationError(
        f"cannot serialize object of type {type(node).__name__} at {path}"
    )


def _decode(node, arrays):
    if isinstance(node, dict):
        if "__complex__" in node:
            re_part, im_part = node["__complex__"]
            return complex(re_part, im_part)
        if "__ndarray__" in node:
            return arrays[node["__ndarray__"]]
        if "__csr__" in node:
            meta = node["__csr__"]
            key = meta["key"]
            return sp.csr_matrix(
                (
                    arrays[f"{key}.data"],
                    arrays[f"{key}.indices"],
                    arrays[f"{key}.indptr"],
                ),
                shape=tuple(meta["shape"]),
            )
        return {key: _decode(value, arrays) for key, value in node.items()}
    if isinstance(node, list):
        return [_decode(item, arrays) for item in node]
    return node


# ---------------------------------------------------------------------------
# file I/O
# ---------------------------------------------------------------------------


def fsync_directory(directory):
    """Best-effort ``fsync`` of a directory, making a rename durable.

    ``os.replace`` is atomic but the new directory entry lives in the
    page cache until the directory inode is flushed; a power loss in
    that window can forget the rename.  Failures are swallowed —
    some filesystems refuse directory fsync, and losing durability
    there is no worse than the pre-fsync behaviour.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def durable_write(path, data, encoding="utf-8"):
    """Atomically and durably write *data* (str or bytes) at *path*.

    Temp file in the destination directory → ``fsync`` → ``os.replace``
    → parent-directory ``fsync``.  Crash sites:
    ``durable.before_replace`` / ``durable.after_replace``.
    """
    path = os.fspath(path)
    if isinstance(data, str):
        data = data.encode(encoding)
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        fault_point("durable.before_replace")
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    fault_point("durable.after_replace")
    fsync_directory(directory)
    return path


def save_payload(path, tree, compress=True, durable=True):
    """Write a payload tree to *path* as one ``.npz`` archive, atomically.

    The archive is assembled in a temp file in the destination directory
    and moved into place with ``os.replace``, so concurrent readers see
    either the old file or the new one — never a torn write.  With
    *durable* (default) the temp file is ``fsync``'d before the rename
    and the directory after it, so the write also survives power loss.
    *compress* selects ``np.savez_compressed`` (default) vs plain
    ``np.savez`` — checkpoint blocks pass ``compress=False`` to keep the
    incremental-snapshot overhead small.  Crash sites:
    ``serialize.before_replace`` / ``serialize.after_replace``.
    """
    path = os.fspath(path)
    arrays = {}
    manifest = _encode(tree, arrays, path="$")
    manifest_bytes = json.dumps(manifest).encode("utf-8")
    arrays["__manifest__"] = np.frombuffer(manifest_bytes, dtype=np.uint8)
    directory = os.path.dirname(path) or "."
    writer = np.savez_compressed if compress else np.savez
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            writer(handle, **arrays)
            if durable:
                handle.flush()
                os.fsync(handle.fileno())
        fault_point("serialize.before_replace")
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    fault_point("serialize.after_replace")
    if durable:
        fsync_directory(directory)
    return path


def load_payload(path):
    """Load a payload tree written by :func:`save_payload`.

    Raises on any structural problem (missing manifest, bad JSON, missing
    array members, truncated zip) — callers that need corruption
    *tolerance* catch and treat it as absence, as :mod:`repro.store`
    does.  ``allow_pickle=False``: payload files cannot execute code.
    """
    with np.load(os.fspath(path), allow_pickle=False) as archive:
        if "__manifest__" not in archive.files:
            raise ValidationError(
                f"{path} is not a repro payload file (no manifest)"
            )
        manifest = json.loads(bytes(archive["__manifest__"]).decode("utf-8"))
        arrays = {
            name: archive[name]
            for name in archive.files
            if name != "__manifest__"
        }
    return _decode(manifest, arrays)


# ---------------------------------------------------------------------------
# in-memory payloads (process-backend task messages)
# ---------------------------------------------------------------------------


def encode_payload_bytes(tree):
    """Encode a payload tree to ``.npz`` bytes (no file, no pickling).

    The in-memory counterpart of :func:`save_payload`: the same
    tree↔manifest codec, assembled into a :class:`io.BytesIO` archive.
    This is the wire format of the process-pool engine backend — task
    specs and small operands travel as these bytes; anything large is
    replaced by a shared-memory descriptor *before* encoding (see
    :mod:`repro.engine.process`), so the codec itself never needs to
    know about segments.  Compression is off: task messages are
    latency-sensitive and the bulk data travels by shared memory anyway.
    """
    arrays = {}
    manifest = _encode(tree, arrays, path="$")
    manifest_bytes = json.dumps(manifest).encode("utf-8")
    arrays["__manifest__"] = np.frombuffer(manifest_bytes, dtype=np.uint8)
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    return buffer.getvalue()


def decode_payload_bytes(data):
    """Decode :func:`encode_payload_bytes` output back into a tree.

    ``allow_pickle=False`` exactly like the file path: a payload message
    can never execute code on the receiving process.
    """
    with np.load(io.BytesIO(data), allow_pickle=False) as archive:
        if "__manifest__" not in archive.files:
            raise ValidationError(
                "payload bytes carry no manifest; not a repro payload"
            )
        manifest = json.loads(bytes(archive["__manifest__"]).decode("utf-8"))
        arrays = {
            name: archive[name]
            for name in archive.files
            if name != "__manifest__"
        }
    return _decode(manifest, arrays)


# ---------------------------------------------------------------------------
# hashing / sanitizing helpers
# ---------------------------------------------------------------------------


def update_digest(digest, value):
    """Feed one payload value (scalar, ndarray or sparse) into *digest*.

    Dense arrays hash their shape, dtype and C-contiguous bytes; sparse
    matrices hash the CSR structure (indptr/indices) *and* data, so two
    systems with the same sparsity pattern but different entries — or
    the same entries in a different pattern — fingerprint differently.
    """
    if value is None:
        digest.update(b"<none>")
    elif sp.issparse(value):
        csr = sp.csr_matrix(value)
        digest.update(b"csr")
        digest.update(repr(csr.shape).encode())
        digest.update(str(csr.dtype).encode())
        digest.update(np.ascontiguousarray(csr.indptr).tobytes())
        digest.update(np.ascontiguousarray(csr.indices).tobytes())
        digest.update(np.ascontiguousarray(csr.data).tobytes())
    elif isinstance(value, np.ndarray):
        digest.update(b"dense")
        digest.update(repr(value.shape).encode())
        digest.update(str(value.dtype).encode())
        digest.update(np.ascontiguousarray(value).tobytes())
    else:
        digest.update(repr(value).encode())
    return digest


def array_digest(value):
    """Hex SHA-256 of one array/sparse matrix (shape + dtype + data)."""
    return update_digest(hashlib.sha256(), value).hexdigest()


def json_safe(value):
    """Coerce diagnostics (e.g. ``ReducedOrderModel.details``) to the
    payload-scalar subset: numpy scalars unwrap, complex numbers stay
    complex (the codec encodes them), small arrays become lists, and
    anything unrecognized degrades to ``str(value)`` — diagnostics must
    never make an artifact unsaveable.

    Non-finite floats become the strings ``"inf"``/``"-inf"``/``"nan"``:
    strict RFC-8259 JSON has no tokens for them, and the pipeline/CLI
    reports built on this helper promise machine-parseable output
    (``json.dumps(..., allow_nan=False)`` downstream enforces it).
    """
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        value = float(value)
        return value if np.isfinite(value) else repr(value)
    if isinstance(value, (complex, np.complexfloating)):
        return complex(value)
    if isinstance(value, np.ndarray):
        return json_safe(value.tolist())
    if isinstance(value, (list, tuple)):
        return [json_safe(item) for item in value]
    if isinstance(value, dict):
        return {str(key): json_safe(val) for key, val in value.items()}
    return str(value)
