"""Error metrics for ROM-vs-full comparisons (paper-style plots)."""

import numpy as np

from ..errors import ValidationError

__all__ = [
    "relative_error_trace",
    "max_relative_error",
    "rms_error",
    "speedup",
]


def relative_error_trace(reference, candidate, normalization="peak"):
    """Pointwise relative error trace, as plotted in Figs. 2(c)–4(c).

    Parameters
    ----------
    reference, candidate : (steps,) arrays
    normalization : {"peak", "pointwise"}
        ``"peak"`` divides by ``max |reference|`` (bounded, what the
        paper's error plots show); ``"pointwise"`` divides by
        ``|reference|`` sample-by-sample (spikes near zero crossings).
    """
    ref = np.asarray(reference, dtype=float).reshape(-1)
    cand = np.asarray(candidate, dtype=float).reshape(-1)
    if ref.shape != cand.shape:
        raise ValidationError(
            f"traces have different lengths: {ref.size} vs {cand.size}"
        )
    err = np.abs(cand - ref)
    if normalization == "peak":
        scale = np.abs(ref).max()
        if scale == 0.0:
            raise ValidationError("reference trace is identically zero")
        return err / scale
    if normalization == "pointwise":
        floor = 1e-12 * max(np.abs(ref).max(), 1.0)
        return err / np.maximum(np.abs(ref), floor)
    raise ValidationError(
        f"unknown normalization {normalization!r}; "
        "use 'peak' or 'pointwise'"
    )


def max_relative_error(reference, candidate, normalization="peak"):
    """Scalar max of :func:`relative_error_trace`."""
    return float(
        relative_error_trace(reference, candidate, normalization).max()
    )


def rms_error(reference, candidate):
    """Root-mean-square absolute error between two traces."""
    ref = np.asarray(reference, dtype=float).reshape(-1)
    cand = np.asarray(candidate, dtype=float).reshape(-1)
    if ref.shape != cand.shape:
        raise ValidationError(
            f"traces have different lengths: {ref.size} vs {cand.size}"
        )
    return float(np.sqrt(np.mean((ref - cand) ** 2)))


def speedup(reference_seconds, candidate_seconds):
    """Simulation-time ratio (the paper reports a 61% reduction in §3.2
    as ``1 − candidate/reference``); returns the reduction fraction."""
    if reference_seconds <= 0:
        raise ValidationError("reference time must be positive")
    return 1.0 - candidate_seconds / reference_seconds
