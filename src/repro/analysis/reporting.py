"""Plain-text and machine-readable reporting helpers.

The benches print paper-shaped artifacts: Table 1's runtime rows and the
time-series that back Figs. 2-5 (as ASCII sparklines plus summary
numbers), so the reproduction can be eyeballed without a plotting stack.
The JSON/CSV writers serve the pipeline/CLI layer
(:mod:`repro.pipeline`, ``python -m repro``), which must emit reports
other tools can parse.
"""

import csv
import io
import json

import numpy as np

from ..errors import ValidationError
from ..serialize import durable_write, json_safe

__all__ = [
    "format_table",
    "format_stats_line",
    "sparkline",
    "series_summary",
    "write_json_report",
    "write_csv_report",
]

_SPARK_CHARS = " .:-=+*#%@"


def format_table(headers, rows, title=None):
    """Render a list-of-rows table with aligned columns.

    Cells are stringified; floats and complex numbers get 4 significant
    digits per component (a bare ``str()`` of a complex kernel value is
    a 17-digit-per-part blob that destroys column alignment in the
    distortion tables).
    """
    headers = [str(h) for h in headers]

    def render(cell):
        if isinstance(cell, complex) and not isinstance(cell, float):
            if cell == 0.0:
                return "0"
            return f"{cell.real:.4g}{cell.imag:+.4g}j"
        if isinstance(cell, float):
            if cell == 0.0:
                return "0"
            return f"{cell:.4g}"
        return str(cell)

    str_rows = [[render(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValidationError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(headers[j]), *(len(r[j]) for r in str_rows))
        if str_rows
        else len(headers[j])
        for j in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def write_json_report(path, report):
    """Write a JSON report atomically and durably.

    *report* is passed through :func:`repro.serialize.json_safe` first
    (numpy scalars unwrap, non-finite floats become strings, complex
    values render as ``"(re+imj)"`` strings via ``repr``), so pipeline
    results serialize without the caller hand-sanitizing every
    diagnostic — and the output is strict RFC-8259 JSON
    (``allow_nan=False``): no bare ``Infinity``/``NaN`` tokens that
    choke ``jq`` and other conforming parsers.  The write goes through
    :func:`repro.serialize.durable_write` (fsync'd temp file +
    ``os.replace`` + directory fsync), so a crash can neither tear the
    report nor lose it after it appeared.
    """
    text = json.dumps(json_safe(report), indent=2, default=repr,
                      sort_keys=False, allow_nan=False)
    return durable_write(path, text + "\n")


def write_csv_report(path, headers, rows):
    """Write a rows-and-headers table as CSV (full float precision).

    Unlike :func:`format_table` (eyeball output, 4 significant digits),
    CSV is machine-interchange: floats keep their shortest round-trip
    repr.
    """
    headers = [str(h) for h in headers]
    for idx, row in enumerate(rows):
        if len(row) != len(headers):
            raise ValidationError(
                f"row {idx} has {len(row)} cells, expected {len(headers)}"
            )
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(headers)
    for row in rows:
        writer.writerow([
            repr(cell) if isinstance(cell, complex)
            and not isinstance(cell, float) else cell
            for cell in row
        ])
    return durable_write(path, buffer.getvalue())


def format_stats_line(prefix, stats):
    """Flatten a (possibly nested) stats dict into one log line.

    ``format_stats_line("serve", {"requests": {"total": 3}, "p50_ms":
    1.25})`` → ``"serve requests.total=3 p50_ms=1.25"`` — the
    grep-friendly single-line format the serving daemon's periodic
    ``--stats-interval`` heartbeat uses, compact where the JSON report
    writers are complete.  Floats render with 4 significant digits;
    insertion order is preserved so successive lines stay diffable.
    """
    parts = []

    def render(value):
        if isinstance(value, bool):
            return str(value).lower()
        if isinstance(value, float):
            return "0" if value == 0.0 else f"{value:.4g}"
        return str(value)

    def walk(node, path):
        if isinstance(node, dict):
            for key, value in node.items():
                walk(value, f"{path}.{key}" if path else str(key))
        else:
            parts.append(f"{path}={render(node)}")

    walk(dict(stats), "")
    head = str(prefix).strip()
    return f"{head} {' '.join(parts)}".strip() if parts else head


def sparkline(values, width=72):
    """Compress a trace into one line of density characters."""
    values = np.asarray(values, dtype=float).reshape(-1)
    if values.size == 0:
        raise ValidationError("cannot sparkline an empty trace")
    if values.size > width:
        edges = np.linspace(0, values.size, width + 1).astype(int)
        values = np.array(
            [values[a:b].mean() if b > a else values[min(a, values.size - 1)]
             for a, b in zip(edges[:-1], edges[1:])]
        )
    lo, hi = values.min(), values.max()
    if hi == lo:
        return _SPARK_CHARS[0] * values.size
    idx = ((values - lo) / (hi - lo) * (len(_SPARK_CHARS) - 1)).astype(int)
    return "".join(_SPARK_CHARS[i] for i in idx)


def series_summary(name, times, values):
    """One-line summary plus sparkline for a time series."""
    times = np.asarray(times)
    values = np.asarray(values, dtype=float).reshape(-1)
    return (
        f"{name}: t in [{times[0]:.3g}, {times[-1]:.3g}], "
        f"min={values.min():.4g}, max={values.max():.4g}\n"
        f"  [{sparkline(values)}]"
    )
