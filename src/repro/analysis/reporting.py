"""Plain-text reporting helpers for the benchmark harness.

The benches print paper-shaped artifacts: Table 1's runtime rows and the
time-series that back Figs. 2-5 (as ASCII sparklines plus summary
numbers), so the reproduction can be eyeballed without a plotting stack.
"""

import numpy as np

from ..errors import ValidationError

__all__ = ["format_table", "sparkline", "series_summary"]

_SPARK_CHARS = " .:-=+*#%@"


def format_table(headers, rows, title=None):
    """Render a list-of-rows table with aligned columns.

    Cells are stringified; floats get 4 significant digits.
    """
    headers = [str(h) for h in headers]

    def render(cell):
        if isinstance(cell, float):
            if cell == 0.0:
                return "0"
            return f"{cell:.4g}"
        return str(cell)

    str_rows = [[render(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValidationError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(headers[j]), *(len(r[j]) for r in str_rows))
        if str_rows
        else len(headers[j])
        for j in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def sparkline(values, width=72):
    """Compress a trace into one line of density characters."""
    values = np.asarray(values, dtype=float).reshape(-1)
    if values.size == 0:
        raise ValidationError("cannot sparkline an empty trace")
    if values.size > width:
        edges = np.linspace(0, values.size, width + 1).astype(int)
        values = np.array(
            [values[a:b].mean() if b > a else values[min(a, values.size - 1)]
             for a, b in zip(edges[:-1], edges[1:])]
        )
    lo, hi = values.min(), values.max()
    if hi == lo:
        return _SPARK_CHARS[0] * values.size
    idx = ((values - lo) / (hi - lo) * (len(_SPARK_CHARS) - 1)).astype(int)
    return "".join(_SPARK_CHARS[i] for i in idx)


def series_summary(name, times, values):
    """One-line summary plus sparkline for a time series."""
    times = np.asarray(times)
    values = np.asarray(values, dtype=float).reshape(-1)
    return (
        f"{name}: t in [{times[0]:.3g}, {times[-1]:.3g}], "
        f"min={values.min():.4g}, max={values.max():.4g}\n"
        f"  [{sparkline(values)}]"
    )
