"""Error metrics, harmonic-distortion analysis and text reporting."""

from .distortion import (
    distortion_sweep,
    single_tone_distortion,
    two_tone_intermodulation,
)
from .metrics import (
    max_relative_error,
    relative_error_trace,
    rms_error,
    speedup,
)
from .reporting import (
    format_table,
    series_summary,
    sparkline,
    write_csv_report,
    write_json_report,
)

__all__ = [
    "distortion_sweep",
    "single_tone_distortion",
    "two_tone_intermodulation",
    "max_relative_error",
    "relative_error_trace",
    "rms_error",
    "speedup",
    "format_table",
    "series_summary",
    "sparkline",
    "write_csv_report",
    "write_json_report",
]
