"""Harmonic-distortion and intermodulation analysis from associated
transfer functions.

The paper's motivation (§1) is analog/RF verification, where the figures
of merit of a weakly nonlinear block are its harmonic-distortion ratios
HD2/HD3 and intermodulation products IM2/IM3.  The classical Volterra
formulas express these through the multivariate transfer functions
evaluated on the imaginary axis:

    single tone  u = A cos(ω t):
        fundamental amplitude :  A |H1(jω)|
        2nd harmonic          : (A²/2) |H2(jω, jω)|
        HD2 = (A/2) |H2(jω, jω)| / |H1(jω)|
        3rd harmonic          : (A³/4) |H3(jω, jω, jω)|
        HD3 = (A²/4) |H3(jω, jω, jω)| / |H1(jω)|

    two tones at ω1, ω2:
        IM2 at ω1 ± ω2 : A1 A2 |H2(jω1, ±jω2)|
        IM3 at 2ω1 − ω2: (3/4) A1² A2 |H3(jω1, jω1, −jω2)|

These quantities give a *frequency-domain* check of a ROM that is
independent of transient integration: the ROM preserves the distortion
figures exactly to the matched moment order.
"""

import numpy as np

from .._validation import as_vector
from ..engine import ProcessSpec, SolvePlan, get_executor
from ..engine.process import process_token
from ..errors import NumericalError, SystemStructureError, TaskCancelled
from ..volterra.evaluator import volterra_evaluator

__all__ = [
    "single_tone_distortion",
    "two_tone_intermodulation",
    "distortion_sweep",
]


def _output_scalar(system, matrix, col=0):
    out = system.output @ matrix
    return complex(out[0, col])


def _require_siso(system):
    if system.n_inputs != 1:
        raise SystemStructureError(
            "distortion analysis is defined for single-input systems; "
            "drive one input at a time"
        )
    if system.n_outputs != 1:
        raise SystemStructureError(
            "distortion analysis needs a scalar output; set system.output"
        )


def _sum_type_metrics(system, evaluator, omega, amplitude):
    """Single-tone sum-type harmonic metrics (no difference-type solves).

    The shared implementation behind :func:`single_tone_distortion` and
    the per-point tasks of :func:`distortion_sweep`: fundamental, second
    and third harmonic output amplitudes plus the HD2/HD3 ratios, from
    the memoized ``H1``/``H2``/``H3`` kernels at ``+jω`` only.

    Returns ``(metrics, kernel_magnitudes)`` — the second dict carries
    the raw ``|C·Hk|`` values for callers that need amplitude-free
    references (e.g. the difference-term noise floor).
    """
    jw = 1j * float(omega)
    a = float(amplitude)
    h1 = abs(_output_scalar(system, evaluator.h1(jw)))
    h2_sum = abs(_output_scalar(system, evaluator.h2(jw, jw)))
    h3_triple = abs(_output_scalar(system, evaluator.h3(jw, jw, jw)))
    fundamental = a * h1
    second = 0.5 * a**2 * h2_sum
    third = 0.25 * a**3 * h3_triple
    metrics = {
        "fundamental": fundamental,
        "second_harmonic": second,
        "third_harmonic": third,
        "hd2": second / fundamental if fundamental else np.inf,
        "hd3": third / fundamental if fundamental else np.inf,
    }
    return metrics, {"h1": h1, "h2_sum": h2_sum, "h3_triple": h3_triple}


def _difference_term(system, name, exact, offset, scale, reference=0.0):
    """Output magnitude of a difference-type kernel term, robust at DC.

    Difference-type products (``dc_shift``, ``im2_diff``, ``im3_*``)
    solve at frequency *differences*, which land on DC — an eigenvalue
    of the lifted state matrix for QLDAEs — where the resolvent is
    singular.  Instead of silently degrading to NaN, the term is
    evaluated as a small-offset limit: the offending tone is nudged off
    the singular shift by ``jδ`` at three offsets (δ, δ/2, δ/4) and
    Richardson-extrapolated to ``δ → 0`` (the structural DC mode of a
    lifted system is unobservable at the output, so the limit exists).
    Convergence is judged on the *successive differences*: a smooth
    limit contracts them by ~2 per halving, while any pole component —
    even one small against the regular part — makes them grow, so a
    genuinely divergent term raises :class:`~repro.errors.
    NumericalError` naming the term instead of returning a
    pole-contaminated extrapolation.

    Parameters
    ----------
    system : the SISO system (for the output projection)
    name : str
        Term name used in diagnostics (e.g. ``"dc_shift"``).
    exact : callable () -> (n, 1) kernel matrix
        The unperturbed evaluation; used directly when non-singular.
    offset : callable (delta) -> (n, 1) kernel matrix
        The evaluation with the difference shift moved ``jδ`` off the
        spectrum.
    scale : float
        Frequency scale used to size the offset.
    reference : float
        Same-family output magnitude (e.g. the corresponding sum-type
        product) used as a noise floor for the divergence test: offset
        values smaller than ``1e-10 × reference`` are rounding noise
        from a structurally-zero term, not samples of a pole, however
        their ratio happens to land.
    """
    try:
        return abs(_output_scalar(system, exact()))
    except NumericalError:
        pass
    delta = 1e-5 * max(float(scale), 1.0)
    try:
        v1 = _output_scalar(system, offset(delta))
        v2 = _output_scalar(system, offset(delta / 2.0))
        v3 = _output_scalar(system, offset(delta / 4.0))
    except NumericalError as exc:
        raise NumericalError(
            f"distortion term '{name}' needs a kernel solve at a shift "
            f"on the system spectrum, and the small-offset limit is "
            f"singular too (offsets {delta:.1e}..{delta / 4.0:.1e}); "
            f"the term is undefined for this system"
        ) from exc
    # Smooth limit: successive differences contract by ~2 per halving
    # (linear truncation term).  Any pole component c/delta makes them
    # *grow* by ~2 instead, so requiring contraction catches even a
    # pole whose magnitude is still comparable to the regular part at
    # these offsets.  Differences below the noise floor (structurally
    # zero term: both samples are rounding noise) are convergence.
    floor = 1e-10 * max(float(reference), 0.0) + 1e-300
    d1 = abs(v1 - v2)
    d2 = abs(v2 - v3)
    if d2 > 0.75 * d1 + floor:
        raise NumericalError(
            f"distortion term '{name}' diverges as the difference shift "
            f"approaches the system spectrum (successive offset "
            f"differences grow, {d1:.3e} -> {d2:.3e}, instead of "
            f"contracting): the kernel has a genuine pole at this "
            f"frequency combination"
        )
    # Richardson extrapolation from the two finest samples: cancels the
    # leading O(delta) truncation term.
    return abs(2.0 * v3 - v2)


def single_tone_distortion(system, omega, amplitude=1.0, evaluator=None):
    """Harmonic distortion of a SISO polynomial system at one tone.

    Parameters
    ----------
    system : PolynomialODE (explicit)
    omega : float
        Angular frequency of the excitation ``A cos(ω t)``.
    amplitude : float
        Tone amplitude ``A``.
    evaluator : VolterraEvaluator, optional
        Shared kernel cache; defaults to the system's own (so repeated
        calls — and whole sweeps — reuse one factorization of ``G1``
        and every previously solved sub-kernel).

    Returns
    -------
    dict with keys ``fundamental``, ``second_harmonic``,
    ``third_harmonic`` (output amplitudes), ``dc_shift`` (the H2(jω,−jω)
    rectification term) and the ratios ``hd2``, ``hd3``.

    The rectification term solves at DC, where lifted QLDAEs are
    singular; it is evaluated via a small-offset limit there (see
    :func:`_difference_term`) and raises a :class:`~repro.errors.
    NumericalError` naming the term if the limit genuinely diverges.
    """
    _require_siso(system)
    ev = evaluator if evaluator is not None else volterra_evaluator(system)
    w = float(omega)
    jw = 1j * w
    a = float(amplitude)
    metrics, kernels = _sum_type_metrics(system, ev, w, a)
    h2_diff = _difference_term(
        system,
        "dc_shift",
        lambda: ev.h2(jw, -jw),
        lambda delta: ev.h2(jw, 1j * (delta - w)),
        scale=abs(w),
        reference=kernels["h2_sum"],
    )
    metrics["dc_shift"] = 0.5 * a**2 * h2_diff
    return metrics


def two_tone_intermodulation(
    system, omega1, omega2, a1=1.0, a2=1.0, evaluator=None
):
    """Two-tone IM products of a SISO polynomial system.

    Returns a dict with the output amplitudes at the fundamentals, the
    second-order products ``ω1+ω2`` / ``ω1−ω2`` and the third-order
    products ``2ω1−ω2`` / ``2ω2−ω1`` (the in-band IM3 that limits RF
    front-end linearity).  All kernels are served from the system's
    memoized evaluator, so the ``H1``/``H2`` sub-kernels shared between
    the IM products are solved once.
    """
    _require_siso(system)
    ev = evaluator if evaluator is not None else volterra_evaluator(system)
    w1, w2 = float(omega1), float(omega2)
    jw1, jw2 = 1j * w1, 1j * w2
    ev.prime_h1([jw1, jw2, -jw1, -jw2])
    scale = max(abs(w1), abs(w2))

    # Difference-type products solve at j(ω1 − ω2)-style shifts, which
    # land on DC (or on 2ω1 = ω2 resonances) — singular for lifted
    # QLDAEs.  Each is evaluated via the small-offset limit, raising a
    # NumericalError that names the term if it genuinely diverges.
    h1_1 = abs(_output_scalar(system, ev.h1(jw1)))
    h1_2 = abs(_output_scalar(system, ev.h1(jw2)))
    im2_sum = abs(_output_scalar(system, ev.h2(jw1, jw2)))
    im2_diff = _difference_term(
        system,
        "im2_diff",
        lambda: ev.h2(jw1, -jw2),
        lambda delta: ev.h2(jw1, 1j * (delta - w2)),
        scale=scale,
        reference=im2_sum,
    )
    im3_a = _difference_term(
        system,
        "im3_2f1_f2",
        lambda: ev.h3(jw1, jw1, -jw2),
        lambda delta: ev.h3(jw1, jw1, 1j * (delta - w2)),
        scale=scale,
        reference=im2_sum,
    )
    im3_b = _difference_term(
        system,
        "im3_2f2_f1",
        lambda: ev.h3(jw2, jw2, -jw1),
        lambda delta: ev.h3(jw2, jw2, 1j * (delta - w1)),
        scale=scale,
        reference=im2_sum,
    )
    return {
        "fund_1": a1 * h1_1,
        "fund_2": a2 * h1_2,
        "im2_sum": a1 * a2 * im2_sum,
        "im2_diff": a1 * a2 * im2_diff,
        "im3_2f1_f2": 0.75 * a1**2 * a2 * im3_a,
        "im3_2f2_f1": 0.75 * a2**2 * a1 * im3_b,
    }


def _system_tree(system):
    """Codec-serializable matrix tree rebuilding *system* in a worker."""
    tree = {"g1": system.g1, "b": system.b, "output": system.output}
    if system.g2 is not None:
        tree["g2"] = system.g2
    if system.g3 is not None:
        tree["g3"] = system.g3
    if system.mass is not None:
        tree["mass"] = system.mass
    if system.d1 is not None:
        tree["d1"] = list(system.d1)
    return tree


def _sweep_point_worker(payload):
    """Process-backend worker: HD2/HD3 of one sweep point.

    Rebuilds the system (and its Volterra evaluator) from the payload
    matrix tree — shared-memory-mapped, so every task of a sweep views
    one copy — memoized per worker process under the parent-supplied
    token, then evaluates the sum-type metrics exactly as the inline
    path does.  Sparse kernels replay the same factorization/solve
    sequence and stay bit-identical to serial; dense kernels skip the
    parent's batched H1/H2 priming and may differ at rounding level
    (documented ≤ 1e-10).
    """
    from ..engine.process import worker_cache
    from ..systems.polynomial import PolynomialODE

    def build():
        mats = payload["system"]
        worker_system = PolynomialODE(
            mats["g1"],
            mats["b"],
            g2=mats.get("g2"),
            g3=mats.get("g3"),
            d1=mats.get("d1"),
            mass=mats.get("mass"),
            output=mats.get("output"),
        )
        return worker_system, volterra_evaluator(worker_system)

    worker_system, evaluator = worker_cache(
        ("distortion", payload["token"]), build
    )
    metrics, _ = _sum_type_metrics(
        worker_system, evaluator, payload["omega"], payload["amplitude"]
    )
    return {"hd2": metrics["hd2"], "hd3": metrics["hd3"]}


def distortion_sweep(system, omegas, amplitude=1.0, cancel=None):
    """HD2/HD3 across a frequency grid.

    Returns ``(omegas, hd2, hd3)`` arrays — the data behind a classic
    distortion-vs-frequency plot, and a compact way to compare a ROM
    against the full model over a whole band.

    The whole grid runs through one shared factorization of ``G1``: the
    ``H1(jω)`` seeds are batch-solved up front
    (:meth:`VolterraEvaluator.prime_h1`), the symmetric-pair H2 grid is
    batch-primed (:meth:`VolterraEvaluator.prime_h2`), and every
    higher-order kernel reuses the memoized sub-kernels, so a sweep
    costs one ``O(n³)`` factorization plus ``O(n²)`` per grid point
    instead of a fresh factorization per kernel per point.

    Only the sum-type kernels enter HD2/HD3, so no difference-type (DC)
    solves are performed.  The per-point H3 assemblies are independent
    and run as one engine plan — parallel when
    :func:`repro.engine.configure` (or ``REPRO_BACKEND`` /
    ``REPRO_WORKERS``) selects the thread or process backend, serial
    and bit-identical by default.  Under the process backend each point
    ships to a worker process (shared-memory system matrices, per-worker
    evaluator cache); sparse systems stay bit-identical to serial, dense
    systems agree to ≤ 1e-10 (workers skip the batched H1/H2 priming).

    *cancel* (a zero-argument callable polled between stages and tasks)
    makes the sweep cooperatively cancellable: once it reports True the
    sweep raises :class:`~repro.errors.TaskCancelled` at the next
    boundary instead of finishing the grid.  Kernels solved before the
    cancellation stay memoized (they are deterministic values), so a
    cancelled sweep never poisons the evaluator cache.
    """
    omegas = as_vector(np.asarray(omegas, dtype=float), "omegas")
    _require_siso(system)
    evaluator = volterra_evaluator(system)
    amplitude = float(amplitude)
    jws = 1j * omegas
    if cancel is not None and cancel():
        raise TaskCancelled("distortion sweep cancelled before priming")
    # Under the process backend the per-point tasks carry specs and the
    # workers compute their own kernels, so the parent's batch priming
    # would be wasted serial work; every other backend consumes it.
    from ..systems.polynomial import PolynomialODE

    backend = getattr(get_executor(), "backend_name", "serial")
    ship = (
        backend == "process"
        and type(system) is PolynomialODE
        and omegas.size > 1
    )
    if not ship:
        evaluator.prime_h1(jws)
        if cancel is not None and cancel():
            raise TaskCancelled(
                "distortion sweep cancelled after the H1 seed batch"
            )
        evaluator.prime_h2([(jw, jw) for jw in jws])
    hd2 = np.empty(omegas.size)
    hd3 = np.empty(omegas.size)

    def _point(idx):
        metrics, _ = _sum_type_metrics(
            system, evaluator, omegas[idx], amplitude
        )
        hd2[idx] = metrics["hd2"]
        hd3[idx] = metrics["hd3"]

    def _merge(idx):
        def apply(result):
            hd2[idx] = result["hd2"]
            hd3[idx] = result["hd3"]

        return apply

    if ship:
        token = process_token(system)
        tree = _system_tree(system)

    plan = SolvePlan("distortion_sweep")
    for idx in range(omegas.size):
        task = plan.add(_point, idx)
        if ship:
            task.spec = ProcessSpec(
                "repro.analysis.distortion:_sweep_point_worker",
                lambda idx=idx: {
                    "token": token,
                    "omega": float(omegas[idx]),
                    "amplitude": amplitude,
                    "system": tree,
                },
                merge=_merge(idx),
            )
    plan.execute(cancel=cancel)
    return omegas, hd2, hd3
