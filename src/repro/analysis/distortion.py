"""Harmonic-distortion and intermodulation analysis from associated
transfer functions.

The paper's motivation (§1) is analog/RF verification, where the figures
of merit of a weakly nonlinear block are its harmonic-distortion ratios
HD2/HD3 and intermodulation products IM2/IM3.  The classical Volterra
formulas express these through the multivariate transfer functions
evaluated on the imaginary axis:

    single tone  u = A cos(ω t):
        fundamental amplitude :  A |H1(jω)|
        2nd harmonic          : (A²/2) |H2(jω, jω)|
        HD2 = (A/2) |H2(jω, jω)| / |H1(jω)|
        3rd harmonic          : (A³/4) |H3(jω, jω, jω)|
        HD3 = (A²/4) |H3(jω, jω, jω)| / |H1(jω)|

    two tones at ω1, ω2:
        IM2 at ω1 ± ω2 : A1 A2 |H2(jω1, ±jω2)|
        IM3 at 2ω1 − ω2: (3/4) A1² A2 |H3(jω1, jω1, −jω2)|

These quantities give a *frequency-domain* check of a ROM that is
independent of transient integration: the ROM preserves the distortion
figures exactly to the matched moment order.
"""

import numpy as np

from .._validation import as_vector
from ..errors import NumericalError, SystemStructureError
from ..volterra.evaluator import volterra_evaluator

__all__ = [
    "single_tone_distortion",
    "two_tone_intermodulation",
    "distortion_sweep",
]


def _output_scalar(system, matrix, col=0):
    out = system.output @ matrix
    return complex(out[0, col])


def _require_siso(system):
    if system.n_inputs != 1:
        raise SystemStructureError(
            "distortion analysis is defined for single-input systems; "
            "drive one input at a time"
        )
    if system.n_outputs != 1:
        raise SystemStructureError(
            "distortion analysis needs a scalar output; set system.output"
        )


def single_tone_distortion(system, omega, amplitude=1.0, evaluator=None):
    """Harmonic distortion of a SISO polynomial system at one tone.

    Parameters
    ----------
    system : PolynomialODE (explicit)
    omega : float
        Angular frequency of the excitation ``A cos(ω t)``.
    amplitude : float
        Tone amplitude ``A``.
    evaluator : VolterraEvaluator, optional
        Shared kernel cache; defaults to the system's own (so repeated
        calls — and whole sweeps — reuse one factorization of ``G1``
        and every previously solved sub-kernel).

    Returns
    -------
    dict with keys ``fundamental``, ``second_harmonic``,
    ``third_harmonic`` (output amplitudes), ``dc_shift`` (the H2(jω,−jω)
    rectification term) and the ratios ``hd2``, ``hd3``.
    """
    _require_siso(system)
    ev = evaluator if evaluator is not None else volterra_evaluator(system)
    jw = 1j * float(omega)
    a = float(amplitude)
    h1 = abs(_output_scalar(system, ev.h1(jw)))
    h2_sum = abs(_output_scalar(system, ev.h2(jw, jw)))
    try:
        h2_diff = abs(_output_scalar(system, ev.h2(jw, -jw)))
    except NumericalError:
        # The rectification term needs a solve at DC; lifted QLDAEs are
        # often singular there.  HD2/HD3 are unaffected — report the DC
        # shift as undefined instead of a garbage near-singular solve.
        h2_diff = np.nan
    h3_triple = abs(_output_scalar(system, ev.h3(jw, jw, jw)))
    fundamental = a * h1
    second = 0.5 * a**2 * h2_sum
    third = 0.25 * a**3 * h3_triple
    return {
        "fundamental": fundamental,
        "second_harmonic": second,
        "third_harmonic": third,
        "dc_shift": 0.5 * a**2 * h2_diff,
        "hd2": second / fundamental if fundamental else np.inf,
        "hd3": third / fundamental if fundamental else np.inf,
    }


def two_tone_intermodulation(
    system, omega1, omega2, a1=1.0, a2=1.0, evaluator=None
):
    """Two-tone IM products of a SISO polynomial system.

    Returns a dict with the output amplitudes at the fundamentals, the
    second-order products ``ω1+ω2`` / ``ω1−ω2`` and the third-order
    products ``2ω1−ω2`` / ``2ω2−ω1`` (the in-band IM3 that limits RF
    front-end linearity).  All kernels are served from the system's
    memoized evaluator, so the ``H1``/``H2`` sub-kernels shared between
    the IM products are solved once.
    """
    _require_siso(system)
    ev = evaluator if evaluator is not None else volterra_evaluator(system)
    jw1, jw2 = 1j * float(omega1), 1j * float(omega2)
    ev.prime_h1([jw1, jw2, -jw1, -jw2])

    def _magnitude(compute):
        # Difference-type products solve at j(ω1 − ω2)-style shifts,
        # which land on DC for equal tones — singular for lifted
        # QLDAEs.  Degrade those terms to NaN like the single-tone
        # rectification term instead of aborting the whole analysis.
        try:
            return abs(_output_scalar(system, compute()))
        except NumericalError:
            return np.nan

    h1_1 = abs(_output_scalar(system, ev.h1(jw1)))
    h1_2 = abs(_output_scalar(system, ev.h1(jw2)))
    im2_sum = abs(_output_scalar(system, ev.h2(jw1, jw2)))
    im2_diff = _magnitude(lambda: ev.h2(jw1, -jw2))
    im3_a = _magnitude(lambda: ev.h3(jw1, jw1, -jw2))
    im3_b = _magnitude(lambda: ev.h3(jw2, jw2, -jw1))
    return {
        "fund_1": a1 * h1_1,
        "fund_2": a2 * h1_2,
        "im2_sum": a1 * a2 * im2_sum,
        "im2_diff": a1 * a2 * im2_diff,
        "im3_2f1_f2": 0.75 * a1**2 * a2 * im3_a,
        "im3_2f2_f1": 0.75 * a2**2 * a1 * im3_b,
    }


def distortion_sweep(system, omegas, amplitude=1.0):
    """HD2/HD3 across a frequency grid.

    Returns ``(omegas, hd2, hd3)`` arrays — the data behind a classic
    distortion-vs-frequency plot, and a compact way to compare a ROM
    against the full model over a whole band.

    The whole grid runs through one shared factorization of ``G1``: the
    ``H1(±jω)`` seeds are batch-solved up front
    (:meth:`VolterraEvaluator.prime_h1`) and every higher-order kernel
    reuses the memoized sub-kernels, so a sweep costs one ``O(n³)``
    factorization plus ``O(n²)`` per grid point instead of a fresh
    factorization per kernel per point.
    """
    omegas = as_vector(np.asarray(omegas, dtype=float), "omegas")
    _require_siso(system)
    evaluator = volterra_evaluator(system)
    jws = 1j * omegas
    evaluator.prime_h1(np.concatenate([jws, -jws]))
    hd2 = np.empty(omegas.size)
    hd3 = np.empty(omegas.size)
    for idx, w in enumerate(omegas):
        metrics = single_tone_distortion(
            system, w, amplitude, evaluator=evaluator
        )
        hd2[idx] = metrics["hd2"]
        hd3[idx] = metrics["hd3"]
    return omegas, hd2, hd3
