"""Harmonic-distortion and intermodulation analysis from associated
transfer functions.

The paper's motivation (§1) is analog/RF verification, where the figures
of merit of a weakly nonlinear block are its harmonic-distortion ratios
HD2/HD3 and intermodulation products IM2/IM3.  The classical Volterra
formulas express these through the multivariate transfer functions
evaluated on the imaginary axis:

    single tone  u = A cos(ω t):
        fundamental amplitude :  A |H1(jω)|
        2nd harmonic          : (A²/2) |H2(jω, jω)|
        HD2 = (A/2) |H2(jω, jω)| / |H1(jω)|
        3rd harmonic          : (A³/4) |H3(jω, jω, jω)|
        HD3 = (A²/4) |H3(jω, jω, jω)| / |H1(jω)|

    two tones at ω1, ω2:
        IM2 at ω1 ± ω2 : A1 A2 |H2(jω1, ±jω2)|
        IM3 at 2ω1 − ω2: (3/4) A1² A2 |H3(jω1, jω1, −jω2)|

These quantities give a *frequency-domain* check of a ROM that is
independent of transient integration: the ROM preserves the distortion
figures exactly to the matched moment order.
"""

import numpy as np

from .._validation import as_vector
from ..errors import SystemStructureError
from ..volterra.transfer import volterra_h1, volterra_h2, volterra_h3

__all__ = [
    "single_tone_distortion",
    "two_tone_intermodulation",
    "distortion_sweep",
]


def _output_scalar(system, matrix, col=0):
    out = system.output @ matrix
    return complex(out[0, col])


def _require_siso(system):
    if system.n_inputs != 1:
        raise SystemStructureError(
            "distortion analysis is defined for single-input systems; "
            "drive one input at a time"
        )
    if system.n_outputs != 1:
        raise SystemStructureError(
            "distortion analysis needs a scalar output; set system.output"
        )


def single_tone_distortion(system, omega, amplitude=1.0):
    """Harmonic distortion of a SISO polynomial system at one tone.

    Parameters
    ----------
    system : PolynomialODE (explicit)
    omega : float
        Angular frequency of the excitation ``A cos(ω t)``.
    amplitude : float
        Tone amplitude ``A``.

    Returns
    -------
    dict with keys ``fundamental``, ``second_harmonic``,
    ``third_harmonic`` (output amplitudes), ``dc_shift`` (the H2(jω,−jω)
    rectification term) and the ratios ``hd2``, ``hd3``.
    """
    _require_siso(system)
    jw = 1j * float(omega)
    a = float(amplitude)
    h1 = abs(_output_scalar(system, volterra_h1(system, jw)))
    h2_sum = abs(_output_scalar(system, volterra_h2(system, jw, jw)))
    h2_diff = abs(_output_scalar(system, volterra_h2(system, jw, -jw)))
    h3_triple = abs(
        _output_scalar(system, volterra_h3(system, jw, jw, jw))
    )
    fundamental = a * h1
    second = 0.5 * a**2 * h2_sum
    third = 0.25 * a**3 * h3_triple
    return {
        "fundamental": fundamental,
        "second_harmonic": second,
        "third_harmonic": third,
        "dc_shift": 0.5 * a**2 * h2_diff,
        "hd2": second / fundamental if fundamental else np.inf,
        "hd3": third / fundamental if fundamental else np.inf,
    }


def two_tone_intermodulation(system, omega1, omega2, a1=1.0, a2=1.0):
    """Two-tone IM products of a SISO polynomial system.

    Returns a dict with the output amplitudes at the fundamentals, the
    second-order products ``ω1+ω2`` / ``ω1−ω2`` and the third-order
    products ``2ω1−ω2`` / ``2ω2−ω1`` (the in-band IM3 that limits RF
    front-end linearity).
    """
    _require_siso(system)
    jw1, jw2 = 1j * float(omega1), 1j * float(omega2)
    h1_1 = abs(_output_scalar(system, volterra_h1(system, jw1)))
    h1_2 = abs(_output_scalar(system, volterra_h1(system, jw2)))
    im2_sum = abs(_output_scalar(system, volterra_h2(system, jw1, jw2)))
    im2_diff = abs(_output_scalar(system, volterra_h2(system, jw1, -jw2)))
    im3_a = abs(
        _output_scalar(system, volterra_h3(system, jw1, jw1, -jw2))
    )
    im3_b = abs(
        _output_scalar(system, volterra_h3(system, jw2, jw2, -jw1))
    )
    return {
        "fund_1": a1 * h1_1,
        "fund_2": a2 * h1_2,
        "im2_sum": a1 * a2 * im2_sum,
        "im2_diff": a1 * a2 * im2_diff,
        "im3_2f1_f2": 0.75 * a1**2 * a2 * im3_a,
        "im3_2f2_f1": 0.75 * a2**2 * a1 * im3_b,
    }


def distortion_sweep(system, omegas, amplitude=1.0):
    """HD2/HD3 across a frequency grid.

    Returns ``(omegas, hd2, hd3)`` arrays — the data behind a classic
    distortion-vs-frequency plot, and a compact way to compare a ROM
    against the full model over a whole band.
    """
    omegas = as_vector(np.asarray(omegas, dtype=float), "omegas")
    hd2 = np.empty(omegas.size)
    hd3 = np.empty(omegas.size)
    for idx, w in enumerate(omegas):
        metrics = single_tone_distortion(system, w, amplitude)
        hd2[idx] = metrics["hd2"]
        hd3[idx] = metrics["hd3"]
    return omegas, hd2, hd3
