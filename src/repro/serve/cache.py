"""Size-bounded in-memory LRU cache of hot ROM artifacts.

The third tier of the serving stack.  A cold request computes the
reduction; a warm-disk request deserializes it from the
content-addressed :class:`~repro.store.ModelStore`; a hot request takes
it straight from this cache — *including* the memoized
``to_explicit()`` form whose Volterra evaluator has already primed its
H1/H2 kernels, which is what makes the hot tier measurably faster than
re-loading the same artifact from disk (``to_explicit`` returns a fresh
object per call, so a cache that only kept the artifact would silently
throw the primed evaluator away on every request).

Keys are the store's content-addressed artifact keys, so an entry can
never serve the wrong (system, reducer) pair; admission re-verifies the
basis SHA-256 digest, so a corrupted artifact is rejected at the door
instead of being pinned in memory.
"""

import threading
from collections import OrderedDict

from .._validation import check_positive_int

__all__ = ["CacheEntry", "HotROMCache"]


class CacheEntry:
    """One cached reduction: the artifact plus its retained explicit form."""

    __slots__ = ("key", "artifact", "_explicit", "_lock")

    def __init__(self, key, artifact):
        self.key = key
        self.artifact = artifact
        self._explicit = None
        self._lock = threading.Lock()

    @property
    def rom(self):
        return self.artifact.rom

    def explicit(self):
        """The ROM system's ``to_explicit()`` form, built once.

        The retained object carries the memoized Volterra evaluator, so
        every sweep after the first skips re-priming the H1/H2 kernels
        — the hot tier's speed advantage.  Built lazily under the entry
        lock: concurrent first sweeps agree on one object.
        """
        with self._lock:
            if self._explicit is None:
                self._explicit = self.rom.system.to_explicit()
            return self._explicit

    def __repr__(self):
        return f"CacheEntry(key={self.key[:12]}..., rom={self.rom.order})"


class HotROMCache:
    """Thread-safe LRU over :class:`CacheEntry`, bounded by entry count.

    ``capacity=0`` disables the cache (every ``get`` misses, ``put``
    drops) so the serving stack degrades to the two on-disk tiers
    without special-casing callers.
    """

    def __init__(self, capacity=8):
        self.capacity = (
            0 if capacity in (0, None)
            else check_positive_int(capacity, "capacity")
        )
        self._entries = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.admitted = 0
        self.rejected = 0
        self.evicted = 0

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def __contains__(self, key):
        with self._lock:
            return key in self._entries

    def get(self, key):
        """The entry for *key* (refreshing its recency), or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key, artifact):
        """Admit *artifact* under *key*; returns the entry (or ``None``).

        Admission re-checks the artifact's basis SHA-256 digest
        (:meth:`~repro.store.ReductionArtifact.verify`): a corrupt or
        tampered artifact is refused — counted in ``rejected`` — so the
        in-memory tier can never outlive the integrity guarantees of
        the disk tier beneath it.  Inserting over an existing key
        replaces the entry (a store overwrite must not leave a stale
        ROM pinned hot).
        """
        if self.capacity == 0:
            return None
        if not artifact.verify():
            with self._lock:
                self.rejected += 1
            return None
        entry = CacheEntry(key, artifact)
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            self.admitted += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evicted += 1
        return entry

    def invalidate(self, key):
        """Drop *key* if present; True when an entry was removed."""
        with self._lock:
            return self._entries.pop(key, None) is not None

    def clear(self):
        with self._lock:
            self._entries.clear()

    def warm_start(self, store, limit=None):
        """Pre-load the most recently accessed store entries.

        Reads the store's ``last_access_unix`` ordering
        (:meth:`~repro.store.ModelStore.recent_keys`) and admits up to
        *limit* (default: capacity) artifacts, most recent ending up
        most-recently-used.  Corrupt entries are skipped (the store
        quarantines them).  Returns the number admitted.
        """
        if self.capacity == 0:
            return 0
        if limit is None:
            limit = self.capacity
        count = 0
        keys = store.recent_keys(limit=limit)
        # Admit in reverse so the most recently accessed key is MRU.
        for key in reversed(keys):
            artifact = store.load(key, touch=False)
            if artifact is not None and self.put(key, artifact):
                count += 1
        return count

    def stats(self):
        """Counters + occupancy, ``sparse_lu_stats``-style."""
        with self._lock:
            return {
                "capacity": int(self.capacity),
                "entries": len(self._entries),
                "hits": int(self.hits),
                "misses": int(self.misses),
                "admitted": int(self.admitted),
                "rejected": int(self.rejected),
                "evicted": int(self.evicted),
            }

    def __repr__(self):
        return (
            f"HotROMCache(capacity={self.capacity}, entries={len(self)})"
        )
