"""Serving counters and latency quantiles.

One :class:`ServeMetrics` per service: request counts per verb, cache
tier hits, rejection/timeout/error tallies, and a bounded sliding
window of per-verb latencies from which p50/p99 are computed on
demand.  Everything is thread-safe (requests are handled on worker
threads) and :meth:`snapshot` is JSON-safe — it feeds both the
daemon's ``/metrics`` endpoint and the periodic ``--stats-interval``
log line via :func:`~repro.analysis.reporting.format_stats_line`.
"""

import math
import threading
from collections import deque

__all__ = ["ServeMetrics"]

#: Sliding-window size for latency quantiles: big enough for stable
#: p99 estimates, small enough that a long-lived daemon's memory stays
#: flat.
_WINDOW = 512


def _quantile(values, q):
    """The *q*-quantile of a non-empty sorted list (nearest-rank)."""
    rank = max(0, min(len(values) - 1, math.ceil(q * len(values)) - 1))
    return values[rank]


class ServeMetrics:
    """Thread-safe serving counters + sliding-window latencies."""

    def __init__(self, window=_WINDOW):
        self._lock = threading.Lock()
        self._window = int(window)
        self.requests = {}
        self.tiers = {"hot": 0, "disk": 0, "cold": 0}
        self.parametric_tiers = {}
        self.rejected = 0
        self.timeouts = 0
        self.errors = 0
        self._latency = {}

    def observe(self, verb, seconds, tier=None):
        """Record one completed request."""
        with self._lock:
            self.requests[verb] = self.requests.get(verb, 0) + 1
            if tier is not None:
                self.tiers[tier] = self.tiers.get(tier, 0) + 1
            window = self._latency.get(verb)
            if window is None:
                window = self._latency[verb] = deque(maxlen=self._window)
            window.append(float(seconds))

    def record_tiers(self, counters):
        """Accumulate a parametric run's per-reuse-tier counters.

        ``counters`` is the :attr:`~repro.pipeline.ParametricResult.
        tiers` dict (``dedup`` / ``warm`` / ``interp`` / ``cold`` /
        ``interp_rejected``); unlike :meth:`observe`'s one-tier-per-
        request accounting, one ``mc`` request contributes its whole
        family here.
        """
        with self._lock:
            for tier, count in dict(counters).items():
                self.parametric_tiers[tier] = (
                    self.parametric_tiers.get(tier, 0) + int(count)
                )

    def count_rejected(self):
        """One request shed by backpressure (HTTP 429)."""
        with self._lock:
            self.rejected += 1

    def count_timeout(self):
        """One request that exceeded its deadline (HTTP 504)."""
        with self._lock:
            self.timeouts += 1

    def count_error(self):
        """One request that failed (HTTP 4xx/5xx other than 429/504)."""
        with self._lock:
            self.errors += 1

    def snapshot(self):
        """JSON-safe state: counters plus per-verb p50/p99 (ms)."""
        with self._lock:
            latency = {}
            for verb, window in self._latency.items():
                if not window:
                    continue
                ordered = sorted(window)
                latency[verb] = {
                    "p50_ms": _quantile(ordered, 0.50) * 1e3,
                    "p99_ms": _quantile(ordered, 0.99) * 1e3,
                    "samples": len(ordered),
                }
            return {
                "requests": dict(self.requests),
                "total": int(sum(self.requests.values())),
                "tiers": dict(self.tiers),
                "parametric_tiers": dict(self.parametric_tiers),
                "rejected": int(self.rejected),
                "timeouts": int(self.timeouts),
                "errors": int(self.errors),
                "latency": latency,
            }
