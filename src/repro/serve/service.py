"""The serving core: one object that answers all pipeline verbs.

:class:`ReproService` is the code path *both* front doors run — the
one-shot CLI (``python -m repro reduce/sweep/simulate/info``) and the
long-lived HTTP daemon (``python -m repro serve``) build a contract
request (:mod:`repro.serve.contracts`) and call :meth:`~ReproService.
handle`.  Internally it reuses the pipeline's factored steps
(:func:`~repro.pipeline._reduce_step` / ``_sweep_result`` /
``_transient_result``) and assembles an ordinary
:class:`~repro.pipeline.PipelineResult`, so a served report is the
pipeline report plus additive serving metadata — never a parallel
reimplementation that could drift.

What the service adds over a bare ``run_pipeline`` call is the
long-lived-process machinery:

* **Spec cache** — each distinct spec (job sections excluded) is
  compiled once; its structural fingerprint is computed once, lazily,
  and threaded down so neither the store key nor the artifact
  provenance re-hashes the system matrices per request.
* **Three serving tiers** for the reduce step, each measurably faster
  than the one below: ``"hot"`` (in-memory
  :class:`~repro.serve.cache.HotROMCache`, primed explicit system
  retained), ``"disk"`` (content-addressed
  :class:`~repro.store.ModelStore` load), ``"cold"`` (computed this
  request, then admitted to both lower tiers).  Concurrent cold
  requests for the same key single-flight behind a per-key lock.
* **Request coalescing** — concurrent sweeps on the same ROM and
  amplitude merge their frequency grids into one
  :class:`~repro.serve.coalesce.SweepCoalescer` flight.
* **Cooperative deadlines** — *cancel* (a zero-argument callable) is
  polled by the per-request work (compare-full sweeps, uncoalesced
  grids) and raises :class:`~repro.errors.TaskCancelled`; shared work
  (reductions, coalesced flights) always runs to completion, so a
  timed-out request can never poison state other requests see.
"""

import contextlib
import hashlib
import json
import threading
import time
from collections import OrderedDict

from .. import memory
from .._validation import check_positive_int
from ..analysis.distortion import distortion_sweep
from ..engine import worker_stats
from ..errors import ReproError, TaskCancelled, ValidationError
from ..pipeline import (
    PipelineResult,
    _reduce_step,
    _sweep_result,
    _transient_result,
    run_parametric,
    system_from_spec,
)
from ..store import ModelStore, artifact_key
from ..store.modelstore import fingerprint_system
from ..systems.polynomial import PolynomialODE
from .cache import HotROMCache
from .coalesce import SweepCoalescer
from .contracts import ServeOutcome
from .metrics import ServeMetrics

__all__ = ["LoadedSpec", "ReproService", "ServeTimeout"]

#: Spec sections that configure *jobs*, not the system: two specs that
#: differ only here compile to the same system and share one cache slot.
_JOB_SECTIONS = frozenset(
    {"reduce", "sweep", "transient", "mc", "description"}
)


class ServeTimeout(ReproError):
    """A served request exceeded its deadline (HTTP 504).

    Raised at the serving boundary when per-request work was
    cooperatively cancelled or the reply deadline passed.  Shared state
    (model store, hot cache, memoized kernels) is unaffected — the
    cancelled work either never started or completed deterministically.
    """


def _spec_digest(spec, sparse):
    """Canonical digest of a spec's *system-defining* content."""
    trimmed = {
        key: value for key, value in spec.items()
        if key not in _JOB_SECTIONS
    }
    encoded = json.dumps(trimmed, sort_keys=True, default=repr)
    digest = hashlib.sha256()
    digest.update(f"sparse={sparse!r}".encode())
    digest.update(encoded.encode("utf-8"))
    return digest.hexdigest()


class LoadedSpec:
    """One compiled spec, resident in a serving process.

    Holds the built (and possibly lifted) system plus two lazily
    computed, then retained, derivatives:

    * :meth:`fingerprint` — the structural fingerprint, computed once
      per loaded spec however many requests key the store with it;
    * :meth:`explicit` — the full system's ``to_explicit()`` form (with
      its memoized Volterra evaluator), so repeated full-model sweeps
      skip re-priming exactly like hot-ROM sweeps do.
    """

    __slots__ = ("digest", "system", "info", "_fingerprint", "_explicit",
                 "_lock")

    def __init__(self, digest, system, info):
        self.digest = digest
        self.system = system
        self.info = info
        self._fingerprint = None
        self._explicit = None
        self._lock = threading.Lock()

    def fingerprint(self):
        with self._lock:
            if self._fingerprint is None:
                self._fingerprint = fingerprint_system(self.system)
            return self._fingerprint

    def explicit(self):
        with self._lock:
            if self._explicit is None:
                self._explicit = self.system.to_explicit()
            return self._explicit

    def __repr__(self):
        return (
            f"LoadedSpec({self.digest[:12]}..., "
            f"n={self.info.get('n_states')})"
        )


class ReproService:
    """Thread-safe serving core shared by the CLI and the daemon.

    Parameters
    ----------
    store : ModelStore, path, or None
        The on-disk tier.  Without one, reductions still serve from the
        in-memory hot tier but cold misses always recompute.
    hot_capacity : int
        Entry bound of the hot-ROM cache (0 disables it).
    spec_capacity : int
        Bound on resident compiled specs.
    coalesce : bool
        Merge concurrent same-ROM sweeps into union flights (on by
        default; the benchmark's uncoalesced mode turns it off).
    """

    def __init__(self, store=None, hot_capacity=8, spec_capacity=32,
                 coalesce=True, metrics=None):
        if store is not None and not isinstance(store, ModelStore):
            store = ModelStore(store)
        self.store = store
        self.cache = HotROMCache(hot_capacity)
        self.coalescer = SweepCoalescer()
        self.coalesce = bool(coalesce)
        self.metrics = metrics if metrics is not None else ServeMetrics()
        self.spec_capacity = check_positive_int(
            spec_capacity, "spec_capacity"
        )
        self.spec_hits = 0
        self.spec_misses = 0
        self._specs = OrderedDict()
        self._spec_lock = threading.Lock()
        self._reduce_locks = {}
        self._locks_lock = threading.Lock()

    # -- spec residency ------------------------------------------------------

    def _load(self, spec, sparse):
        """The resident :class:`LoadedSpec` for (*spec*, *sparse*)."""
        digest = _spec_digest(spec, sparse)
        with self._spec_lock:
            loaded = self._specs.get(digest)
            if loaded is not None:
                self._specs.move_to_end(digest)
                self.spec_hits += 1
                return loaded
        # Compile outside the lock — MNA assembly can be heavy, and
        # racing builders of the same digest produce equivalent systems
        # (first one registered wins).
        system, info = system_from_spec(spec, sparse=sparse)
        loaded = LoadedSpec(digest, system, info)
        with self._spec_lock:
            existing = self._specs.get(digest)
            if existing is not None:
                self._specs.move_to_end(digest)
                self.spec_hits += 1
                return existing
            self.spec_misses += 1
            self._specs[digest] = loaded
            while len(self._specs) > self.spec_capacity:
                self._specs.popitem(last=False)
        return loaded

    @staticmethod
    def _require_polynomial(system):
        if not isinstance(system, PolynomialODE):
            raise ValidationError(
                f"serve jobs need a polynomial system "
                f"(QLDAE/CubicODE/PolynomialODE, or an ExponentialODE "
                f"to lift); got {type(system).__name__}.  For LTI "
                "StateSpace models use repro.mor.reduce_lti or "
                "balanced_truncation directly."
            )

    # -- the three-tier reduce step ------------------------------------------

    def _acquire(self, loaded, reduce_job, checkpoint=None, resume=False,
                 cancel=None):
        """Acquire the reduction for (*loaded*, *reduce_job*).

        Returns ``(entry, artifact, tier, store_hit, reduce_time,
        checkpoint_info, key)`` with *tier* one of ``"hot"`` /
        ``"disk"`` / ``"cold"``.  Misses single-flight behind a per-key
        lock so N concurrent cold requests compute once; the result is
        admitted to the hot cache (and, via ``_reduce_step``, the
        store) for the next request.  Explicit *checkpoint*/*resume*
        requests bypass the hot tier — their contract is about on-disk
        build state, which only the full reduce path honours.
        """
        reducer = reduce_job.reducer()
        key = artifact_key(
            loaded.system, reducer,
            system_fingerprint=loaded.fingerprint(),
        )
        use_hot = not (checkpoint or resume)
        start = time.perf_counter()
        if use_hot:
            entry = self.cache.get(key)
            if entry is not None:
                store_hit = True if self.store is not None else None
                reduce_time = time.perf_counter() - start
                return (entry, entry.artifact, "hot", store_hit,
                        reduce_time, None, key)
        with self._locks_lock:
            lock = self._reduce_locks.setdefault(key, threading.Lock())
        with lock:
            if use_hot:
                entry = self.cache.get(key)
                if entry is not None:  # populated while we queued
                    store_hit = True if self.store is not None else None
                    reduce_time = time.perf_counter() - start
                    return (entry, entry.artifact, "hot", store_hit,
                            reduce_time, None, key)
            if cancel is not None and cancel():
                raise TaskCancelled(
                    "request cancelled before its reduce step started"
                )
            artifact, store_hit, reduce_time, checkpoint_info = (
                _reduce_step(
                    loaded.system, reduce_job, store=self.store,
                    checkpoint=checkpoint, resume=resume,
                    system_fingerprint=loaded.fingerprint(),
                )
            )
            tier = "disk" if store_hit else "cold"
            entry = self.cache.put(key, artifact)
            return (entry, artifact, tier, store_hit, reduce_time,
                    checkpoint_info, key)

    # -- verbs ---------------------------------------------------------------

    def handle(self, request, cancel=None):
        """Serve one contract request; returns a :class:`ServeOutcome`.

        *cancel* is the request-scoped cooperative-cancellation poll
        (the daemon wires it to its per-request timeout); only
        per-request work observes it.  Successful requests are recorded
        in :attr:`metrics` with their serving tier.
        """
        start = time.perf_counter()
        verb = request.verb
        with contextlib.ExitStack() as stack:
            budget = getattr(request, "memory_budget", None)
            if budget is not None:
                stack.enter_context(memory.limit(budget))
            max_block = getattr(request, "max_block", None)
            if max_block is not None:
                stack.enter_context(memory.tiling(max_block))
            if verb == "info":
                outcome = self._info(request)
            elif verb == "reduce":
                outcome = self._reduce(request, cancel)
            elif verb == "sweep":
                outcome = self._sweep(request, cancel)
            elif verb == "simulate":
                outcome = self._simulate(request, cancel)
            elif verb == "mc":
                outcome = self._mc(request)
            else:
                raise ValidationError(f"unknown serve verb {verb!r}")
        outcome.wall_time_s = time.perf_counter() - start
        self.metrics.observe(
            verb, outcome.wall_time_s, tier=outcome.served_from
        )
        return outcome

    def _memory_info(self, request):
        budget = getattr(request, "memory_budget", None)
        max_block = getattr(request, "max_block", None)
        if budget is None and max_block is None:
            return None
        return memory.stats()

    def _info(self, request):
        loaded = self._load(request.spec, request.sparse)
        result = PipelineResult(loaded.system, loaded.info)
        return ServeOutcome("info", result)

    def _reduce(self, request, cancel):
        loaded = self._load(request.spec, request.sparse)
        self._require_polynomial(loaded.system)
        _, artifact, tier, store_hit, reduce_time, checkpoint_info, key = (
            self._acquire(
                loaded, request.reduce_job,
                checkpoint=request.checkpoint, resume=request.resume,
                cancel=cancel,
            )
        )
        result = PipelineResult(
            loaded.system, loaded.info,
            artifact=artifact, rom=artifact.rom, store_hit=store_hit,
            reduce_time=reduce_time,
            jobs={"reduce": request.reduce_job},
            checkpoint_info=checkpoint_info,
            memory_info=self._memory_info(request),
        )
        return ServeOutcome(
            "reduce", result, served_from=tier, artifact_key=key,
        )

    def _sweep(self, request, cancel):
        loaded = self._load(request.spec, request.sparse)
        self._require_polynomial(loaded.system)
        sweep_job = request.sweep_job
        jobs = {"sweep": sweep_job}
        artifact = rom = None
        tier = store_hit = reduce_time = checkpoint_info = key = None
        explicit_query = None
        evaluate = None
        if request.reduce_job is not None:
            entry, artifact, tier, store_hit, reduce_time, \
                checkpoint_info, key = self._acquire(
                    loaded, request.reduce_job,
                    checkpoint=request.checkpoint,
                    resume=request.resume, cancel=cancel,
                )
            rom = artifact.rom
            jobs = {"reduce": request.reduce_job, "sweep": sweep_job}
            if entry is not None:
                if self.coalesce:
                    explicit = entry.explicit()

                    def evaluate(omegas, amplitude, _key=key,
                                 _explicit=explicit):
                        # Shared flight: deliberately no cancel — the
                        # union solve benefits every coalesced waiter.
                        return self.coalescer.sweep(
                            _key, amplitude, omegas,
                            lambda union: distortion_sweep(
                                _explicit, union, amplitude=amplitude,
                            )[1:],
                        )
                else:
                    explicit_query = entry.explicit()
        else:
            explicit_query = loaded.explicit()
        sweep_result = _sweep_result(
            loaded.system, rom, sweep_job,
            explicit_query=explicit_query, evaluate=evaluate,
            cancel=cancel,
        )
        result = PipelineResult(
            loaded.system, loaded.info,
            artifact=artifact, rom=rom, store_hit=store_hit,
            reduce_time=reduce_time, sweep=sweep_result, jobs=jobs,
            checkpoint_info=checkpoint_info,
            memory_info=self._memory_info(request),
        )
        return ServeOutcome(
            "sweep", result, served_from=tier, artifact_key=key,
        )

    def _simulate(self, request, cancel):
        loaded = self._load(request.spec, request.sparse)
        self._require_polynomial(loaded.system)
        jobs = {"transient": request.transient_job}
        artifact = rom = None
        tier = store_hit = reduce_time = checkpoint_info = key = None
        if request.reduce_job is not None:
            _, artifact, tier, store_hit, reduce_time, \
                checkpoint_info, key = self._acquire(
                    loaded, request.reduce_job,
                    checkpoint=request.checkpoint,
                    resume=request.resume, cancel=cancel,
                )
            rom = artifact.rom
            jobs = {
                "reduce": request.reduce_job,
                "transient": request.transient_job,
            }
        if cancel is not None and cancel():
            raise TaskCancelled(
                "request cancelled before its transient started"
            )
        transient_result = _transient_result(
            loaded.system, rom, request.transient_job
        )
        result = PipelineResult(
            loaded.system, loaded.info,
            artifact=artifact, rom=rom, store_hit=store_hit,
            reduce_time=reduce_time, transient=transient_result,
            jobs=jobs, checkpoint_info=checkpoint_info,
            memory_info=self._memory_info(request),
        )
        return ServeOutcome(
            "simulate", result, served_from=tier, artifact_key=key,
        )

    def _mc(self, request):
        """Serve one parametric multi-corner / Monte-Carlo request.

        Delegates to :func:`~repro.pipeline.run_parametric` against the
        service's store (so corner reductions dedup across requests and
        daemon restarts) and folds the run's per-reuse-tier counters
        into :meth:`ServeMetrics.record_tiers` — the ``/metrics``
        ``parametric_tiers`` block and the heartbeat's ``mc_tiers``
        field.  The hot-ROM cache and the coalescer are not involved:
        a family sweep is one batch, not a stream of repeat queries.
        """
        result = run_parametric(
            request.spec,
            reduce=request.reduce_job,
            sweep=request.sweep_job,
            mc=request.mc_job,
            store=self.store,
            sparse=request.sparse,
        )
        self.metrics.record_tiers(result.tiers)
        return ServeOutcome("mc", result)

    # -- introspection -------------------------------------------------------

    def warm_start(self, limit=None):
        """Pre-load the hot cache from the store's recency order."""
        if self.store is None:
            return 0
        return self.cache.warm_start(self.store, limit=limit)

    def stats(self):
        """JSON-safe state of every serving layer (feeds ``/metrics``)."""
        with self._spec_lock:
            specs = {
                "capacity": int(self.spec_capacity),
                "entries": len(self._specs),
                "hits": int(self.spec_hits),
                "misses": int(self.spec_misses),
            }
        data = {
            "metrics": self.metrics.snapshot(),
            "hot_cache": self.cache.stats(),
            "coalescer": self.coalescer.stats(),
            "specs": specs,
            "engine": worker_stats(),
        }
        if self.store is not None:
            data["store"] = self.store.stats()
            data["store"]["root"] = str(self.store.root)
        return data
