"""Request coalescing: merge concurrent sweeps on one ROM into one plan.

When several clients sweep the same ROM at the same amplitude
concurrently, their frequency grids usually overlap.  Solving them
independently re-primes nothing (the evaluator memoizes) but still pays
one :func:`~repro.analysis.distortion.distortion_sweep` plan per
request.  The coalescer merges concurrent grids into their sorted union,
runs **one** solve over the union, and scatters each request's points
back out of the union result.

Correctness rests on a property the distortion layer already
guarantees and the test suite asserts: per-point HD2/HD3 values are
bit-identical regardless of which grid they are computed in (each grid
point is an independent task over memoized kernels).  Scattering by
exact float match (``np.searchsorted`` on the unique union) therefore
returns each caller exactly the bytes a solo sweep would have produced.

Protocol (per ``(artifact key, amplitude)`` flight):

1. every arriving thread appends its grid to the pending list, then
   blocks on the flight lock;
2. the thread that wins the lock is the *leader*: it claims the entire
   pending list (its own entry plus everything that accumulated while
   the previous flight ran), evaluates the union, scatters, and marks
   every claimed entry done;
3. threads that wake up already-served simply return; a thread that
   wakes up unserved becomes the next leader — so requests arriving
   mid-flight batch into the next flight instead of waiting a full
   extra round-trip.

The coalesced solve is *shared* work: it is never cancelled on behalf
of one request's timeout (the result benefits every waiter and the
memoized kernels stay valid for the next flight).
"""

import threading

import numpy as np

__all__ = ["SweepCoalescer"]


class _Entry:
    __slots__ = ("omegas", "done", "hd2", "hd3", "error")

    def __init__(self, omegas):
        self.omegas = omegas
        self.done = threading.Event()
        self.hd2 = None
        self.hd3 = None
        self.error = None


class _FlightState:
    __slots__ = ("flight_lock", "pending")

    def __init__(self):
        self.flight_lock = threading.Lock()
        self.pending = []


class SweepCoalescer:
    """Per-(key, amplitude) flight merging for concurrent sweeps."""

    def __init__(self):
        self._lock = threading.Lock()
        self._states = {}
        self.requests = 0
        self.flights = 0
        self.coalesced = 0
        self.points_requested = 0
        self.points_solved = 0

    def sweep(self, key, amplitude, omegas, evaluate):
        """Run (or join) a coalesced sweep; returns ``(hd2, hd3)``.

        *evaluate* is ``evaluate(union_omegas) -> (hd2, hd3)`` over the
        merged grid — the caller binds the explicit system and
        amplitude.  Only the leader's *evaluate* runs per flight;
        joiners get their slice of the leader's result.  An evaluation
        error propagates to every request in the flight (they asked for
        the same failed computation).
        """
        omegas = np.asarray(omegas, dtype=float).reshape(-1)
        entry = _Entry(omegas)
        with self._lock:
            state = self._states.get((key, float(amplitude)))
            if state is None:
                state = _FlightState()
                self._states[(key, float(amplitude))] = state
            state.pending.append(entry)
            self.requests += 1
            self.points_requested += int(omegas.size)
        with state.flight_lock:
            if not entry.done.is_set():
                with self._lock:
                    batch, state.pending = state.pending, []
                self._lead(batch, evaluate)
        if not entry.done.is_set():  # pragma: no cover - defensive
            raise RuntimeError("coalesced sweep entry was never served")
        if entry.error is not None:
            raise entry.error
        return entry.hd2, entry.hd3  # set by _lead before done

    def _lead(self, batch, evaluate):
        """Leader path: solve the union grid, scatter to every entry."""
        union = np.unique(np.concatenate([e.omegas for e in batch]))
        with self._lock:
            self.flights += 1
            self.coalesced += len(batch) - 1
            self.points_solved += int(union.size)
        try:
            hd2, hd3 = evaluate(union)
        except BaseException as exc:
            for entry in batch:
                entry.error = exc
                entry.done.set()
            raise
        hd2 = np.asarray(hd2)
        hd3 = np.asarray(hd3)
        for entry in batch:
            idx = np.searchsorted(union, entry.omegas)
            entry.hd2 = hd2[idx]
            entry.hd3 = hd3[idx]
            entry.done.set()

    def stats(self):
        with self._lock:
            return {
                "requests": int(self.requests),
                "flights": int(self.flights),
                "coalesced": int(self.coalesced),
                "points_requested": int(self.points_requested),
                "points_solved": int(self.points_solved),
            }

    def __repr__(self):
        stats = self.stats()
        return (
            f"SweepCoalescer(requests={stats['requests']}, "
            f"flights={stats['flights']})"
        )
