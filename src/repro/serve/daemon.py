"""``python -m repro serve`` — the long-lived HTTP/JSON daemon.

A deliberately small asyncio front door over
:class:`~repro.serve.service.ReproService`: stdlib only (no web
framework), HTTP/1.1 with keep-alive, JSON in / JSON out.  Endpoints
mirror the CLI verbs one-to-one::

    POST /v1/info      {"spec": {...}}
    POST /v1/reduce    {"spec": {...}, "reduce": {...}}
    POST /v1/sweep     {"spec": {...}, "reduce": {...}, "sweep": {...}}
    POST /v1/simulate  {"spec": {...}, "transient": {...}}
    GET  /healthz
    GET  /metrics

Request bodies are the contract payloads of
:mod:`repro.serve.contracts`; response bodies are
``ServeOutcome.report()`` — byte-for-byte the pipeline report the
one-shot CLI prints (plus the additive serving metadata), because both
run the same service.

Concurrency model: the event loop only parses HTTP and routes; verb
work runs on a small thread pool (the numerical kernels release the
GIL, and nested solve plans degrade to inline execution on worker
threads, so service threads compose safely with ``REPRO_WORKERS``).
The loop tracks in-flight requests and sheds load *before* dispatch —
a full queue answers ``429 Too Many Requests`` with ``Retry-After``
instead of queueing unboundedly.  Per-request deadlines answer ``504``
and flip the request's cooperative-cancel event; the worker thread
winds down at its next poll point, and because shared work (reductions,
coalesced flights) never observes request-scoped cancellation, a
timed-out request cannot poison the caches other requests hit.
"""

import asyncio
import concurrent.futures
import contextlib
import functools
import json
import sys
import threading
import time

from ..analysis.reporting import format_stats_line
from ..errors import ReproError, TaskCancelled, ValidationError
from ..serialize import json_safe
from .contracts import REQUEST_TYPES
from .service import ReproService, ServeTimeout

__all__ = ["ServeDaemon", "run_daemon"]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    504: "Gateway Timeout",
}

#: Worker threads handling verb requests.  Small on purpose: each
#: request already fans its numerical work across the engine backend;
#: these threads only bound how many *requests* make progress at once.
_DEFAULT_HANDLERS = 4


class ServeDaemon:
    """Asyncio HTTP server over one :class:`ReproService`.

    Parameters
    ----------
    service : ReproService
    host, port : bind address; ``port=0`` picks a free port (read the
        resolved one from :attr:`port` after start).
    queue_limit : int
        Maximum in-flight verb requests; excess arrivals get 429.
    timeout : float or None
        Per-request deadline in seconds (504 past it).
    stats_interval : float or None
        Period of the one-line stats heartbeat on stderr.
    """

    def __init__(self, service, host="127.0.0.1", port=0, queue_limit=8,
                 timeout=None, stats_interval=None,
                 handlers=_DEFAULT_HANDLERS):
        self.service = service
        self.host = str(host)
        self.port = int(port)
        self.queue_limit = max(1, int(queue_limit))
        self.timeout = None if timeout is None else float(timeout)
        self.stats_interval = (
            None if stats_interval is None else float(stats_interval)
        )
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=max(1, int(handlers)),
            thread_name_prefix="repro-serve",
        )
        self._inflight = 0
        self._conn_tasks = set()
        self._server = None
        self._stats_task = None
        self._started_monotonic = None
        self._loop = None
        self._thread = None

    @property
    def url(self):
        return f"http://{self.host}:{self.port}"

    # -- request handling ----------------------------------------------------

    def _run_request(self, verb, payload, cancel_event):
        """Worker-thread body: validate, serve, map errors to status."""
        try:
            request = REQUEST_TYPES[verb].from_payload(payload)
            outcome = self.service.handle(
                request, cancel=cancel_event.is_set
            )
            return 200, outcome.report()
        except (TaskCancelled, ServeTimeout) as exc:
            return 504, {"error": str(exc)}
        except ValidationError as exc:
            return 400, {"error": str(exc)}
        except ReproError as exc:
            return 500, {"error": f"numerical failure: {exc}"}
        except Exception as exc:  # never kill the connection handler
            return 500, {"error": f"{type(exc).__name__}: {exc}"}

    async def _dispatch_verb(self, verb, body):
        if self._inflight >= self.queue_limit:
            self.service.metrics.count_rejected()
            return 429, {
                "error": "server is at its in-flight request limit "
                f"({self.queue_limit}); retry shortly",
                "retry_after_s": 1,
            }
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, ValueError) as exc:
            self.service.metrics.count_error()
            return 400, {"error": f"request body is not valid JSON ({exc})"}
        loop = asyncio.get_running_loop()
        cancel_event = threading.Event()
        self._inflight += 1
        future = loop.run_in_executor(
            self._pool,
            functools.partial(
                self._run_request, verb, payload, cancel_event
            ),
        )
        # Honest accounting: the slot frees when the worker actually
        # finishes — a timed-out request still occupies it until its
        # thread winds down at the next cancellation poll.
        future.add_done_callback(lambda _f: self._release_slot())
        try:
            # shield: on timeout only the wait is abandoned — the
            # executor future (and its thread) runs to completion and
            # releases its slot through the done callback.
            status, report = await asyncio.wait_for(
                asyncio.shield(future), self.timeout
            )
        except asyncio.TimeoutError:
            cancel_event.set()
            self.service.metrics.count_timeout()
            return 504, {
                "error": "request exceeded the per-request deadline "
                f"({self.timeout:g}s)",
            }
        if status not in (200, 504):
            self.service.metrics.count_error()
        elif status == 504:
            self.service.metrics.count_timeout()
        return status, report

    def _release_slot(self):
        self._inflight = max(0, self._inflight - 1)

    async def _dispatch(self, method, path, body):
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "healthz is GET-only"}
            uptime = (
                time.monotonic() - self._started_monotonic
                if self._started_monotonic is not None else 0.0
            )
            return 200, {"status": "ok", "uptime_s": uptime}
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "metrics is GET-only"}
            stats = self.service.stats()
            stats["queue"] = {
                "depth": int(self._inflight),
                "limit": int(self.queue_limit),
            }
            return 200, stats
        if path.startswith("/v1/"):
            verb = path[len("/v1/"):]
            if verb not in REQUEST_TYPES:
                return 404, {
                    "error": f"unknown verb {verb!r}; expected one of "
                    f"{sorted(REQUEST_TYPES)}",
                }
            if method != "POST":
                return 405, {"error": f"/v1/{verb} is POST-only"}
            return await self._dispatch_verb(verb, body)
        return 404, {"error": f"unknown path {path!r}"}

    async def _handle_conn(self, reader, writer):
        # Track the connection task so stop() can cancel idle
        # keep-alive connections instead of abandoning them mid-await.
        # Deregistration must be a done callback (not a finally here):
        # the task still awaits wait_closed() after its finally starts,
        # and stop() has to be able to see it until it truly finishes.
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)
        try:
            while True:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except asyncio.IncompleteReadError:
                    break  # client closed between requests
                lines = head.decode("latin-1").split("\r\n")
                try:
                    method, path, _version = lines[0].split(" ", 2)
                except ValueError:
                    break  # not HTTP; drop the connection
                headers = {}
                for line in lines[1:]:
                    name, sep, value = line.partition(":")
                    if sep:
                        headers[name.strip().lower()] = value.strip()
                length = int(headers.get("content-length", 0) or 0)
                body = await reader.readexactly(length) if length else b""
                keep_alive = (
                    headers.get("connection", "").lower() != "close"
                )
                status, report = await self._dispatch(
                    method.upper(), path.split("?", 1)[0], body
                )
                data = json.dumps(
                    json_safe(report), default=repr, allow_nan=False
                ).encode("utf-8")
                head_lines = [
                    f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
                    "Content-Type: application/json",
                    f"Content-Length: {len(data)}",
                ]
                if status == 429:
                    head_lines.append("Retry-After: 1")
                head_lines.append(
                    f"Connection: {'keep-alive' if keep_alive else 'close'}"
                )
                writer.write(
                    ("\r\n".join(head_lines) + "\r\n\r\n").encode("latin-1")
                    + data
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            pass  # stop() shutting down an idle keep-alive connection
        finally:
            writer.close()
            # CancelledError included: stop() may cancel a task that is
            # already draining here; swallowing it lets the task finish
            # clean instead of ending "cancelled" (which asyncio logs).
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await writer.wait_closed()

    # -- lifecycle -----------------------------------------------------------

    async def _stats_heartbeat(self):
        while True:
            await asyncio.sleep(self.stats_interval)
            stats = self.service.stats()
            metrics = stats.get("metrics", {})
            line = {
                "requests": metrics.get("total", 0),
                "tiers": metrics.get("tiers", {}),
                "mc_tiers": metrics.get("parametric_tiers", {}),
                "rejected": metrics.get("rejected", 0),
                "timeouts": metrics.get("timeouts", 0),
                "queue_depth": int(self._inflight),
                "hot": {
                    key: stats.get("hot_cache", {}).get(key)
                    for key in ("entries", "hits", "misses")
                },
                "coalesced": stats.get("coalescer", {}).get("coalesced", 0),
                "engine": {
                    key: stats.get("engine", {}).get(key)
                    for key in ("backend", "workers")
                },
                "latency": {
                    verb: {
                        "p50_ms": values.get("p50_ms"),
                        "p99_ms": values.get("p99_ms"),
                    }
                    for verb, values in metrics.get("latency", {}).items()
                },
            }
            print(
                format_stats_line("serve-stats", line),
                file=sys.stderr, flush=True,
            )

    async def start(self):
        """Bind and start accepting; resolves ``port=0`` to the real one."""
        self._server = await asyncio.start_server(
            self._handle_conn, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_monotonic = time.monotonic()
        if self.stats_interval:
            self._stats_task = asyncio.ensure_future(
                self._stats_heartbeat()
            )
        return self.url

    async def stop(self):
        if self._stats_task is not None:
            self._stats_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._stats_task
            self._stats_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        remaining = list(self._conn_tasks)
        for task in remaining:
            task.cancel()
        if remaining:
            await asyncio.gather(*remaining, return_exceptions=True)

    async def serve_forever(self):
        await self._server.serve_forever()

    # -- background mode (tests, in-process clients) -------------------------

    def start_background(self):
        """Run the daemon on a dedicated thread; returns its URL.

        For tests and in-process clients: spins an event loop on a
        daemon thread, starts the server, and blocks until the port is
        bound.  Pair with :meth:`stop_background`.
        """
        ready = threading.Event()
        failure = []

        def runner():
            loop = asyncio.new_event_loop()
            self._loop = loop
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(self.start())
            except BaseException as exc:  # surface bind errors to caller
                failure.append(exc)
                ready.set()
                loop.close()
                return
            ready.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(self.stop())
                loop.close()

        self._thread = threading.Thread(
            target=runner, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        if not ready.wait(timeout=30):
            raise ReproError("serve daemon failed to start within 30s")
        if failure:
            raise failure[0]
        return self.url

    def stop_background(self):
        """Stop a :meth:`start_background` daemon and join its thread."""
        loop, self._loop = self._loop, None
        if loop is not None:
            loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None
        self._pool.shutdown(wait=True)


def run_daemon(service, host="127.0.0.1", port=0, queue_limit=8,
               timeout=None, stats_interval=None):
    """Blocking entry point for ``python -m repro serve``.

    Prints one ``serving on http://host:port`` line to stdout once the
    socket is bound (clients and the CI smoke test parse it — with
    ``--port 0`` it is the only way to learn the picked port), then
    serves until interrupted.  Returns the process exit code.
    """
    daemon = ServeDaemon(
        service, host=host, port=port, queue_limit=queue_limit,
        timeout=timeout, stats_interval=stats_interval,
    )

    async def main():
        await daemon.start()
        print(f"serving on {daemon.url}", flush=True)
        try:
            await daemon.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await daemon.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    finally:
        daemon._pool.shutdown(wait=False)
    return 0
