"""Typed request/response contracts for the serving layer.

One request class per pipeline verb (``info`` / ``reduce`` / ``sweep`` /
``simulate``), each a declarative config validated eagerly at the
boundary: unknown fields are rejected, job sections coerce through the
same :class:`~repro.pipeline.ReductionJob` / :class:`SweepJob` /
:class:`TransientJob` classes the pipeline uses, and — exactly like the
CLI — a job omitted from the payload falls back to the spec's embedded
section.  Because both ``python -m repro <verb>`` and the HTTP daemon
build these objects and hand them to the same
:meth:`~repro.serve.service.ReproService.handle`, a request is
guaranteed to run the identical code path (and produce bit-identical
numbers) whichever front door it came through.

The response side is :class:`ServeOutcome`: the verb's
:class:`~repro.pipeline.PipelineResult` plus the serving metadata
(which cache tier answered, the content-addressed artifact key, wall
time).  ``outcome.report()`` is the pipeline report with that metadata
added *additively*, so existing report consumers keep parsing.
"""

from ..errors import ValidationError
from ..pipeline import (
    ParametricReductionJob,
    ReductionJob,
    SweepJob,
    TransientJob,
)

__all__ = [
    "InfoRequest",
    "ReduceRequest",
    "SweepRequest",
    "SimulateRequest",
    "McRequest",
    "ServeOutcome",
    "REQUEST_TYPES",
]


class _RequestBase:
    """Shared boundary validation: a spec dict plus the sparse toggle."""

    verb = None
    fields = ("spec", "sparse")

    def __init__(self, spec, sparse=None):
        if not isinstance(spec, dict):
            raise ValidationError(
                f"{self.verb} spec must be a JSON object, got "
                f"{type(spec).__name__}"
            )
        self.spec = spec
        self.sparse = None if sparse is None else bool(sparse)

    @classmethod
    def from_payload(cls, payload):
        """Build and validate a request from a decoded JSON payload.

        Strict at the boundary: the payload must be an object, must
        carry ``spec``, and may only use this verb's declared fields —
        a typo'd field is a :class:`~repro.errors.ValidationError`
        (HTTP 400), never a silent no-op.
        """
        if not isinstance(payload, dict):
            raise ValidationError(
                f"{cls.verb} payload must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        unknown = set(payload) - set(cls.fields)
        if unknown:
            raise ValidationError(
                f"unknown {cls.verb} fields: {sorted(unknown)}; "
                f"expected a subset of {sorted(cls.fields)}"
            )
        if "spec" not in payload:
            raise ValidationError(f"{cls.verb} payload needs a 'spec'")
        return cls(**payload)

    def describe(self):
        """JSON-safe summary (for logs/diagnostics, not the report)."""
        return {"verb": self.verb, "sparse": self.sparse}


class InfoRequest(_RequestBase):
    """Compile the spec and report system structure (no jobs)."""

    verb = "info"
    fields = ("spec", "sparse")


class _JobRequestBase(_RequestBase):
    """Verbs that run jobs: adds reduce + fault-tolerance knobs."""

    def __init__(self, spec, sparse=None, reduce=None, checkpoint=None,
                 resume=False, memory_budget=None, max_block=None,
                 require_reduce=False):
        super().__init__(spec, sparse)
        section = reduce if reduce is not None else self.spec.get("reduce")
        if section is None and require_reduce:
            raise ValidationError(
                "no reduction configured: pass 'reduce' in the payload "
                "or add a 'reduce' section to the spec"
            )
        self.reduce_job = ReductionJob.coerce(section)
        self.checkpoint = checkpoint
        self.resume = bool(resume)
        self.memory_budget = memory_budget
        self.max_block = max_block
        if (checkpoint or resume) and self.reduce_job is None:
            raise ValidationError(
                "checkpoint/resume only apply to the reduce step; pass "
                "reduce=... as well"
            )


class ReduceRequest(_JobRequestBase):
    """Build (or fetch) a ROM."""

    verb = "reduce"
    fields = (
        "spec", "sparse", "reduce", "checkpoint", "resume",
        "memory_budget", "max_block",
    )

    def __init__(self, spec, sparse=None, reduce=None, checkpoint=None,
                 resume=False, memory_budget=None, max_block=None):
        super().__init__(
            spec, sparse=sparse, reduce=reduce, checkpoint=checkpoint,
            resume=resume, memory_budget=memory_budget,
            max_block=max_block, require_reduce=True,
        )


class SweepRequest(_JobRequestBase):
    """Distortion sweep (on the ROM when a reduction is configured)."""

    verb = "sweep"
    fields = (
        "spec", "sparse", "reduce", "sweep", "checkpoint", "resume",
        "memory_budget", "max_block",
    )

    def __init__(self, spec, sparse=None, reduce=None, sweep=None,
                 checkpoint=None, resume=False, memory_budget=None,
                 max_block=None):
        super().__init__(
            spec, sparse=sparse, reduce=reduce, checkpoint=checkpoint,
            resume=resume, memory_budget=memory_budget,
            max_block=max_block,
        )
        section = sweep if sweep is not None else self.spec.get("sweep")
        if section is None:
            raise ValidationError(
                "no sweep configured: pass 'sweep' in the payload or "
                "add a 'sweep' section to the spec"
            )
        self.sweep_job = SweepJob.coerce(section)


class SimulateRequest(_JobRequestBase):
    """Transient simulation (on the ROM when a reduction is configured)."""

    verb = "simulate"
    fields = (
        "spec", "sparse", "reduce", "transient", "checkpoint", "resume",
        "memory_budget", "max_block",
    )

    def __init__(self, spec, sparse=None, reduce=None, transient=None,
                 checkpoint=None, resume=False, memory_budget=None,
                 max_block=None):
        super().__init__(
            spec, sparse=sparse, reduce=reduce, checkpoint=checkpoint,
            resume=resume, memory_budget=memory_budget,
            max_block=max_block,
        )
        section = (
            transient if transient is not None
            else self.spec.get("transient")
        )
        if section is None:
            raise ValidationError(
                "no transient configured: pass 'transient' in the "
                "payload or add a 'transient' section to the spec"
            )
        self.transient_job = TransientJob.coerce(section)


class McRequest(_RequestBase):
    """Parametric multi-corner / Monte-Carlo sweep of a ROM family.

    The spec must describe a parameter-annotated netlist (a netlist
    dict with a ``parameters`` list, or a generator spec plus a
    top-level ``parameters`` list); ``reduce`` / ``sweep`` / ``mc``
    sections come from the payload or fall back to the spec's embedded
    sections, exactly like the other job verbs.  Handled by
    :func:`~repro.pipeline.run_parametric` — checkpoint/resume do not
    apply (every family member is cheap relative to the family, and
    the store dedup tier makes a rerun resume naturally).
    """

    verb = "mc"
    fields = ("spec", "sparse", "reduce", "sweep", "mc")

    def __init__(self, spec, sparse=None, reduce=None, sweep=None,
                 mc=None):
        super().__init__(spec, sparse)
        self.reduce_job = ReductionJob.coerce(
            reduce if reduce is not None else self.spec.get("reduce")
        )
        sweep_section = (
            sweep if sweep is not None else self.spec.get("sweep")
        )
        if sweep_section is None:
            raise ValidationError(
                "no sweep configured: pass 'sweep' in the payload or "
                "add a 'sweep' section to the spec (the distortion "
                "distributions across the family are the mc output)"
            )
        self.sweep_job = SweepJob.coerce(sweep_section)
        self.mc_job = ParametricReductionJob.coerce(
            mc if mc is not None else self.spec.get("mc")
        )
        if self.mc_job is None:
            self.mc_job = ParametricReductionJob()


#: verb name -> request class (the daemon's routing table).
REQUEST_TYPES = {
    cls.verb: cls
    for cls in (
        InfoRequest, ReduceRequest, SweepRequest, SimulateRequest,
        McRequest,
    )
}


class ServeOutcome:
    """One served request: the pipeline result plus serving metadata.

    Attributes
    ----------
    verb : str
    result : PipelineResult
    served_from : str or None
        Which tier answered the reduce step — ``"hot"`` (in-memory
        cache), ``"disk"`` (model-store load) or ``"cold"`` (computed
        this request); ``None`` when no reduction was involved.
    artifact_key : str or None
        The content-addressed store key of the reduction.
    wall_time_s : float or None
        Service-side wall time of the whole request.
    """

    def __init__(self, verb, result, served_from=None, artifact_key=None,
                 wall_time_s=None):
        self.verb = verb
        self.result = result
        self.served_from = served_from
        self.artifact_key = artifact_key
        self.wall_time_s = wall_time_s

    def report(self):
        """The pipeline report, tagged with the serving metadata.

        Strictly additive over ``PipelineResult.report()``: the
        ``command`` key the CLI has always emitted, a top-level
        ``serving`` block (wall time), plus ``reduction.served_from`` /
        ``reduction.artifact_key`` when a reduction ran — existing
        consumers of the report shape are untouched.
        """
        report = self.result.report()
        report["command"] = self.verb
        if self.wall_time_s is not None:
            report["serving"] = {"wall_time_s": float(self.wall_time_s)}
        reduction = report.get("reduction")
        if reduction is not None:
            if self.served_from is not None:
                reduction["served_from"] = self.served_from
            if self.artifact_key is not None:
                reduction["artifact_key"] = self.artifact_key
        return report

    def __repr__(self):
        return (
            f"ServeOutcome({self.verb!r}, served_from="
            f"{self.served_from!r})"
        )
