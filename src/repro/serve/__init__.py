"""Serving layer: the long-lived front end of the offline/online split.

The paper's economics — reduce once offline, answer distortion and
transient queries cheaply online — only pay off operationally when the
expensive state *stays resident*.  This package is that residency:

* :mod:`~repro.serve.contracts` — typed request/response contracts,
  validated at the boundary and shared by the one-shot CLI and the
  daemon, so both fronts run the identical code path;
* :mod:`~repro.serve.service` — :class:`ReproService`, the serving
  core: per-spec compilation + fingerprint caching, the three reduce
  tiers (hot-memory / warm-disk / cold-compute), single-flight misses,
  cooperative deadlines;
* :mod:`~repro.serve.cache` — :class:`HotROMCache`, the size-bounded
  LRU of reduction artifacts (basis-SHA verified on admit) with their
  primed explicit systems;
* :mod:`~repro.serve.coalesce` — :class:`SweepCoalescer`, merging
  concurrent same-ROM sweeps into single union-grid solves with
  bit-identical per-request results;
* :mod:`~repro.serve.metrics` — :class:`ServeMetrics`, counters and
  latency quantiles behind ``/metrics`` and the stats heartbeat;
* :mod:`~repro.serve.daemon` — :class:`ServeDaemon`, the stdlib
  asyncio HTTP/JSON front door (``python -m repro serve``) with
  bounded in-flight queueing (429 + Retry-After) and per-request
  timeouts (504).
"""

from .cache import CacheEntry, HotROMCache
from .coalesce import SweepCoalescer
from .contracts import (
    REQUEST_TYPES,
    InfoRequest,
    McRequest,
    ReduceRequest,
    ServeOutcome,
    SimulateRequest,
    SweepRequest,
)
from .daemon import ServeDaemon, run_daemon
from .metrics import ServeMetrics
from .service import LoadedSpec, ReproService, ServeTimeout

__all__ = [
    "CacheEntry",
    "HotROMCache",
    "SweepCoalescer",
    "REQUEST_TYPES",
    "InfoRequest",
    "ReduceRequest",
    "SweepRequest",
    "SimulateRequest",
    "McRequest",
    "ServeOutcome",
    "ServeDaemon",
    "run_daemon",
    "ServeMetrics",
    "LoadedSpec",
    "ReproService",
    "ServeTimeout",
]
