"""Internal argument-validation helpers.

These helpers normalize user input into the canonical representations the
library works with (C-contiguous float/complex ndarrays, scipy CSR
matrices) and raise :class:`repro.errors.ValidationError` with readable
messages when the input cannot be used.
"""

import numbers

import numpy as np
import scipy.sparse as sp

from .errors import ValidationError

__all__ = [
    "as_matrix",
    "as_square_matrix",
    "as_vector",
    "as_sparse",
    "check_shape",
    "check_positive_int",
    "check_nonnegative_int",
    "is_sparse",
]


def is_sparse(obj):
    """Return True when *obj* is any scipy sparse matrix/array."""
    return sp.issparse(obj)


def as_matrix(value, name="matrix", dtype=None, allow_sparse=False):
    """Coerce *value* to a 2-D ndarray (or keep it sparse when allowed).

    Parameters
    ----------
    value : array_like or sparse
        Input to coerce.
    name : str
        Name used in error messages.
    dtype : numpy dtype, optional
        Target dtype; defaults to the input's (float64 for integer input).
    allow_sparse : bool
        When True, scipy sparse inputs are passed through as CSR — this is
        the entry point of the library-wide sparse fast path: systems
        constructed from CSR matrices keep them sparse all the way through
        simulation and Krylov subspace generation.  Dense input is never
        sparsified, so dense behavior stays the default.
    """
    if sp.issparse(value):
        if not allow_sparse:
            value = value.toarray()
        else:
            mat = sp.csr_matrix(value)
            if dtype is not None:
                mat = mat.astype(dtype)
            elif mat.dtype.kind in "iub":
                # Match the dense path: integer/bool input computes in
                # float64.
                mat = mat.astype(np.float64)
            elif mat.dtype.kind not in "fc":
                raise ValidationError(
                    f"{name} must be numeric, got dtype={mat.dtype}"
                )
            return mat
    arr = np.asarray(value)
    if arr.ndim != 2:
        raise ValidationError(
            f"{name} must be 2-dimensional, got ndim={arr.ndim}"
        )
    if dtype is not None:
        arr = arr.astype(dtype, copy=False)
    elif arr.dtype.kind in "iub":
        arr = arr.astype(np.float64)
    elif arr.dtype.kind not in "fc":
        raise ValidationError(
            f"{name} must be numeric, got dtype={arr.dtype}"
        )
    return np.ascontiguousarray(arr)


def as_square_matrix(value, name="matrix", dtype=None, allow_sparse=False):
    """Like :func:`as_matrix` but additionally require a square shape."""
    mat = as_matrix(value, name=name, dtype=dtype, allow_sparse=allow_sparse)
    if mat.shape[0] != mat.shape[1]:
        raise ValidationError(
            f"{name} must be square, got shape {mat.shape}"
        )
    return mat


def as_vector(value, name="vector", dtype=None):
    """Coerce *value* to a 1-D ndarray.

    2-D column/row vectors (shape (n, 1) or (1, n)) are flattened; any
    other 2-D shape is rejected.
    """
    if sp.issparse(value):
        value = value.toarray()
    arr = np.asarray(value)
    if arr.ndim == 2 and 1 in arr.shape:
        arr = arr.reshape(-1)
    if arr.ndim != 1:
        raise ValidationError(
            f"{name} must be 1-dimensional, got shape {arr.shape}"
        )
    if dtype is not None:
        arr = arr.astype(dtype, copy=False)
    elif arr.dtype.kind in "iub":
        arr = arr.astype(np.float64)
    elif arr.dtype.kind not in "fc":
        raise ValidationError(f"{name} must be numeric, got dtype={arr.dtype}")
    return np.ascontiguousarray(arr)


def as_sparse(value, name="matrix", dtype=None):
    """Coerce *value* to CSR sparse format."""
    if not sp.issparse(value):
        arr = as_matrix(value, name=name, dtype=dtype)
        return sp.csr_matrix(arr)
    mat = sp.csr_matrix(value)
    if dtype is not None:
        mat = mat.astype(dtype)
    return mat


def check_shape(arr, shape, name="array"):
    """Require ``arr.shape == shape``; entries of -1 in *shape* are free."""
    actual = arr.shape
    if len(actual) != len(shape):
        raise ValidationError(
            f"{name} must have {len(shape)} dimensions, got shape {actual}"
        )
    for got, want in zip(actual, shape):
        if want != -1 and got != want:
            raise ValidationError(
                f"{name} must have shape {tuple(shape)}, got {actual}"
            )
    return arr


def check_positive_int(value, name="value"):
    """Require a strictly positive integer; return it as a builtin int."""
    if not isinstance(value, numbers.Integral) or isinstance(value, bool):
        raise ValidationError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if value <= 0:
        raise ValidationError(f"{name} must be positive, got {value}")
    return value


def check_nonnegative_int(value, name="value"):
    """Require a non-negative integer; return it as a builtin int."""
    if not isinstance(value, numbers.Integral) or isinstance(value, bool):
        raise ValidationError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if value < 0:
        raise ValidationError(f"{name} must be non-negative, got {value}")
    return value
