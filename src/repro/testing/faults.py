"""Deterministic fault injection for crash-safety testing.

The durable-write, checkpoint and engine layers are instrumented with
named :func:`fault_point` calls at every boundary where a crash has a
distinct observable outcome (before/after an ``os.replace``, between an
artifact and its metadata, before/after a checkpoint commit, around each
engine task).  A fault *spec* arms one or more sites::

    REPRO_FAULT="checkpoint.before_commit:2"        # SIGKILL on 2nd hit
    REPRO_FAULT="serialize.before_replace:1:raise"  # raise on 1st hit
    REPRO_FAULT="store.before_meta:1,engine.task:3:raise"

Each entry is ``<site>:<n>[:<kind>]`` where *n* is the 1-based hit count
at which the site fires (every site keeps its own process-wide counter)
and *kind* is ``kill`` (default — ``SIGKILL`` to the current process,
simulating power loss: no atexit handlers, no flushes) or ``raise``
(raise :class:`~repro.errors.FaultInjected`, for in-process tests and
for exercising the engine's transient-retry path).

The spec is read from ``REPRO_FAULT`` on first use; in-process tests use
:func:`configure`/:func:`reset` instead of the environment.  With no
faults armed, :func:`fault_point` is a dict lookup and a falsy check —
cheap enough to leave in production paths unconditionally.

Instrumented sites
------------------
========================== =================================================
``serialize.before_replace`` payload temp file written+fsynced, not renamed
``serialize.after_replace``  payload renamed, directory not yet fsynced
``durable.before_replace``   text temp file written+fsynced, not renamed
``durable.after_replace``    text renamed, directory not yet fsynced
``store.before_meta``        artifact.npz published, meta.json not yet
``checkpoint.before_block``  stage computed, block file not yet written
``checkpoint.before_commit`` block+solver written, manifest not rewritten
``checkpoint.after_commit``  stage fully committed (manifest durable)
``checkpoint.before_tile``   tile computed, payload not yet written
``checkpoint.after_tile``    tile durably appended to the tile log
``engine.task``              entry of every SolveTask execution attempt
========================== =================================================
"""

import os
import signal
import threading

from ..errors import FaultInjected, ValidationError

__all__ = ["FaultInjected", "configure", "fault_point", "hit_counts",
           "reset"]

_KINDS = ("kill", "raise")

_lock = threading.Lock()
#: site -> (fire-at-hit, kind); None means "not yet parsed from env".
_specs = None
#: site -> hits seen so far (counts every instrumented pass, armed or not
#: for armed sites; unarmed sites are not counted to keep the no-op cheap).
_counts = {}


def _parse(text):
    """Parse a fault spec string into ``{site: (n, kind)}``."""
    specs = {}
    for part in str(text).split(","):
        part = part.strip()
        if not part:
            continue
        fields = [f.strip() for f in part.split(":")]
        if len(fields) == 2:
            site, count = fields
            kind = "kill"
        elif len(fields) == 3:
            site, count, kind = fields
        else:
            raise ValidationError(
                f"fault spec entry {part!r} is not <site>:<n>[:<kind>]"
            )
        try:
            count = int(count)
        except ValueError as exc:
            raise ValidationError(
                f"fault spec hit count must be an integer, got {part!r}"
            ) from exc
        if count < 1:
            raise ValidationError(
                f"fault spec hit count must be >= 1, got {count} in {part!r}"
            )
        kind = kind.lower()
        if kind not in _KINDS:
            raise ValidationError(
                f"fault kind must be one of {_KINDS}, got {kind!r} "
                f"in {part!r}"
            )
        if not site:
            raise ValidationError(f"fault spec entry {part!r} has no site")
        specs[site] = (count, kind)
    return specs


def configure(spec):
    """Arm the fault sites described by *spec* (a ``REPRO_FAULT`` string,
    or ``None``/``""`` to disarm).  Resets all hit counters.  Returns the
    parsed ``{site: (n, kind)}`` mapping.
    """
    global _specs
    parsed = _parse(spec) if spec else {}
    with _lock:
        _specs = parsed
        _counts.clear()
    return dict(parsed)


def reset():
    """Disarm everything and forget counters; the next :func:`fault_point`
    re-reads ``REPRO_FAULT`` from the environment."""
    global _specs
    with _lock:
        _specs = None
        _counts.clear()


def hit_counts():
    """Copy of the per-site hit counters (armed sites only)."""
    with _lock:
        return dict(_counts)


def fault_point(site):
    """Declare an instrumented crash site; fires if *site* is armed.

    ``kill`` faults terminate the process with ``SIGKILL`` — the closest
    user-space approximation of power loss.  ``raise`` faults raise
    :class:`~repro.errors.FaultInjected`.  Unarmed sites return
    immediately.
    """
    global _specs
    specs = _specs
    if specs is None:
        with _lock:
            if _specs is None:
                _specs = _parse(os.environ.get("REPRO_FAULT", ""))
            specs = _specs
    if not specs:
        return
    trigger = specs.get(site)
    if trigger is None:
        return
    with _lock:
        count = _counts.get(site, 0) + 1
        _counts[site] = count
    fire_at, kind = trigger
    if count != fire_at:
        return
    if kind == "raise":
        raise FaultInjected(
            f"injected fault at {site!r} (hit {count})", site=site, hit=count
        )
    os.kill(os.getpid(), signal.SIGKILL)
