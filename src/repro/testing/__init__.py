"""Test-support utilities shipped with the library.

Currently one module: :mod:`repro.testing.faults`, the deterministic
fault-injection harness the crash-safety tests drive (``REPRO_FAULT``).
Shipping it inside the package (rather than under ``tests/``) means the
production write/checkpoint paths can call :func:`~repro.testing.faults.
fault_point` unconditionally — a no-op when no faults are armed — and
subprocess tests can arm faults purely through the environment.
"""

from .faults import (  # noqa: F401
    FaultInjected,
    configure,
    fault_point,
    hit_counts,
    reset,
)

__all__ = ["FaultInjected", "configure", "fault_point", "hit_counts",
           "reset"]
