"""Unit tests for the Kronecker algebra module."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import ValidationError
from repro.linalg import (
    commutation_matrix,
    kron,
    kron_many,
    kron_matvec,
    kron_power,
    kron_sum,
    kron_sum_many,
    kron_sum_matvec,
    kron_sum_power,
    kron_sum_power_matvec,
    mode_apply,
    symmetrize_pair,
    unvec,
    vec,
)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestKron:
    def test_matches_numpy(self, rng):
        a = rng.standard_normal((3, 4))
        b = rng.standard_normal((2, 5))
        assert np.allclose(kron(a, b), np.kron(a, b))

    def test_sparse_inputs_stay_sparse(self, rng):
        a = sp.random(4, 4, density=0.3, random_state=1)
        b = np.eye(3)
        out = kron(a, b)
        assert sp.issparse(out)
        assert np.allclose(out.toarray(), np.kron(a.toarray(), b))

    def test_kron_many_three_factors(self, rng):
        mats = [rng.standard_normal((2, 2)) for _ in range(3)]
        expected = np.kron(np.kron(mats[0], mats[1]), mats[2])
        assert np.allclose(kron_many(mats), expected)

    def test_kron_many_empty_raises(self):
        with pytest.raises(ValidationError):
            kron_many([])

    def test_kron_power_vector(self, rng):
        b = rng.standard_normal(3)
        assert np.allclose(kron_power(b, 2), np.kron(b, b))
        assert np.allclose(kron_power(b, 3), np.kron(b, np.kron(b, b)))

    def test_kron_power_requires_positive(self, rng):
        with pytest.raises(ValidationError):
            kron_power(np.eye(2), 0)


class TestKronSum:
    def test_definition(self, rng):
        a = rng.standard_normal((3, 3))
        b = rng.standard_normal((2, 2))
        expected = np.kron(a, np.eye(2)) + np.kron(np.eye(3), b)
        assert np.allclose(kron_sum(a, b), expected)

    def test_exponential_identity(self, rng):
        """exp(A ⊕ B) = exp(A) ⊗ exp(B) — the engine behind Theorem 1."""
        import scipy.linalg as sla

        a = -np.eye(3) + 0.3 * rng.standard_normal((3, 3))
        b = -np.eye(2) + 0.3 * rng.standard_normal((2, 2))
        ks = kron_sum(a, b)
        assert np.allclose(
            sla.expm(np.asarray(ks)), np.kron(sla.expm(a), sla.expm(b))
        )

    def test_kron_sum_power(self, rng):
        a = rng.standard_normal((2, 2))
        expected = (
            np.kron(np.kron(a, np.eye(2)), np.eye(2))
            + np.kron(np.kron(np.eye(2), a), np.eye(2))
            + np.kron(np.eye(4), a)
        )
        out = kron_sum_power(a, 3)
        out = out.toarray() if sp.issparse(out) else out
        assert np.allclose(out, expected)

    def test_nonsquare_rejected(self, rng):
        with pytest.raises(ValidationError):
            kron_sum(rng.standard_normal((2, 3)), np.eye(2))

    def test_kron_sum_many_matches_pairwise(self, rng):
        mats = [rng.standard_normal((2, 2)) for _ in range(3)]
        left = kron_sum_many(mats)
        right = kron_sum(kron_sum(mats[0], mats[1]), mats[2])
        left = left.toarray() if sp.issparse(left) else left
        right = right.toarray() if sp.issparse(right) else right
        assert np.allclose(left, right)


class TestVec:
    def test_roundtrip(self, rng):
        x = rng.standard_normal((3, 4))
        assert np.allclose(unvec(vec(x), (3, 4)), x)

    def test_rowmajor_identity(self, rng):
        """(A ⊗ B) vec(X) == vec(A X Bᵀ) under row-major vec."""
        a = rng.standard_normal((3, 3))
        b = rng.standard_normal((4, 4))
        x = rng.standard_normal((3, 4))
        lhs = np.kron(a, b) @ vec(x)
        rhs = vec(a @ x @ b.T)
        assert np.allclose(lhs, rhs)

    def test_unvec_wrong_size(self):
        with pytest.raises(ValidationError):
            unvec(np.zeros(5), (2, 3))


class TestMatvecs:
    def test_kron_matvec(self, rng):
        mats = [rng.standard_normal((3, 2)), rng.standard_normal((2, 4))]
        x = rng.standard_normal(8)
        expected = np.kron(mats[0], mats[1]) @ x
        assert np.allclose(kron_matvec(mats, x), expected)

    def test_kron_matvec_three(self, rng):
        mats = [rng.standard_normal((2, 2)) for _ in range(3)]
        x = rng.standard_normal(8)
        expected = np.kron(np.kron(mats[0], mats[1]), mats[2]) @ x
        assert np.allclose(kron_matvec(mats, x), expected)

    def test_kron_matvec_sparse_factor(self, rng):
        a = sp.identity(3)
        b = rng.standard_normal((2, 2))
        x = rng.standard_normal(6)
        assert np.allclose(
            kron_matvec([a, b], x), np.kron(np.eye(3), b) @ x
        )

    def test_kron_sum_matvec(self, rng):
        a = rng.standard_normal((3, 3))
        b = rng.standard_normal((4, 4))
        x = rng.standard_normal(12)
        expected = (
            np.kron(a, np.eye(4)) + np.kron(np.eye(3), b)
        ) @ x
        assert np.allclose(kron_sum_matvec(a, b, x), expected)

    def test_kron_sum_power_matvec(self, rng):
        a = rng.standard_normal((3, 3))
        dense = kron_sum_power(a, 3)
        dense = dense.toarray() if sp.issparse(dense) else dense
        x = rng.standard_normal(27)
        assert np.allclose(kron_sum_power_matvec(a, 3, x), dense @ x)

    def test_wrong_length_raises(self, rng):
        with pytest.raises(ValidationError):
            kron_matvec([np.eye(2)], np.zeros(3))


class TestModeApply:
    def test_mode0_is_left_multiplication(self, rng):
        t = rng.standard_normal((3, 4))
        m = rng.standard_normal((5, 3))
        assert np.allclose(mode_apply(t, m, 0), m @ t)

    def test_mode1_is_right_multiplication(self, rng):
        t = rng.standard_normal((3, 4))
        m = rng.standard_normal((5, 4))
        assert np.allclose(mode_apply(t, m, 1), t @ m.T)


class TestPermutations:
    def test_commutation_matrix(self, rng):
        x = rng.standard_normal((3, 4))
        k = commutation_matrix(3, 4)
        assert np.allclose(k @ vec(x), vec(x.T))

    def test_commutation_swaps_kron_vectors(self, rng):
        u = rng.standard_normal(3)
        v = rng.standard_normal(3)
        k = commutation_matrix(3, 3)
        assert np.allclose(k @ np.kron(u, v), np.kron(v, u))

    def test_symmetrize_pair(self, rng):
        u = rng.standard_normal(4)
        v = rng.standard_normal(4)
        sym = symmetrize_pair(u, v)
        assert np.allclose(sym, 0.5 * (np.kron(u, v) + np.kron(v, u)))
        assert np.allclose(sym, symmetrize_pair(v, u))

    def test_symmetrize_pair_length_mismatch(self, rng):
        with pytest.raises(ValidationError):
            symmetrize_pair(np.zeros(3), np.zeros(4))
