"""Tests for sources, Newton, integrators and the transient driver."""

import numpy as np
import pytest

from repro.errors import ConvergenceError, ValidationError
from repro.simulation import (
    THETA_BACKWARD_EULER,
    exponential_pulse_source,
    implicit_step,
    multitone_source,
    newton_solve,
    pulse_source,
    simulate,
    sine_source,
    stack_sources,
    step_source,
    surge_source,
    zero_source,
)
from repro.systems import QLDAE


@pytest.fixture
def rng():
    return np.random.default_rng(161)


class TestSources:
    def test_step(self):
        u = step_source(2.0, t_on=1.0)
        assert u(0.5) == 0.0
        assert u(1.0) == 2.0

    def test_pulse(self):
        u = pulse_source(3.0, t_on=1.0, width=0.5)
        assert u(0.9) == 0.0
        assert u(1.2) == 3.0
        assert u(1.6) == 0.0

    def test_sine_frequency(self):
        u = sine_source(1.0, frequency=0.25)  # period 4
        assert abs(u(1.0) - 1.0) < 1e-12
        assert abs(u(2.0)) < 1e-12

    def test_multitone_validates(self):
        with pytest.raises(ValidationError):
            multitone_source([1.0], [1.0, 2.0])

    def test_exponential_pulse_peak(self):
        u = exponential_pulse_source(5.0, tau_rise=0.5, tau_fall=4.0)
        ts = np.linspace(0, 20, 4001)
        vals = [u(t) for t in ts]
        assert abs(max(vals) - 5.0) < 1e-3
        assert u(-1.0) == 0.0

    def test_surge_is_positive_pulse(self):
        u = surge_source(amplitude=100.0)
        assert u(0.0) == 0.0
        ts = np.linspace(0.01, 10, 500)
        assert all(u(t) >= 0 for t in ts)

    def test_stack_sources(self):
        u = stack_sources([step_source(1.0), zero_source()])
        assert np.allclose(u(1.0), [1.0, 0.0])

    def test_exponential_pulse_validation(self):
        with pytest.raises(ValidationError):
            exponential_pulse_source(1.0, tau_rise=5.0, tau_fall=1.0)


class TestNewton:
    def test_scalar_root(self):
        res = lambda x: np.array([x[0] ** 2 - 4.0])
        jac = lambda x: np.array([[2.0 * x[0]]])
        x, iters = newton_solve(res, jac, np.array([3.0]))
        assert abs(x[0] - 2.0) < 1e-10
        assert iters > 0

    def test_already_converged(self):
        res = lambda x: np.zeros(2)
        jac = lambda x: np.eye(2)
        x, iters = newton_solve(res, jac, np.ones(2))
        assert iters == 0

    def test_divergence_raises(self):
        # No real root: x² + 1 = 0
        res = lambda x: np.array([x[0] ** 2 + 1.0])
        jac = lambda x: np.array([[2.0 * x[0]]])
        with pytest.raises(ConvergenceError):
            newton_solve(res, jac, np.array([1.0]), max_iterations=15)

    def test_singular_jacobian_raises(self):
        res = lambda x: np.array([x[0] + 1.0])
        jac = lambda x: np.array([[0.0]])
        with pytest.raises(ConvergenceError):
            newton_solve(res, jac, np.array([0.0]))


class TestImplicitStep:
    def test_linear_exactness_order(self, rng):
        """Trapezoidal is 2nd order: halving dt quarters the error."""
        sys = QLDAE(np.array([[-1.0]]), np.array([1.0]))
        u = lambda t: np.array([1.0])

        def final_error(dt):
            x = np.zeros(1)
            steps = int(round(1.0 / dt))
            for k in range(steps):
                x, _ = implicit_step(
                    sys, x, u(k * dt), u((k + 1) * dt), dt
                )
            exact = 1.0 - np.exp(-1.0)
            return abs(x[0] - exact)

        e1 = final_error(0.1)
        e2 = final_error(0.05)
        assert e2 < e1 / 3.0

    def test_backward_euler_first_order(self):
        sys = QLDAE(np.array([[-1.0]]), np.array([1.0]))
        u = lambda t: np.array([1.0])

        def final_error(dt):
            x = np.zeros(1)
            for k in range(int(round(1.0 / dt))):
                x, _ = implicit_step(
                    sys, x, u(0), u(0), dt, theta=THETA_BACKWARD_EULER
                )
            return abs(x[0] - (1.0 - np.exp(-1.0)))

        e1 = final_error(0.1)
        e2 = final_error(0.05)
        assert e2 < e1  # converges
        assert e2 > e1 / 3.0  # but only first order

    def test_invalid_theta(self):
        sys = QLDAE(np.array([[-1.0]]), np.array([1.0]))
        with pytest.raises(ValidationError):
            implicit_step(sys, np.zeros(1), [0.0], [0.0], 0.1, theta=1.5)


class TestSimulate:
    def test_linear_step_response(self):
        sys = QLDAE(np.array([[-2.0]]), np.array([2.0]))
        res = simulate(sys, step_source(1.0), 5.0, 0.01)
        # steady state 1, time constant 0.5
        assert abs(res.states[-1, 0] - 1.0) < 1e-4
        idx = np.searchsorted(res.times, 0.5)
        assert abs(res.states[idx, 0] - (1 - np.exp(-1))) < 1e-3

    def test_mass_matrix_slows_dynamics(self):
        fast = QLDAE(np.array([[-1.0]]), np.array([1.0]))
        slow = QLDAE(
            np.array([[-1.0]]), np.array([1.0]),
            mass=np.array([[4.0]])
        )
        rf = simulate(fast, step_source(1.0), 2.0, 0.01)
        rs = simulate(slow, step_source(1.0), 2.0, 0.01)
        assert rs.states[-1, 0] < rf.states[-1, 0]

    def test_nonlinear_saturation(self, small_qldae):
        res = simulate(small_qldae, step_source(0.2), 10.0, 0.01)
        assert np.isfinite(res.states).all()
        assert res.newton_iterations > 0

    def test_initial_condition(self, small_qldae, rng):
        x0 = 0.1 * rng.standard_normal(5)
        res = simulate(small_qldae, zero_source(), 1.0, 0.01, x0=x0)
        assert np.allclose(res.states[0], x0)

    def test_outputs_shape(self, small_qldae):
        res = simulate(small_qldae, step_source(0.1), 1.0, 0.01)
        assert res.outputs.shape == (res.steps, 1)
        assert res.output(0).shape == (res.steps,)

    def test_wall_time_recorded(self, small_qldae):
        res = simulate(small_qldae, step_source(0.1), 1.0, 0.01)
        assert res.wall_time > 0.0

    def test_input_shape_mismatch(self, miso_qldae):
        with pytest.raises(ValidationError):
            simulate(miso_qldae, step_source(1.0), 1.0, 0.1)

    def test_bad_grid(self, small_qldae):
        with pytest.raises(ValidationError):
            simulate(small_qldae, step_source(1.0), 0.0, 0.1)

    def test_repr(self, small_qldae):
        res = simulate(small_qldae, step_source(0.1), 0.5, 0.1)
        assert "TransientResult" in repr(res)
