"""Unit tests for exponential systems and quadratic-linearization."""

import numpy as np
import pytest

from repro.errors import SystemStructureError
from repro.simulation import simulate, sine_source, step_source
from repro.systems import ExponentialODE, ExpTerm, QLDAE


@pytest.fixture
def rng():
    return np.random.default_rng(71)


@pytest.fixture
def diode_system(rng):
    """3-node RC chain with one diode-type nonlinearity."""
    n = 3
    g1 = np.array(
        [[-2.0, 1.0, 0.0], [1.0, -2.0, 1.0], [0.0, 1.0, -1.0]]
    )
    b = np.array([1.0, 0.0, 0.0])
    # diode between nodes 2 and 3
    coeff = np.array([0.0, -1.0, 1.0])
    expo = np.array([0.0, 2.0, -2.0])
    return ExponentialODE(g1, b, [ExpTerm(coeff, expo)])


class TestExpTerm:
    def test_dimension_check(self):
        with pytest.raises(SystemStructureError):
            ExpTerm([1.0, 0.0], [1.0, 0.0, 0.0])


class TestExponentialODE:
    def test_rhs(self, diode_system, rng):
        x = 0.2 * rng.standard_normal(3)
        term = diode_system.exp_terms[0]
        expected = (
            diode_system.g1 @ x
            + diode_system.b[:, 0] * 0.5
            + term.coefficient * np.expm1(term.exponent @ x)
        )
        assert np.allclose(diode_system.rhs(x, [0.5]), expected)

    def test_jacobian_finite_difference(self, diode_system, rng):
        x = 0.2 * rng.standard_normal(3)
        jac = diode_system.jacobian(x, [0.0])
        eps = 1e-7
        for j in range(3):
            dx = np.zeros(3)
            dx[j] = eps
            fd = (
                diode_system.rhs(x + dx, [0.0])
                - diode_system.rhs(x - dx, [0.0])
            ) / (2 * eps)
            assert np.allclose(jac[:, j], fd, atol=1e-6)

    def test_equilibrium_at_origin(self, diode_system):
        assert np.allclose(diode_system.rhs(np.zeros(3), [0.0]), 0.0)

    def test_mass_folding(self, diode_system):
        sys = ExponentialODE(
            diode_system.g1,
            diode_system.b,
            diode_system.exp_terms,
            mass=2.0 * np.eye(3),
        )
        explicit = sys.to_explicit()
        assert explicit.mass is None
        assert np.allclose(explicit.g1, diode_system.g1 / 2.0)
        assert np.allclose(
            explicit.exp_terms[0].coefficient,
            diode_system.exp_terms[0].coefficient / 2.0,
        )


class TestQuadraticLinearize:
    def test_returns_qldae_with_correct_dim(self, diode_system):
        q = diode_system.quadratic_linearize()
        assert isinstance(q, QLDAE)
        assert q.n_states == 4  # 3 + 1 exponential

    def test_lifted_g1_rows_are_dependent(self, diode_system):
        """The added rows are a_eᵀ times the x-rows (structural)."""
        q = diode_system.quadratic_linearize()
        a_e = diode_system.exp_terms[0].exponent
        assert np.allclose(q.g1[3, :], a_e @ q.g1[:3, :])

    def test_simulation_exactness(self, diode_system):
        """Lifted QLDAE trajectory (x-block) == original trajectory."""
        q = diode_system.quadratic_linearize()
        u = sine_source(0.4, 0.2)
        full = simulate(diode_system, u, t_end=6.0, dt=0.01)
        lifted = simulate(q, u, t_end=6.0, dt=0.01)
        assert np.abs(full.states - lifted.states[:, :3]).max() < 1e-6

    def test_lifted_y_tracks_manifold(self, diode_system):
        """y_e(t) == exp(a_eᵀ x(t)) − 1 along the lifted trajectory."""
        q = diode_system.quadratic_linearize()
        u = step_source(0.3)
        res = simulate(q, u, t_end=4.0, dt=0.005)
        a_e = diode_system.exp_terms[0].exponent
        y = res.states[:, 3]
        manifold = np.expm1(res.states[:, :3] @ a_e)
        assert np.abs(y - manifold).max() < 1e-6

    def test_no_d1_when_input_sees_no_diode(self, diode_system):
        # b = e1, exponent touches nodes 2,3 -> aᵀb = 0.
        q = diode_system.quadratic_linearize()
        assert q.d1 is None

    def test_d1_when_input_hits_diode(self, rng):
        g1 = -np.eye(2)
        b = np.array([1.0, 0.0])
        term = ExpTerm([-1.0, 0.0], [3.0, 0.0])  # diode at the input node
        sys = ExponentialODE(g1, b, [term])
        q = sys.quadratic_linearize()
        assert q.d1 is not None
        # D1 entry: (aᵀ b) on the lifted state's diagonal.
        assert np.isclose(q.d1[0][2, 2], 3.0)

    def test_output_padded(self, diode_system):
        sys = ExponentialODE(
            diode_system.g1,
            diode_system.b,
            diode_system.exp_terms,
            output=np.array([0.0, 0.0, 1.0]),
        )
        q = sys.quadratic_linearize()
        assert q.output.shape == (1, 4)
        assert q.output[0, 3] == 0.0


class TestTaylorPolynomial:
    def test_taylor2_linear_part(self, diode_system):
        t2 = diode_system.taylor_polynomial(order=2)
        term = diode_system.exp_terms[0]
        expected_g1 = diode_system.g1 + np.outer(
            term.coefficient, term.exponent
        )
        assert np.allclose(t2.g1, expected_g1)
        assert t2.n_states == 3

    def test_taylor_accuracy_improves_with_order(self, diode_system, rng):
        """Taylor-3 rhs is closer to the true rhs than Taylor-2."""
        t2 = diode_system.taylor_polynomial(order=2)
        t3 = diode_system.taylor_polynomial(order=3)
        x = 0.1 * rng.standard_normal(3)
        truth = diode_system.rhs(x, [0.0])
        err2 = np.abs(t2.rhs(x, [0.0]) - truth).max()
        err3 = np.abs(t3.rhs(x, [0.0]) - truth).max()
        assert err3 < err2

    def test_taylor_rejects_bad_order(self, diode_system):
        with pytest.raises(SystemStructureError):
            diode_system.taylor_polynomial(order=4)

    def test_taylor_matches_small_signal_simulation(self, diode_system):
        t2 = diode_system.taylor_polynomial(order=2)
        u = step_source(0.02)
        full = simulate(diode_system, u, t_end=4.0, dt=0.01)
        approx = simulate(t2, u, t_end=4.0, dt=0.01)
        scale = np.abs(full.states).max()
        assert np.abs(full.states - approx.states).max() < 0.02 * scale
