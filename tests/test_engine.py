"""Solve-plan engine: backends, parity serial↔parallel, cache races.

The engine's contract is that the thread backend changes *wall-clock
interleaving only*: every plan-emitting layer must return results that
match the serial backend to rounding (the acceptance bound is 1e-10;
most paths agree bitwise because each task performs identical
floating-point operations on identical data).  The cache-race tests
hammer the shared memo layers from many threads and assert that exactly
one factorization/evaluator survives and every caller gets correct
values.
"""

import threading

import numpy as np
import pytest
import scipy.sparse as sp

import repro.engine as engine
from repro.analysis.distortion import (
    distortion_sweep,
    single_tone_distortion,
    two_tone_intermodulation,
)
from repro.engine import SolvePlan, chunk_bounds, parallel_map
from repro.engine.executor import SerialExecutor, ThreadPoolExecutor
from repro.errors import NumericalError, ValidationError
from repro.linalg.resolvent import ResolventFactory
from repro.mor import AssociatedTransformMOR
from repro.systems import PolynomialODE, StateSpace
from repro.volterra.evaluator import VolterraEvaluator, volterra_evaluator
from repro.volterra.response import frequency_sweep

from conftest import make_stable_matrix

WORKERS = 4


@pytest.fixture(autouse=True)
def _serial_default():
    """Each test starts (and the suite ends) on the serial backend."""
    engine.configure(workers=1)
    yield
    engine.configure(workers=1)


def _sparse_ladder(n, rng):
    """A stable sparse tridiagonal system (CSR g1) with quadratic term."""
    main = -2.0 - 0.1 * rng.random(n)
    off = 0.5 * np.ones(n - 1)
    g1 = sp.diags([off, main, off], [-1, 0, 1], format="csr")
    rows = rng.integers(0, n, size=3 * n)
    cols = rng.integers(0, n * n, size=3 * n)
    vals = 0.05 * rng.standard_normal(3 * n)
    g2 = sp.csr_matrix((vals, (rows, cols)), shape=(n, n * n))
    b = rng.standard_normal(n)
    return PolynomialODE(g1, b, g2=g2, output=np.eye(n)[0])


# ---------------------------------------------------------------------------
# engine primitives
# ---------------------------------------------------------------------------


class TestPrimitives:
    def test_chunk_bounds_cover_range(self):
        for count in (1, 2, 5, 17):
            for parts in (1, 2, 4, 30):
                bounds = chunk_bounds(count, parts)
                assert bounds[0][0] == 0 and bounds[-1][1] == count
                flat = [i for lo, hi in bounds for i in range(lo, hi)]
                assert flat == list(range(count))
                sizes = [hi - lo for lo, hi in bounds]
                assert max(sizes) - min(sizes) <= 1

    def test_plan_preserves_submission_order(self):
        plan = SolvePlan("test")
        for idx in range(20):
            plan.add(lambda i=idx: i * i, tag=idx)
        with engine.using(workers=WORKERS):
            results = plan.execute()
        assert results == [i * i for i in range(20)]
        assert plan.tags == list(range(20))

    def test_plan_raises_first_error_by_submission_order(self):
        def boom(i):
            if i % 2:
                raise RuntimeError(f"task {i}")
            return i

        plan = SolvePlan("test")
        for idx in range(6):
            plan.add(boom, idx)
        with engine.using(workers=WORKERS):
            with pytest.raises(RuntimeError, match="task 1"):
                plan.execute()

    def test_parallel_map_matches_serial(self):
        items = list(range(13))
        serial = parallel_map(lambda x: x + 1, items)
        with engine.using(workers=WORKERS):
            threaded = parallel_map(lambda x: x + 1, items)
        assert serial == threaded == [x + 1 for x in items]

    def test_nested_plan_runs_inline_without_deadlock(self):
        pool = ThreadPoolExecutor(2)

        def inner():
            plan = SolvePlan("inner")
            for idx in range(4):
                plan.add(lambda i=idx: i)
            return plan.execute(pool)

        outer = SolvePlan("outer")
        for _ in range(8):  # more tasks than workers
            outer.add(inner)
        results = outer.execute(pool)
        pool.shutdown()
        assert results == [[0, 1, 2, 3]] * 8

    def test_configure_and_env(self, monkeypatch):
        assert isinstance(engine.configure(workers=1), SerialExecutor)
        ex = engine.configure(workers=3)
        assert isinstance(ex, ThreadPoolExecutor)
        assert engine.current_workers() == 3
        engine.configure(workers=None)
        assert engine.current_workers() == 1
        with pytest.raises(ValidationError):
            ThreadPoolExecutor(1)
        # env var is a default for the first lazy resolution
        monkeypatch.setenv("REPRO_WORKERS", "2")
        engine.executor._set_executor(None)
        assert engine.current_workers() == 2
        engine.configure(workers=1)

    def test_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        engine.executor._set_executor(None)
        with pytest.raises(ValidationError):
            engine.get_executor()
        engine.configure(workers=1)

    def test_auto_workers_resolution(self, monkeypatch):
        import os

        expected = max(1, (os.cpu_count() or 1) - 1)
        assert engine.resolve_workers("auto") == expected
        assert engine.resolve_workers("AUTO") == expected
        assert engine.resolve_workers(None) == 1
        assert engine.resolve_workers(3) == 3
        with pytest.raises(ValidationError):
            engine.resolve_workers("lots")
        try:
            engine.configure(workers="auto")
            stats = engine.worker_stats()
            assert stats["requested"] == "auto"
            assert stats["workers"] == expected
            assert stats["backend"] == (
                "serial" if expected == 1 else "threads"
            )
            assert stats["cpu_count"] == os.cpu_count()
        finally:
            engine.configure(workers=1)
        # env form: REPRO_WORKERS=auto on first lazy resolution
        monkeypatch.setenv("REPRO_WORKERS", "auto")
        engine.executor._set_executor(None)
        assert engine.current_workers() == expected
        assert engine.worker_stats()["requested"] == "auto"
        engine.configure(workers=1)

    def test_worker_stats_tracks_using_scope(self):
        engine.configure(workers=1)
        base = engine.worker_stats()
        assert base["backend"] == "serial"
        with engine.using(workers=4):
            inside = engine.worker_stats()
            assert inside == {**inside, "backend": "threads", "workers": 4,
                              "requested": 4}
        after = engine.worker_stats()
        assert after["backend"] == "serial"
        assert after["workers"] == 1


# ---------------------------------------------------------------------------
# serial <-> parallel parity (acceptance bound 1e-10)
# ---------------------------------------------------------------------------


class TestParity:
    def test_solve_many_dense(self, rng):
        a = make_stable_matrix(rng, 40)
        rhs = rng.standard_normal((40, 3))
        shifts = 1j * np.linspace(0.1, 5.0, 23)
        serial = ResolventFactory(a).solve_many(shifts, rhs)
        with engine.using(workers=WORKERS):
            threaded = ResolventFactory(a).solve_many(shifts, rhs)
        assert np.abs(serial - threaded).max() <= 1e-10

    def test_solve_many_sparse(self, rng):
        system = _sparse_ladder(60, rng)
        rhs = rng.standard_normal(60)
        shifts = 1j * np.linspace(0.1, 3.0, 17)
        serial = ResolventFactory(system.g1).solve_many(shifts, rhs)
        with engine.using(workers=WORKERS):
            threaded = ResolventFactory(system.g1).solve_many(shifts, rhs)
        assert np.abs(serial - threaded).max() <= 1e-10

    def test_distortion_sweep(self, small_qldae):
        omegas = np.linspace(0.2, 2.0, 11)
        _, hd2_s, hd3_s = distortion_sweep(small_qldae, omegas, 0.2)
        small_qldae._volterra_evaluator = None  # force a cold rebuild
        small_qldae._resolvent_factory = None
        with engine.using(workers=WORKERS):
            _, hd2_p, hd3_p = distortion_sweep(small_qldae, omegas, 0.2)
        assert np.abs(hd2_s - hd2_p).max() <= 1e-10
        assert np.abs(hd3_s - hd3_p).max() <= 1e-10

    def test_distortion_sweep_sparse(self, rng):
        system = _sparse_ladder(80, rng)
        omegas = np.linspace(0.3, 1.5, 7)
        _, hd2_s, hd3_s = distortion_sweep(system, omegas, 0.3)
        system._volterra_evaluator = None
        system._resolvent_factory = None
        with engine.using(workers=WORKERS):
            _, hd2_p, hd3_p = distortion_sweep(system, omegas, 0.3)
        assert np.abs(hd2_s - hd2_p).max() <= 1e-10
        assert np.abs(hd3_s - hd3_p).max() <= 1e-10

    @pytest.mark.parametrize("strategy", ["coupled", "decoupled"])
    def test_build_basis(self, small_qldae, strategy):
        reducer = AssociatedTransformMOR(
            orders=(3, 2, 0),
            expansion_points=(0.0, 1.0j, 2.0j),
            strategy=strategy,
        )
        explicit = small_qldae.to_explicit()
        basis_s, details_s = reducer.build_basis(explicit)
        explicit._associated_workspace = None
        with engine.using(workers=WORKERS):
            basis_p, details_p = reducer.build_basis(explicit)
        assert details_s["blocks"] == details_p["blocks"]
        assert basis_s.shape == basis_p.shape
        assert np.abs(basis_s - basis_p).max() <= 1e-10

    def test_frequency_sweep_and_response(self, rng, small_qldae):
        omegas = np.linspace(0.1, 4.0, 19)
        explicit = small_qldae.to_explicit()
        serial_sweep = frequency_sweep(explicit, omegas)
        ss = StateSpace(
            make_stable_matrix(rng, 12),
            rng.standard_normal((12, 2)),
            rng.standard_normal((2, 12)),
        )
        serial_resp = ss.frequency_response(omegas)
        explicit._resolvent_factory = None
        ss._resolvent_factory = None
        with engine.using(workers=WORKERS):
            threaded_sweep = frequency_sweep(explicit, omegas)
            threaded_resp = ss.frequency_response(omegas)
        assert np.abs(serial_sweep - threaded_sweep).max() <= 1e-10
        assert np.abs(serial_resp - threaded_resp).max() <= 1e-10

    def test_two_tone_parity(self, small_qldae):
        serial = two_tone_intermodulation(small_qldae, 0.9, 1.3)
        small_qldae._volterra_evaluator = None
        small_qldae._resolvent_factory = None
        with engine.using(workers=WORKERS):
            threaded = two_tone_intermodulation(small_qldae, 0.9, 1.3)
        for key, value in serial.items():
            assert abs(value - threaded[key]) <= 1e-10


# ---------------------------------------------------------------------------
# cache races
# ---------------------------------------------------------------------------


def _hammer(fn, n_threads=8, repeats=5):
    """Run *fn* concurrently from many threads; re-raise any failure."""
    barrier = threading.Barrier(n_threads)
    errors = []

    def worker():
        try:
            barrier.wait()
            for _ in range(repeats):
                fn()
        except BaseException as exc:  # noqa: BLE001 - test harness
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


class TestCacheRaces:
    def test_for_system_single_factory(self, rng):
        a = make_stable_matrix(rng, 12)

        class Holder:
            g1 = a

        holder = Holder()
        seen = []

        def grab():
            seen.append(ResolventFactory.for_system(holder))

        _hammer(grab)
        assert len({id(f) for f in seen}) == 1
        assert seen[0].matrix is a

    def test_volterra_evaluator_memo_single_instance(self, small_qldae):
        explicit = small_qldae.to_explicit()
        seen = []

        def grab():
            seen.append(volterra_evaluator(explicit))

        _hammer(grab)
        assert len({id(e) for e in seen}) == 1

    def test_evaluator_h1_h2_race_correctness(self, small_qldae):
        explicit = small_qldae.to_explicit()
        evaluator = VolterraEvaluator(explicit)
        shifts = 1j * np.linspace(0.2, 1.4, 6)
        expected_h1 = {complex(s): evaluator.h1(s) for s in shifts}
        expected_h2 = {
            complex(s): evaluator.h2(s, s) for s in shifts
        }
        fresh = VolterraEvaluator(explicit)

        def worker_pass():
            for s in shifts:
                assert np.abs(fresh.h1(s) - expected_h1[complex(s)]).max() \
                    <= 1e-12
                assert np.abs(
                    fresh.h2(s, s) - expected_h2[complex(s)]
                ).max() <= 1e-12

        _hammer(worker_pass)
        # Despite 8 threads x 5 repeats, the memo served every repeat
        # after (at most one duplicated) cold solve per shift.
        assert len(fresh._h1_cache) == len(shifts)
        assert len(fresh._h2_cache) == len(shifts)

    def test_sparse_lu_cache_race(self, rng):
        system = _sparse_ladder(50, rng)
        factory = ResolventFactory(system.g1)
        rhs = rng.standard_normal(50)
        shifts = [0.5 + 0.1 * k + 1j * (k % 3) for k in range(6)]
        expected = {s: factory.solve(s, rhs) for s in shifts}
        fresh = ResolventFactory(system.g1)

        def worker_pass():
            for s in shifts:
                assert np.abs(fresh.solve(s, rhs) - expected[s]).max() \
                    <= 1e-12

        _hammer(worker_pass)
        assert len(fresh._lu_cache) == len(set(complex(s) for s in shifts))


# ---------------------------------------------------------------------------
# real-dtype sparse fast path
# ---------------------------------------------------------------------------


class TestRealShiftFastPath:
    def test_real_shift_uses_real_lu(self, rng):
        system = _sparse_ladder(40, rng)
        factory = ResolventFactory(system.g1)
        rhs = rng.standard_normal(40)
        x_real = factory.solve(0.0, rhs)
        counts = factory.sparse_lu_stats
        assert (counts["real"], counts["complex"]) == (1, 0)
        x_cplx = factory.solve(0.3 + 0.7j, rhs)
        counts = factory.sparse_lu_stats
        assert (counts["real"], counts["complex"]) == (1, 1)
        # parity with a from-scratch complex-cast factory
        reference = ResolventFactory(system.g1.astype(complex))
        counts = reference.sparse_lu_stats
        assert (counts["real"], counts["complex"]) == (0, 0)
        assert np.abs(x_real - reference.solve(0.0, rhs)).max() <= 1e-12
        assert reference.sparse_lu_stats["complex"] == 1
        assert np.abs(
            x_cplx - reference.solve(0.3 + 0.7j, rhs)
        ).max() <= 1e-12

    def test_real_lu_serves_complex_rhs(self, rng):
        system = _sparse_ladder(40, rng)
        factory = ResolventFactory(system.g1)
        rhs = rng.standard_normal(40) + 1j * rng.standard_normal(40)
        x = factory.solve(-0.25, rhs)
        assert factory.sparse_lu_stats["real"] == 1
        reference = ResolventFactory(system.g1.astype(complex))
        assert np.abs(x - reference.solve(-0.25, rhs)).max() <= 1e-12

    def test_real_chain_results_stay_real_valued(self, rng):
        system = _sparse_ladder(40, rng)
        factory = ResolventFactory(system.g1)
        x = factory.solve(1.5, np.ones(40))
        assert np.abs(x.imag).max() == 0.0


# ---------------------------------------------------------------------------
# difference-type distortion terms (small-offset limit)
# ---------------------------------------------------------------------------


class TestDifferenceTerms:
    def test_lifted_qldae_dc_shift_is_finite(self):
        from repro.circuits.examples import nonlinear_transmission_line

        system = nonlinear_transmission_line(8).quadratic_linearize()
        system = system.to_explicit()
        metrics = single_tone_distortion(system, 0.8, amplitude=0.2)
        assert np.isfinite(metrics["dc_shift"])
        assert metrics["dc_shift"] > 0.0
        # equal two-tone IM products hit the same DC shift and must be
        # finite too (previously NaN)
        products = two_tone_intermodulation(system, 0.8, 0.8)
        for key in ("im2_diff", "im3_2f1_f2", "im3_2f2_f1"):
            assert np.isfinite(products[key]), key

    def test_limit_matches_direct_value_when_offset_manually(self):
        from repro.circuits.examples import nonlinear_transmission_line

        system = nonlinear_transmission_line(8).quadratic_linearize()
        system = system.to_explicit()
        evaluator = volterra_evaluator(system)
        metrics = single_tone_distortion(system, 0.8, amplitude=0.2)
        w = 0.8
        direct = abs(
            complex(
                (system.output @ evaluator.h2(1j * w, 1j * (1e-7 - w)))[0, 0]
            )
        )
        dc_kernel = metrics["dc_shift"] / (0.5 * 0.2**2)
        assert np.isclose(dc_kernel, direct, rtol=1e-6)

    def test_genuine_pole_raises_named_error(self):
        # G1 = [[0]] puts an *observable, controllable* eigenvalue at
        # DC: H2(jw, -jw) has a true pole there and the limit must
        # refuse with a message naming the term.
        system = PolynomialODE(
            np.array([[0.0]]),
            np.array([1.0]),
            g2=np.array([[1.0]]),
            output=np.array([1.0]),
        )
        with pytest.raises(NumericalError, match="dc_shift"):
            single_tone_distortion(system, 0.7)
