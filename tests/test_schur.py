"""Unit tests for the Schur-form shifted solver."""

import numpy as np
import pytest

from repro.errors import NumericalError
from repro.linalg import SchurForm


@pytest.fixture
def rng():
    return np.random.default_rng(3)


@pytest.fixture
def matrix(rng):
    return -1.2 * np.eye(6) + 0.4 * rng.standard_normal((6, 6))


class TestSchurForm:
    def test_factorization_reconstructs(self, matrix):
        sf = SchurForm(matrix)
        recon = sf.q @ sf.t @ sf.q.conj().T
        assert np.allclose(recon, matrix)

    def test_eigenvalues_match(self, matrix):
        sf = SchurForm(matrix)
        expected = np.linalg.eigvals(matrix)
        # Match each Schur eigenvalue to its nearest true eigenvalue.
        dist = np.abs(sf.eigenvalues[:, None] - expected[None, :])
        assert dist.min(axis=1).max() < 1e-10

    def test_solve_shifted_vector(self, matrix, rng):
        sf = SchurForm(matrix)
        rhs = rng.standard_normal(6)
        x = sf.solve_shifted(0.7, rhs)
        assert np.allclose((matrix + 0.7 * np.eye(6)) @ x, rhs)

    def test_solve_shifted_matrix_rhs(self, matrix, rng):
        sf = SchurForm(matrix)
        rhs = rng.standard_normal((6, 3))
        x = sf.solve_shifted(-0.5, rhs)
        assert np.allclose((matrix - 0.5 * np.eye(6)) @ x, rhs)

    def test_solve_shifted_complex_shift(self, matrix, rng):
        sf = SchurForm(matrix)
        rhs = rng.standard_normal(6)
        shift = 0.3 + 1.1j
        x = sf.solve_shifted(shift, rhs)
        assert np.allclose((matrix + shift * np.eye(6)) @ x, rhs)

    def test_solve_shifted_transpose(self, matrix, rng):
        sf = SchurForm(matrix)
        rhs = rng.standard_normal(6)
        x = sf.solve_shifted_transpose(0.9, rhs)
        assert np.allclose((matrix.T + 0.9 * np.eye(6)) @ x, rhs)

    def test_singular_shift_raises(self, matrix):
        sf = SchurForm(matrix)
        eig = sf.eigenvalues[0]
        with pytest.raises(NumericalError):
            sf.solve_shifted(-eig, np.ones(6))

    def test_matvec(self, matrix, rng):
        sf = SchurForm(matrix)
        x = rng.standard_normal(6)
        assert np.allclose(sf.matvec(x), matrix @ x)

    def test_real_solution_for_real_problem(self, matrix, rng):
        sf = SchurForm(matrix)
        rhs = rng.standard_normal(6)
        x = sf.solve_shifted(0.0, rhs)
        assert np.abs(x.imag).max() < 1e-10 * max(np.abs(x.real).max(), 1.0)
