"""Checkpoint/resume: bit-identical ROMs across crashes, plus the
memory-budget spill path and the pipeline/CLI wiring.

The load-bearing property is **bit identity**: a reduction that crashes
at any instrumented site and resumes from its checkpoint must produce
byte-for-byte the same basis as an uninterrupted cold run (the solver
snapshot restores the exact floating-point environment — shared
extended-Krylov basis, fallback-shift cache, factored Π).  Each run
uses a *fresh* system object: the associated workspace is memoized on
the system, so reuse would hide state leaks.
"""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import memory
from repro.checkpoint import JobState, checkpoint_for
from repro.circuits import quadratic_rc_ladder_netlist
from repro.errors import FaultInjected, ValidationError
from repro.mor.assoc import AssociatedTransformMOR
from repro.pipeline import run_pipeline
from repro.serialize import array_digest
from repro.store import ModelStore
from repro.testing import faults

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture(autouse=True)
def _clean_state():
    faults.configure(None)
    memory.configure(None)
    yield
    faults.configure(None)
    faults.reset()
    memory.configure(None)


def fresh_system(n=24):
    """Sep-healthy sparse quadratic ladder (new object every call)."""
    net = quadratic_rc_ladder_netlist(
        n, r=10.0, g_leak=1.0, g_quad=0.5, quad_nodes=4
    )
    return net.compile(sparse=True)


def make_reducer():
    return AssociatedTransformMOR(orders=(3, 2, 1), strategy="decoupled")


@pytest.fixture(scope="module")
def cold_digest():
    """Basis digest of an uninterrupted (3,2,1) decoupled reduction."""
    rom = make_reducer().reduce(fresh_system())
    return array_digest(rom.basis)


class TestJobState:
    def test_roundtrip(self, tmp_path):
        state = JobState(tmp_path / "ck")
        payload = {"chains": [[np.arange(4.0), np.ones(4)]]}
        state.commit_stage("s0", payload, solver_state={"u": np.eye(2)})
        state.commit_stage("s1", {"chains": []})
        reopened = JobState(tmp_path / "ck")
        assert reopened.resumed
        assert reopened.stage_ids() == ["s0", "s1"]
        assert reopened.has_stage("s0")
        assert not reopened.has_stage("missing")
        loaded = reopened.load_stage("s0")
        assert np.array_equal(loaded["chains"][0][0], np.arange(4.0))
        assert reopened.loaded == 1
        # s1 carried no snapshot: the s0 reference is carried forward
        solver = reopened.solver_state()
        assert np.array_equal(solver["u"], np.eye(2))

    def test_load_uncommitted_stage_raises(self, tmp_path):
        state = JobState(tmp_path)
        with pytest.raises(ValidationError):
            state.load_stage("nope")

    def test_recommit_replaces_in_place(self, tmp_path):
        state = JobState(tmp_path)
        state.commit_stage("s", {"v": np.zeros(2)})
        state.commit_stage("s", {"v": np.ones(2)})
        assert state.stage_ids() == ["s"]
        assert np.array_equal(JobState(tmp_path).load_stage("s")["v"],
                              np.ones(2))

    def test_fingerprint_mismatch_wipes(self, tmp_path):
        state = JobState(tmp_path, system_fingerprint="aaa",
                         reducer_fingerprint="rrr")
        state.commit_stage("s", {"v": np.ones(1)})
        other = JobState(tmp_path, system_fingerprint="bbb",
                         reducer_fingerprint="rrr")
        assert not other.resumed
        assert len(other) == 0
        assert not (tmp_path / "blocks").exists()

    def test_garbled_manifest_wipes(self, tmp_path):
        state = JobState(tmp_path)
        state.commit_stage("s", {"v": np.ones(1)})
        state.manifest_path.write_text("{ torn json")
        assert not JobState(tmp_path).resumed

    def test_solver_garbage_collection(self, tmp_path):
        state = JobState(tmp_path)
        state.commit_stage("a", {"v": np.ones(1)},
                           solver_state={"x": np.ones(1)})
        state.commit_stage("a", {"v": np.ones(1)},
                           solver_state={"x": np.ones(2)})
        snapshots = list(Path(tmp_path).glob("solver-*.npz"))
        assert len(snapshots) == 1  # the superseded snapshot was reaped

    def test_checkpoint_for_store_keying(self, tmp_path):
        store = ModelStore(tmp_path)
        system = fresh_system(12)
        reducer = make_reducer()
        state = checkpoint_for(store, system, reducer)
        key = store.key_for(system, reducer)
        assert state.directory == store.root / "checkpoints" / key
        assert state.system_fingerprint is not None
        # a different reducer config under the same directory is wiped
        state.commit_stage("s", {"v": np.ones(1)})
        other_dir = checkpoint_for(
            tmp_path / "checkpoints" / key, system,
            AssociatedTransformMOR(orders=(2, 1, 0)),
        )
        assert not other_dir.resumed


class TestBitIdenticalResume:
    @pytest.mark.parametrize("site,hit", [
        ("checkpoint.before_block", 1),
        ("checkpoint.before_commit", 2),
        ("checkpoint.after_commit", 3),
    ])
    def test_crash_resume_matches_cold_run(self, tmp_path, cold_digest,
                                           site, hit):
        ckdir = tmp_path / "ck"
        faults.configure(f"{site}:{hit}:raise")
        with pytest.raises(FaultInjected):
            make_reducer().reduce(fresh_system(), checkpoint=JobState(ckdir))
        faults.configure(None)
        resumed = JobState(ckdir)
        rom = make_reducer().reduce(fresh_system(), checkpoint=resumed)
        assert array_digest(rom.basis) == cold_digest
        info = rom.details["checkpoint"]
        assert info["loaded"] + info["computed"] >= info["stages_committed"]

    def test_full_load_resume_computes_nothing(self, tmp_path, cold_digest):
        ckdir = tmp_path / "ck"
        make_reducer().reduce(fresh_system(), checkpoint=JobState(ckdir))
        rom = make_reducer().reduce(fresh_system(),
                                    checkpoint=JobState(ckdir))
        info = rom.details["checkpoint"]
        assert info["computed"] == 0
        assert info["loaded"] == info["stages_committed"] > 0
        assert info["resumed"]
        assert array_digest(rom.basis) == cold_digest

    def test_sigkill_resume_matches_cold_run(self, tmp_path, cold_digest):
        """The acceptance path: SIGKILL mid-build, resume bit-identically."""
        ckdir = tmp_path / "ck"
        script = (
            "from repro.checkpoint import JobState\n"
            "from repro.circuits import quadratic_rc_ladder_netlist\n"
            "from repro.mor.assoc import AssociatedTransformMOR\n"
            "net = quadratic_rc_ladder_netlist(24, r=10.0, g_leak=1.0,"
            " g_quad=0.5, quad_nodes=4)\n"
            "mor = AssociatedTransformMOR(orders=(3, 2, 1),"
            " strategy='decoupled')\n"
            f"mor.reduce(net.compile(sparse=True),"
            f" checkpoint=JobState({str(ckdir)!r}))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC
        env["REPRO_FAULT"] = "checkpoint.after_commit:2:kill"
        result = subprocess.run(
            [sys.executable, "-c", script], env=env,
            capture_output=True, text=True,
        )
        assert result.returncode == -9, result.stderr
        resumed = JobState(ckdir)
        assert resumed.resumed and len(resumed) == 2
        rom = make_reducer().reduce(fresh_system(), checkpoint=resumed)
        assert array_digest(rom.basis) == cold_digest
        assert rom.details["checkpoint"]["loaded"] >= 1

    def test_checkpointed_build_itself_is_bit_identical(self, tmp_path,
                                                        cold_digest):
        """Checkpointing must not perturb the numbers even without a crash."""
        rom = make_reducer().reduce(
            fresh_system(), checkpoint=JobState(tmp_path / "ck")
        )
        assert array_digest(rom.basis) == cold_digest


class TestMemoryBudget:
    def test_parse_budget(self):
        assert memory.parse_budget(None) is None
        assert memory.parse_budget("") is None
        assert memory.parse_budget("none") is None
        assert memory.parse_budget("unlimited") is None
        assert memory.parse_budget(0) is None
        assert memory.parse_budget(123) == 123
        assert memory.parse_budget("512m") == 512 * 1024**2
        assert memory.parse_budget("2G") == 2 * 1024**3
        assert memory.parse_budget("1.5K") == 1536
        for bad in ("12Q", "abc", -1, "-2M"):
            with pytest.raises(ValidationError):
                memory.parse_budget(bad)

    def test_admit_spills_past_budget(self, tmp_path):
        budget = memory.MemoryBudget(1024, spill_dir=tmp_path)
        small = np.arange(8.0)
        assert budget.admit(small) is small  # resident
        big = np.random.default_rng(0).standard_normal((64, 64))
        view = budget.admit(big, label="basis")
        assert isinstance(view, np.memmap)
        assert not view.flags.writeable
        assert np.array_equal(np.asarray(view), big)
        stats = budget.stats()
        assert stats["spilled_blocks"] == 1
        assert stats["spilled_bytes"] == big.nbytes

    def test_spill_file_unlinked_on_collection(self, tmp_path):
        budget = memory.MemoryBudget(1, spill_dir=tmp_path)
        view = budget.admit(np.ones(100))
        spilled = list(tmp_path.glob("*.npy"))
        assert len(spilled) == 1
        del view
        assert not spilled[0].exists()

    def test_memmap_passes_through(self, tmp_path):
        np.save(tmp_path / "x.npy", np.ones(100))
        view = np.load(tmp_path / "x.npy", mmap_mode="r")
        budget = memory.MemoryBudget(1, spill_dir=tmp_path)
        assert budget.admit(view) is view  # never re-spilled

    def test_unlimited_is_identity(self):
        arr = np.ones(3)
        assert memory.MemoryBudget(None).admit(arr) is arr

    def test_spilled_reduction_is_bit_identical(self, tmp_path, cold_digest):
        """Tiny budget: every basis block and the Π left factor spill,
        and the ROM basis is still byte-for-byte the unlimited one."""
        with memory.limit(4096, spill_dir=tmp_path) as budget:
            system = fresh_system()
            rom = make_reducer().reduce(system)
            assert array_digest(rom.basis) == cold_digest
            ws = system._associated_workspace
            # The streamed build keeps the Π left factor resident when
            # it fits the budget and arena-backs it otherwise.
            assert (
                isinstance(ws.pi.left, np.memmap)
                or ws.pi.left.nbytes <= budget.budget
            )
        assert budget.stats()["spilled_blocks"] >= 1

    def test_limit_exit_reclaims_spill_files(self, tmp_path):
        """Regression: a successful job under ``memory.limit`` must not
        leave spilled ``.npy`` blocks (or arena tiles) behind — exit
        runs the end-of-job cleanup even when nothing raised."""
        with memory.limit(4096, spill_dir=tmp_path) as budget:
            system = fresh_system()
            rom = make_reducer().reduce(system)
            assert rom.basis.shape[0] == system.n_states
            assert budget.stats()["spilled_blocks"] >= 1
            assert list(tmp_path.glob("*.npy"))  # spill live mid-job
        assert list(tmp_path.glob("*.npy")) == []
        assert tmp_path.exists()  # caller-owned dir is kept, emptied

    def test_block_rows_derivation(self, monkeypatch):
        monkeypatch.delenv("REPRO_MAX_BLOCK", raising=False)
        n = 10_000
        row = 8 * 16  # 16 float64 columns
        budget = memory.MemoryBudget(1024 * 1024)
        planner = memory.BlockPlanner(budget)
        derived = planner.block_rows(n, row_bytes=row)
        # budget / (_TILE_FRACTION * row_bytes), floored and clamped
        assert derived == (1024 * 1024) // (4 * row)
        assert memory.BlockPlanner(budget).block_rows(8, row_bytes=row) == 8
        # explicit max_block wins over the derived size, floor exempt
        assert memory.BlockPlanner(
            budget, max_block=1
        ).block_rows(n, row_bytes=row) == 1
        # unlimited budget, no override: one block covering all rows
        assert memory.BlockPlanner(
            memory.MemoryBudget(None)
        ).block_rows(n, row_bytes=row) == n
        # a tiny budget can never derive a degenerate sliver
        tiny = memory.BlockPlanner(memory.MemoryBudget(64))
        assert tiny.block_rows(n, row_bytes=row) == 32

    def test_env_budget(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMORY_BUDGET", "1k")
        memory.configure(None)
        memory._set_budget(None)  # force a re-read from the environment
        assert memory.current_budget().budget == 1024


class TestPipelineWiring:
    def _spec(self):
        return {
            "generator": "quadratic_rc_ladder_netlist",
            "args": {"n_nodes": 24, "r": 10.0, "g_leak": 1.0,
                     "g_quad": 0.5, "quad_nodes": 4},
            "compile": {"sparse": True},
        }

    _REDUCE = {"orders": [3, 2, 1], "strategy": "decoupled"}

    def test_checkpoint_dir_reported_and_discarded(self, tmp_path,
                                                   cold_digest):
        ckdir = tmp_path / "ck"
        result = run_pipeline(self._spec(), reduce=self._REDUCE,
                              checkpoint=ckdir)
        info = result.report()["reduction"]["checkpoint"]
        assert info["stages_committed"] > 0
        assert array_digest(result.rom.basis) == cold_digest
        assert not ckdir.exists()  # discarded after success

    def test_checkpoint_true_needs_store(self):
        with pytest.raises(ValidationError, match="store"):
            run_pipeline(self._spec(), reduce=self._REDUCE, checkpoint=True)

    def test_checkpoint_true_keys_under_store(self, tmp_path):
        result = run_pipeline(self._spec(), reduce=self._REDUCE,
                              store=tmp_path / "models", checkpoint=True)
        info = result.report()["reduction"]["checkpoint"]
        assert str(tmp_path / "models" / "checkpoints") in info["directory"]
        assert result.store_hit is False

    def test_resume_without_state_raises(self, tmp_path):
        with pytest.raises(ValidationError, match="no committed"):
            run_pipeline(self._spec(), reduce=self._REDUCE,
                         checkpoint=tmp_path / "empty", resume=True)
        with pytest.raises(ValidationError, match="needs a checkpoint"):
            run_pipeline(self._spec(), reduce=self._REDUCE, resume=True)

    def test_checkpoint_without_reduce_rejected(self, tmp_path):
        with pytest.raises(ValidationError, match="reduce"):
            run_pipeline(self._spec(), checkpoint=tmp_path / "ck")

    def test_crashed_pipeline_resumes(self, tmp_path, cold_digest):
        ckdir = tmp_path / "ck"
        faults.configure("checkpoint.before_commit:2:raise")
        with pytest.raises(FaultInjected):
            run_pipeline(self._spec(), reduce=self._REDUCE, checkpoint=ckdir)
        faults.configure(None)
        assert ckdir.exists()  # kept on failure
        result = run_pipeline(self._spec(), reduce=self._REDUCE,
                              checkpoint=ckdir, resume=True)
        info = result.report()["reduction"]["checkpoint"]
        assert info["resumed"] and info["loaded"] >= 1
        assert array_digest(result.rom.basis) == cold_digest

    def test_memory_budget_reported(self, tmp_path):
        result = run_pipeline(self._spec(), reduce=self._REDUCE,
                              memory_budget="4k")
        report = result.report()
        assert report["memory"]["budget_bytes"] == 4096
        assert report["memory"]["spilled_blocks"] >= 1
