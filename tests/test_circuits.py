"""Tests for devices, netlist, MNA assembly and example circuits."""

import numpy as np
import pytest

from repro.circuits import (
    Netlist,
    nonlinear_transmission_line,
    quadratic_rc_ladder,
    rf_receiver_chain,
    varistor_surge_protector,
)
from repro.circuits.devices import Resistor
from repro.errors import SystemStructureError, ValidationError
from repro.systems import CubicODE, ExponentialODE, QLDAE


class TestDevices:
    def test_resistor_validation(self):
        with pytest.raises(ValidationError):
            Resistor(1, 1, 1.0)
        with pytest.raises(ValidationError):
            Resistor(1, 0, -1.0)
        with pytest.raises(ValidationError):
            Resistor(-1, 0, 1.0)

    def test_conductance_needs_coefficient(self):
        net = Netlist()
        with pytest.raises(ValidationError):
            net.add_conductance(1, 0)


class TestMNA:
    def test_rc_divider_linear(self):
        """R from 1→2 and C at node 2: classic RC low-pass."""
        net = Netlist()
        net.add_resistor(1, 2, 2.0)
        net.add_capacitor(1, 0, 1.0)
        net.add_capacitor(2, 0, 3.0)
        net.add_current_source(1, 0)
        sys = net.compile()
        assert isinstance(sys, QLDAE)
        # mass = diag(1, 3), g1 = -G with conductance 1/2 between nodes
        mass = sys.mass if sys.mass is not None else np.eye(2)
        assert np.allclose(mass, np.diag([1.0, 3.0]))
        g = np.array([[-0.5, 0.5], [0.5, -0.5]])
        assert np.allclose(sys.g1, g)
        assert np.allclose(sys.b[:, 0], [1.0, 0.0])

    def test_kcl_sign_convention(self):
        """Current from the source charges the node positively."""
        net = Netlist()
        net.add_capacitor(1, 0, 1.0)
        net.add_resistor(1, 0, 1.0)
        net.add_current_source(1, 0)
        sys = net.compile()
        from repro.simulation import simulate, step_source

        res = simulate(sys.to_explicit(), step_source(1.0), 10.0, 0.01)
        # steady state: v = I*R = 1
        assert abs(res.states[-1, 0] - 1.0) < 1e-3

    def test_inductor_oscillation(self):
        """Undamped LC tank oscillates at 1/sqrt(LC)."""
        net = Netlist()
        net.add_capacitor(1, 0, 1.0)
        net.add_inductor(1, 2, 1.0)
        net.add_capacitor(2, 0, 1.0)
        net.add_resistor(2, 0, 1e6)
        net.add_current_source(1, 0)
        sys = net.compile().to_explicit()
        eigs = np.linalg.eigvals(sys.g1)
        # nearly imaginary pair
        assert np.abs(eigs.imag).max() > 0.5

    def test_node_without_mass_raises(self):
        net = Netlist()
        net.add_resistor(1, 2, 1.0)
        net.add_capacitor(1, 0, 1.0)
        # node 2 has no capacitor
        with pytest.raises(SystemStructureError):
            net.compile()

    def test_empty_netlist_raises(self):
        with pytest.raises(SystemStructureError):
            Netlist().compile()

    def test_quadratic_conductance_stamps(self):
        net = Netlist()
        net.add_capacitor(1, 0, 1.0)
        net.add_conductance(1, 0, g1=0.5, g2=0.25)
        sys = net.compile()
        x = np.array([2.0])
        # rhs = −(0.5 v + 0.25 v²) = −(1 + 1) = −2
        assert np.allclose(sys.rhs(x, [0.0]), [-2.0])

    def test_cubic_conductance_gives_cubic_ode(self):
        net = Netlist()
        net.add_capacitor(1, 0, 1.0)
        net.add_conductance(1, 0, g1=0.1, g3=0.01)
        sys = net.compile()
        assert isinstance(sys, CubicODE)
        x = np.array([2.0])
        assert np.allclose(sys.rhs(x, [0.0]), [-(0.2 + 0.08)])

    def test_diode_gives_exponential_ode(self):
        net = Netlist()
        net.add_capacitor(1, 0, 1.0)
        net.add_diode(1, 0, i_s=2.0, kappa=3.0)
        sys = net.compile()
        assert isinstance(sys, ExponentialODE)
        x = np.array([0.5])
        expected = -2.0 * np.expm1(1.5)
        assert np.allclose(sys.rhs(x, [0.0]), [expected])

    def test_voltage_thevenin(self):
        net = Netlist()
        net.add_capacitor(1, 0, 1.0)
        net.add_voltage_source_thevenin(1, 2.0)
        sys = net.compile()
        # b = 1/Rs, G has 1/Rs to ground
        assert np.allclose(sys.b[:, 0], [0.5])
        assert np.allclose(sys.g1, [[-0.5]])

    def test_mixed_diode_poly_rejected(self):
        net = Netlist()
        net.add_capacitor(1, 0, 1.0)
        net.add_diode(1, 0)
        net.add_conductance(1, 0, g2=0.1)
        with pytest.raises(SystemStructureError):
            net.compile()


class TestExampleCircuits:
    def test_ntl_fig2_configuration(self):
        """Voltage source + input diode → lifted QLDAE with D1 ≠ 0."""
        sys = nonlinear_transmission_line(
            n_nodes=10, source="voltage", diode_at_input=True
        )
        q = sys.quadratic_linearize()
        assert q.n_states == 20  # 10 nodes + 10 diodes
        assert q.d1 is not None

    def test_ntl_fig3_configuration(self):
        """Current source into a diode-free node → D1 = 0 exactly.

        36 nodes + 34 diodes = 70 states, matching the paper's R^70."""
        sys = nonlinear_transmission_line(
            n_nodes=36,
            source="current",
            diode_at_input=False,
            diode_start=2,
        )
        q = sys.quadratic_linearize()
        assert q.n_states == 70
        assert q.d1 is None

    def test_ntl_equilibrium(self):
        sys = nonlinear_transmission_line(n_nodes=8)
        assert np.allclose(sys.rhs(np.zeros(8), [0.0]), 0.0)

    def test_ntl_stable_linearization(self):
        sys = nonlinear_transmission_line(n_nodes=8).taylor_polynomial(2)
        assert np.linalg.eigvals(sys.g1).real.max() < 0

    def test_quadratic_ladder(self):
        sys = quadratic_rc_ladder(n_nodes=12)
        assert isinstance(sys, QLDAE)
        assert sys.n_states == 12
        assert sys.d1 is None
        assert sys.g2 is not None

    def test_rf_receiver_dimensions(self):
        sys = rf_receiver_chain(n_nodes=173)
        assert sys.n_states == 173
        assert sys.n_inputs == 2
        assert sys.d1 is None

    def test_rf_receiver_observable_at_signal_band(self):
        sys = rf_receiver_chain(n_nodes=173).to_explicit()
        from repro.systems import StateSpace

        ss = StateSpace(sys.g1, sys.b, sys.output)
        h = ss.transfer(0.1j)
        assert abs(h[0, 0]) > 1e-3  # signal path reaches the output

    def test_varistor_dimensions(self):
        sys = varistor_surge_protector(n_sections=51)
        assert isinstance(sys, CubicODE)
        assert sys.n_states == 102  # paper: 102 states

    def test_varistor_stability(self):
        sys = varistor_surge_protector(n_sections=11).to_explicit()
        assert np.linalg.eigvals(sys.g1).real.max() < 0

    def test_generators_validate_inputs(self):
        with pytest.raises(ValidationError):
            nonlinear_transmission_line(n_nodes=2)
        with pytest.raises(ValidationError):
            nonlinear_transmission_line(n_nodes=10, source="battery")
        with pytest.raises(ValidationError):
            varistor_surge_protector(n_sections=1)
        with pytest.raises(ValidationError):
            rf_receiver_chain(n_nodes=5, path_nodes=12)
