"""Tests for bilinear systems and Carleman bilinearization."""

import numpy as np
import pytest

from repro.errors import SystemStructureError, ValidationError
from repro.simulation import simulate, sine_source
from repro.systems import BilinearSystem, QLDAE, carleman_bilinearize
from repro.volterra import AssociatedWorkspace, associated_h2


@pytest.fixture
def rng():
    return np.random.default_rng(171)


@pytest.fixture
def bilinear(rng):
    n = 4
    a = -1.5 * np.eye(n) + 0.3 * rng.standard_normal((n, n))
    n_mat = 0.2 * rng.standard_normal((n, n))
    b = rng.standard_normal(n)
    return BilinearSystem(a, [n_mat], b, output=np.eye(n)[0])


class TestBilinearSystem:
    def test_rhs(self, bilinear, rng):
        x = rng.standard_normal(4)
        expected = (
            bilinear.a @ x
            + bilinear.n_mats[0] @ x * 0.7
            + bilinear.b[:, 0] * 0.7
        )
        assert np.allclose(bilinear.rhs(x, [0.7]), expected)

    def test_jacobian(self, bilinear, rng):
        x = rng.standard_normal(4)
        jac = bilinear.jacobian(x, [0.4])
        assert np.allclose(jac, bilinear.a + 0.4 * bilinear.n_mats[0])

    def test_simulatable(self, bilinear):
        res = simulate(bilinear, sine_source(0.2, 0.3), 5.0, 0.01)
        assert np.isfinite(res.states).all()

    def test_n_mats_count_check(self, rng):
        with pytest.raises(SystemStructureError):
            BilinearSystem(
                -np.eye(3), [np.eye(3), np.eye(3)], np.ones(3)
            )

    def test_transfer_h1(self, bilinear):
        s = 0.8 + 0.2j
        expected = bilinear.output @ np.linalg.solve(
            s * np.eye(4) - bilinear.a, bilinear.b
        )
        assert np.allclose(bilinear.transfer_h1(s), expected)

    def test_transfer_h2_symmetric(self, bilinear):
        s1, s2 = 0.5, 1.1 + 0.3j
        assert np.allclose(
            bilinear.transfer_h2(s1, s2), bilinear.transfer_h2(s2, s1)
        )


class TestCarleman:
    def test_state_matrix_is_the_papers_a2(self, small_qldae):
        """Carleman's A equals the eq.-(17) Ã2 — the structural link
        between bilinearization and the associated transform."""
        ws = AssociatedWorkspace(small_qldae)
        a2_dense = ws.a2_operator.dense()
        carl = carleman_bilinearize(small_qldae)
        assert np.allclose(carl.a, a2_dense)

    def test_dimensions(self, small_qldae):
        carl = carleman_bilinearize(small_qldae)
        n = small_qldae.n_states
        assert carl.n_states == n + n * n
        assert carl.n_inputs == 1

    def test_amplitude_convergence(self, small_qldae_no_d1):
        """Carleman's truncation error shrinks faster than the response:
        the normalized error decreases with input amplitude."""
        carl = carleman_bilinearize(small_qldae_no_d1)
        errors = []
        for amp in (0.2, 0.1):
            u = sine_source(amp, 0.4)
            full = simulate(small_qldae_no_d1, u, 5.0, 0.01)
            bil = simulate(carl, u, 5.0, 0.01)
            n = small_qldae_no_d1.n_states
            err = np.abs(bil.states[:, :n] - full.states).max()
            errors.append(err / np.abs(full.states).max())
        assert errors[1] < errors[0]

    def test_linear_parts_agree(self, small_qldae):
        carl = carleman_bilinearize(small_qldae)
        s = 0.9 + 0.4j
        n = small_qldae.n_states
        h1_full = small_qldae.output @ np.linalg.solve(
            s * np.eye(n) - small_qldae.g1, small_qldae.b
        )
        assert np.allclose(carl.transfer_h1(s), h1_full)

    def test_h2_matches_associated_eval(self, small_qldae_no_d1):
        """The Carleman bilinear H2 evaluated on the *diagonal* agrees
        with the associated transform at s1 = s2 = s/2... more precisely
        both encode the same quadratic kernel; check against the
        multivariate H2."""
        from repro.volterra import volterra_h2

        carl = carleman_bilinearize(small_qldae_no_d1)
        s1, s2 = 0.6, 1.0
        h2_bilinear = carl.transfer_h2(s1, s2)[0, 0]
        h2_direct = (
            small_qldae_no_d1.output
            @ volterra_h2(small_qldae_no_d1, s1, s2)
        )[0, 0]
        assert abs(h2_bilinear - h2_direct) < 1e-10 * max(
            abs(h2_direct), 1.0
        )

    def test_rejects_cubic(self, small_cubic):
        with pytest.raises(SystemStructureError):
            carleman_bilinearize(small_cubic)

    def test_rejects_degree_3(self, small_qldae):
        with pytest.raises(ValidationError):
            carleman_bilinearize(small_qldae, degree=3)

    def test_rejects_mass(self, rng):
        sys = QLDAE(-np.eye(2), np.ones(2), mass=2 * np.eye(2))
        with pytest.raises(SystemStructureError):
            carleman_bilinearize(sys)
