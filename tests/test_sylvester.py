"""Unit tests for Sylvester / Kronecker-sum solvers (paper §2.3)."""

import numpy as np
import pytest

from repro.errors import NumericalError, ValidationError
from repro.linalg import (
    KronSumSolver,
    SchurForm,
    kron_sum_power,
    pi_sylvester_residual,
    solve_pi_sylvester,
    triangular_sylvester_solve,
    triangular_sylvester_solve_transposed,
)


@pytest.fixture
def rng():
    return np.random.default_rng(11)


@pytest.fixture
def g1(rng):
    return -1.5 * np.eye(6) + 0.35 * rng.standard_normal((6, 6))


def dense_kron_sum(a, k):
    mat = kron_sum_power(a, k)
    return mat.toarray() if hasattr(mat, "toarray") else np.asarray(mat)


class TestTriangularKernels:
    def test_forward_kernel(self, rng):
        t = np.triu(rng.standard_normal((5, 5)) + 2j * np.eye(5))
        w = rng.standard_normal((5, 5)) + 1j * rng.standard_normal((5, 5))
        alpha = 0.6
        y = triangular_sylvester_solve(t, alpha, w)
        assert np.allclose(t @ y + y @ t.T + alpha * y, w)

    def test_transposed_kernel(self, rng):
        t = np.triu(rng.standard_normal((5, 5)) + 2j * np.eye(5))
        w = rng.standard_normal((5, 5)).astype(complex)
        alpha = 0.4
        y = triangular_sylvester_solve_transposed(t, alpha, w)
        assert np.allclose(t.T @ y + y @ t + alpha * y, w)

    def test_singular_pairing_raises(self, rng):
        t = np.diag([1.0 + 0j, -1.0 + 0j])
        # lambda_0 + lambda_1 + 0 = 0 -> singular
        with pytest.raises(NumericalError):
            triangular_sylvester_solve(t, 0.0, np.ones((2, 2), complex))


class TestKronSumSolver:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_solve_matches_dense(self, g1, rng, k):
        solver = KronSumSolver(g1)
        rhs = rng.standard_normal(6**k)
        x = solver.solve(rhs, k=k, shift=0.8)
        dense = dense_kron_sum(g1, k) + 0.8 * np.eye(6**k)
        assert np.allclose(dense @ x, rhs, atol=1e-9)

    @pytest.mark.parametrize("k", [1, 2])
    def test_transpose_solve(self, g1, rng, k):
        solver = KronSumSolver(g1)
        rhs = rng.standard_normal(6**k)
        x = solver.solve_transpose(rhs, k=k, shift=0.3)
        dense = dense_kron_sum(g1, k).T + 0.3 * np.eye(6**k)
        assert np.allclose(dense @ x, rhs, atol=1e-9)

    def test_complex_shift(self, g1, rng):
        solver = KronSumSolver(g1)
        rhs = rng.standard_normal(36)
        shift = -0.2 + 0.9j
        x = solver.solve(rhs, k=2, shift=shift)
        dense = dense_kron_sum(g1, 2).astype(complex) + shift * np.eye(36)
        assert np.allclose(dense @ x, rhs, atol=1e-9)

    def test_solve_real_returns_real(self, g1, rng):
        solver = KronSumSolver(g1)
        x = solver.solve_real(rng.standard_normal(36), k=2)
        assert x.dtype.kind == "f"

    def test_wrong_rhs_size(self, g1):
        solver = KronSumSolver(g1)
        with pytest.raises(ValidationError):
            solver.solve(np.zeros(10), k=2)

    def test_invalid_k(self, g1):
        solver = KronSumSolver(g1)
        with pytest.raises(ValidationError):
            solver.solve(np.zeros(6**4), k=4)

    def test_shared_schur(self, g1):
        schur = SchurForm(g1)
        solver = KronSumSolver(g1, schur=schur)
        assert solver.schur is schur

    def test_singular_spectrum_raises(self):
        # A with eigenvalues ±1: pairing (+1) + (−1) = 0 at zero shift.
        a = np.diag([1.0, -1.0])
        solver = KronSumSolver(a)
        with pytest.raises(NumericalError):
            solver.solve(np.ones(4), k=2, shift=0.0)


class TestPiSylvester:
    def test_residual_small(self, g1, rng):
        g2 = 0.3 * rng.standard_normal((6, 36))
        pi = solve_pi_sylvester(g1, g2)
        assert pi.shape == (6, 36)
        assert pi_sylvester_residual(g1, g2, pi) < 1e-9

    def test_defining_equation_dense(self, g1, rng):
        g2 = 0.3 * rng.standard_normal((6, 36))
        pi = solve_pi_sylvester(g1, g2)
        ks = dense_kron_sum(g1, 2)
        assert np.allclose(g1 @ pi + g2, pi @ ks, atol=1e-9)

    def test_reuses_solver(self, g1, rng):
        g2 = 0.3 * rng.standard_normal((6, 36))
        solver = KronSumSolver(g1)
        pi = solve_pi_sylvester(g1, g2, solver=solver)
        assert pi_sylvester_residual(g1, g2, pi) < 1e-9

    def test_shape_validation(self, g1):
        with pytest.raises(ValidationError):
            solve_pi_sylvester(g1, np.zeros((6, 10)))

    def test_unstable_spectrum_raises(self, rng):
        # Eigenvalue condition lambda_i = lambda_j + lambda_k violated:
        # a has eigenvalues {2, 1, 1}; 2 = 1 + 1.
        a = np.diag([2.0, 1.0, 1.0])
        with pytest.raises(NumericalError):
            solve_pi_sylvester(a, np.ones((3, 9)))
