"""Parametric multi-corner machinery: parameters, grids, reuse tiers.

Covers the cross-corner reuse contracts of :func:`repro.pipeline.
run_parametric`:

* parameter annotations survive the ``Netlist.to_dict``/``from_dict``
  round trip (typed, validated);
* corners with the same CSR pattern but different data get *distinct*
  store keys (value changes must never alias in the store);
* the symbolic sparse-LU analysis is shared across same-pattern corner
  factories (asserted through ``sparse_lu_stats`` counters);
* the interpolation tier's probe check rejects out-of-tolerance
  candidates and the fallback reduction matches a cold one to 1e-9.
"""

import json

import numpy as np
import pytest

from repro.circuits import Netlist, quadratic_rc_ladder_netlist
from repro.circuits.mna import structural_digest
from repro.errors import ValidationError
from repro.linalg import lu as lu_mod
from repro.linalg.resolvent import ResolventFactory
from repro.params import (
    MonteCarloSampler,
    Parameter,
    ParameterGrid,
    check_bindings,
    materialize,
)
from repro.pipeline import (
    ParametricReductionJob,
    ReductionJob,
    _distortion_arrays,
    _worst_rel_dev,
    run_parametric,
)
from repro.serve import ServeMetrics
from repro.store import ModelStore, fingerprint_system

REDUCE = {"orders": [3, 2, 1], "strategy": "decoupled"}
SWEEP = {"start": 0.05, "stop": 0.5, "points": 7, "amplitude": 0.1}


def annotated_ladder(n_nodes=24, ranged_g=False):
    """A small quadratic RC ladder with named device parameters.

    ``r_series`` always carries a [low, high] range (one grid axis);
    ``g_quad`` gets a range only when *ranged_g* (a second axis),
    otherwise it is Monte-Carlo-only (sigma, no range).
    """
    net = quadratic_rc_ladder_netlist(n_nodes=n_nodes, quad_nodes=2)
    r_sites = tuple(
        i for i, dev in enumerate(net.devices) if hasattr(dev, "resistance")
    )
    g_sites = tuple(
        i for i, dev in enumerate(net.devices)
        if getattr(dev, "g2", 0.0) != 0.0
    )
    bounds = {"low": 0.4, "high": 0.6} if ranged_g else {}
    return net.with_params([
        Parameter("r_series", "resistance", r_sites, nominal=1.0,
                  low=0.9, high=1.15, sigma=0.03),
        Parameter("g_quad", "g2", g_sites, nominal=0.5, sigma=0.05,
                  **bounds),
    ])


@pytest.fixture(scope="module")
def ladder():
    return annotated_ladder()


@pytest.fixture(scope="module")
def base_run(ladder):
    """One shared 3-corner parametric run (r_series axis only)."""
    return run_parametric(
        ladder, reduce=REDUCE, sweep=SWEEP,
        mc={"grid_points": {"r_series": 3}, "seed": 7},
        sparse=True,
    )


class TestParameter:
    def test_topology_fields_are_not_bindable(self):
        with pytest.raises(ValidationError):
            Parameter("p", "node_pos", (0,), nominal=1.0)

    def test_range_must_be_consistent(self):
        with pytest.raises(ValidationError):
            Parameter("p", "resistance", (0,), nominal=1.0, low=0.5)
        with pytest.raises(ValidationError):
            Parameter("p", "resistance", (0,), nominal=2.0,
                      low=0.5, high=1.5)
        with pytest.raises(ValidationError):
            Parameter("p", "resistance", (0,), nominal=1.0, sigma=-0.1)

    def test_needs_device_sites(self):
        with pytest.raises(ValidationError):
            Parameter("p", "resistance", (), nominal=1.0)

    def test_coerce_rejects_unknown_keys(self):
        with pytest.raises(ValidationError):
            Parameter.coerce({
                "name": "p", "field": "resistance", "devices": [0],
                "nominal": 1.0, "scale": "log",
            })

    def test_grid_values_and_seeded_draws(self):
        param = Parameter("p", "resistance", (0,), nominal=1.0,
                          low=0.5, high=1.5, sigma=0.1)
        np.testing.assert_allclose(
            param.grid_values(3), [0.5, 1.0, 1.5]
        )
        draws = [param.draw(np.random.default_rng(3)) for _ in range(2)]
        assert draws[0] == draws[1]
        assert 0.5 <= draws[0] <= 1.5

    def test_binding_validation(self, ladder):
        with pytest.raises(ValidationError):
            check_bindings(ladder, [
                Parameter("bad", "resistance", (10 ** 6,), nominal=1.0)
            ])
        with pytest.raises(ValidationError):
            check_bindings(ladder, [
                Parameter("dup", "resistance", (0,), nominal=1.0),
                Parameter("dup", "resistance", (1,), nominal=1.0),
            ])


class TestNetlistRoundTrip:
    def test_parameters_survive_to_dict_from_dict(self, ladder):
        data = json.loads(json.dumps(ladder.to_dict()))
        clone = Netlist.from_dict(data)
        assert clone.parameters == ladder.parameters
        assert all(isinstance(p, Parameter) for p in clone.parameters)

    def test_unannotated_netlist_dict_has_no_parameters_key(self):
        net = quadratic_rc_ladder_netlist(n_nodes=8, quad_nodes=1)
        assert "parameters" not in net.to_dict()

    def test_shipped_spec_is_annotated_and_bindable(self):
        with open("examples/specs/rc_ladder_params.json") as handle:
            spec = json.load(handle)
        net = Netlist.from_dict(spec)
        assert [p.name for p in net.parameters] == ["r_series", "g_quad"]
        check_bindings(net, net.parameters)


class TestGridAndSampler:
    def test_grid_shape_and_index_round_trip(self):
        grid = ParameterGrid(annotated_ladder(ranged_g=True),
                             {"r_series": 3, "g_quad": 2})
        assert grid.shape == (3, 2)
        assert len(grid) == 6
        for flat in range(len(grid)):
            assert grid.flat_index(grid.multi_index(flat)) == flat
        corner = grid.corner_values((2, 1))
        assert corner["r_series"] == pytest.approx(1.15)
        assert corner["g_quad"] == pytest.approx(0.6)

    def test_interp_schedule_covers_grid_with_completed_pairs(self):
        grid = ParameterGrid(annotated_ladder(ranged_g=True), 4)
        waves = grid.interp_schedule()
        seen = set()
        for wave_idx, wave in enumerate(waves):
            for flat, pair in wave:
                if wave_idx == 0:
                    assert pair is None
                else:
                    # both anchors were scheduled in an earlier wave
                    assert pair is not None and set(pair) <= seen
            seen |= {flat for flat, _ in wave}
        assert seen == set(range(len(grid)))

    def test_mc_sampler_is_seed_deterministic(self, ladder):
        a = MonteCarloSampler(ladder, 4, seed=11)
        b = MonteCarloSampler(ladder, 4, seed=11)
        c = MonteCarloSampler(ladder, 4, seed=12)
        assert a.samples == b.samples
        assert a.samples != c.samples
        assert a.describe() == {"draws": 4, "seed": 11}
        for sample in a.samples:
            assert 0.9 <= sample["r_series"] <= 1.15


class TestCrossCornerReuse:
    def test_same_pattern_different_data_distinct_store_keys(
        self, ladder, tmp_path
    ):
        store = ModelStore(tmp_path)
        reducer = ReductionJob.coerce(REDUCE).reducer()
        systems = [
            materialize(ladder, {"r_series": r}).compile(sparse=True)
            for r in (0.9, 1.15)
        ]
        # identical CSR structure ...
        assert structural_digest(systems[0]) == structural_digest(systems[1])
        # ... but different values: fingerprints and keys must differ
        assert fingerprint_system(systems[0]) != fingerprint_system(systems[1])
        keys = [store.key_for(system, reducer) for system in systems]
        assert keys[0] != keys[1]

    def test_symbolic_lu_analysis_shared_across_corners(self, ladder):
        lu_mod._SYMBOLIC_CACHE.clear()
        g1_a = materialize(ladder, {"r_series": 0.9}).compile(sparse=True).g1
        g1_b = materialize(ladder, {"r_series": 1.1}).compile(sparse=True).g1
        rhs = np.arange(1.0, g1_a.shape[0] + 1.0)

        first = ResolventFactory(g1_a)
        x_a = first.solve(0.1, rhs)
        assert first.sparse_lu_stats["symbolic_analyses"] == 1
        assert first.sparse_lu_stats["symbolic_reuses"] == 0

        second = ResolventFactory(g1_b)
        x_b = second.solve(0.1, rhs)
        assert second.sparse_lu_stats["symbolic_analyses"] == 0
        assert second.sparse_lu_stats["symbolic_reuses"] >= 1

        # the shared analysis must not perturb the numerics
        for g1, x in ((g1_a, x_a), (g1_b, x_b)):
            dense = 0.1 * np.eye(g1.shape[0]) - g1.toarray()
            np.testing.assert_allclose(
                x, np.linalg.solve(dense, rhs), rtol=0, atol=1e-10
            )


class TestRunParametric:
    def test_tier_ladder_on_three_corner_axis(self, base_run):
        tiers = base_run.tiers
        # 3-point axis: positions 0/2 are anchors (one cold, one
        # warm-seeded), position 1 is served by interpolation or its
        # warm fallback.
        assert tiers["cold"] == 1
        assert tiers["warm"] >= 1
        total = (tiers["cold"] + tiers["warm"] + tiers["interp"]
                 + tiers["dedup"])
        assert total == len(base_run.corners) == 3
        assert all(rec["tier"] for rec in base_run.corners)

    def test_report_is_json_able_with_distributions(self, base_run):
        report = json.loads(json.dumps(base_run.report()))
        assert report["mc"]["seed"] == 7
        dist = report["distributions"]["corners"]
        omegas = report["distributions"]["omegas"]
        assert len(dist["hd2_p50"]) == len(omegas) == 7
        assert dist["worst_hd3_p99"] >= dist["worst_hd3_p50"] >= 0.0

    def test_interp_fallback_matches_cold_reduction(self, ladder):
        # An impossibly tight tolerance forces every interpolation
        # candidate through the probe check and into rejection; the
        # fallback reductions must match from-scratch ones to 1e-9.
        result = run_parametric(
            ladder, reduce=REDUCE, sweep=SWEEP,
            mc={"grid_points": {"r_series": 3}, "interp_tol": 1e-15},
            sparse=True,
        )
        assert result.tiers["interp"] == 0
        assert result.tiers["interp_rejected"] >= 1

        reduce_job = ReductionJob.coerce(REDUCE)
        omegas = np.asarray(result.distributions["omegas"], dtype=float)
        for corner in result.corners:
            system = materialize(ladder, corner["values"]).compile(
                sparse=True
            )
            rom = reduce_job.reducer().reduce(system)
            hd2, hd3 = _distortion_arrays(
                rom.system.to_explicit(), omegas, SWEEP["amplitude"]
            )
            assert _worst_rel_dev(corner["hd2"], hd2) <= 1e-9
            assert _worst_rel_dev(corner["hd3"], hd3) <= 1e-9

    def test_store_dedup_serves_second_run(self, ladder, tmp_path):
        store = ModelStore(tmp_path)
        kwargs = dict(
            reduce=REDUCE, sweep=SWEEP,
            mc={"grid_points": {"r_series": 3}}, sparse=True,
        )
        first = run_parametric(ladder, store=store, **kwargs)
        assert first.tiers["dedup"] == 0
        keys = [rec["store_key"] for rec in first.corners]
        assert len(set(keys)) == len(keys)  # distinct per corner

        second = run_parametric(ladder, store=store, **kwargs)
        # every corner that was *reduced* (interp ROMs are never
        # stored) is now served straight from the store
        reduced = first.tiers["cold"] + first.tiers["warm"]
        assert second.tiers["dedup"] == reduced
        assert second.tiers["cold"] == 0
        assert second.store_stats["hits"] >= reduced
        for before, after in zip(first.corners, second.corners):
            assert _worst_rel_dev(after["hd2"], before["hd2"]) <= 1e-9
            assert _worst_rel_dev(after["hd3"], before["hd3"]) <= 1e-9

    def test_mc_draws_reproduce_bit_for_bit(self, ladder):
        kwargs = dict(
            reduce=REDUCE, sweep=SWEEP,
            mc={"grid_points": {"r_series": 2}, "draws": 2, "seed": 42},
            sparse=True,
        )
        first = run_parametric(ladder, **kwargs)
        second = run_parametric(ladder, **kwargs)
        assert len(first.draws) == 2
        assert [d["values"] for d in first.draws] == [
            d["values"] for d in second.draws
        ]
        for key in ("hd2_p50", "hd2_p99", "hd3_p50", "hd3_p99"):
            np.testing.assert_array_equal(
                first.distributions["draws"][key],
                second.distributions["draws"][key],
            )

    def test_validation(self, ladder):
        with pytest.raises(ValidationError):
            run_parametric(ladder, reduce=REDUCE, sweep=None)
        plain = quadratic_rc_ladder_netlist(n_nodes=8, quad_nodes=1)
        with pytest.raises(ValidationError):
            run_parametric(plain, reduce=REDUCE, sweep=SWEEP)
        with pytest.raises(ValidationError):
            ParametricReductionJob.coerce({"grid_pts": 3})


class TestServeTierMetrics:
    def test_record_tiers_accumulates(self):
        metrics = ServeMetrics()
        metrics.record_tiers({"dedup": 2, "warm": 1})
        metrics.record_tiers({"dedup": 1, "interp": 3})
        snap = metrics.snapshot()["parametric_tiers"]
        assert snap == {"dedup": 3, "warm": 1, "interp": 3}
