"""Property-based tests (hypothesis) on the core algebraic invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.linalg import (
    KronSumSolver,
    commutation_matrix,
    kron_sum,
    kron_sum_matvec,
    kron_sum_power_matvec,
    merge_bases,
    orthonormalize,
    solve_pi_sylvester,
    pi_sylvester_residual,
    vec,
    unvec,
)
from repro.volterra import input_permutation

_DIM = st.integers(min_value=2, max_value=5)


def _matrix(n, scale=1.0):
    return arrays(
        np.float64,
        (n, n),
        elements=st.floats(
            min_value=-scale, max_value=scale, allow_nan=False
        ),
    )


def _stable_matrix(n):
    """Diagonally-dominated random matrix: guaranteed Hurwitz."""
    return _matrix(n, scale=0.3).map(
        lambda m: m - (2.0 + np.abs(m).sum()) * np.eye(n) / n * n
    )


class TestVecProperties:
    @given(data=st.data(), n=_DIM, m=_DIM)
    @settings(max_examples=30, deadline=None)
    def test_vec_unvec_roundtrip(self, data, n, m):
        x = data.draw(
            arrays(
                np.float64,
                (n, m),
                elements=st.floats(-10, 10, allow_nan=False),
            )
        )
        assert np.array_equal(unvec(vec(x), (n, m)), x)

    @given(data=st.data(), n=_DIM, m=_DIM)
    @settings(max_examples=30, deadline=None)
    def test_kron_identity(self, data, n, m):
        """(A ⊗ B) vec(X) == vec(A X Bᵀ) for random shapes."""
        a = data.draw(_matrix(n))
        b = data.draw(_matrix(m))
        x = data.draw(
            arrays(
                np.float64,
                (n, m),
                elements=st.floats(-5, 5, allow_nan=False),
            )
        )
        lhs = np.kron(a, b) @ vec(x)
        rhs = vec(a @ x @ b.T)
        assert np.allclose(lhs, rhs, atol=1e-8)


class TestKronSumProperties:
    @given(data=st.data(), n=_DIM, m=_DIM)
    @settings(max_examples=25, deadline=None)
    def test_matvec_agrees_with_dense(self, data, n, m):
        a = data.draw(_matrix(n))
        b = data.draw(_matrix(m))
        x = data.draw(
            arrays(
                np.float64,
                (n * m,),
                elements=st.floats(-5, 5, allow_nan=False),
            )
        )
        dense = kron_sum(a, b)
        dense = dense.toarray() if hasattr(dense, "toarray") else dense
        assert np.allclose(
            kron_sum_matvec(a, b, x), np.asarray(dense) @ x, atol=1e-8
        )

    @given(data=st.data(), n=st.integers(2, 4))
    @settings(max_examples=15, deadline=None)
    def test_solver_residual(self, data, n):
        a = data.draw(_stable_matrix(n))
        rhs = data.draw(
            arrays(
                np.float64,
                (n * n,),
                elements=st.floats(-5, 5, allow_nan=False),
            )
        )
        solver = KronSumSolver(a)
        x = solver.solve(rhs, k=2, shift=0.0)
        resid = kron_sum_power_matvec(a, 2, x) - rhs
        assert np.abs(resid).max() < 1e-6 * max(np.abs(rhs).max(), 1.0)

    @given(data=st.data(), n=st.integers(2, 4))
    @settings(max_examples=10, deadline=None)
    def test_pi_sylvester_residual(self, data, n):
        a = data.draw(_stable_matrix(n))
        g2 = data.draw(
            arrays(
                np.float64,
                (n, n * n),
                elements=st.floats(-1, 1, allow_nan=False),
            )
        )
        pi = solve_pi_sylvester(a, g2)
        scale = max(np.abs(g2).max(), 1.0)
        assert pi_sylvester_residual(a, g2, pi) < 1e-6 * scale * n * n


class TestBasisProperties:
    @given(data=st.data(), n=st.integers(3, 8), k=st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_orthonormalize_is_projection_identity(self, data, n, k):
        mat = data.draw(
            arrays(
                np.float64,
                (n, k),
                elements=st.floats(-5, 5, allow_nan=False),
            )
        )
        if np.linalg.norm(mat) < 1e-6:
            return
        q = orthonormalize(mat)
        # orthonormal columns
        assert np.allclose(q.T @ q, np.eye(q.shape[1]), atol=1e-8)
        # spans the input
        assert np.allclose(q @ (q.T @ mat), mat, atol=1e-6)

    @given(data=st.data(), n=st.integers(3, 8))
    @settings(max_examples=25, deadline=None)
    def test_merge_bases_contains_blocks(self, data, n):
        b1 = data.draw(
            arrays(
                np.float64, (n, 2),
                elements=st.floats(-5, 5, allow_nan=False),
            )
        )
        b2 = data.draw(
            arrays(
                np.float64, (n, 2),
                elements=st.floats(-5, 5, allow_nan=False),
            )
        )
        if min(np.linalg.norm(b1), np.linalg.norm(b2)) < 1e-6:
            return
        v = merge_bases([b1, b2])
        for block in (b1, b2):
            assert np.allclose(
                v @ (v.T @ block), block, atol=1e-6
            )


class TestPermutationProperties:
    @given(
        m=st.integers(1, 3),
        perm=st.permutations([0, 1, 2]),
    )
    @settings(max_examples=30, deadline=None)
    def test_input_permutation_is_permutation_matrix(self, m, perm):
        p = input_permutation(m, tuple(perm)).toarray()
        assert np.allclose(p @ p.T, np.eye(m**3))
        assert np.allclose(p.sum(axis=0), 1.0)

    @given(n=st.integers(2, 5), m=st.integers(2, 5))
    @settings(max_examples=20, deadline=None)
    def test_commutation_involution(self, n, m):
        k_nm = commutation_matrix(n, m).toarray()
        k_mn = commutation_matrix(m, n).toarray()
        assert np.allclose(k_mn @ k_nm, np.eye(n * m))


class TestSystemProperties:
    @given(data=st.data(), n=st.integers(2, 4))
    @settings(max_examples=15, deadline=None)
    def test_galerkin_projection_identity(self, data, n):
        """rom.rhs(xr) == Vᵀ full.rhs(V xr) for random systems/bases."""
        from repro.systems import QLDAE

        g1 = data.draw(_stable_matrix(n))
        g2 = data.draw(
            arrays(
                np.float64,
                (n, n * n),
                elements=st.floats(-0.5, 0.5, allow_nan=False),
            )
        )
        b = data.draw(
            arrays(
                np.float64, (n,),
                elements=st.floats(-2, 2, allow_nan=False),
            )
        )
        x = data.draw(
            arrays(
                np.float64, (n,),
                elements=st.floats(-0.5, 0.5, allow_nan=False),
            )
        )
        sys = QLDAE(g1, b if np.any(b) else np.ones(n), g2=g2)
        raw = data.draw(
            arrays(
                np.float64,
                (n, 2),
                elements=st.floats(-1, 1, allow_nan=False),
            )
        )
        if np.linalg.matrix_rank(raw) < 2:
            return
        v = np.linalg.qr(raw)[0]
        rom = sys.project(v)
        xr = v.T @ x
        assert np.allclose(
            rom.rhs(xr, [0.3]), v.T @ sys.rhs(v @ xr, [0.3]), atol=1e-8
        )
