"""Tests for the factorization-reuse solver subsystem.

Covers the :class:`ResolventFactory` (cached/batched resolvent solves,
dense and sparse paths, per-system memoization and invalidation), the
memoizing :class:`VolterraEvaluator` (kernels match independent
brute-force formulas, sub-kernels are solved once), the batched
frequency-sweep entry points, and chord-Newton transient stepping
(trajectories match the exact-Newton path while factorizing far less).
"""

import itertools

import numpy as np
import pytest
import scipy.sparse as sp

from repro.analysis import distortion_sweep, single_tone_distortion
from repro.errors import NumericalError
from repro.linalg import ResolventFactory
from repro.simulation import JacobianCache, newton_solve, simulate, sine_source
from repro.systems import QLDAE
from repro.volterra import (
    VolterraEvaluator,
    frequency_sweep,
    input_permutation,
    volterra_evaluator,
    volterra_h1,
    volterra_h2,
    volterra_h3,
)


@pytest.fixture
def rng():
    return np.random.default_rng(7171)


# ---------------------------------------------------------------------------
# independent brute-force references (fresh dense solve per resolvent,
# mirroring the pre-cache evaluation path; SISO only)
# ---------------------------------------------------------------------------


def brute_h1(system, s):
    n = system.n_states
    return np.linalg.solve(
        s * np.eye(n) - system.g1, system.b.astype(complex)
    )


def brute_h2(system, s1, s2):
    n = system.n_states
    if system.g2 is None and system.d1 is None:
        return np.zeros(n, dtype=complex)
    h1a = brute_h1(system, s1)[:, 0]
    h1b = brute_h1(system, s2)[:, 0]
    inner = np.zeros(n, dtype=complex)
    if system.d1 is not None:
        inner += system.d1[0] @ (h1a + h1b)
    if system.g2 is not None:
        inner += system.g2 @ (np.kron(h1a, h1b) + np.kron(h1b, h1a))
    return 0.5 * np.linalg.solve((s1 + s2) * np.eye(n) - system.g1, inner)


def brute_h3(system, s1, s2, s3):
    n = system.n_states
    s_list = (s1, s2, s3)
    terms = np.zeros(n, dtype=complex)
    if system.g2 is not None:
        for i in range(3):
            j, k = [t for t in range(3) if t != i]
            h1_i = brute_h1(system, s_list[i])[:, 0]
            h2_jk = brute_h2(system, s_list[j], s_list[k])
            terms += system.g2 @ np.kron(h1_i, h2_jk)
            terms += system.g2 @ np.kron(h2_jk, h1_i)
    if system.d1 is not None:
        for si, sj in ((s1, s2), (s1, s3), (s2, s3)):
            terms += system.d1[0] @ brute_h2(system, si, sj)
    if system.g3 is not None:
        triple = np.zeros(n**3, dtype=complex)
        for perm in itertools.permutations(s_list):
            triple += np.kron(
                brute_h1(system, perm[0])[:, 0],
                np.kron(
                    brute_h1(system, perm[1])[:, 0],
                    brute_h1(system, perm[2])[:, 0],
                ),
            )
        terms += 0.5 * (system.g3 @ triple)
    return (
        np.linalg.solve((s1 + s2 + s3) * np.eye(n) - system.g1, terms) / 3.0
    )


# ---------------------------------------------------------------------------
# ResolventFactory
# ---------------------------------------------------------------------------


class TestResolventFactory:
    def test_dense_matches_direct_solve(self, rng):
        a = -1.5 * np.eye(6) + 0.3 * rng.standard_normal((6, 6))
        factory = ResolventFactory(a)
        rhs = rng.standard_normal((6, 2))
        for s in (0.0, 1.0 + 0.5j, -0.3j, 2.5):
            expected = np.linalg.solve(
                s * np.eye(6) - a, rhs.astype(complex)
            )
            assert np.allclose(factory.solve(s, rhs), expected, atol=1e-11)

    def test_vector_rhs_shape(self, rng):
        a = -np.eye(4) + 0.1 * rng.standard_normal((4, 4))
        factory = ResolventFactory(a)
        x = factory.solve(0.7j, np.ones(4))
        assert x.shape == (4,)

    def test_solve_many_matches_loop(self, rng):
        a = -2.0 * np.eye(5) + 0.4 * rng.standard_normal((5, 5))
        factory = ResolventFactory(a)
        rhs = rng.standard_normal((5, 3))
        shifts = np.array([0.3, 1j, 1.0 - 2.0j, 0.0])
        batch = factory.solve_many(shifts, rhs)
        assert batch.shape == (4, 5, 3)
        for idx, s in enumerate(shifts):
            assert np.allclose(batch[idx], factory.solve(s, rhs), atol=1e-12)

    def test_solve_many_vector_rhs(self, rng):
        a = -np.eye(3)
        factory = ResolventFactory(a)
        batch = factory.solve_many([1.0, 2.0], np.ones(3))
        assert batch.shape == (2, 3)
        assert np.allclose(batch[0], 0.5 * np.ones(3))

    def test_sparse_path_matches_dense(self, rng):
        dense = -2.0 * np.eye(8) + 0.2 * rng.standard_normal((8, 8))
        dense[np.abs(dense) < 0.1] = 0.0
        np.fill_diagonal(dense, -2.0)
        sparse = sp.csr_matrix(dense)
        f_dense = ResolventFactory(dense)
        f_sparse = ResolventFactory(sparse)
        assert f_sparse.schur is None
        rhs = rng.standard_normal((8, 2))
        for s in (0.5, 1.0 + 1.0j):
            assert np.allclose(
                f_sparse.solve(s, rhs), f_dense.solve(s, rhs), atol=1e-10
            )
        batch = f_sparse.solve_many([0.5, 1.0 + 1.0j], rhs)
        assert np.allclose(batch[0], f_dense.solve(0.5, rhs), atol=1e-10)

    def test_shift_at_eigenvalue_raises(self):
        factory = ResolventFactory(np.diag([-1.0, -2.0]))
        with pytest.raises(NumericalError):
            factory.solve(-1.0, np.ones(2))

    def test_for_system_caches_and_invalidates(self, small_qldae):
        f1 = ResolventFactory.for_system(small_qldae)
        f2 = ResolventFactory.for_system(small_qldae)
        assert f1 is f2
        # Rebinding the state matrix must invalidate the cache.
        small_qldae.g1 = small_qldae.g1 * 2.0
        f3 = ResolventFactory.for_system(small_qldae)
        assert f3 is not f1
        expected = np.linalg.solve(
            1.0 * np.eye(small_qldae.n_states) - small_qldae.g1,
            small_qldae.b.astype(complex),
        )
        assert np.allclose(f3.solve(1.0, small_qldae.b), expected)


# ---------------------------------------------------------------------------
# VolterraEvaluator
# ---------------------------------------------------------------------------


class TestVolterraEvaluator:
    def test_kernels_match_brute_force(self, small_qldae):
        ev = volterra_evaluator(small_qldae)
        s = (0.4 + 0.2j, 1.1 - 0.7j, 0.9)
        assert np.allclose(
            ev.h1(s[0]), brute_h1(small_qldae, s[0]), atol=1e-11
        )
        assert np.allclose(
            ev.h2(s[0], s[1])[:, 0],
            brute_h2(small_qldae, s[0], s[1]),
            atol=1e-11,
        )
        assert np.allclose(
            ev.h3(*s)[:, 0], brute_h3(small_qldae, *s), atol=1e-10
        )

    def test_cubic_h3_matches_brute_force(self, small_cubic):
        s = (0.5, 1.0, 1.5)
        assert np.allclose(
            volterra_h3(small_cubic, *s)[:, 0],
            brute_h3(small_cubic, *s),
            atol=1e-11,
        )

    def test_h1_memoized(self, small_qldae):
        ev = VolterraEvaluator(small_qldae)
        a = ev.h1(0.5j)
        solves = ev.stats["h1_solves"]
        b = ev.h1(0.5j)
        assert ev.stats["h1_solves"] == solves
        assert ev.stats["h1_hits"] == 1
        assert np.allclose(a, b)

    def test_h3_reuses_subkernels(self, small_qldae):
        """A repeated H3 evaluation must not trigger any new solves."""
        ev = VolterraEvaluator(small_qldae)
        first = ev.h3(0.2j, 0.5j, 0.9j)
        h1_solves = ev.stats["h1_solves"]
        h2_solves = ev.stats["h2_solves"]
        second = ev.h3(0.2j, 0.5j, 0.9j)
        assert ev.stats["h1_solves"] == h1_solves
        assert ev.stats["h2_solves"] == h2_solves
        assert np.allclose(first, second)
        # Three distinct frequencies -> exactly three H1 solves.
        assert h1_solves == 3

    def test_h2_symmetric_key_single_solve(self, miso_qldae):
        ev = VolterraEvaluator(miso_qldae)
        s1, s2 = 0.6, 1.3 + 0.5j
        h_a = ev.h2(s1, s2)
        assert ev.stats["h2_solves"] == 1
        h_b = ev.h2(s2, s1)
        assert ev.stats["h2_solves"] == 1
        assert ev.stats["h2_hits"] == 1
        swap = input_permutation(miso_qldae.n_inputs, (1, 0)).toarray()
        assert np.allclose(h_a, h_b @ swap, atol=1e-12)

    def test_prime_h1_matches_individual(self, small_qldae):
        ev = VolterraEvaluator(small_qldae)
        shifts = [0.3j, 1.0 + 0.5j, -0.3j]
        ev.prime_h1(shifts)
        assert ev.stats["h1_solves"] == 3
        for s in shifts:
            cached = ev.h1(s)
            assert np.allclose(cached, brute_h1(small_qldae, s), atol=1e-11)
        # All served from cache, no further solves.
        assert ev.stats["h1_solves"] == 3

    def test_clear_cache_recomputes(self, small_qldae):
        ev = VolterraEvaluator(small_qldae)
        ev.h1(0.5j)
        ev.clear_cache()
        ev.h1(0.5j)
        assert ev.stats["h1_solves"] == 2

    def test_system_rebind_invalidates(self, small_qldae):
        ev1 = volterra_evaluator(small_qldae)
        before = ev1.h1(1.0)
        small_qldae.g1 = small_qldae.g1 * 0.5
        ev2 = volterra_evaluator(small_qldae)
        assert ev2 is not ev1
        after = ev2.h1(1.0)
        assert np.allclose(after, brute_h1(small_qldae, 1.0), atol=1e-11)
        assert not np.allclose(before, after)

    def test_workspace_invalidated_on_g2_rebind(self, small_qldae_no_d1):
        """Rebinding any kernel-defining matrix must drop the cached
        workspace (a stale Π would silently corrupt later bases)."""
        from repro.volterra import AssociatedWorkspace

        ws1 = AssociatedWorkspace.for_system(small_qldae_no_d1)
        pi1 = ws1.pi.copy()
        small_qldae_no_d1.g2 = sp.csr_matrix(
            0.5 * small_qldae_no_d1.g2.toarray()
        )
        ws2 = AssociatedWorkspace.for_system(small_qldae_no_d1)
        assert ws2 is not ws1
        assert not np.allclose(ws2.pi, pi1)
        assert np.allclose(ws2.pi, 0.5 * pi1)

    def test_evaluator_shared_across_public_api(self, small_qldae):
        """volterra_h1/h2/h3 and the distortion metrics share one cache."""
        volterra_h1(small_qldae, 0.4j)
        volterra_h2(small_qldae, 0.4j, 0.4j)
        ev = volterra_evaluator(small_qldae)
        h1_solves = ev.stats["h1_solves"]
        # h3 at the same frequency reuses H1(0.4j) and H2(0.4j, 0.4j).
        volterra_h3(small_qldae, 0.4j, 0.4j, 0.4j)
        assert ev.stats["h1_solves"] == h1_solves


# ---------------------------------------------------------------------------
# batched sweeps
# ---------------------------------------------------------------------------


class TestBatchedSweeps:
    def test_frequency_sweep_matches_pointwise(self, small_qldae):
        omegas = np.linspace(0.1, 3.0, 7)
        resp = frequency_sweep(small_qldae, omegas)
        assert resp.shape == (7, 1, 1)
        for idx, w in enumerate(omegas):
            expected = small_qldae.output @ brute_h1(small_qldae, 1j * w)
            assert np.allclose(resp[idx], expected, atol=1e-11)

    def test_distortion_sweep_matches_brute_force(self, small_qldae):
        omegas = np.linspace(0.2, 2.0, 9)
        _, hd2, hd3 = distortion_sweep(small_qldae, omegas, amplitude=0.3)
        c = small_qldae.output
        for idx, w in enumerate(omegas):
            jw = 1j * w
            h1 = abs(complex((c @ brute_h1(small_qldae, jw))[0, 0]))
            h2 = abs(complex((c @ brute_h2(small_qldae, jw, jw))[0]))
            h3 = abs(complex((c @ brute_h3(small_qldae, jw, jw, jw))[0]))
            fund = 0.3 * h1
            assert np.isclose(hd2[idx], 0.5 * 0.3**2 * h2 / fund, rtol=1e-8)
            assert np.isclose(hd3[idx], 0.25 * 0.3**3 * h3 / fund, rtol=1e-8)

    def test_sweep_batches_h1_solves(self, small_qldae):
        omegas = np.linspace(0.2, 2.0, 5)
        distortion_sweep(small_qldae, omegas)
        ev = volterra_evaluator(small_qldae)
        # +jω for 5 grid points -> exactly 5 first-order solves (HD2/HD3
        # only touch sum-type kernels, so no −jω seeds are needed).
        assert ev.stats["h1_solves"] == 5
        # A second sweep over the same grid is served from the cache.
        distortion_sweep(small_qldae, omegas)
        assert ev.stats["h1_solves"] == 5

    def test_single_point_consistency(self, small_qldae):
        omegas = np.array([0.7])
        _, hd2, hd3 = distortion_sweep(small_qldae, omegas, amplitude=0.1)
        metrics = single_tone_distortion(small_qldae, 0.7, amplitude=0.1)
        assert np.isclose(hd2[0], metrics["hd2"], rtol=1e-12)
        assert np.isclose(hd3[0], metrics["hd3"], rtol=1e-12)


# ---------------------------------------------------------------------------
# chord-Newton
# ---------------------------------------------------------------------------


class TestChordNewton:
    def test_newton_solve_with_cache_matches(self):
        res = lambda x: np.array([x[0] ** 2 - 4.0])
        jac = lambda x: np.array([[2.0 * x[0]]])
        cache = JacobianCache()
        x_chord, _ = newton_solve(res, jac, np.array([3.0]), jac_cache=cache)
        x_exact, _ = newton_solve(res, jac, np.array([3.0]))
        assert abs(x_chord[0] - 2.0) < 1e-9
        assert abs(x_chord[0] - x_exact[0]) < 1e-9
        assert cache.factorizations >= 1

    def test_cache_persists_across_calls(self):
        """A second solve from a nearby start reuses the factorization."""
        res = lambda x: np.array([np.tanh(x[0]) - 0.1])
        jac = lambda x: np.array([[1.0 / np.cosh(x[0]) ** 2]])
        cache = JacobianCache()
        newton_solve(res, jac, np.array([0.5]), jac_cache=cache)
        factored = cache.factorizations
        newton_solve(res, jac, np.array([0.4]), jac_cache=cache)
        assert cache.reuses > 0
        assert cache.factorizations >= factored  # may or may not refresh

    def test_transient_trajectories_match(self, small_qldae):
        u = sine_source(amplitude=0.2, frequency=0.15)
        chord = simulate(small_qldae, u, 8.0, 0.05, reuse_jacobian=True)
        exact = simulate(small_qldae, u, 8.0, 0.05, reuse_jacobian=False)
        assert np.abs(chord.states - exact.states).max() < 1e-8
        assert exact.jacobian_factorizations is None
        assert chord.jacobian_factorizations is not None
        # The point of chord Newton: far fewer LU factorizations than
        # Newton iterations (exact Newton factors once per iteration).
        assert chord.jacobian_factorizations < exact.newton_iterations

    def test_backward_euler_also_matches(self, small_qldae):
        u = sine_source(amplitude=0.15, frequency=0.2)
        chord = simulate(
            small_qldae, u, 4.0, 0.1, theta=1.0, reuse_jacobian=True
        )
        exact = simulate(
            small_qldae, u, 4.0, 0.1, theta=1.0, reuse_jacobian=False
        )
        assert np.abs(chord.states - exact.states).max() < 1e-8

    def test_strongly_nonlinear_still_converges(self, rng):
        """A stiffer quadratic system exercises the refresh path."""
        n = 4
        g1 = -np.diag([1.0, 3.0, 5.0, 8.0])
        g2 = 0.8 * rng.standard_normal((n, n * n))
        system = QLDAE(g1, np.ones(n), g2=g2, output=np.eye(n)[0])
        u = sine_source(amplitude=0.4, frequency=0.3)
        chord = simulate(system, u, 5.0, 0.02, reuse_jacobian=True)
        exact = simulate(system, u, 5.0, 0.02, reuse_jacobian=False)
        assert np.abs(chord.states - exact.states).max() < 1e-8
        assert chord.jacobian_factorizations < chord.newton_iterations
